/**
 * @file
 * Crash-point fuzzing front end.
 *
 * Default mode runs a fuzz campaign: for each (seed, workload, system,
 * fast-path mode) it enumerates every reachable crash site, crashes at
 * each one, and checks recovery against the golden epoch-model oracle.
 * Any failure prints a one-line repro string that --replay (and the
 * crash_repro_test suite) re-executes deterministically.
 *
 * Usage:
 *   thynvm_fuzz [--seeds N] [--both-fastpath] [--deltas t0,t1,...]
 *               [--threads N] [--channels N] [--inject-drop-btt IDX]
 *               [--list-sites] [--replay REPRO]
 *
 * The THYNVM_FUZZ_ITERS environment variable scales the seed count for
 * nightly-sized sweeps (same as --seeds). --threads (default: the
 * THYNVM_SIM_THREADS environment variable, else 1) fans the campaign's
 * independent cases across host workers; the campaign result is
 * byte-identical for any thread count. --channels N (default: the
 * THYNVM_CHANNELS environment variable, else 1) runs every simulated
 * System on an N-channel interleaved topology, which adds per-channel
 * (chK.*) and cross-channel barrier (group.*) crash sites to the plan.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/parallel.hh"
#include "fuzz/fuzzer.hh"

namespace {

using namespace thynvm;
using namespace thynvm::fuzz;

int
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seeds N] [--both-fastpath] "
                 "[--deltas t0,t1,...]\n"
                 "          [--threads N] [--channels N] "
                 "[--inject-drop-btt IDX]\n"
                 "          [--list-sites] [--replay REPRO]\n",
                 argv0);
    return 2;
}

int
listSites(const FuzzerConfig& fc, unsigned channels)
{
    for (SystemKind kind :
         {SystemKind::ThyNvm, SystemKind::Journal, SystemKind::Shadow,
          SystemKind::Icl, SystemKind::Incremental}) {
        for (const char* wl : {"rand", "slide"}) {
            const auto sites =
                enumerateSites(fc, 1, wl, kind, true, channels);
            std::printf("%s / %s: %zu sites\n", systemToken(kind), wl,
                        sites.size());
            for (const auto& [site, hits] : sites) {
                std::printf("  %-24s %8llu hits\n", site.c_str(),
                            static_cast<unsigned long long>(hits));
            }
        }
    }
    return 0;
}

int
replay(const FuzzerConfig& fc, const std::string& repro)
{
    FuzzCase c;
    if (!parseRepro(repro, c)) {
        std::fprintf(stderr, "malformed repro string: %s\n",
                     repro.c_str());
        return 2;
    }
    const CaseResult r = runCrashCase(fc, c);
    switch (r.status) {
      case CaseStatus::Ok:
        std::printf("OK %s\n  crash tick %llu, commits %llu, "
                    "restored ops %llu\n",
                    r.repro.c_str(),
                    static_cast<unsigned long long>(r.crash_tick),
                    static_cast<unsigned long long>(r.commits_before),
                    static_cast<unsigned long long>(r.restored_ops));
        return 0;
      case CaseStatus::NotReached:
        std::printf("NOT-REACHED %s\n", r.repro.c_str());
        return 3;
      case CaseStatus::Violation:
        std::printf("VIOLATION %s\n  %s\n", r.repro.c_str(),
                    r.detail.c_str());
        return 1;
    }
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    FuzzerConfig fc;
    CampaignOptions opts;
    bool list_sites = false;
    std::string replay_str;
    std::uint64_t n_seeds = 1;
    unsigned threads = std::max(1u, simThreadsFromEnv());
    unsigned channels = channelsFromEnv();

    if (const char* env = std::getenv("THYNVM_FUZZ_ITERS"))
        n_seeds = std::strtoull(env, nullptr, 10);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seeds" && i + 1 < argc) {
            n_seeds = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--both-fastpath") {
            opts.both_fast_path_modes = true;
        } else if (arg == "--deltas" && i + 1 < argc) {
            opts.deltas.clear();
            for (const char* p = argv[++i]; *p != '\0';) {
                char* end = nullptr;
                opts.deltas.push_back(std::strtoull(p, &end, 10));
                p = (*end == ',') ? end + 1 : end;
            }
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--channels" && i + 1 < argc) {
            channels = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--inject-drop-btt" && i + 1 < argc) {
            fc.debug_drop_btt_entry = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--list-sites") {
            list_sites = true;
        } else if (arg == "--replay" && i + 1 < argc) {
            replay_str = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }

    if (channels <= 1)
        channels = 0; // 0 = single-channel seed topology
    opts.channels = channels;

    if (list_sites)
        return listSites(fc, channels);
    if (!replay_str.empty())
        return replay(fc, replay_str);

    if (n_seeds == 0)
        n_seeds = 1;
    opts.seeds.clear();
    for (std::uint64_t s = 1; s <= n_seeds; ++s)
        opts.seeds.push_back(s);

    const CampaignResult r = runCampaign(fc, opts, &std::cerr, threads);

    std::printf("campaign: %llu cases (%llu not reached), "
                "%zu violations\n",
                static_cast<unsigned long long>(r.cases),
                static_cast<unsigned long long>(r.not_reached),
                r.violations.size());
    for (const auto& [sys, sites] : r.sites_by_system) {
        std::printf("  %-8s %zu distinct crash sites\n", sys.c_str(),
                    sites.size());
    }
    for (const CaseResult& v : r.violations)
        std::printf("VIOLATION %s\n  %s\n", v.repro.c_str(),
                    v.detail.c_str());
    return r.violations.empty() ? 0 : 1;
}
