/**
 * @file
 * thynvm_sim — command-line front end for the simulator.
 *
 * Runs any built-in workload on any evaluated memory system, with
 * optional crash injection and trace recording/replay, and reports the
 * metrics the paper's evaluation uses. See --help for the flags.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "harness/system.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"
#include "workloads/trace.hh"

using namespace thynvm;

namespace {

struct Options
{
    std::string system = "thynvm";
    std::string workload = "sliding";
    std::uint64_t accesses = 100000;
    std::uint64_t txns = 2000;
    std::uint64_t instructions = 1000000;
    std::size_t phys_mb = 32;
    std::uint64_t epoch_us = 10000;
    std::size_t btt = 2048;
    std::size_t ptt = 4096;
    std::uint32_t value_size = 256;
    std::uint64_t seed = 1;
    std::uint64_t crash_at_us = 0; // 0 = no crash
    std::string record_trace;
    std::string replay_trace;
    bool dump_stats = false;
};

void
usage()
{
    std::printf(
        "usage: thynvm_sim [options]\n"
        "  --system=KIND      thynvm | journal | shadow | ideal-dram |\n"
        "                     ideal-nvm (default thynvm)\n"
        "  --workload=NAME    random | streaming | sliding | kv-hash |\n"
        "                     kv-rbtree | spec:<bench> (default sliding)\n"
        "  --accesses=N       micro-benchmark memory accesses\n"
        "  --txns=N           key-value transactions\n"
        "  --instructions=N   SPEC instruction budget\n"
        "  --phys-mb=N        physical address space (MB, default 32)\n"
        "  --epoch-us=N       epoch length in microseconds (default 10000)\n"
        "  --btt=N --ptt=N    ThyNVM table sizes (default 2048/4096)\n"
        "  --value-size=N     KV value bytes (default 256)\n"
        "  --seed=N           workload RNG seed\n"
        "  --crash-at-us=N    inject a power failure at N us, then\n"
        "                     recover and resume to completion\n"
        "  --record-trace=F   save the op stream to trace file F\n"
        "  --replay-trace=F   replay a previously recorded trace\n"
        "  --stats            dump all component statistics at the end\n");
}

bool
parseFlag(const char* arg, const char* name, std::string* out)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        *out = arg + n + 1;
        return true;
    }
    return false;
}

bool
parseFlag(const char* arg, const char* name, std::uint64_t* out)
{
    std::string s;
    if (!parseFlag(arg, name, &s))
        return false;
    *out = std::strtoull(s.c_str(), nullptr, 10);
    return true;
}

SystemKind
systemKindOf(const std::string& s)
{
    if (s == "thynvm")
        return SystemKind::ThyNvm;
    if (s == "journal")
        return SystemKind::Journal;
    if (s == "shadow")
        return SystemKind::Shadow;
    if (s == "ideal-dram")
        return SystemKind::IdealDram;
    if (s == "ideal-nvm")
        return SystemKind::IdealNvm;
    fatal("unknown system '%s'", s.c_str());
}

std::unique_ptr<Workload>
makeWorkload(const Options& opt)
{
    if (!opt.replay_trace.empty()) {
        return std::make_unique<TraceReplayWorkload>(
            TraceReplayWorkload::load(opt.replay_trace));
    }
    if (opt.workload == "random" || opt.workload == "streaming" ||
        opt.workload == "sliding") {
        MicroWorkload::Params p;
        p.pattern = opt.workload == "random"
                        ? MicroWorkload::Pattern::Random
                        : opt.workload == "streaming"
                              ? MicroWorkload::Pattern::Streaming
                              : MicroWorkload::Pattern::Sliding;
        p.array_bytes = (opt.phys_mb << 20) * 3 / 4;
        p.total_accesses = opt.accesses;
        p.seed = opt.seed;
        return std::make_unique<MicroWorkload>(p);
    }
    if (opt.workload == "kv-hash" || opt.workload == "kv-rbtree") {
        KvWorkload::Params p;
        p.structure = opt.workload == "kv-hash"
                          ? KvWorkload::Structure::HashTable
                          : KvWorkload::Structure::RbTree;
        p.phys_size = opt.phys_mb << 20;
        p.value_size = opt.value_size;
        p.total_txns = opt.txns;
        p.seed = opt.seed;
        return std::make_unique<KvWorkload>(p);
    }
    if (opt.workload.rfind("spec:", 0) == 0) {
        const auto& prof = specProfile(opt.workload.substr(5));
        return std::make_unique<SpecWorkload>(prof, 0, opt.instructions,
                                              opt.seed);
    }
    fatal("unknown workload '%s'", opt.workload.c_str());
}

SystemConfig
makeConfig(const Options& opt)
{
    SystemConfig cfg;
    cfg.kind = systemKindOf(opt.system);
    cfg.phys_size = opt.phys_mb << 20;
    cfg.epoch_length = opt.epoch_us * kMicrosecond;
    cfg.thynvm.btt_entries = opt.btt;
    cfg.thynvm.ptt_entries = opt.ptt;
    return cfg;
}

void
printMetrics(const RunMetrics& m)
{
    std::printf("sim time        : %.3f ms\n",
                static_cast<double>(m.exec_time) / kMillisecond);
    std::printf("instructions    : %llu\n",
                static_cast<unsigned long long>(m.instructions));
    std::printf("IPC             : %.4f\n", m.ipc);
    std::printf("epochs          : %llu\n",
                static_cast<unsigned long long>(m.epochs));
    std::printf("NVM writes      : %.2f MB (cpu %.2f, ckpt %.2f, "
                "migration %.2f)\n",
                static_cast<double>(m.nvm_wr_total) / (1 << 20),
                static_cast<double>(m.nvm_wr_cpu) / (1 << 20),
                static_cast<double>(m.nvm_wr_ckpt) / (1 << 20),
                static_cast<double>(m.nvm_wr_migration) / (1 << 20));
    std::printf("DRAM writes     : %.2f MB\n",
                static_cast<double>(m.dram_wr_total) / (1 << 20));
    std::printf("time on ckpt    : %.3f %%\n", m.ckpt_time_frac * 100.0);
}

void
dumpStats(System& sys)
{
    std::printf("\n--- component statistics ---\n");
    std::ostringstream os;
    sys.controller().stats().dump(os);
    sys.cpu().stats().dump(os);
    if (auto* nvm = sys.controller().nvmDevice())
        nvm->stats().dump(os);
    if (auto* dram = sys.controller().dramDevice())
        dram->stats().dump(os);
    std::fputs(os.str().c_str(), stdout);
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const char* a = argv[i];
        std::uint64_t tmp = 0;
        if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
            usage();
            return 0;
        } else if (std::strcmp(a, "--stats") == 0) {
            opt.dump_stats = true;
        } else if (parseFlag(a, "--system", &opt.system) ||
                   parseFlag(a, "--workload", &opt.workload) ||
                   parseFlag(a, "--record-trace", &opt.record_trace) ||
                   parseFlag(a, "--replay-trace", &opt.replay_trace)) {
            // handled
        } else if (parseFlag(a, "--accesses", &opt.accesses) ||
                   parseFlag(a, "--txns", &opt.txns) ||
                   parseFlag(a, "--instructions", &opt.instructions) ||
                   parseFlag(a, "--epoch-us", &opt.epoch_us) ||
                   parseFlag(a, "--seed", &opt.seed) ||
                   parseFlag(a, "--crash-at-us", &opt.crash_at_us)) {
            // handled
        } else if (parseFlag(a, "--phys-mb", &tmp)) {
            opt.phys_mb = tmp;
        } else if (parseFlag(a, "--btt", &tmp)) {
            opt.btt = tmp;
        } else if (parseFlag(a, "--ptt", &tmp)) {
            opt.ptt = tmp;
        } else if (parseFlag(a, "--value-size", &tmp)) {
            opt.value_size = static_cast<std::uint32_t>(tmp);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n\n", a);
            usage();
            return 2;
        }
    }

    try {
        auto inner = makeWorkload(opt);
        std::unique_ptr<TraceRecorder> recorder;
        Workload* wl = inner.get();
        if (!opt.record_trace.empty()) {
            recorder = std::make_unique<TraceRecorder>(*inner);
            wl = recorder.get();
        }

        const SystemConfig cfg = makeConfig(opt);
        auto sys = std::make_unique<System>(cfg, *wl);
        std::printf("system=%s workload=%s phys=%zuMB epoch=%llums\n",
                    systemKindName(cfg.kind), opt.workload.c_str(),
                    opt.phys_mb,
                    static_cast<unsigned long long>(opt.epoch_us / 1000));
        sys->start();

        std::unique_ptr<Workload> wl2;
        if (opt.crash_at_us > 0) {
            sys->run(opt.crash_at_us * kMicrosecond);
            if (!sys->finished()) {
                std::printf(">>> injected power failure at %llu us\n",
                            static_cast<unsigned long long>(
                                opt.crash_at_us));
                auto nvm = sys->crash();
                Options o2 = opt;
                o2.record_trace.clear();
                wl2 = makeWorkload(o2);
                sys = std::make_unique<System>(cfg, *wl2, nvm);
                sys->recoverAndResume();
                std::printf(">>> recovered; resuming\n");
            }
        }
        sys->run(600 * kSecond);
        fatal_if(!sys->finished(),
                 "workload did not finish within the time limit");

        printMetrics(sys->metrics());
        if (recorder && !opt.record_trace.empty() &&
            opt.crash_at_us == 0) {
            recorder->save(opt.record_trace);
            std::printf("trace saved to %s (%zu ops)\n",
                        opt.record_trace.c_str(),
                        recorder->records().size());
        }
        if (opt.dump_stats)
            dumpStats(*sys);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
