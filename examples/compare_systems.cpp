/**
 * @file
 * Run one workload across all five evaluated memory systems (paper
 * §5.1) and print a side-by-side comparison: execution time, IPC, NVM
 * write traffic, and checkpointing overhead.
 *
 * Usage: compare_systems [random|streaming|sliding] [accesses]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/system.hh"
#include "workloads/micro.hh"

using namespace thynvm;

int
main(int argc, char** argv)
{
    MicroWorkload::Pattern pattern = MicroWorkload::Pattern::Sliding;
    if (argc > 1) {
        if (std::strcmp(argv[1], "random") == 0)
            pattern = MicroWorkload::Pattern::Random;
        else if (std::strcmp(argv[1], "streaming") == 0)
            pattern = MicroWorkload::Pattern::Streaming;
        else if (std::strcmp(argv[1], "sliding") == 0)
            pattern = MicroWorkload::Pattern::Sliding;
        else
            std::fprintf(stderr, "unknown pattern '%s'\n", argv[1]);
    }
    const std::uint64_t accesses =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60000;

    std::printf("%-11s %12s %8s %12s %12s %10s\n", "system", "exec_ms",
                "ipc", "nvm_wr_MB", "ckpt_wr_MB", "ckpt_%");

    const SystemKind kinds[] = {SystemKind::IdealDram,
                                SystemKind::Journal, SystemKind::Shadow,
                                SystemKind::ThyNvm, SystemKind::IdealNvm};
    for (SystemKind kind : kinds) {
        SystemConfig cfg;
        cfg.kind = kind;
        cfg.phys_size = 16u << 20;
        cfg.epoch_length = 2 * kMillisecond;
        cfg.thynvm.btt_entries = 2048;
        cfg.thynvm.ptt_entries = 2048;

        MicroWorkload::Params wp;
        wp.pattern = pattern;
        wp.array_bytes = 12u << 20;
        wp.total_accesses = accesses;
        MicroWorkload workload(wp);

        System machine(cfg, workload);
        machine.start();
        machine.run(60 * kSecond);
        if (!machine.finished()) {
            std::printf("%-11s did not finish\n", systemKindName(kind));
            continue;
        }
        const auto m = machine.metrics();
        std::printf("%-11s %12.2f %8.3f %12.1f %12.1f %10.2f\n",
                    systemKindName(kind),
                    static_cast<double>(m.exec_time) / kMillisecond,
                    m.ipc,
                    static_cast<double>(m.nvm_wr_total) / (1 << 20),
                    static_cast<double>(m.nvm_wr_ckpt) / (1 << 20),
                    m.ckpt_time_frac * 100.0);
    }
    return 0;
}
