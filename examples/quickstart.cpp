/**
 * @file
 * Quickstart: build a ThyNVM persistent-memory system, write some
 * data, pull the plug at an arbitrary instant, reboot, and watch the
 * memory image come back crash-consistent — no application-level
 * persistence code anywhere.
 */

#include <cstdio>

#include "harness/system.hh"
#include "workloads/micro.hh"

using namespace thynvm;

int
main()
{
    // 1. Configure a machine: 3 GHz core, 3-level caches (paper Table
    //    2), and the ThyNVM hybrid DRAM+NVM memory controller.
    SystemConfig cfg;
    cfg.kind = SystemKind::ThyNvm;
    cfg.phys_size = 8u << 20;
    cfg.epoch_length = kMillisecond;
    cfg.thynvm.btt_entries = 1024;
    cfg.thynvm.ptt_entries = 2048;

    // 2. Pick a workload. This one hammers a 4 MB array with random
    //    64-byte reads and writes, completely unaware that its memory
    //    is persistent.
    MicroWorkload::Params wp;
    wp.pattern = MicroWorkload::Pattern::Random;
    wp.array_bytes = 4u << 20;
    wp.total_accesses = 50000;
    MicroWorkload workload(wp);

    System machine(cfg, workload);
    machine.start();

    // 3. Run for a while, then lose power mid-execution.
    machine.run(3 * kMillisecond);
    std::printf("executed %llu instructions, %llu epochs committed\n",
                static_cast<unsigned long long>(
                    machine.metrics().instructions),
                static_cast<unsigned long long>(
                    machine.metrics().epochs));
    std::printf(">>> power failure! all volatile state lost <<<\n");
    auto surviving_nvm = machine.crash();

    // 4. Reboot: a new machine around the surviving NVM chips. The
    //    controller rolls memory back to the last committed checkpoint
    //    and restores the CPU state, and execution simply resumes.
    MicroWorkload workload2(wp);
    System rebooted(cfg, workload2, surviving_nvm);
    rebooted.recoverAndResume();
    std::printf("recovered; resuming from the last checkpoint...\n");

    rebooted.run(kMaxTick);
    const auto m = rebooted.metrics();
    std::printf("workload finished: IPC %.3f, NVM writes %.1f MB "
                "(%.1f MB checkpointing)\n",
                m.ipc,
                static_cast<double>(m.nvm_wr_total) / (1 << 20),
                static_cast<double>(m.nvm_wr_ckpt) / (1 << 20));
    std::printf("crash consistency cost: %.2f%% of execution time\n",
                m.ckpt_time_frac * 100.0);
    return 0;
}
