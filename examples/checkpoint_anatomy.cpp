/**
 * @file
 * Anatomy of ThyNVM's dual-scheme checkpointing: drive a workload that
 * shifts from dense (sequential) to sparse (random) writes and watch
 * the controller adapt — pages promoted into the DRAM working region,
 * then demoted back to block remapping, with the per-epoch traffic
 * split between data, metadata, and migration.
 */

#include <cstdio>

#include "core/thynvm_controller.hh"
#include "workloads/micro.hh"

using namespace thynvm;

namespace {

void
report(const char* phase, ThyNvmController& ctrl)
{
    std::printf("%-22s epoch=%-4llu BTT=%-5zu PTT=%-4zu promotions=%-4.0f "
                "demotions=%-4.0f remaps=%-6.0f page_stores=%-6.0f\n",
                phase,
                static_cast<unsigned long long>(ctrl.currentEpoch()),
                ctrl.bttLive(), ctrl.pttLive(),
                ctrl.stats().value("promotions"),
                ctrl.stats().value("demotions"),
                ctrl.stats().value("remap_nvm_writes"),
                ctrl.stats().value("page_stores"));
}

} // namespace

int
main()
{
    ThyNvmConfig cfg;
    cfg.phys_size = 8u << 20;
    cfg.btt_entries = 512;
    cfg.ptt_entries = 512;
    cfg.epoch_length = 100 * kMicrosecond;

    EventQueue eq;
    ThyNvmController ctrl(eq, "ctrl", cfg);
    ctrl.start();

    auto store = [&](Addr addr, std::uint64_t tag) {
        std::uint8_t data[kBlockSize];
        for (std::size_t i = 0; i < kBlockSize; ++i)
            data[i] = static_cast<std::uint8_t>(tag + i);
        bool done = false;
        ctrl.accessBlock(blockAlign(addr), true, data, nullptr,
                         TrafficSource::CpuWriteback,
                         [&done] { done = true; });
        eq.runUntil([&done] { return done; });
    };
    auto epoch = [&] {
        const auto target = ctrl.completedEpochs() + 1;
        ctrl.requestEpochEnd();
        eq.runUntil([&] {
            return ctrl.completedEpochs() >= target &&
                   !ctrl.checkpointInProgress();
        });
    };

    report("initial", ctrl);

    // Phase 1: dense sequential writes over 16 pages. The store
    // counters cross the promotion threshold and the pages move into
    // the page-writeback scheme.
    for (unsigned round = 0; round < 2; ++round) {
        for (Addr a = 0; a < 16 * kPageSize; a += kBlockSize)
            store(a, a / kBlockSize);
        epoch();
        report(round == 0 ? "dense writes (warmup)" : "dense writes",
               ctrl);
    }

    // Phase 2: sparse random-ish writes, one block per page, far
    // apart. These stay in the block-remapping scheme.
    for (unsigned round = 0; round < 2; ++round) {
        for (unsigned i = 0; i < 64; ++i)
            store((512 + i * 7) * kPageSize % cfg.phys_size, i);
        epoch();
        report("sparse writes", ctrl);
    }

    // Phase 3: the dense pages turn sparse — only one block per page
    // is touched now. The controller demotes them back to block
    // remapping within a couple of epochs.
    for (unsigned round = 0; round < 3; ++round) {
        for (Addr p = 0; p < 16; ++p)
            store(p * kPageSize, p);
        epoch();
        report("dense pages gone cold", ctrl);
    }

    std::printf("\ncheckpoint traffic: %.0f KB metadata, "
                "%.0f pages written back, %.0f blocks drained\n",
                ctrl.stats().value("metadata_ckpt_bytes") / 1024.0,
                ctrl.stats().value("pages_written_back"),
                ctrl.stats().value("drained_blocks"));
    return 0;
}
