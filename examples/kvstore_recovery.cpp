/**
 * @file
 * The paper's headline use case (Figure 1): an unmodified key-value
 * store gains crash consistency with zero persistence code.
 *
 * A hash-table KV store runs entirely in simulated persistent memory.
 * We kill the power repeatedly at arbitrary points, reboot, recover,
 * and resume — and the final store contents are byte-identical to an
 * uninterrupted run, verified against a host-side reference model.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "harness/system.hh"
#include "workloads/kvstore.hh"

using namespace thynvm;

int
main()
{
    SystemConfig cfg;
    cfg.kind = SystemKind::ThyNvm;
    cfg.phys_size = 8u << 20;
    cfg.epoch_length = 500 * kMicrosecond;
    cfg.thynvm.btt_entries = 1024;
    cfg.thynvm.ptt_entries = 2048;

    KvWorkload::Params kv;
    kv.structure = KvWorkload::Structure::HashTable;
    kv.phys_size = cfg.phys_size;
    kv.value_size = 256;
    kv.initial_keys = 500;
    kv.key_space = 2000;
    kv.total_txns = 12000;

    auto workload = std::make_unique<KvWorkload>(kv);
    auto machine = std::make_unique<System>(cfg, *workload);
    machine->start();
    machine->run(400 * kMicrosecond);

    std::vector<std::unique_ptr<KvWorkload>> old_workloads;
    unsigned reboots = 0;
    while (!machine->finished()) {
        std::printf("power failure after %llu committed transactions "
                    "(reboot #%u)\n",
                    static_cast<unsigned long long>(
                        workload->completedTxns()),
                    ++reboots);
        auto nvm = machine->crash();

        old_workloads.push_back(std::move(workload));
        workload = std::make_unique<KvWorkload>(kv);
        machine = std::make_unique<System>(cfg, *workload, nvm);
        machine->recoverAndResume();
        std::printf("  recovered; store resumed at transaction %llu\n",
                    static_cast<unsigned long long>(
                        workload->completedTxns()));
        machine->run((1 + reboots) * kMillisecond);
    }

    // Verify byte-exact equivalence with an uninterrupted reference.
    HostMemSpace ref(kv.phys_size);
    KvWorkload::runReference(kv, kv.total_txns, ref);
    std::vector<std::uint8_t> img(kv.phys_size);
    machine->functionalView()(0, img.data(), img.size());

    std::printf("\nall %llu transactions completed across %u crashes\n",
                static_cast<unsigned long long>(kv.total_txns), reboots);
    std::printf("final memory image %s the uninterrupted reference\n",
                img == ref.bytes() ? "MATCHES" : "DIVERGES FROM");

    ReadOnlyMemSpace view(machine->functionalView());
    KvWorkload::validateStructure(kv, view);
    std::printf("hash table structural validation passed\n");
    return img == ref.bytes() ? 0 : 1;
}
