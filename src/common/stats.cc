/**
 * @file
 * Text rendering for stats groups.
 */

#include "common/stats.hh"

#include <iomanip>

namespace thynvm {
namespace stats {

void
Group::dump(std::ostream& os) const
{
    auto emit = [&](const std::string& stat, double v,
                    const std::string& desc) {
        os << std::left << std::setw(46) << (name_ + "." + stat)
           << std::right << std::setw(18) << v;
        if (!desc.empty())
            os << "  # " << desc;
        os << "\n";
    };

    for (const auto& [k, e] : scalars_)
        emit(k, e.stat->value(), e.desc);
    for (const auto& [k, e] : formulas_)
        emit(k, e.fn(), e.desc);
    for (const auto& [k, e] : histograms_) {
        emit(k + "::count", static_cast<double>(e.stat->count()), e.desc);
        emit(k + "::mean", e.stat->mean(), "");
        emit(k + "::min", e.stat->minValue(), "");
        emit(k + "::max", e.stat->maxValue(), "");
    }
}

} // namespace stats
} // namespace thynvm
