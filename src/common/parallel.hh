/**
 * @file
 * Minimal host-side threading helpers for the benchmark harness.
 *
 * Simulation itself is single-threaded by design (one EventQueue per
 * System, stepped by one thread); these helpers fan *independent*
 * System runs across host hardware threads. Nothing here is used on a
 * simulated timing path.
 */

#ifndef THYNVM_COMMON_PARALLEL_HH
#define THYNVM_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace thynvm {

/**
 * Fixed-size pool of worker threads draining a FIFO job queue.
 *
 * Jobs submitted before destruction are all executed; the destructor
 * blocks until the queue drains and every worker has joined. Jobs must
 * not throw (wrap user code and capture exceptions at the call site).
 */
class ThreadPool
{
  public:
    /** @param threads worker count; clamped to at least one. */
    explicit ThreadPool(unsigned threads)
    {
        if (threads == 0)
            threads = 1;
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_)
            w.join();
    }

    /** Enqueue a job for execution on some worker. */
    void
    submit(std::function<void()> job)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            jobs_.push_back(std::move(job));
        }
        cv_.notify_one();
    }

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [this] { return stopping_ || !jobs_.empty(); });
                if (jobs_.empty())
                    return; // stopping and drained
                job = std::move(jobs_.front());
                jobs_.pop_front();
            }
            job();
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> jobs_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/** Host hardware concurrency, clamped to at least one. */
inline unsigned
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

/**
 * Run @p fn(i) for every i in [0, n), fanning across @p threads
 * workers. With threads <= 1 the calls run inline on the caller's
 * thread in index order (bit-identical control flow to a plain loop).
 * The first exception thrown by any call is rethrown to the caller
 * after all indices finish.
 */
template <typename Fn>
void
parallelFor(std::size_t n, Fn&& fn, unsigned threads)
{
    if (threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::vector<std::exception_ptr> errors(n);
    {
        ThreadPool pool(
            static_cast<unsigned>(std::min<std::size_t>(threads, n)));
        for (std::size_t i = 0; i < n; ++i) {
            pool.submit([&fn, &errors, i] {
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
    } // pool destructor drains the queue and joins
    for (auto& e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

} // namespace thynvm

#endif // THYNVM_COMMON_PARALLEL_HH
