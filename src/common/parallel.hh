/**
 * @file
 * Host-side threading primitives shared by the benchmark fan-out and
 * the sharded simulation kernel.
 *
 * Two kinds of host parallelism coexist in this codebase, and both are
 * built from the helpers here:
 *
 *  1. *Fan-out* of independent simulations (benchmark grid cells, fuzz
 *     campaign cases): each System owns a private EventQueue and every
 *     piece of mutable state it touches, so whole runs are distributed
 *     across a ThreadPool with no synchronization beyond job handoff
 *     (see bench_util.hh runGrid and fuzz::runCampaign).
 *
 *  2. *Sharded stepping* of one joint simulation (sim/shard.hh): each
 *     shard owns an EventQueue stepped by exactly one worker inside a
 *     conservative lookahead window; workers rendezvous on a barrier at
 *     window edges, where cross-shard mailboxes (SpscRing) are drained
 *     in a fixed order. The shard-worker contract is:
 *
 *       - between barriers, a worker touches only state owned by the
 *         shards assigned to it (components are tagged with a shard
 *         affinity, SimObject::shard());
 *       - cross-shard communication goes through SpscRing mailboxes
 *         posted during a window and drained after the next barrier;
 *       - the barrier provides the happens-before edge that lets the
 *         coordinator read every shard's queue state race-free.
 *
 * Both substrates share the same ThreadPool, so a process never needs
 * more than one set of worker threads. Event delivery order inside a
 * shard is independent of worker scheduling, which is what makes
 * simulation results byte-identical for any thread count.
 */

#ifndef THYNVM_COMMON_PARALLEL_HH
#define THYNVM_COMMON_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace thynvm {

/**
 * Fixed-size pool of worker threads draining a FIFO job queue.
 *
 * Jobs submitted before destruction are all executed; the destructor
 * blocks until the queue drains and every worker has joined. Jobs must
 * not throw (wrap user code and capture exceptions at the call site).
 */
class ThreadPool
{
  public:
    /** @param threads worker count; clamped to at least one. */
    explicit ThreadPool(unsigned threads)
    {
        if (threads == 0)
            threads = 1;
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_)
            w.join();
    }

    /** Enqueue a job for execution on some worker. */
    void
    submit(std::function<void()> job)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            jobs_.push_back(std::move(job));
        }
        cv_.notify_one();
    }

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock,
                         [this] { return stopping_ || !jobs_.empty(); });
                if (jobs_.empty())
                    return; // stopping and drained
                job = std::move(jobs_.front());
                jobs_.pop_front();
            }
            job();
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> jobs_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * One-shot countdown: arrive() decrements, wait() blocks until zero.
 *
 * The wait() return provides a happens-before edge from every arrive()
 * — the shard kernel relies on this to read worker-written queue state
 * race-free after a stepping round.
 */
class CountdownLatch
{
  public:
    explicit CountdownLatch(std::size_t count) : count_(count) {}

    CountdownLatch(const CountdownLatch&) = delete;
    CountdownLatch& operator=(const CountdownLatch&) = delete;

    /** Signal one arrival. */
    void
    arrive()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panic_if(count_ == 0, "latch arrive() past zero");
        if (--count_ == 0)
            cv_.notify_all();
    }

    /** Block until the count reaches zero. */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return count_ == 0; });
    }

  private:
    std::size_t count_;
    std::mutex mutex_;
    std::condition_variable cv_;
};

/**
 * Reusable rendezvous for a fixed party count. The generation counter
 * makes consecutive waits independent, so the same Barrier instance
 * serves every window edge of a sharded run.
 */
class Barrier
{
  public:
    explicit Barrier(std::size_t parties) : parties_(parties) {}

    Barrier(const Barrier&) = delete;
    Barrier& operator=(const Barrier&) = delete;

    /** Block until all parties have arrived at this generation. */
    void
    arriveAndWait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        const std::uint64_t gen = generation_;
        if (++arrived_ == parties_) {
            arrived_ = 0;
            ++generation_;
            cv_.notify_all();
            return;
        }
        cv_.wait(lock, [this, gen] { return generation_ != gen; });
    }

  private:
    std::size_t parties_;
    std::size_t arrived_ = 0;
    std::uint64_t generation_ = 0;
    std::mutex mutex_;
    std::condition_variable cv_;
};

/**
 * Sense-reversing rendezvous tuned for the sharded kernel's window
 * loop, where windows are microseconds apart on the host: parties spin
 * briefly on the generation word, yield for a while, and only then
 * fall back to blocking on a condition variable. Compared to Barrier
 * this avoids a mutex round-trip per arrival on the fast path, which
 * dominates when the kernel executes millions of tiny windows.
 *
 * arriveAndWait() is a full acquire/release fence between generations:
 * everything written by any party before arriving is visible to every
 * party after the barrier opens.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(std::uint32_t parties)
        : parties_(parties),
          // Spinning only helps when every party can be on a core at
          // once; oversubscribed, the spinner burns the quantum the
          // other parties need, so go straight to yield/block.
          spin_limit_(parties <= std::thread::hardware_concurrency()
                          ? 4096
                          : 0)
    {
    }

    SpinBarrier(const SpinBarrier&) = delete;
    SpinBarrier& operator=(const SpinBarrier&) = delete;

    /** Block until all parties have arrived at this generation. */
    void
    arriveAndWait()
    {
        const std::uint32_t gen =
            generation_.load(std::memory_order_relaxed);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            // Last arriver: open the next generation. The mutex pairs
            // with the blocking waiters' re-check so a notify cannot
            // slip between their generation load and cv wait.
            arrived_.store(0, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                generation_.store(gen + 1, std::memory_order_release);
            }
            cv_.notify_all();
            return;
        }
        for (int spin = 0; spin < spin_limit_; ++spin) {
            if (generation_.load(std::memory_order_acquire) != gen)
                return;
        }
        for (int pause = 0; pause < 64; ++pause) {
            if (generation_.load(std::memory_order_acquire) != gen)
                return;
            std::this_thread::yield();
        }
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this, gen] {
            return generation_.load(std::memory_order_acquire) != gen;
        });
    }

  private:
    const std::uint32_t parties_;
    const int spin_limit_;
    std::atomic<std::uint32_t> arrived_{0};
    std::atomic<std::uint32_t> generation_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
};

/**
 * Bounded single-producer/single-consumer ring buffer.
 *
 * Lock-free: the producer writes `tail`, the consumer writes `head`,
 * and each reads the other's index with acquire/release ordering. Used
 * as the cross-shard mailbox: the sending shard's worker is the only
 * producer, and the window-edge coordinator (after the barrier) is the
 * only consumer.
 */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity maximum queued items (rounded up to a power of 2). */
    explicit SpscRing(std::size_t capacity = 1024)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    /** Producer side: enqueue. @return false if the ring is full. */
    bool
    push(T&& item)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        if (tail - head > mask_)
            return false; // full
        slots_[tail & mask_] = std::move(item);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: dequeue into @p out. @return false if empty. */
    bool
    pop(T& out)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail)
            return false; // empty
        out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Items currently queued (exact only when producer/consumer idle). */
    std::size_t
    size() const
    {
        return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_acquire);
    }

    /** True if no items are queued. */
    bool empty() const { return size() == 0; }

    /** Capacity after power-of-two rounding. */
    std::size_t capacity() const { return mask_ + 1; }

  private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    std::atomic<std::size_t> head_{0};
    std::atomic<std::size_t> tail_{0};
};

/** Host hardware concurrency, clamped to at least one. */
inline unsigned
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

/**
 * Worker-thread count for a single sharded simulation: the
 * THYNVM_SIM_THREADS environment variable if set (>= 1), else 0
 * meaning "serial" — parallel stepping is strictly opt-in.
 */
inline unsigned
simThreadsFromEnv()
{
    if (const char* env = std::getenv("THYNVM_SIM_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return 0;
}

/**
 * Memory-channel count from THYNVM_CHANNELS, or 0 when unset/invalid
 * (callers treat 0 as "one channel"). Consulted by SystemConfig when
 * channels is left at its deferred default, mirroring
 * simThreadsFromEnv(); CI uses it to route whole test labels through
 * the multi-channel topology.
 */
inline unsigned
channelsFromEnv()
{
    if (const char* env = std::getenv("THYNVM_CHANNELS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return 0;
}

/**
 * Run @p fn(i) for every i in [0, n) on @p pool, blocking until all
 * indices finish. The first exception thrown by any call is rethrown
 * to the caller after all indices finish.
 */
template <typename Fn>
void
parallelForOn(ThreadPool& pool, std::size_t n, Fn&& fn)
{
    if (n == 0)
        return;
    std::vector<std::exception_ptr> errors(n);
    CountdownLatch latch(n);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&fn, &errors, &latch, i] {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            latch.arrive();
        });
    }
    latch.wait();
    for (auto& e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

/**
 * Run @p fn(i) for every i in [0, n), fanning across @p threads
 * workers. With threads <= 1 the calls run inline on the caller's
 * thread in index order (bit-identical control flow to a plain loop).
 * The first exception thrown by any call is rethrown to the caller
 * after all indices finish.
 */
template <typename Fn>
void
parallelFor(std::size_t n, Fn&& fn, unsigned threads)
{
    if (threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(
        static_cast<unsigned>(std::min<std::size_t>(threads, n)));
    parallelForOn(pool, n, std::forward<Fn>(fn));
}

} // namespace thynvm

#endif // THYNVM_COMMON_PARALLEL_HH
