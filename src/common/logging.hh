/**
 * @file
 * Status and error reporting helpers in the gem5 style.
 *
 * panic()  — an internal invariant was violated: a simulator bug. Aborts.
 * fatal()  — the simulation cannot continue due to a user/configuration
 *            error. Exits with an error code.
 * warn()   — something may not behave as the user expects.
 * inform() — normal operating status for the user.
 */

#ifndef THYNVM_COMMON_LOGGING_HH
#define THYNVM_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace thynvm {

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Thrown by fatal(): a user or configuration error. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace detail {

/** Renders a printf-style format string to a std::string. */
std::string vformat(const char* fmt, std::va_list args);

/** printf-style formatting returning std::string. */
std::string format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char* file, int line, const std::string&);
[[noreturn]] void fatalImpl(const char* file, int line, const std::string&);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

/** When true, warn()/inform() output is suppressed (used by tests). */
extern bool quiet;

} // namespace detail

/** Suppress or re-enable warn()/inform() output. */
void setQuietLogging(bool quiet);

} // namespace thynvm

/** Report a simulator bug and abort. */
#define panic(...) \
    ::thynvm::detail::panicImpl(__FILE__, __LINE__, \
                                ::thynvm::detail::format(__VA_ARGS__))

/** Report an unrecoverable user error and exit(1). */
#define fatal(...) \
    ::thynvm::detail::fatalImpl(__FILE__, __LINE__, \
                                ::thynvm::detail::format(__VA_ARGS__))

/** Report a suspicious condition; the simulation continues. */
#define warn(...) \
    ::thynvm::detail::warnImpl(::thynvm::detail::format(__VA_ARGS__))

/** Report normal status to the user. */
#define inform(...) \
    ::thynvm::detail::informImpl(::thynvm::detail::format(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) { \
            panic(__VA_ARGS__); \
        } \
    } while (0)

/** fatal() unless the condition is false. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) { \
            fatal(__VA_ARGS__); \
        } \
    } while (0)

#endif // THYNVM_COMMON_LOGGING_HH
