/**
 * @file
 * A small statistics package in the spirit of gem5's stats framework.
 *
 * Components own a stats::Group and register named statistics with it.
 * The harness walks groups to extract values and to render text dumps.
 */

#ifndef THYNVM_COMMON_STATS_HH
#define THYNVM_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace thynvm {
namespace stats {

/**
 * A monotonically updated scalar statistic (counter or gauge).
 */
class Scalar
{
  public:
    Scalar() = default;

    Scalar& operator++() { value_ += 1.0; return *this; }
    Scalar& operator+=(double v) { value_ += v; return *this; }
    Scalar& operator-=(double v) { value_ -= v; return *this; }
    Scalar& operator=(double v) { value_ = v; return *this; }

    /** Current value. */
    double value() const { return value_; }
    /** Reset to zero. */
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * A fixed-bucket histogram over [0, max) with uniform bucket width,
 * plus an overflow bucket; tracks count/sum/min/max.
 */
class Histogram
{
  public:
    /** Create a histogram of @p buckets buckets covering [0, max). */
    Histogram(std::size_t buckets = 16, double max = 1024.0)
        : buckets_(buckets, 0), width_(max / static_cast<double>(buckets))
    {
        panic_if(buckets == 0 || max <= 0.0, "bad histogram shape");
    }

    /** Record one sample. */
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
        auto idx = static_cast<std::size_t>(v / width_);
        if (v < 0 || idx >= buckets_.size())
            ++overflow_;
        else
            ++buckets_[idx];
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minValue() const { return count_ ? min_ : 0.0; }
    double maxValue() const { return count_ ? max_ : 0.0; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t>& buckets() const { return buckets_; }
    double bucketWidth() const { return width_; }

    /** Reset all samples. */
    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        count_ = overflow_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    double width_;
    std::uint64_t count_ = 0;
    std::uint64_t overflow_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of statistics belonging to one component.
 *
 * Pointers to registered statistics must outlive the group; in practice
 * both are members of the owning component.
 */
class Group
{
  public:
    /** @param name hierarchical prefix, e.g. "system.mem_ctrl". */
    explicit Group(std::string name) : name_(std::move(name)) {}

    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    /** Register a scalar under @p stat_name. */
    void
    addScalar(const std::string& stat_name, Scalar* s,
              const std::string& desc = "")
    {
        scalars_.emplace(stat_name, Entry<Scalar>{s, desc});
    }

    /** Register a histogram under @p stat_name. */
    void
    addHistogram(const std::string& stat_name, Histogram* h,
                 const std::string& desc = "")
    {
        histograms_.emplace(stat_name, Entry<Histogram>{h, desc});
    }

    /** Register a derived value computed at dump time. */
    void
    addFormula(const std::string& stat_name, std::function<double()> fn,
               const std::string& desc = "")
    {
        formulas_.emplace(stat_name, FormulaEntry{std::move(fn), desc});
    }

    /** Group name (prefix). */
    const std::string& name() const { return name_; }

    /**
     * Value of a named scalar or formula.
     * Panics if the name is unknown.
     */
    double
    value(const std::string& stat_name) const
    {
        auto sit = scalars_.find(stat_name);
        if (sit != scalars_.end())
            return sit->second.stat->value();
        auto fit = formulas_.find(stat_name);
        if (fit != formulas_.end())
            return fit->second.fn();
        panic("unknown stat '%s.%s'", name_.c_str(), stat_name.c_str());
    }

    /** True if @p stat_name names a scalar or formula in this group. */
    bool
    has(const std::string& stat_name) const
    {
        return scalars_.count(stat_name) > 0 ||
               formulas_.count(stat_name) > 0;
    }

    /** All scalar and formula values, keyed by stat name. */
    std::map<std::string, double>
    values() const
    {
        std::map<std::string, double> out;
        for (const auto& [k, e] : scalars_)
            out[k] = e.stat->value();
        for (const auto& [k, e] : formulas_)
            out[k] = e.fn();
        return out;
    }

    /** Reset all registered scalars and histograms (formulas recompute). */
    void
    reset()
    {
        for (auto& [k, e] : scalars_)
            e.stat->reset();
        for (auto& [k, e] : histograms_)
            e.stat->reset();
    }

    /** Render a human-readable dump of this group. */
    void dump(std::ostream& os) const;

  private:
    template <typename T>
    struct Entry
    {
        T* stat;
        std::string desc;
    };

    struct FormulaEntry
    {
        std::function<double()> fn;
        std::string desc;
    };

    std::string name_;
    std::map<std::string, Entry<Scalar>> scalars_;
    std::map<std::string, Entry<Histogram>> histograms_;
    std::map<std::string, FormulaEntry> formulas_;
};

} // namespace stats
} // namespace thynvm

#endif // THYNVM_COMMON_STATS_HH
