/**
 * @file
 * Implementation of the logging helpers.
 */

#include "common/logging.hh"

#include <cstdio>
#include <vector>

namespace thynvm {
namespace detail {

bool quiet = false;

std::string
vformat(const char* fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

std::string
format(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string result = vformat(fmt, args);
    va_end(args);
    return result;
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::string full =
        format("panic: %s (%s:%d)", msg.c_str(), file, line);
    std::fprintf(stderr, "%s\n", full.c_str());
    throw PanicError(full);
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::string full =
        format("fatal: %s (%s:%d)", msg.c_str(), file, line);
    std::fprintf(stderr, "%s\n", full.c_str());
    throw FatalError(full);
}

void
warnImpl(const std::string& msg)
{
    if (!quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    if (!quiet)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

void
setQuietLogging(bool quiet)
{
    detail::quiet = quiet;
}

} // namespace thynvm
