/**
 * @file
 * Fundamental scalar types and unit constants shared across the simulator.
 *
 * The simulator counts time in integer ticks of one picosecond, following
 * the gem5 convention. All device timing parameters are expressed in
 * nanoseconds in configuration structs and converted to ticks internally.
 */

#ifndef THYNVM_COMMON_TYPES_HH
#define THYNVM_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace thynvm {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** A memory address (physical or hardware, depending on context). */
using Addr = std::uint64_t;

/** CPU cycle count. */
using Cycles = std::uint64_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid address. */
constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** One picosecond, the base tick unit. */
constexpr Tick kPicosecond = 1;
/** One nanosecond in ticks. */
constexpr Tick kNanosecond = 1000 * kPicosecond;
/** One microsecond in ticks. */
constexpr Tick kMicrosecond = 1000 * kNanosecond;
/** One millisecond in ticks. */
constexpr Tick kMillisecond = 1000 * kMicrosecond;
/** One second in ticks. */
constexpr Tick kSecond = 1000 * kMillisecond;

/** Cache block (line) size in bytes; fixed at 64 as in the paper. */
constexpr std::size_t kBlockSize = 64;
/** Memory page size in bytes; fixed at 4096 as in the paper. */
constexpr std::size_t kPageSize = 4096;
/** Number of cache blocks per page. */
constexpr std::size_t kBlocksPerPage = kPageSize / kBlockSize;

/** Round @p addr down to the containing block boundary. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kBlockSize - 1);
}

/** Round @p addr down to the containing page boundary. */
constexpr Addr
pageAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kPageSize - 1);
}

/** Index of the block containing @p addr, counted from address zero. */
constexpr std::uint64_t
blockIndex(Addr addr)
{
    return addr / kBlockSize;
}

/** Index of the page containing @p addr, counted from address zero. */
constexpr std::uint64_t
pageIndex(Addr addr)
{
    return addr / kPageSize;
}

/** Index of the block containing @p addr within its page. */
constexpr std::uint64_t
blockInPage(Addr addr)
{
    return (addr % kPageSize) / kBlockSize;
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** True if @p value is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

} // namespace thynvm

#endif // THYNVM_COMMON_TYPES_HH
