/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * A small, fast xoshiro256** generator seeded via splitmix64. Simulation
 * results must be reproducible across runs, so all randomness in the
 * repository flows through this class with explicit seeds.
 */

#ifndef THYNVM_COMMON_RNG_HH
#define THYNVM_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace thynvm {

/**
 * Deterministic 64-bit PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct with the given @p seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        // Seed the state with splitmix64 as recommended by the authors.
        std::uint64_t x = seed;
        for (auto& word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the bounds used in this project (\<= 2^40).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi], inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        panic_if(lo > hi, "Rng::range: lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t& x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

/**
 * Zipfian rank generator in the rejection-free closed form of Gray et
 * al. ("Quickly generating billion-record synthetic databases",
 * SIGMOD'94), as popularized by YCSB. Rank 0 is the most popular item;
 * rank r is drawn with probability proportional to 1/(r+1)^theta.
 *
 * Construction is O(n) (the harmonic-like normalizer zeta(n, theta) is
 * summed once); each draw is O(1) and consumes exactly one value from
 * the supplied Rng. The generator itself is stateless across draws, so
 * workloads can snapshot/restore just their Rng and replay the same
 * key sequence — the property KvWorkload's checkpointed generator
 * state relies on.
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n item count (ranks 0..n-1); must be >= 2.
     * @param theta skew in (0, 1); 0.99 is the YCSB default.
     */
    explicit ZipfianGenerator(std::uint64_t n, double theta = 0.99)
        : n_(n), theta_(theta)
    {
        panic_if(n < 2, "ZipfianGenerator needs at least 2 items");
        panic_if(theta <= 0.0 || theta >= 1.0,
                 "zipfian theta must be in (0, 1)");
        for (std::uint64_t i = 1; i <= n_; ++i)
            zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
        const double zeta2 =
            1.0 + 1.0 / std::pow(2.0, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                               1.0 - theta_)) /
               (1.0 - zeta2 / zetan_);
        half_pow_theta_ = std::pow(0.5, theta_);
    }

    std::uint64_t itemCount() const { return n_; }
    double theta() const { return theta_; }

    /** Analytic probability of rank @p r (for tests). */
    double
    probability(std::uint64_t r) const
    {
        return 1.0 /
               (std::pow(static_cast<double>(r + 1), theta_) * zetan_);
    }

    /** Draw a rank in [0, n): 0 is most popular. */
    std::uint64_t
    next(Rng& rng) const
    {
        const double u = rng.uniform();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + half_pow_theta_)
            return 1;
        const std::uint64_t r = static_cast<std::uint64_t>(
            static_cast<double>(n_) *
            std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return r >= n_ ? n_ - 1 : r;
    }

    /**
     * Draw a rank and scatter it over [0, n) with an FNV-1a hash, so
     * the popular items are spread across the key space instead of
     * clustered at the low keys (the YCSB "scrambled zipfian" idiom).
     */
    std::uint64_t
    nextScrambled(Rng& rng) const
    {
        return fnv64(next(rng)) % n_;
    }

  private:
    static std::uint64_t
    fnv64(std::uint64_t x)
    {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (int i = 0; i < 8; ++i) {
            h ^= (x >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
        return h;
    }

    std::uint64_t n_;
    double theta_;
    double zetan_ = 0.0;
    double alpha_ = 0.0;
    double eta_ = 0.0;
    double half_pow_theta_ = 0.0;
};

} // namespace thynvm

#endif // THYNVM_COMMON_RNG_HH
