/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * A small, fast xoshiro256** generator seeded via splitmix64. Simulation
 * results must be reproducible across runs, so all randomness in the
 * repository flows through this class with explicit seeds.
 */

#ifndef THYNVM_COMMON_RNG_HH
#define THYNVM_COMMON_RNG_HH

#include <cstdint>

#include "common/logging.hh"

namespace thynvm {

/**
 * Deterministic 64-bit PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Construct with the given @p seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        // Seed the state with splitmix64 as recommended by the authors.
        std::uint64_t x = seed;
        for (auto& word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // the bounds used in this project (\<= 2^40).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi], inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        panic_if(lo > hi, "Rng::range: lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t& x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace thynvm

#endif // THYNVM_COMMON_RNG_HH
