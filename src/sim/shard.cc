/**
 * @file
 * ShardedKernel implementation.
 *
 * Soundness of the EOT windows (DESIGN.md §8 has the full argument):
 *
 *  - busy(s) = next-event-tick(s) + min-outbound-lookahead(s) is a
 *    lower bound on the delivery tick of anything shard s sends by
 *    *executing queued work*: a send from an event at tick p >= next
 *    arrives no earlier than p + link-lookahead >= busy(s).
 *
 *  - A shard that cannot execute can still *relay*: a message landing
 *    at tick m can make it send with delivery >= m + lookahead. The
 *    fixpoint eot(s) = min(busy(s), window(s) + min-out(s)) with
 *    window(x) = min over in-links of eot(sender) accounts for every
 *    such chain; iterating downward from +infinity converges to the
 *    greatest (widest) sound solution because each pass only replaces
 *    a value with a shorter relay chain's bound, and chains with
 *    repeated shards are never shorter (lookaheads are positive).
 *
 *  - Sole actor: when exactly one shard can execute, no message can
 *    reach any shard this round except ones the sole actor itself
 *    sends — and posting retreats its own live bound to the delivery
 *    tick, so it never executes past the earliest response its send
 *    can provoke. Its window is therefore unbounded up to the barrier
 *    edge. This is the case that collapses the window count when only
 *    one side of a link topology has work (a core hitting its caches
 *    while the memory channels idle, a channel draining a request).
 *
 *  - Retreat keeps multi-post rounds sound in general: after posting
 *    at tick p with delivery when = p + L, the poster executes only
 *    events below when, and any response travels two hops (>= 2L), so
 *    it lands at or after when + L > every tick the poster reached.
 *
 * Both the post() admission check (against the *target's* window) and
 * EventQueue::scheduleMessage's delivery-in-the-past check stay armed
 * in EOT mode: a bound that was not conservative — e.g. a lying EotFn
 * override — panics deterministically instead of corrupting order.
 */

#include "sim/shard.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

namespace thynvm {

namespace {

/** Saturating tick addition (kMaxTick is +infinity). */
Tick
satAdd(Tick a, Tick b)
{
    return (a == kMaxTick || b == kMaxTick || a > kMaxTick - b) ? kMaxTick
                                                                : a + b;
}

} // namespace

ShardedKernel::ShardedKernel()
    : eot_(std::getenv("THYNVM_NO_EOT") == nullptr)
{
}

unsigned
ShardedKernel::addShard(std::string name, EventQueue& eq, StepFn step)
{
    Shard s;
    s.name = std::move(name);
    s.eq = &eq;
    s.step = std::move(step);
    shards_.push_back(std::move(s));
    if (!links_.empty())
        rebuildLinkIndex();
    return static_cast<unsigned>(shards_.size() - 1);
}

unsigned
ShardedKernel::addShard(std::string name, EventQueue& eq)
{
    EventQueue* q = &eq;
    return addShard(std::move(name), eq, [q](ShardWindow win) {
        while (!q->empty() && q->nextTick() < win.end())
            q->step();
        return !q->empty();
    });
}

void
ShardedKernel::rebuildLinkIndex()
{
    stride_ = shards_.size();
    link_index_.assign(stride_ * stride_, -1);
    for (std::size_t i = 0; i < links_.size(); ++i) {
        const Link& l = links_[i];
        std::int32_t& slot = link_index_[l.from * stride_ + l.to];
        panic_if(slot >= 0, "duplicate link %u->%u declared", l.from, l.to);
        slot = static_cast<std::int32_t>(i);
    }
}

void
ShardedKernel::link(unsigned from, unsigned to, Tick lookahead,
                    std::size_t capacity)
{
    panic_if(from >= shards_.size() || to >= shards_.size(),
             "link endpoint out of range");
    panic_if(from == to, "a shard cannot link to itself");
    panic_if(lookahead == 0,
             "zero-lookahead links admit no conservative window");
    Link l;
    l.from = from;
    l.to = to;
    l.lookahead = lookahead;
    l.mailbox = std::make_unique<SpscRing<Message>>(capacity);
    links_.push_back(std::move(l));
    rebuildLinkIndex();
}

void
ShardedKernel::setEotFn(unsigned shard, EotFn fn)
{
    panic_if(shard >= shards_.size(), "EOT override for unknown shard %u",
             shard);
    shards_[shard].eot_fn = std::move(fn);
}

void
ShardedKernel::post(unsigned from, unsigned to, Tick when,
                    std::function<void()> fn)
{
    const std::int32_t lid =
        (from < stride_ && to < stride_)
            ? link_index_[from * stride_ + to]
            : -1;
    panic_if(lid < 0, "post over undeclared link %u->%u", from, to);
    Link& l = links_[static_cast<std::size_t>(lid)];

    panic_if(when < shards_[to].window_end,
             "conservative violation: message for tick %llu posted "
             "inside window ending at %llu",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(shards_[to].window_end));

    Message m;
    m.when = when;
    // Deterministic delivery order: band the message above every
    // same-tick local event and rank it by (link id, per-link FIFO
    // position) — a pure function of simulated state, independent of
    // the window schedule and the worker that drains it.
    panic_if(l.fifo >> 40,
             "link %u->%u exhausted its 2^40 message order keys", from, to);
    m.key = EventQueue::kMessageOrderBit |
            (static_cast<std::uint64_t>(lid) << 40) | l.fifo++;
    m.fn = std::move(fn);
    panic_if(!l.mailbox->push(std::move(m)),
             "mailbox %u->%u overflow (capacity %zu)", from, to,
             l.mailbox->capacity());

    if (!l.dirty) {
        l.dirty = true;
        shards_[from].posted.push_back(static_cast<unsigned>(lid));
    }

    // Retreat the poster's own live bound: it must not execute past
    // the delivery tick, so any response provoked by this message
    // (two hops away, >= when + lookahead) stays conservative.
    Shard& src = shards_[from];
    if (when < src.dyn_end)
        src.dyn_end = when;
}

void
ShardedKernel::prepare()
{
    min_lookahead_ = kMaxTick;
    for (auto& s : shards_) {
        s.min_out = kMaxTick;
        s.in.clear();
        s.posted.clear();
        s.active = false;
        s.window_end = kMaxTick;
        s.dyn_end = kMaxTick;
    }
    for (auto& l : links_) {
        l.dirty = false;
        min_lookahead_ = std::min(min_lookahead_, l.lookahead);
        shards_[l.from].min_out =
            std::min(shards_[l.from].min_out, l.lookahead);
        shards_[l.to].in.push_back(l.from);
    }
    heap_.clear();
    credited_.assign(shards_.size(), kMaxTick);
    if (!eot_) {
        for (unsigned i = 0; i < shards_.size(); ++i) {
            const Shard& s = shards_[i];
            if (s.runnable && !s.eq->empty()) {
                credited_[i] = s.eq->nextTick();
                heap_.push_back({credited_[i], i});
            }
        }
        std::make_heap(heap_.begin(), heap_.end(),
                       [](const HeapEntry& a, const HeapEntry& b) {
                           return a > b;
                       });
    }
}

Tick
ShardedKernel::earliestPending()
{
    const auto after = [](const HeapEntry& a, const HeapEntry& b) {
        return a > b;
    };
    // Lazy validation: a live entry (tick == credited_[shard]) is a
    // lower bound on its shard's next-event tick (stepping only raises
    // it; an earlier delivery supersedes the entry via credited_).
    // Pop superseded and stale entries, reinserting the live tick,
    // until the top is exact.
    while (!heap_.empty()) {
        const HeapEntry top = heap_.front();
        if (top.tick == credited_[top.shard]) {
            const Shard& s = shards_[top.shard];
            const Tick live = (s.runnable && !s.eq->empty())
                                  ? s.eq->nextTick()
                                  : kMaxTick;
            if (live == top.tick)
                return live;
            credited_[top.shard] = live;
            std::pop_heap(heap_.begin(), heap_.end(), after);
            heap_.pop_back();
            if (live != kMaxTick) {
                heap_.push_back({live, top.shard});
                std::push_heap(heap_.begin(), heap_.end(), after);
            }
        } else {
            // Superseded duplicate: a lower credited entry for this
            // shard is (or was) elsewhere in the heap.
            std::pop_heap(heap_.begin(), heap_.end(), after);
            heap_.pop_back();
        }
    }
    return kMaxTick;
}

std::size_t
ShardedKernel::planWindows()
{
    std::size_t n_active = 0;

    if (eot_) {
        // Round inputs: who can execute, and the earliest tick their
        // execution could deliver a message at.
        unsigned busy_count = 0;
        unsigned busy_shard = 0;
        for (unsigned i = 0; i < shards_.size(); ++i) {
            Shard& s = shards_[i];
            s.next =
                (s.runnable && !s.eq->empty()) ? s.eq->nextTick() : kMaxTick;
            if (s.next != kMaxTick) {
                ++busy_count;
                busy_shard = i;
            }
            s.busy = s.next == kMaxTick ? kMaxTick
                     : s.eot_fn         ? s.eot_fn()
                                        : satAdd(s.next, s.min_out);
            s.eot = s.busy;
        }
        if (busy_count == 0)
            return 0;

        // Greatest fixpoint of
        //   window(x) = min over in-links of eot(sender)
        //   eot(s)    = min(busy(s), window(s) + min_out(s))
        // by monotone descent from +infinity; converges because each
        // pass can only substitute a shorter relay chain's bound and
        // positive lookaheads make cyclic chains non-improving.
        bool changed = true;
        while (changed) {
            changed = false;
            for (auto& x : shards_) {
                Tick w = kMaxTick;
                for (unsigned src : x.in)
                    w = std::min(w, shards_[src].eot);
                x.window_end = w;
            }
            for (auto& s : shards_) {
                const Tick e =
                    std::min(s.busy, satAdd(s.window_end, s.min_out));
                if (e != s.eot) {
                    s.eot = e;
                    changed = true;
                }
            }
        }

        // Sole actor: nobody else can execute, so nothing can be sent
        // to anybody — the one busy shard runs to the barrier edge.
        if (busy_count == 1)
            shards_[busy_shard].window_end = kMaxTick;

        for (auto& s : shards_) {
            if (barrier_period_ != 0 && s.next != kMaxTick) {
                const Tick edge =
                    (s.next / barrier_period_ + 1) * barrier_period_;
                s.window_end = std::min(s.window_end, edge);
            }
            s.dyn_end = s.window_end;
            s.active = s.next < s.window_end;
            if (s.active)
                ++n_active;
        }
        return n_active;
    }

    // Fixed-lookahead policy (THYNVM_NO_EOT): one global window
    // [t, t + min-lookahead) clamped to the barrier edge, exactly the
    // pre-EOT kernel.
    const Tick t = earliestPending();
    if (t == kMaxTick)
        return 0;
    Tick wend = satAdd(t, min_lookahead_);
    if (barrier_period_ != 0) {
        const Tick edge = (t / barrier_period_ + 1) * barrier_period_;
        wend = std::min(wend, edge);
    }
    for (auto& s : shards_) {
        s.window_end = wend;
        s.dyn_end = wend;
        s.active = s.runnable && !s.eq->empty() && s.eq->nextTick() < wend;
        if (s.active)
            ++n_active;
    }
    return n_active;
}

void
ShardedKernel::drainPosted()
{
    for (auto& s : shards_) {
        if (s.posted.empty())
            continue;
        for (unsigned lid : s.posted) {
            Link& l = links_[lid];
            l.dirty = false;
            Shard& target = shards_[l.to];
            Message m;
            while (l.mailbox->pop(m)) {
                target.eq->scheduleMessage(m.when, m.key, std::move(m.fn));
                target.runnable = true;
                if (!eot_ && m.when < credited_[l.to]) {
                    // Only a strictly earlier delivery needs a new
                    // entry; the existing credited bound stays valid
                    // otherwise. Keeps the heap O(shards).
                    credited_[l.to] = m.when;
                    heap_.push_back({m.when, l.to});
                    std::push_heap(heap_.begin(), heap_.end(),
                                   [](const HeapEntry& a,
                                      const HeapEntry& b) { return a > b; });
                }
                ++messages_;
            }
        }
        s.posted.clear();
    }
}

void
ShardedKernel::stepSlice(unsigned party)
{
    for (std::size_t i = party; i < shards_.size(); i += parties_) {
        Shard& s = shards_[i];
        if (s.active)
            s.runnable = s.step(ShardWindow(&s.dyn_end));
    }
}

bool
ShardedKernel::round()
{
    const std::size_t n_active = planWindows();
    if (n_active == 0)
        return false;
    ++windows_;

    if (parties_ == 1 || n_active == 1) {
        // Serial elision: with at most one shard to step there is
        // nothing to fan out; the workers stay parked in the release
        // barrier and the coordinator steps inline.
        for (auto& s : shards_) {
            if (s.active)
                s.runnable = s.step(ShardWindow(&s.dyn_end));
        }
    } else {
        release_->arriveAndWait();
        try {
            stepSlice(0);
        } catch (...) {
            errors_[0] = std::current_exception();
        }
        join_->arriveAndWait();
        for (auto& e : errors_) {
            if (e) {
                std::exception_ptr ep = e;
                e = nullptr;
                std::rethrow_exception(ep);
            }
        }
    }

    drainPosted();
    return true;
}

void
ShardedKernel::workerLoop(unsigned party)
{
    for (;;) {
        release_->arriveAndWait();
        if (stop_)
            return;
        try {
            stepSlice(party);
        } catch (...) {
            errors_[party] = std::current_exception();
        }
        join_->arriveAndWait();
    }
}

Tick
ShardedKernel::run(unsigned threads, ThreadPool* pool)
{
    windows_ = 0;
    messages_ = 0;
    if (shards_.empty())
        return 0;
    prepare();

    unsigned parties = std::min<unsigned>(std::max(threads, 1u),
                                          shardCount());
    if (pool != nullptr)
        parties = std::min(parties, pool->size() + 1);
    parties_ = parties;

    if (parties <= 1) {
        while (round()) {
        }
    } else {
        SpinBarrier release(parties);
        SpinBarrier join(parties);
        release_ = &release;
        join_ = &join;
        stop_ = false;
        errors_.assign(parties, nullptr);

        std::vector<std::thread> own;
        CountdownLatch done(parties - 1);
        for (unsigned p = 1; p < parties; ++p) {
            auto body = [this, p, &done] {
                workerLoop(p);
                done.arrive();
            };
            if (pool != nullptr)
                pool->submit(body);
            else
                own.emplace_back(body);
        }

        std::exception_ptr err;
        try {
            while (round()) {
            }
        } catch (...) {
            err = std::current_exception();
        }
        stop_ = true;
        release.arriveAndWait();
        done.wait();
        for (auto& t : own)
            t.join();
        release_ = nullptr;
        join_ = nullptr;
        parties_ = 1;
        if (!err) {
            for (auto& e : errors_) {
                if (e) {
                    err = e;
                    break;
                }
            }
        }
        errors_.clear();
        if (err)
            std::rethrow_exception(err);
    }

    // Close every admission window again so a post() outside run()
    // panics (when < kMaxTick), as before.
    for (auto& s : shards_) {
        s.window_end = kMaxTick;
        s.dyn_end = kMaxTick;
        s.active = false;
    }

    Tick latest = 0;
    for (const auto& s : shards_)
        latest = std::max(latest, s.eq->now());
    return latest;
}

} // namespace thynvm
