/**
 * @file
 * ShardedKernel implementation.
 */

#include "sim/shard.hh"

#include <algorithm>

namespace thynvm {

unsigned
ShardedKernel::addShard(std::string name, EventQueue& eq, StepFn step)
{
    Shard s;
    s.name = std::move(name);
    s.eq = &eq;
    s.step = std::move(step);
    shards_.push_back(std::move(s));
    return static_cast<unsigned>(shards_.size() - 1);
}

unsigned
ShardedKernel::addShard(std::string name, EventQueue& eq)
{
    EventQueue* q = &eq;
    return addShard(std::move(name), eq, [q](Tick window_end) {
        while (!q->empty() && q->nextTick() < window_end)
            q->step();
        return !q->empty();
    });
}

void
ShardedKernel::link(unsigned from, unsigned to, Tick lookahead,
                    std::size_t capacity)
{
    panic_if(from >= shards_.size() || to >= shards_.size(),
             "link endpoint out of range");
    panic_if(from == to, "a shard cannot link to itself");
    panic_if(lookahead == 0,
             "zero-lookahead links admit no conservative window");
    Link l;
    l.from = from;
    l.to = to;
    l.lookahead = lookahead;
    l.mailbox = std::make_unique<SpscRing<Message>>(capacity);
    links_.push_back(std::move(l));
}

void
ShardedKernel::post(unsigned from, unsigned to, Tick when,
                    std::function<void()> fn)
{
    for (auto& l : links_) {
        if (l.from != from || l.to != to)
            continue;
        panic_if(when < window_end_,
                 "conservative violation: message for tick %llu posted "
                 "inside window ending at %llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(window_end_));
        Message m;
        m.when = when;
        m.fn = std::move(fn);
        panic_if(!l.mailbox->push(std::move(m)),
                 "mailbox %u->%u overflow (capacity %zu)", from, to,
                 l.mailbox->capacity());
        return;
    }
    panic("post over undeclared link %u->%u", from, to);
}

Tick
ShardedKernel::earliestPending() const
{
    Tick t = kMaxTick;
    for (const auto& s : shards_) {
        if (s.runnable)
            t = std::min(t, s.eq->nextTick());
    }
    return t;
}

void
ShardedKernel::drainMailboxes()
{
    for (auto& l : links_) {
        Message m;
        while (l.mailbox->pop(m)) {
            Shard& target = shards_[l.to];
            // std::function captures fit EventQueue's inline callable.
            target.eq->schedule(m.when,
                                [fn = std::move(m.fn)] { fn(); });
            target.runnable = true;
            ++messages_;
        }
    }
}

Tick
ShardedKernel::run(unsigned threads, ThreadPool* pool)
{
    windows_ = 0;
    messages_ = 0;

    // Window size: the smallest declared cross-shard lookahead.
    Tick lookahead = kMaxTick;
    for (const auto& l : links_)
        lookahead = std::min(lookahead, l.lookahead);

    std::unique_ptr<ThreadPool> owned;
    if (threads > 1 && pool == nullptr) {
        owned = std::make_unique<ThreadPool>(
            std::min<unsigned>(threads, shardCount()));
        pool = owned.get();
    }

    for (;;) {
        const Tick t = earliestPending();
        if (t == kMaxTick)
            break;

        // Window end: lookahead-limited, clamped to the next global
        // barrier-period edge (checkpoint-epoch boundary).
        Tick wend = lookahead == kMaxTick || t > kMaxTick - lookahead
                        ? kMaxTick
                        : t + lookahead;
        if (barrier_period_ != 0) {
            const Tick edge = (t / barrier_period_ + 1) * barrier_period_;
            wend = std::min(wend, edge);
        }
        window_end_ = wend;

        // Step every shard with work below the window edge. Each shard
        // is touched by exactly one worker; the latch inside
        // parallelForOn is the barrier that makes worker-written shard
        // state visible to this coordinator thread.
        if (threads <= 1) {
            for (auto& s : shards_) {
                if (s.runnable && s.eq->nextTick() < wend)
                    s.runnable = s.step(wend);
            }
        } else {
            parallelForOn(*pool, shards_.size(), [this, wend](size_t i) {
                Shard& s = shards_[i];
                if (s.runnable && s.eq->nextTick() < wend)
                    s.runnable = s.step(wend);
            });
        }
        ++windows_;

        // Window edge: deliver cross-shard traffic in fixed link order.
        window_end_ = kMaxTick;
        drainMailboxes();
    }

    Tick latest = 0;
    for (const auto& s : shards_)
        latest = std::max(latest, s.eq->now());
    return latest;
}

} // namespace thynvm
