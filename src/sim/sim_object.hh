/**
 * @file
 * Base class for simulated components.
 */

#ifndef THYNVM_SIM_SIM_OBJECT_HH
#define THYNVM_SIM_SIM_OBJECT_HH

#include <string>

#include "common/stats.hh"
#include "sim/eventq.hh"

namespace thynvm {

/**
 * A named component attached to an event queue with its own stats group.
 */
class SimObject
{
  public:
    /**
     * @param eq the event queue this component schedules on.
     * @param name hierarchical instance name, e.g. "system.nvm".
     */
    SimObject(EventQueue& eq, std::string name)
        : eventq_(eq), name_(std::move(name)), stats_(name_)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject&) = delete;
    SimObject& operator=(const SimObject&) = delete;

    /** Instance name. */
    const std::string& name() const { return name_; }
    /** Statistics owned by this component. */
    stats::Group& stats() { return stats_; }
    const stats::Group& stats() const { return stats_; }
    /** The event queue this component runs on. */
    EventQueue& eventq() { return eventq_; }
    /** Current simulated time. */
    Tick curTick() const { return eventq_.now(); }

    /**
     * Shard affinity: which event-kernel shard this component's state
     * belongs to (sim/shard.hh). All state a component touches from
     * its events must live on the same shard, because only that
     * shard's worker may run between window barriers. Components that
     * own sub-components override this to propagate the tag.
     */
    virtual void setShard(unsigned shard) { shard_ = shard; }
    /** Shard this component is stepped by (0 until assigned). */
    unsigned shard() const { return shard_; }

  protected:
    EventQueue& eventq_;

  private:
    std::string name_;
    stats::Group stats_;
    unsigned shard_ = 0;
};

} // namespace thynvm

#endif // THYNVM_SIM_SIM_OBJECT_HH
