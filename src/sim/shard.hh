/**
 * @file
 * Deterministic sharded event kernel (DESIGN.md §8).
 *
 * A ShardedKernel steps several EventQueues — shards — concurrently
 * while guaranteeing that every shard executes exactly the event
 * sequence it would execute under serial, single-queue simulation.
 * Simulation statistics are therefore byte-identical for any worker
 * thread count, including one.
 *
 * The scheme is classic conservative parallel discrete-event
 * simulation:
 *
 *  - Time is cut into windows [T, T+W). W is the minimum *lookahead*
 *    over all declared cross-shard links — the smallest simulated
 *    latency any message from one shard to another can have (for the
 *    memory system, the minimum cross-shard device latency). Within a
 *    window, each shard's queue is stepped by exactly one worker with
 *    no synchronization at all: no event another shard could send can
 *    land inside the window currently being stepped.
 *
 *  - Cross-shard traffic is posted into bounded SPSC mailboxes, one
 *    per (from, to) link. At the window edge every worker rendezvous
 *    on a barrier; the coordinator then drains all mailboxes in fixed
 *    (from, to) order into the target queues before opening the next
 *    window. Delivery order — and therefore every downstream stat —
 *    is a pure function of simulated time, never of host scheduling.
 *
 *  - Window edges are additionally clamped to a *barrier period* so
 *    that globally coordinated phases (the checkpoint-epoch
 *    boundaries of the ThyNVM protocol) are global barriers: no shard
 *    enters epoch k+1 until every shard has finished epoch k.
 *
 * Shards with no links between them (today: independent Systems
 * co-scheduled by harness/shard_group.hh) have infinite lookahead and
 * synchronize only at barrier-period edges.
 */

#ifndef THYNVM_SIM_SHARD_HH
#define THYNVM_SIM_SHARD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "sim/eventq.hh"

namespace thynvm {

/**
 * Conservative windowed scheduler over a set of event-queue shards.
 */
class ShardedKernel
{
  public:
    /**
     * Steps one shard inside a window: run shard-local work with tick
     * strictly below @p window_end. Returns true if the shard may
     * still make progress (its queue is non-empty and its run
     * condition still holds).
     */
    using StepFn = std::function<bool(Tick window_end)>;

    ShardedKernel() = default;
    ShardedKernel(const ShardedKernel&) = delete;
    ShardedKernel& operator=(const ShardedKernel&) = delete;

    /**
     * Register a shard stepped via @p step; @p eq is the shard's queue
     * (used for next-event-time queries and mailbox delivery).
     * @return the shard id (dense, starting at 0).
     */
    unsigned addShard(std::string name, EventQueue& eq, StepFn step);

    /**
     * Register a plain queue shard: stepped until its queue holds no
     * event below the window end.
     */
    unsigned addShard(std::string name, EventQueue& eq);

    /**
     * Declare a cross-shard link with conservative lookahead: every
     * message posted from @p from to @p to must be delivered at least
     * @p lookahead ticks after the tick it was posted at. The global
     * window size is the minimum lookahead over all links.
     *
     * @param capacity mailbox bound (messages posted but not yet
     *        drained). Must cover the worst same-window burst: a
     *        core-to-channel link sees a whole cache-flush wave of
     *        writebacks in one window, so channel links are sized from
     *        the cache capacity rather than the default.
     */
    void link(unsigned from, unsigned to, Tick lookahead,
              std::size_t capacity = 4096);

    /**
     * Clamp window edges to multiples of @p period (0 disables).
     * Checkpoint-epoch boundaries pass a period here so that epoch
     * transitions are global barriers across shards.
     */
    void setBarrierPeriod(Tick period) { barrier_period_ = period; }

    /**
     * Post cross-shard work: run @p fn on shard @p to at tick @p when.
     * Must be called from the worker currently stepping shard @p from
     * (typically from inside one of its events), over a declared link,
     * with @p when no earlier than the end of the current window — the
     * conservative rule; violating it panics, because the target shard
     * may already have stepped past @p when.
     */
    void post(unsigned from, unsigned to, Tick when,
              std::function<void()> fn);

    /** End of the window currently being stepped (kMaxTick outside run). */
    Tick windowEnd() const { return window_end_; }

    /**
     * Run all shards to completion: windows advance until every shard
     * reports no more progress and all mailboxes are empty.
     *
     * @param threads worker count. 1 steps shards inline on the
     *        calling thread in shard-id order — the serial reference
     *        schedule. More workers step shards concurrently via
     *        @p pool (one is created internally if null). The executed
     *        event sequence per shard is identical either way.
     * @param pool optional shared ThreadPool (benchmark fan-out and
     *        shard stepping can use one pool); its size caps effective
     *        concurrency.
     * @return the latest tick reached by any shard.
     */
    Tick run(unsigned threads, ThreadPool* pool = nullptr);

    /** Number of registered shards. */
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Windows executed by the last run(). */
    std::uint64_t windowsExecuted() const { return windows_; }
    /** Cross-shard messages delivered by the last run(). */
    std::uint64_t messagesDelivered() const { return messages_; }

  private:
    /** One queued cross-shard message. */
    struct Message
    {
        Tick when = 0;
        std::function<void()> fn;
    };

    /** One declared link and its mailbox. */
    struct Link
    {
        unsigned from = 0;
        unsigned to = 0;
        Tick lookahead = 0;
        std::unique_ptr<SpscRing<Message>> mailbox;
    };

    struct Shard
    {
        std::string name;
        EventQueue* eq = nullptr;
        StepFn step;
        bool runnable = true;
    };

    /** Earliest pending work across shards and mailboxes. */
    Tick earliestPending() const;
    /** Drain every mailbox into its target queue, in link order. */
    void drainMailboxes();

    std::vector<Shard> shards_;
    std::vector<Link> links_;
    Tick barrier_period_ = 0;
    Tick window_end_ = kMaxTick;
    std::uint64_t windows_ = 0;
    std::uint64_t messages_ = 0;
};

} // namespace thynvm

#endif // THYNVM_SIM_SHARD_HH
