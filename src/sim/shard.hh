/**
 * @file
 * Deterministic sharded event kernel (DESIGN.md §8).
 *
 * A ShardedKernel steps several EventQueues — shards — concurrently
 * while guaranteeing that every shard executes exactly the event
 * sequence it would execute under serial, single-queue simulation.
 * Simulation statistics are therefore byte-identical for any worker
 * thread count, including one.
 *
 * The scheme is conservative parallel discrete-event simulation:
 *
 *  - Each shard is granted a private window [now, W): it may execute
 *    events with tick strictly below W with no synchronization at all,
 *    because the kernel proves no other shard can send it a message
 *    landing below W. Cross-shard traffic is posted into bounded SPSC
 *    mailboxes, one per declared (from, to) link, each link carrying a
 *    conservative *lookahead* — the smallest simulated latency any
 *    message over it can have. At the window edge the workers
 *    rendezvous on a barrier and the coordinator drains the posted
 *    mailboxes into the target queues.
 *
 *  - Window bounds come from *earliest output times* (EOT): a shard
 *    that could execute reports next-event-tick + its minimum outbound
 *    lookahead as the earliest tick at which anything it sends can
 *    land; a shard that cannot execute reports +infinity, but may
 *    still *relay* — a message it receives can trigger a send — so its
 *    EOT is floored by what it can receive plus its outbound
 *    lookahead. The kernel solves this as a fixpoint over the link
 *    graph and sets every shard's window to the minimum EOT over its
 *    in-links. When exactly one shard can execute at all, nobody can
 *    send to anyone: the sole actor's window is unbounded (up to the
 *    barrier edge) — this is what collapses the window count by orders
 *    of magnitude when channels are not actively exchanging traffic.
 *
 *  - Mid-window sends are handled by *retreat*: post() pulls the
 *    posting shard's own live window bound down to the message's
 *    delivery tick, so the poster never executes past the earliest
 *    response its send can provoke. Step functions therefore read the
 *    bound through a ShardWindow view once per event rather than
 *    capturing it. Delivery order into a queue is a pure function of
 *    simulated state: every message carries an order key derived from
 *    its link and per-link FIFO position (EventQueue::scheduleMessage),
 *    never from the host schedule or the window pattern.
 *
 *  - Window edges are additionally clamped to a *barrier period* so
 *    that globally coordinated phases (the checkpoint-epoch boundaries
 *    of the ThyNVM protocol) are global barriers: no shard enters
 *    epoch k+1 until every shard has finished epoch k.
 *
 * Setting THYNVM_NO_EOT in the environment (or setEotWidening(false))
 * falls back to fixed-lookahead windows — every shard gets the same
 * [t, t + min-lookahead) window, like the pre-EOT kernel — with the
 * same executed event sequence; the equivalence suites compare both
 * modes byte for byte.
 *
 * Shards with no links between them (today: independent Systems
 * co-scheduled by harness/shard_group.hh) have infinite lookahead and
 * synchronize only at barrier-period edges.
 */

#ifndef THYNVM_SIM_SHARD_HH
#define THYNVM_SIM_SHARD_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "sim/eventq.hh"

namespace thynvm {

/**
 * Live view of one shard's window bound. The bound can *retreat* while
 * the shard is being stepped (its own post() pulls it down to the
 * delivery tick of the message just sent), so step functions must read
 * end() afresh for every event rather than caching it.
 */
class ShardWindow
{
  public:
    /** Current end of the window: execute only events strictly below. */
    Tick end() const { return *end_; }

  private:
    friend class ShardedKernel;
    explicit ShardWindow(const Tick* end) : end_(end) {}
    const Tick* end_;
};

/**
 * Conservative windowed scheduler over a set of event-queue shards.
 */
class ShardedKernel
{
  public:
    /**
     * Steps one shard inside a window: run shard-local work with tick
     * strictly below the (live) window end. Returns true if the shard
     * may still make progress (its queue is non-empty and its run
     * condition still holds).
     */
    using StepFn = std::function<bool(ShardWindow)>;

    /**
     * Optional per-shard earliest-output-time override: a conservative
     * lower bound on the tick of the next message this shard will
     * post, given its current queue (kMaxTick when it cannot send).
     * The default — next event tick + the shard's minimum outbound
     * lookahead — is already conservative for every shard whose sends
     * originate from executing an event over a declared link; an
     * override can only *widen* windows further, and a bound that is
     * not actually conservative trips the post()/delivery panics
     * deterministically.
     */
    using EotFn = std::function<Tick()>;

    ShardedKernel();
    ShardedKernel(const ShardedKernel&) = delete;
    ShardedKernel& operator=(const ShardedKernel&) = delete;

    /**
     * Register a shard stepped via @p step; @p eq is the shard's queue
     * (used for next-event-time queries and mailbox delivery).
     * @return the shard id (dense, starting at 0).
     */
    unsigned addShard(std::string name, EventQueue& eq, StepFn step);

    /**
     * Register a plain queue shard: stepped until its queue holds no
     * event below the window end.
     */
    unsigned addShard(std::string name, EventQueue& eq);

    /**
     * Declare a cross-shard link with conservative lookahead: every
     * message posted from @p from to @p to must be delivered at least
     * @p lookahead ticks after the tick it was posted at. Declaring
     * the same (from, to) pair twice panics here, at declaration time.
     *
     * @param capacity mailbox bound (messages posted but not yet
     *        drained). Must cover the worst same-window burst: a
     *        core-to-channel link sees a whole cache-flush wave of
     *        writebacks in one window, so channel links are sized from
     *        the cache capacity rather than the default.
     */
    void link(unsigned from, unsigned to, Tick lookahead,
              std::size_t capacity = 4096);

    /**
     * Clamp window edges to multiples of @p period (0 disables).
     * Checkpoint-epoch boundaries pass a period here so that epoch
     * transitions are global barriers across shards.
     */
    void setBarrierPeriod(Tick period) { barrier_period_ = period; }

    /**
     * Post cross-shard work: run @p fn on shard @p to at tick @p when.
     * Must be called from the worker currently stepping shard @p from
     * (typically from inside one of its events), over a declared link,
     * with @p when no earlier than the end of the target's current
     * window — the conservative rule; violating it panics, because the
     * target shard may already have stepped past @p when. Posting also
     * retreats the *posting* shard's own window bound to @p when, so
     * any response provoked by this message is conservative in turn.
     */
    void post(unsigned from, unsigned to, Tick when,
              std::function<void()> fn);

    /** Enable/disable EOT window widening (default: on unless the
     *  THYNVM_NO_EOT environment variable is set). */
    void setEotWidening(bool on) { eot_ = on; }
    bool eotWidening() const { return eot_; }

    /** Install an EOT override for shard @p shard (tests; see EotFn). */
    void setEotFn(unsigned shard, EotFn fn);

    /**
     * Run all shards to completion: windows advance until every shard
     * reports no more progress and all mailboxes are empty.
     *
     * @param threads worker count. 1 steps shards inline on the
     *        calling thread in shard-id order — the serial reference
     *        schedule. More workers step shards concurrently on
     *        persistent per-run worker threads (or @p pool jobs)
     *        rendezvousing on spin-then-yield barriers; rounds in
     *        which at most one shard has work are elided onto the
     *        calling thread without touching the barriers. The
     *        executed event sequence per shard is identical either
     *        way.
     * @param pool optional shared ThreadPool (benchmark fan-out and
     *        shard stepping can use one pool); its size caps effective
     *        concurrency.
     * @return the latest tick reached by any shard.
     */
    Tick run(unsigned threads, ThreadPool* pool = nullptr);

    /** Number of registered shards. */
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Windows executed by the last run(). */
    std::uint64_t windowsExecuted() const { return windows_; }
    /** Cross-shard messages delivered by the last run(). */
    std::uint64_t messagesDelivered() const { return messages_; }

  private:
    /** One queued cross-shard message. */
    struct Message
    {
        Tick when = 0;
        /** Deterministic delivery-order key (kMessageOrderBit band). */
        std::uint64_t key = 0;
        std::function<void()> fn;
    };

    /** One declared link and its mailbox. */
    struct Link
    {
        unsigned from = 0;
        unsigned to = 0;
        Tick lookahead = 0;
        std::unique_ptr<SpscRing<Message>> mailbox;
        /** Per-link FIFO counter feeding message order keys. Written
         *  by the producer (the worker stepping `from`). */
        std::uint64_t fifo = 0;
        /** Set by the producer on first post of a round; cleared by
         *  the coordinator at drain. */
        bool dirty = false;
    };

    struct Shard
    {
        std::string name;
        EventQueue* eq = nullptr;
        StepFn step;
        EotFn eot_fn;
        bool runnable = true;
        /** This shard steps in the current round. */
        bool active = false;
        /** Admission bound for messages targeting this shard: posts
         *  with when < window_end panic. Written by the coordinator
         *  between rounds. */
        Tick window_end = kMaxTick;
        /** Live stepping bound; starts each round at window_end and
         *  retreats when this shard posts. Only the worker stepping
         *  the shard touches it mid-round. */
        Tick dyn_end = kMaxTick;
        /** Round-locals of the EOT fixpoint (coordinator only). */
        Tick next = kMaxTick;
        Tick busy = kMaxTick;
        Tick eot = kMaxTick;
        /** Minimum lookahead over this shard's out-links. */
        Tick min_out = kMaxTick;
        /** Source shard ids of this shard's in-links. */
        std::vector<unsigned> in;
        /** Link ids this shard posted into this round (producer side;
         *  drained and cleared by the coordinator). */
        std::vector<unsigned> posted;
    };

    /**
     * (next-event-tick, shard) entries for the EOT-off window base.
     * An entry is live only while its tick equals credited_[shard];
     * superseded duplicates are dropped when they surface, which keeps
     * the heap O(shards) instead of growing by one entry per message.
     */
    struct HeapEntry
    {
        Tick tick = 0;
        unsigned shard = 0;
        bool operator>(const HeapEntry& o) const
        {
            return tick > o.tick || (tick == o.tick && shard > o.shard);
        }
    };

    /** Rebuild the dense (from, to) -> link-id index. */
    void rebuildLinkIndex();
    /** Per-run derived state: min_out, in-lists, heap seed. */
    void prepare();
    /** Earliest next-event tick over runnable shards (EOT-off; lazy
     *  min-heap kept current by deliveries). */
    Tick earliestPending();
    /**
     * Compute every shard's window for the next round (EOT fixpoint +
     * sole-actor override + barrier clamp, or the fixed-lookahead
     * policy when widening is off) and mark active shards.
     * @return the number of active shards (0: the run is over).
     */
    std::size_t planWindows();
    /** Deliver posted mailboxes into their target queues. */
    void drainPosted();
    /** Step the active shards owned by @p party (shard id mod P). */
    void stepSlice(unsigned party);
    /** One round: plan, step (elided / parallel), drain. */
    bool round();
    /** Persistent worker body for parties 1..P-1. */
    void workerLoop(unsigned party);

    std::vector<Shard> shards_;
    std::vector<Link> links_;
    /** Dense (from, to) -> link id (-1: undeclared); stride_ is the
     *  shard count the index was built for. */
    std::vector<std::int32_t> link_index_;
    std::size_t stride_ = 0;
    Tick barrier_period_ = 0;
    /** Minimum lookahead over all links (EOT-off window width). */
    Tick min_lookahead_ = kMaxTick;
    bool eot_ = true;
    std::vector<HeapEntry> heap_;
    /** Per-shard tick credited in heap_ (kMaxTick: no live entry).
     *  Always a lower bound on the shard's live next-event tick. */
    std::vector<Tick> credited_;
    std::uint64_t windows_ = 0;
    std::uint64_t messages_ = 0;

    /** Parallel-round state (valid inside run with parties_ > 1). */
    unsigned parties_ = 1;
    SpinBarrier* release_ = nullptr;
    SpinBarrier* join_ = nullptr;
    bool stop_ = false;
    /** First exception per party, rethrown on the coordinator. */
    std::vector<std::exception_ptr> errors_;
};

} // namespace thynvm

#endif // THYNVM_SIM_SHARD_HH
