/**
 * @file
 * The discrete-event simulation kernel.
 *
 * An EventQueue orders callbacks by tick (picoseconds) with FIFO tie
 * breaking, so simulation outcomes are fully deterministic. Components
 * schedule either ad-hoc lambdas or reusable Event objects.
 */

#ifndef THYNVM_SIM_EVENTQ_HH
#define THYNVM_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace thynvm {

class EventQueue;

/**
 * A reusable, cancellable event. An Event may be scheduled on at most
 * one tick at a time; rescheduling while pending is an error unless the
 * event is first deschedule()d.
 */
class Event
{
  public:
    /** @param fn callback run when the event fires. */
    explicit Event(std::function<void()> fn) : fn_(std::move(fn)) {}

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    /** True if the event is waiting in a queue. */
    bool scheduled() const { return scheduled_; }
    /** Tick at which the event will fire (valid only if scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    std::function<void()> fn_;
    bool scheduled_ = false;
    /** Cancellation generation: bumping it invalidates queued firings. */
    std::uint64_t generation_ = 0;
    Tick when_ = 0;
};

/**
 * Deterministic priority queue of timed callbacks.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule a one-shot callback at absolute tick @p when. */
    void
    schedule(Tick when, std::function<void()> fn)
    {
        panic_if(when < now_, "scheduling in the past (%lu < %lu)",
                 static_cast<unsigned long>(when),
                 static_cast<unsigned long>(now_));
        heap_.push(Item{when, seq_++, std::move(fn), nullptr, 0});
    }

    /** Schedule a one-shot callback @p delta ticks from now. */
    void
    scheduleIn(Tick delta, std::function<void()> fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** Schedule a reusable @p event at absolute tick @p when. */
    void
    schedule(Event& event, Tick when)
    {
        panic_if(event.scheduled_, "event already scheduled");
        panic_if(when < now_, "scheduling in the past");
        event.scheduled_ = true;
        event.when_ = when;
        heap_.push(Item{when, seq_++, nullptr, &event, event.generation_});
    }

    /** Cancel a pending @p event. No-op if not scheduled. */
    void
    deschedule(Event& event)
    {
        if (!event.scheduled_)
            return;
        event.scheduled_ = false;
        ++event.generation_; // invalidate the queued firing lazily
    }

    /** Remove and run the single earliest event. */
    void
    step()
    {
        panic_if(heap_.empty(), "stepping an empty event queue");
        Item item = heap_.top();
        heap_.pop();
        panic_if(item.when < now_, "event queue went backwards");
        now_ = item.when;
        if (item.event != nullptr) {
            if (item.event->generation_ != item.generation)
                return; // cancelled
            item.event->scheduled_ = false;
            item.event->fn_();
        } else {
            item.fn();
        }
    }

    /** True if no events are pending. */
    bool
    empty() const
    {
        return heap_.empty();
    }

    /** Number of pending items (including lazily cancelled ones). */
    std::size_t size() const { return heap_.size(); }

    /**
     * Drop every pending event without running it. Used at a simulated
     * power failure: all components' volatile state is reset together,
     * so their in-flight callbacks are void. Time does not move.
     */
    void
    clear()
    {
        heap_ = {};
    }

    /**
     * Run until the queue drains or @p limit ticks is reached.
     * @return the tick at which the run stopped.
     */
    Tick
    run(Tick limit = kMaxTick)
    {
        while (!heap_.empty() && heap_.top().when <= limit)
            step();
        if (now_ < limit && limit != kMaxTick)
            now_ = limit;
        return now_;
    }

    /**
     * Run until @p done returns true, checking after every event.
     * @return the tick at which @p done first held.
     */
    Tick
    runUntil(const std::function<bool()>& done)
    {
        while (!done()) {
            panic_if(heap_.empty(),
                     "event queue drained before condition held");
            step();
        }
        return now_;
    }

  private:
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
        Event* event;
        std::uint64_t generation;

        bool
        operator>(const Item& other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace thynvm

#endif // THYNVM_SIM_EVENTQ_HH
