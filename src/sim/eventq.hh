/**
 * @file
 * The discrete-event simulation kernel.
 *
 * An EventQueue orders callbacks by tick (picoseconds) with FIFO tie
 * breaking, so simulation outcomes are fully deterministic. Components
 * schedule either ad-hoc lambdas or reusable Event objects.
 *
 * Hot-path design (DESIGN.md "Simulator performance"):
 *  - Callbacks are stored in a small-buffer-optimized inline callable
 *    (InlineFn); captures up to 48 bytes — which covers every callback
 *    the simulator schedules — never touch the heap.
 *  - Same-tick continuations (scheduleIn(0, ...): device completions,
 *    table-lookup callbacks, CPU step chaining) bypass the binary heap
 *    through a FIFO ring whose backing storage is reused, so
 *    steady-state scheduling performs zero heap allocations.
 *  - A single global sequence number orders the ring against the heap,
 *    preserving exact tick+FIFO semantics regardless of which path an
 *    item took.
 */

#ifndef THYNVM_SIM_EVENTQ_HH
#define THYNVM_SIM_EVENTQ_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace thynvm {

class EventQueue;

namespace detail {

/**
 * A move-only type-erased `void()` callable with inline storage.
 *
 * Callables up to kInlineBytes whose move constructor cannot throw are
 * stored in place; anything larger falls back to a heap allocation.
 * Unlike std::function this never allocates for the capture sizes the
 * simulator uses, and it accepts move-only captures.
 */
class InlineFn
{
  public:
    /** Inline capture capacity; fits `[this, done = std::function]`. */
    static constexpr std::size_t kInlineBytes = 48;

    InlineFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn>>>
    InlineFn(F&& fn) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
            ops_ = &kOps<Fn, true>;
        } else {
            ::new (static_cast<void*>(storage_))
                Fn*(new Fn(std::forward<F>(fn)));
            ops_ = &kOps<Fn, false>;
        }
    }

    InlineFn(InlineFn&& other) noexcept : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            ops_->relocate(other.storage_, storage_);
            other.ops_ = nullptr;
        }
    }

    InlineFn&
    operator=(InlineFn&& other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(other.storage_, storage_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineFn(const InlineFn&) = delete;
    InlineFn& operator=(const InlineFn&) = delete;

    ~InlineFn() { reset(); }

    /** True if a callable is held. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the held callable. */
    void
    operator()()
    {
        ops_->invoke(storage_);
    }

  private:
    struct Ops
    {
        void (*invoke)(void* self);
        /** Move-construct into @p dst, destroy @p src. */
        void (*relocate)(void* src, void* dst);
        void (*destroy)(void* self);
    };

    template <typename Fn, bool Inline>
    struct Model
    {
        static Fn*
        get(void* s)
        {
            if constexpr (Inline)
                return std::launder(reinterpret_cast<Fn*>(s));
            else
                return *std::launder(reinterpret_cast<Fn**>(s));
        }
        static void invoke(void* s) { (*get(s))(); }
        static void
        relocate(void* src, void* dst)
        {
            if constexpr (Inline) {
                Fn* f = get(src);
                ::new (dst) Fn(std::move(*f));
                f->~Fn();
            } else {
                ::new (dst) Fn*(get(src));
            }
        }
        static void
        destroy(void* s)
        {
            if constexpr (Inline)
                get(s)->~Fn();
            else
                delete get(s);
        }
    };

    template <typename Fn, bool Inline>
    static constexpr Ops kOps = {&Model<Fn, Inline>::invoke,
                                 &Model<Fn, Inline>::relocate,
                                 &Model<Fn, Inline>::destroy};

    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops* ops_ = nullptr;
};

} // namespace detail

/**
 * A reusable, cancellable event. An Event may be scheduled on at most
 * one tick at a time; rescheduling while pending is an error unless the
 * event is first deschedule()d. Components with a fixed callback should
 * prefer a member Event over ad-hoc lambdas: scheduling one costs no
 * callable construction at all.
 */
class Event
{
  public:
    /** @param fn callback run when the event fires. */
    template <typename F>
    explicit Event(F&& fn) : fn_(std::forward<F>(fn))
    {}

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    /** True if the event is waiting in a queue. */
    bool scheduled() const { return scheduled_; }
    /** Tick at which the event will fire (valid only if scheduled). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    detail::InlineFn fn_;
    bool scheduled_ = false;
    /** Cancellation generation: bumping it invalidates queued firings. */
    std::uint64_t generation_ = 0;
    Tick when_ = 0;
};

/**
 * Deterministic priority queue of timed callbacks with a same-tick
 * FIFO fast path.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule a one-shot callback at absolute tick @p when. */
    template <typename F>
    void
    schedule(Tick when, F&& fn)
    {
        panic_if(when < now_, "scheduling in the past (%lu < %lu)",
                 static_cast<unsigned long>(when),
                 static_cast<unsigned long>(now_));
        if (when == now_) {
            ring_.push_back(Item{when, seq_++, nullptr, 0,
                                 detail::InlineFn(std::forward<F>(fn))});
            ++fast_path_schedules_;
        } else {
            pushHeap(Item{when, seq_++, nullptr, 0,
                          detail::InlineFn(std::forward<F>(fn))});
        }
    }

    /** Schedule a one-shot callback @p delta ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delta, F&& fn)
    {
        schedule(now_ + delta, std::forward<F>(fn));
    }

    /**
     * High bit of a cross-shard delivery order key. Locally scheduled
     * callbacks draw their tie-break sequence from a counter that can
     * never reach this bit, so a delivery sorts after every local
     * callback of the same tick — "traffic arrives at the end of the
     * tick" — no matter when the kernel's drain physically ran.
     */
    static constexpr std::uint64_t kMessageOrderBit = 1ull << 63;

    /**
     * Schedule a cross-shard message delivery at absolute tick @p when
     * with an explicit tie-break key in place of the arrival sequence
     * number. The sharded kernel builds @p order_key from the link id
     * and the per-link FIFO index (with kMessageOrderBit set), both
     * pure functions of simulated state — so the execution order of
     * deliveries is independent of the host-side window schedule that
     * drained them. That is what lets window policies (fixed lookahead
     * vs earliest-output-time widening) vary freely while stats stay
     * byte-identical.
     */
    template <typename F>
    void
    scheduleMessage(Tick when, std::uint64_t order_key, F&& fn)
    {
        panic_if(when < now_, "delivering a message in the past");
        panic_if((order_key & kMessageOrderBit) == 0,
                 "message order key without kMessageOrderBit");
        pushHeap(Item{when, order_key, nullptr, 0,
                      detail::InlineFn(std::forward<F>(fn))});
    }

    /** Schedule a reusable @p event at absolute tick @p when. */
    void
    schedule(Event& event, Tick when)
    {
        panic_if(event.scheduled_, "event already scheduled");
        panic_if(when < now_, "scheduling in the past");
        event.scheduled_ = true;
        event.when_ = when;
        if (when == now_) {
            ring_.push_back(Item{when, seq_++, &event, event.generation_,
                                 detail::InlineFn()});
            ++fast_path_schedules_;
        } else {
            pushHeap(Item{when, seq_++, &event, event.generation_,
                          detail::InlineFn()});
        }
    }

    /** Cancel a pending @p event. No-op if not scheduled. */
    void
    deschedule(Event& event)
    {
        if (!event.scheduled_)
            return;
        event.scheduled_ = false;
        ++event.generation_; // invalidate the queued firing lazily
    }

    /** Remove and run the single earliest event. */
    void
    step()
    {
        panic_if(empty(), "stepping an empty event queue");
        // The ring holds only items at the current tick, so it can only
        // lose the FIFO tie against a heap item at that same tick that
        // was scheduled earlier (smaller sequence number).
        Item item;
        if (!ring_.empty() &&
            (heap_.empty() || ring_.front().when < heap_.front().when ||
             (ring_.front().when == heap_.front().when &&
              ring_.front().seq < heap_.front().seq))) {
            item = ring_.take_front();
        } else {
            std::pop_heap(heap_.begin(), heap_.end(), Later{});
            item = std::move(heap_.back());
            heap_.pop_back();
        }
        panic_if(item.when < now_, "event queue went backwards");
        now_ = item.when;
        if (item.event != nullptr) {
            if (item.event->generation_ != item.generation)
                return; // cancelled
            item.event->scheduled_ = false;
            ++events_executed_;
            item.event->fn_();
        } else {
            ++events_executed_;
            item.fn();
        }
    }

    /** True if no events are pending. */
    bool
    empty() const
    {
        return heap_.empty() && ring_.empty();
    }

    /** Number of pending items (including lazily cancelled ones). */
    std::size_t size() const { return heap_.size() + ring_.size(); }

    /**
     * Earliest pending tick, or kMaxTick if the queue is empty. Lets a
     * crash driver drain exactly the events at or before a chosen tick
     * (step() while nextTick() <= t) before pulling the plug.
     */
    Tick
    nextTick() const
    {
        return empty() ? kMaxTick : nextWhen();
    }

    /** Callbacks executed since construction (perf instrumentation). */
    std::uint64_t eventsExecuted() const { return events_executed_; }

    /** Schedules that took the same-tick FIFO fast path. */
    std::uint64_t fastPathSchedules() const { return fast_path_schedules_; }

    /**
     * Drop every pending event without running it. Used at a simulated
     * power failure: all components' volatile state is reset together,
     * so their in-flight callbacks are void. Time does not move.
     * Reusable events that were still queued are left descheduled and
     * may be rescheduled freely afterwards.
     */
    void
    clear()
    {
        for (auto& item : heap_)
            dropEvent(item);
        ring_.for_each([this](Item& item) { dropEvent(item); });
        heap_.clear();
        ring_.clear();
    }

    /**
     * Run until the queue drains or @p limit ticks is reached.
     * @return the tick at which the run stopped.
     */
    Tick
    run(Tick limit = kMaxTick)
    {
        while (!empty() && nextWhen() <= limit)
            step();
        if (now_ < limit && limit != kMaxTick)
            now_ = limit;
        return now_;
    }

    /**
     * Run until @p done returns true, checking after every event.
     * @return the tick at which @p done first held.
     */
    Tick
    runUntil(const std::function<bool()>& done)
    {
        while (!done()) {
            panic_if(empty(),
                     "event queue drained before condition held");
            step();
        }
        return now_;
    }

  private:
    struct Item
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Event* event = nullptr;
        std::uint64_t generation = 0;
        detail::InlineFn fn;
    };

    /** Min-heap comparator: later (when, seq) sinks. */
    struct Later
    {
        bool
        operator()(const Item& a, const Item& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * FIFO of same-tick items backed by a vector that is reused rather
     * than freed: pushes append, pops advance a head cursor, and the
     * storage rewinds to the front whenever the ring empties.
     */
    class Ring
    {
      public:
        bool empty() const { return head_ == items_.size(); }
        std::size_t size() const { return items_.size() - head_; }
        const Item& front() const { return items_[head_]; }

        void
        push_back(Item&& item)
        {
            if (head_ == items_.size())
                rewind();
            items_.push_back(std::move(item));
        }

        Item
        take_front()
        {
            Item item = std::move(items_[head_++]);
            if (head_ == items_.size())
                rewind();
            return item;
        }

        template <typename Fn>
        void
        for_each(Fn&& fn)
        {
            for (std::size_t i = head_; i < items_.size(); ++i)
                fn(items_[i]);
        }

        void
        clear()
        {
            rewind();
        }

      private:
        void
        rewind()
        {
            items_.clear(); // keeps capacity: steady state allocates 0
            head_ = 0;
        }

        std::vector<Item> items_;
        std::size_t head_ = 0;
    };

    void
    pushHeap(Item&& item)
    {
        heap_.push_back(std::move(item));
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }

    /** Earliest pending tick; queue must not be empty. */
    Tick
    nextWhen() const
    {
        if (ring_.empty())
            return heap_.front().when;
        if (heap_.empty())
            return ring_.front().when;
        return std::min(ring_.front().when, heap_.front().when);
    }

    /** Reset a queued reusable event's state as part of clear(). */
    static void
    dropEvent(Item& item)
    {
        if (item.event != nullptr &&
            item.event->generation_ == item.generation) {
            item.event->scheduled_ = false;
            ++item.event->generation_;
        }
    }

    std::vector<Item> heap_;
    Ring ring_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t events_executed_ = 0;
    std::uint64_t fast_path_schedules_ = 0;
};

} // namespace thynvm

#endif // THYNVM_SIM_EVENTQ_HH
