/**
 * @file
 * SPEC CPU2006 behavioural profiles.
 *
 * Values are first-order calibrations from published workload
 * characterizations (memory intensity, footprint, spatial locality,
 * write share) of the eight most memory-intensive applications the
 * paper selects.
 */

#include "workloads/spec.hh"

#include "common/logging.hh"

namespace thynvm {

const std::vector<SpecProfile>&
specProfiles()
{
    static const std::vector<SpecProfile> profiles = {
        // name        mem%   wss          stream write  size
        {"gcc",        0.26,  10u << 20,   0.30,  0.35,  16},
        {"bwaves",     0.38,  24u << 20,   0.85,  0.30,  32},
        {"milc",       0.40,  24u << 20,   0.50,  0.35,  32},
        {"leslie3d",   0.36,  20u << 20,   0.70,  0.35,  32},
        {"soplex",     0.30,  16u << 20,   0.40,  0.25,  16},
        {"GemsFDTD",   0.42,  24u << 20,   0.70,  0.35,  32},
        {"lbm",        0.45,  24u << 20,   0.90,  0.50,  64},
        {"omnetpp",    0.32,  12u << 20,   0.10,  0.35,  16},
    };
    return profiles;
}

const SpecProfile&
specProfile(const std::string& name)
{
    for (const auto& p : specProfiles()) {
        if (name == p.name)
            return p;
    }
    fatal("unknown SPEC profile '%s'", name.c_str());
}

} // namespace thynvm
