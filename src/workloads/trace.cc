/**
 * @file
 * Trace file I/O.
 */

#include "workloads/trace.hh"

#include <cstdio>
#include <memory>

#include "common/logging.hh"

namespace thynvm {

namespace {

constexpr std::uint64_t kTraceMagic = 0x54484e56545243ull; // "THNVTRC"
constexpr std::uint64_t kTraceVersion = 1;

struct TraceHeader
{
    std::uint64_t magic;
    std::uint64_t version;
    std::uint64_t op_count;
};

struct FileCloser
{
    void operator()(std::FILE* f) const { std::fclose(f); }
};

} // namespace

void
TraceRecorder::save(const std::string& path) const
{
    std::unique_ptr<std::FILE, FileCloser> f(
        std::fopen(path.c_str(), "wb"));
    fatal_if(!f, "cannot open trace file '%s' for writing",
             path.c_str());
    TraceHeader hdr{kTraceMagic, kTraceVersion, records_.size()};
    fatal_if(std::fwrite(&hdr, sizeof(hdr), 1, f.get()) != 1,
             "trace header write failed");
    if (!records_.empty()) {
        fatal_if(std::fwrite(records_.data(), sizeof(TraceRecord),
                             records_.size(),
                             f.get()) != records_.size(),
                 "trace body write failed");
    }
}

TraceReplayWorkload
TraceReplayWorkload::load(const std::string& path)
{
    std::unique_ptr<std::FILE, FileCloser> f(
        std::fopen(path.c_str(), "rb"));
    fatal_if(!f, "cannot open trace file '%s'", path.c_str());
    TraceHeader hdr{};
    fatal_if(std::fread(&hdr, sizeof(hdr), 1, f.get()) != 1,
             "trace header read failed");
    fatal_if(hdr.magic != kTraceMagic, "'%s' is not a trace file",
             path.c_str());
    fatal_if(hdr.version != kTraceVersion,
             "unsupported trace version %llu",
             static_cast<unsigned long long>(hdr.version));
    std::vector<TraceRecord> records(hdr.op_count);
    if (hdr.op_count > 0) {
        fatal_if(std::fread(records.data(), sizeof(TraceRecord),
                            hdr.op_count, f.get()) != hdr.op_count,
                 "trace body read failed");
    }
    return TraceReplayWorkload(std::move(records));
}

} // namespace thynvm
