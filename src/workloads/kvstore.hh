/**
 * @file
 * Key-value store workload (paper §5.1 "storage benchmarks",
 * Figures 9 and 10).
 *
 * Runs search/insert/delete transactions against a hash table or a
 * red-black tree that lives entirely in simulated memory. Each
 * transaction is *planned* functionally (reads consult the controller's
 * software-visible state plus a local write buffer; writes are
 * buffered), then replayed through the timed CPU path as Load/Store
 * ops. Planning is exact because execution is single-threaded, so the
 * replayed image matches a host-side reference run byte for byte —
 * which the consistency tests exploit.
 *
 * The workload's generator state (RNG, transaction counter, remaining
 * planned ops) is the CPU architectural state: it is checkpointed with
 * the epoch and restored at crash recovery, so a recovered system
 * resumes mid-transaction exactly where the checkpoint was taken.
 */

#ifndef THYNVM_WORKLOADS_KVSTORE_HH
#define THYNVM_WORKLOADS_KVSTORE_HH

#include <deque>
#include <memory>

#include "common/rng.hh"
#include "cpu/workload.hh"
#include "workloads/hashtable.hh"
#include "workloads/rbtree.hh"

namespace thynvm {

class MemController;

/**
 * Transactional KV-store workload over simulated memory.
 */
class KvWorkload : public Workload
{
  public:
    enum class Structure
    {
        HashTable,
        RbTree,
    };

    struct Params
    {
        Structure structure = Structure::HashTable;
        /** Simulated physical space available to the workload. */
        std::size_t phys_size = 32u << 20;
        /** Value size in bytes (the paper sweeps 16 B - 4 KB). */
        std::uint32_t value_size = 256;
        /** Keys preloaded before measurement. */
        std::uint64_t initial_keys = 1024;
        /** Keys are drawn from [0, key_space). */
        std::uint64_t key_space = 4096;
        /**
         * Zipfian skew of transaction keys: 0 keeps the historical
         * uniform draw; in (0, 1) keys come from a scrambled-zipfian
         * generator (YCSB idiom, 0.99 = YCSB default) over key_space.
         * Initial loading stays uniform either way.
         */
        double zipf_theta = 0.0;
        /** Operation mix (remainder of 1.0 goes to deletes). */
        double search_frac = 0.5;
        double insert_frac = 0.35;
        /** Buckets for the hash-table variant. */
        std::uint64_t hash_buckets = 4096;
        /** Transactions to run (0 = unbounded). */
        std::uint64_t total_txns = 0;
        /** Non-memory instructions per transaction. */
        std::uint64_t compute_per_txn = 200;
        /** RNG seed. */
        std::uint64_t seed = 7;
    };

    explicit KvWorkload(const Params& p);

    // Workload interface.
    void init(MemController& mem) override;
    bool next(WorkOp& op) override;
    std::vector<std::uint8_t> snapshot() const override;
    void restore(const std::vector<std::uint8_t>& blob) override;

    /** Transactions fully replayed so far. */
    std::uint64_t completedTxns() const { return txns_completed_; }

    /** Workload parameters. */
    const Params& params() const { return p_; }

    /**
     * Reference model: build the initial image and apply @p txns
     * transactions host-side. The resulting bytes must equal the
     * simulated memory after the same number of transactions.
     */
    static void runReference(const Params& p, std::uint64_t txns,
                             HostMemSpace& out);

    /** Structural validation of the store inside @p mem. */
    static void validateStructure(const Params& p, MemSpace& mem);

  private:
    struct PlannedOp
    {
        bool is_load;
        Addr addr;
        std::uint32_t size;
        std::vector<std::uint8_t> data; // store payload
    };

    static Addr tableHeaderAddr() { return 64; }
    static Addr heapBase() { return 4096; }

    static void buildInitialImage(const Params& p, HostMemSpace& img);
    /**
     * Apply one transaction against @p mem using @p rng; @p zipf (may
     * be null) supplies skewed keys when the params ask for them.
     */
    static void applyTxn(const Params& p, MemSpace& mem, Rng& rng,
                         std::uint64_t txn_no,
                         const ZipfianGenerator* zipf);
    /** Key generator for @p p, or nullptr for the uniform draw. */
    static std::unique_ptr<ZipfianGenerator>
    makeKeyGenerator(const Params& p);

    void planNextTxn();

    Params p_;
    Rng rng_;
    std::unique_ptr<ZipfianGenerator> zipf_;
    MemController* mem_ = nullptr;
    std::deque<PlannedOp> ops_;
    PlannedOp cur_;
    std::uint64_t txns_planned_ = 0;
    std::uint64_t txns_completed_ = 0;
    bool compute_pending_ = false;
};

} // namespace thynvm

#endif // THYNVM_WORKLOADS_KVSTORE_HH
