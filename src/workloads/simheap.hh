/**
 * @file
 * A size-class heap allocator living inside a MemSpace.
 *
 * The allocator's own metadata (bump pointer, free-list heads) is part
 * of the simulated memory image, so it is checkpointed, crashed, and
 * recovered together with the data structures it serves.
 */

#ifndef THYNVM_WORKLOADS_SIMHEAP_HH
#define THYNVM_WORKLOADS_SIMHEAP_HH

#include "workloads/memspace.hh"

namespace thynvm {

/**
 * Segregated free-list allocator over a MemSpace region.
 */
class SimHeap
{
  public:
    /** Size classes in bytes (16 B up to 256 KB). */
    static constexpr std::size_t kNumClasses = 15;

    /**
     * Attach to a heap at [base, base+size). Call format() once on a
     * fresh region before the first allocation.
     */
    SimHeap(Addr base, std::size_t size) : base_(base), size_(size)
    {
        panic_if(base == 0, "heap base must be nonzero (0 is null)");
    }

    /** Initialize an empty heap in @p mem. */
    void format(MemSpace& mem) const;

    /**
     * Allocate @p size bytes (rounded up to a size class).
     * Panics if the heap is exhausted.
     */
    Addr alloc(MemSpace& mem, std::size_t size) const;

    /** Free an allocation of @p size bytes at @p addr. */
    void free(MemSpace& mem, Addr addr, std::size_t size) const;

    /** Bytes consumed from the bump region so far. */
    std::uint64_t bumpUsed(MemSpace& mem) const;

    /** The size class (allocation granule) for @p size. */
    static std::size_t classOf(std::size_t size);
    /** Byte size of size class @p cls. */
    static std::size_t classBytes(std::size_t cls);

  private:
    static constexpr std::uint64_t kMagic = 0x53494d4845415021ull;

    Addr headerAddr() const { return base_; }
    Addr bumpAddr() const { return base_ + 8; }
    Addr freeHeadAddr(std::size_t cls) const
    {
        return base_ + 16 + cls * 8;
    }
    Addr dataStart() const { return base_ + 16 + kNumClasses * 8; }

    Addr base_;
    std::size_t size_;
};

} // namespace thynvm

#endif // THYNVM_WORKLOADS_SIMHEAP_HH
