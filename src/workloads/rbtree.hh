/**
 * @file
 * A red-black tree living entirely in simulated memory.
 *
 * Represents the paper's red-black-tree key-value store (Figure 9b/10b).
 * Classic CLRS algorithms with parent pointers; address 0 is the null
 * sentinel. Layout:
 *   header : {magic, root, count}
 *   node   : {key, left, right, parent, value_addr, value_len, color}
 */

#ifndef THYNVM_WORKLOADS_RBTREE_HH
#define THYNVM_WORKLOADS_RBTREE_HH

#include "workloads/simheap.hh"

namespace thynvm {

/**
 * Simulated-memory red-black tree with u64 keys and byte-string values.
 */
class SimRbTree
{
  public:
    SimRbTree(Addr header_addr, const SimHeap& heap)
        : header_(header_addr), heap_(heap)
    {}

    /** Create an empty tree. */
    void create(MemSpace& mem) const;

    /** Look up @p key; outputs the value location when found. */
    bool find(MemSpace& mem, std::uint64_t key, Addr* value_addr,
              std::uint32_t* value_len) const;

    /** Insert or update @p key. */
    void insert(MemSpace& mem, std::uint64_t key, const void* value,
                std::uint32_t len) const;

    /** Erase @p key. Returns false if absent. */
    bool erase(MemSpace& mem, std::uint64_t key) const;

    /** Number of live keys. */
    std::uint64_t count(MemSpace& mem) const;

    /**
     * Structural self-check: verifies BST ordering, red-black
     * properties (no red-red edge, equal black heights), parent links,
     * and the stored count. Panics on violation.
     */
    void validate(MemSpace& mem) const;

  private:
    struct Node
    {
        std::uint64_t key;
        std::uint64_t left;
        std::uint64_t right;
        std::uint64_t parent;
        std::uint64_t value_addr;
        std::uint32_t value_len;
        std::uint32_t color; // 0 = black, 1 = red
    };
    static_assert(sizeof(Node) == 48);

    static constexpr std::uint64_t kMagic = 0x5242545245452121ull;
    static constexpr std::uint32_t kBlack = 0;
    static constexpr std::uint32_t kRed = 1;

    Node loadNode(MemSpace& mem, Addr a) const;
    void storeNode(MemSpace& mem, Addr a, const Node& n) const;
    Addr root(MemSpace& mem) const;
    void setRoot(MemSpace& mem, Addr a) const;
    void setCount(MemSpace& mem, std::uint64_t c) const;

    void rotateLeft(MemSpace& mem, Addr x) const;
    void rotateRight(MemSpace& mem, Addr x) const;
    void insertFixup(MemSpace& mem, Addr z) const;
    void transplant(MemSpace& mem, Addr u, Addr v) const;
    Addr minimum(MemSpace& mem, Addr x) const;
    void eraseFixup(MemSpace& mem, Addr x, Addr x_parent) const;
    std::uint32_t colorOf(MemSpace& mem, Addr a) const;

    int validateSubtree(MemSpace& mem, Addr node, Addr parent,
                        std::uint64_t lo, std::uint64_t hi,
                        std::uint64_t* seen) const;

    Addr header_;
    SimHeap heap_;
};

} // namespace thynvm

#endif // THYNVM_WORKLOADS_RBTREE_HH
