/**
 * @file
 * Memory-trace recording and replay.
 *
 * Any Workload's operation stream can be captured to a compact binary
 * trace file and replayed later — useful for comparing memory systems
 * on exactly identical access streams, for regression-pinning a
 * workload, and for importing traces produced by external tools.
 *
 * Trace file layout (little-endian):
 *   header : {u64 magic, u64 version, u64 op_count}
 *   record : {u8 kind, u8 pad[3], u32 size, u64 addr, u64 count}
 * Store payloads are not recorded; replay regenerates them
 * deterministically from (addr, sequence number), which preserves the
 * timing-relevant behaviour and keeps traces small.
 */

#ifndef THYNVM_WORKLOADS_TRACE_HH
#define THYNVM_WORKLOADS_TRACE_HH

#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "cpu/workload.hh"

namespace thynvm {

/** One serialized trace record. */
struct TraceRecord
{
    std::uint8_t kind; // WorkOp::Kind
    std::uint8_t pad[3];
    std::uint32_t size;
    std::uint64_t addr;
    std::uint64_t count;
};
static_assert(sizeof(TraceRecord) == 24);

/**
 * Wraps a workload and records every operation it produces.
 */
class TraceRecorder : public Workload
{
  public:
    /** @param inner the workload to observe (not owned). */
    explicit TraceRecorder(Workload& inner) : inner_(inner) {}

    void init(MemController& mem) override { inner_.init(mem); }

    bool
    next(WorkOp& op) override
    {
        if (!inner_.next(op))
            return false;
        TraceRecord rec{};
        rec.kind = static_cast<std::uint8_t>(op.kind);
        rec.size = op.size;
        rec.addr = op.addr;
        rec.count = op.count;
        records_.push_back(rec);
        return true;
    }

    void
    deliver(const std::uint8_t* data, std::size_t len) override
    {
        inner_.deliver(data, len);
    }

    std::vector<std::uint8_t> snapshot() const override
    {
        return inner_.snapshot();
    }

    void restore(const std::vector<std::uint8_t>& blob) override
    {
        inner_.restore(blob);
    }

    /** Operations recorded so far. */
    const std::vector<TraceRecord>& records() const { return records_; }

    /** Write the recorded trace to @p path. Fatal on I/O errors. */
    void save(const std::string& path) const;

  private:
    Workload& inner_;
    std::vector<TraceRecord> records_;
};

/**
 * Replays a recorded trace as a workload. Store payloads are generated
 * deterministically from (address, sequence number).
 */
class TraceReplayWorkload : public Workload
{
  public:
    /** Construct from in-memory records. */
    explicit TraceReplayWorkload(std::vector<TraceRecord> records)
        : records_(std::move(records))
    {
        store_buf_.resize(8192);
    }

    /** Load a trace file saved by TraceRecorder::save(). */
    static TraceReplayWorkload load(const std::string& path);

    bool
    next(WorkOp& op) override
    {
        if (pos_ >= records_.size())
            return false;
        const TraceRecord& rec = records_[pos_++];
        op.kind = static_cast<WorkOp::Kind>(rec.kind);
        op.size = rec.size;
        op.addr = rec.addr;
        op.count = rec.count;
        if (op.kind == WorkOp::Kind::Store) {
            panic_if(op.size > store_buf_.size(),
                     "trace store exceeds replay buffer");
            fillPayload(rec.addr, pos_, op.size);
            op.data = store_buf_.data();
        }
        return true;
    }

    std::vector<std::uint8_t>
    snapshot() const override
    {
        std::vector<std::uint8_t> blob(8);
        const std::uint64_t pos = pos_;
        std::memcpy(blob.data(), &pos, 8);
        return blob;
    }

    void
    restore(const std::vector<std::uint8_t>& blob) override
    {
        panic_if(blob.size() != 8, "bad trace snapshot");
        std::uint64_t pos = 0;
        std::memcpy(&pos, blob.data(), 8);
        pos_ = pos;
    }

    /** Number of operations in the trace. */
    std::size_t size() const { return records_.size(); }
    /** Operations already replayed. */
    std::size_t position() const { return pos_; }

  private:
    void
    fillPayload(Addr addr, std::uint64_t seq, std::uint32_t len)
    {
        std::uint64_t v = addr * 0x9e3779b97f4a7c15ULL + seq;
        for (std::uint32_t i = 0; i < len; ++i) {
            store_buf_[i] = static_cast<std::uint8_t>(v >> ((i % 8) * 8));
            if (i % 8 == 7)
                v = v * 6364136223846793005ULL + 1442695040888963407ULL;
        }
    }

    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
    std::vector<std::uint8_t> store_buf_;
};

} // namespace thynvm

#endif // THYNVM_WORKLOADS_TRACE_HH
