/**
 * @file
 * SimHeap implementation.
 */

#include "workloads/simheap.hh"

namespace thynvm {

namespace {

constexpr std::size_t kClassSizes[SimHeap::kNumClasses] = {
    16,   32,   64,    128,   256,   512,    1024,   2048,
    4096, 8192, 16384, 32768, 65536, 131072, 262144,
};

} // namespace

std::size_t
SimHeap::classOf(std::size_t size)
{
    for (std::size_t c = 0; c < kNumClasses; ++c) {
        if (size <= kClassSizes[c])
            return c;
    }
    panic("allocation of %zu bytes exceeds the largest size class", size);
}

std::size_t
SimHeap::classBytes(std::size_t cls)
{
    panic_if(cls >= kNumClasses, "bad size class");
    return kClassSizes[cls];
}

void
SimHeap::format(MemSpace& mem) const
{
    mem.writeT<std::uint64_t>(headerAddr(), kMagic);
    mem.writeT<std::uint64_t>(bumpAddr(), dataStart());
    for (std::size_t c = 0; c < kNumClasses; ++c)
        mem.writeT<std::uint64_t>(freeHeadAddr(c), 0);
}

Addr
SimHeap::alloc(MemSpace& mem, std::size_t size) const
{
    const std::size_t cls = classOf(size);
    const std::uint64_t head = mem.readT<std::uint64_t>(freeHeadAddr(cls));
    if (head != 0) {
        // Pop: the first word of a free block links to the next one.
        const std::uint64_t next = mem.readT<std::uint64_t>(head);
        mem.writeT<std::uint64_t>(freeHeadAddr(cls), next);
        return head;
    }
    const std::uint64_t bump = mem.readT<std::uint64_t>(bumpAddr());
    const std::size_t bytes = kClassSizes[cls];
    panic_if(bump + bytes > base_ + size_,
             "simulated heap exhausted (base=%llu size=%zu)",
             static_cast<unsigned long long>(base_), size_);
    mem.writeT<std::uint64_t>(bumpAddr(), bump + bytes);
    return bump;
}

void
SimHeap::free(MemSpace& mem, Addr addr, std::size_t size) const
{
    const std::size_t cls = classOf(size);
    const std::uint64_t head = mem.readT<std::uint64_t>(freeHeadAddr(cls));
    mem.writeT<std::uint64_t>(addr, head);
    mem.writeT<std::uint64_t>(freeHeadAddr(cls), addr);
}

std::uint64_t
SimHeap::bumpUsed(MemSpace& mem) const
{
    return mem.readT<std::uint64_t>(bumpAddr()) - dataStart();
}

} // namespace thynvm
