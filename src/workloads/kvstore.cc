/**
 * @file
 * KvWorkload implementation.
 */

#include "workloads/kvstore.hh"

#include <cstring>

#include "mem/controller.hh"

namespace thynvm {

namespace {

/** Deterministic value payload for (key, txn). */
void
fillValue(std::uint64_t key, std::uint64_t txn, std::uint8_t* buf,
          std::uint32_t len)
{
    std::uint64_t v = (key + 1) * 0x9e3779b97f4a7c15ULL ^ (txn + 1);
    for (std::uint32_t i = 0; i < len; ++i) {
        buf[i] = static_cast<std::uint8_t>(v >> ((i % 8) * 8));
        if (i % 8 == 7)
            v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    }
}

/**
 * Planning view: reads consult the functional memory state overlaid
 * with the transaction's own buffered writes, and every access is
 * logged for replay through the timed CPU path.
 */
class TxnSpace : public MemSpace
{
  public:
    struct LogEntry
    {
        bool is_load;
        Addr addr;
        std::uint32_t size;
        std::vector<std::uint8_t> data;
    };

    explicit TxnSpace(const FunctionalView& view) : view_(view) {}

    void
    read(Addr addr, void* buf, std::size_t len) override
    {
        view_(addr, buf, len);
        // Newer buffered writes overlay the functional state.
        for (const auto& e : log_) {
            if (e.is_load)
                continue;
            const Addr lo = std::max(addr, e.addr);
            const Addr hi =
                std::min(addr + len, e.addr + e.data.size());
            if (lo < hi) {
                std::memcpy(static_cast<std::uint8_t*>(buf) + (lo - addr),
                            e.data.data() + (lo - e.addr), hi - lo);
            }
        }
        log_.push_back(LogEntry{true, addr,
                                static_cast<std::uint32_t>(len), {}});
    }

    void
    write(Addr addr, const void* buf, std::size_t len) override
    {
        const auto* p = static_cast<const std::uint8_t*>(buf);
        log_.push_back(LogEntry{false, addr,
                                static_cast<std::uint32_t>(len),
                                std::vector<std::uint8_t>(p, p + len)});
    }

    std::vector<LogEntry>& log() { return log_; }

  private:
    const FunctionalView& view_;
    std::vector<LogEntry> log_;
};

} // namespace

KvWorkload::KvWorkload(const Params& p) : p_(p), rng_(p.seed)
{
    fatal_if(p_.value_size == 0 || p_.value_size > 4096,
             "value size out of range");
    fatal_if(p_.search_frac + p_.insert_frac > 1.0,
             "operation mix exceeds 1.0");
    zipf_ = makeKeyGenerator(p_);
}

std::unique_ptr<ZipfianGenerator>
KvWorkload::makeKeyGenerator(const Params& p)
{
    if (p.zipf_theta == 0.0)
        return nullptr;
    return std::make_unique<ZipfianGenerator>(p.key_space, p.zipf_theta);
}

void
KvWorkload::buildInitialImage(const Params& p, HostMemSpace& img)
{
    SimHeap heap(heapBase(), p.phys_size - heapBase());
    heap.format(img);
    Rng init_rng(p.seed + 0x1234);
    std::vector<std::uint8_t> value(p.value_size);
    if (p.structure == Structure::HashTable) {
        SimHashTable table(tableHeaderAddr(), heap);
        table.create(img, p.hash_buckets);
        for (std::uint64_t i = 0; i < p.initial_keys; ++i) {
            const std::uint64_t key = init_rng.below(p.key_space);
            fillValue(key, 0, value.data(), p.value_size);
            table.insert(img, key, value.data(), p.value_size);
        }
    } else {
        SimRbTree tree(tableHeaderAddr(), heap);
        tree.create(img);
        for (std::uint64_t i = 0; i < p.initial_keys; ++i) {
            const std::uint64_t key = init_rng.below(p.key_space);
            fillValue(key, 0, value.data(), p.value_size);
            tree.insert(img, key, value.data(), p.value_size);
        }
    }
}

void
KvWorkload::applyTxn(const Params& p, MemSpace& mem, Rng& rng,
                     std::uint64_t txn_no, const ZipfianGenerator* zipf)
{
    SimHeap heap(heapBase(), p.phys_size - heapBase());
    const double dice = rng.uniform();
    const std::uint64_t key = zipf != nullptr
                                  ? zipf->nextScrambled(rng)
                                  : rng.below(p.key_space);

    std::vector<std::uint8_t> value(p.value_size);
    auto run = [&](auto& store) {
        if (dice < p.search_frac) {
            Addr va = 0;
            std::uint32_t vl = 0;
            if (store.find(mem, key, &va, &vl)) {
                // Read the full value, as a real GET would.
                std::vector<std::uint8_t> out(vl);
                mem.read(va, out.data(), vl);
            }
        } else if (dice < p.search_frac + p.insert_frac) {
            fillValue(key, txn_no, value.data(), p.value_size);
            store.insert(mem, key, value.data(), p.value_size);
        } else {
            store.erase(mem, key);
        }
    };

    if (p.structure == Structure::HashTable) {
        SimHashTable table(tableHeaderAddr(), heap);
        run(table);
    } else {
        SimRbTree tree(tableHeaderAddr(), heap);
        run(tree);
    }
}

void
KvWorkload::init(MemController& mem)
{
    mem_ = &mem;
    HostMemSpace img(p_.phys_size);
    buildInitialImage(p_, img);
    // Load only the touched ranges of the sparse image: controllers
    // start zeroed and loadImage is a pure store write, so skipping
    // the untouched (all-zero) ranges lands the identical image at
    // O(touched) cost — what makes a multi-GiB phys_size feasible.
    img.forEachTouchedRange(
        [&mem](Addr a, const std::uint8_t* data, std::size_t len) {
            mem.loadImage(a, data, len);
        });
    if (!fview_) {
        // Fall back to the controller's visible state (no caches).
        fview_ = [this](Addr a, void* buf, std::size_t len) {
            mem_->functionalRead(a, buf, len);
        };
    }
}

void
KvWorkload::planNextTxn()
{
    panic_if(!fview_, "KvWorkload used without a functional view");
    TxnSpace space(fview_);
    applyTxn(p_, space, rng_, ++txns_planned_, zipf_.get());
    for (auto& e : space.log()) {
        PlannedOp op;
        op.is_load = e.is_load;
        op.addr = e.addr;
        op.size = e.size;
        op.data = std::move(e.data);
        ops_.push_back(std::move(op));
    }
    compute_pending_ = true;
}

bool
KvWorkload::next(WorkOp& op)
{
    if (ops_.empty() && !compute_pending_) {
        if (p_.total_txns != 0 && txns_planned_ >= p_.total_txns)
            return false;
        planNextTxn();
    }

    if (compute_pending_) {
        compute_pending_ = false;
        op.kind = WorkOp::Kind::Compute;
        op.count = p_.compute_per_txn;
        return true;
    }

    cur_ = std::move(ops_.front());
    ops_.pop_front();
    op.addr = cur_.addr;
    op.size = cur_.size;
    if (cur_.is_load) {
        op.kind = WorkOp::Kind::Load;
    } else {
        op.kind = WorkOp::Kind::Store;
        op.data = cur_.data.data();
    }
    if (ops_.empty())
        ++txns_completed_;
    return true;
}

std::vector<std::uint8_t>
KvWorkload::snapshot() const
{
    // [rng][planned][completed][compute_pending][n_ops]{op...}
    std::size_t size = sizeof(Rng) + 8 + 8 + 1 + 8;
    for (const auto& o : ops_)
        size += 1 + 8 + 4 + (o.is_load ? 0 : o.data.size());

    std::vector<std::uint8_t> blob(size);
    std::uint8_t* out = blob.data();
    std::memcpy(out, &rng_, sizeof(Rng));
    out += sizeof(Rng);
    std::memcpy(out, &txns_planned_, 8);
    out += 8;
    std::memcpy(out, &txns_completed_, 8);
    out += 8;
    *out++ = compute_pending_ ? 1 : 0;
    const std::uint64_t n = ops_.size();
    std::memcpy(out, &n, 8);
    out += 8;
    for (const auto& o : ops_) {
        *out++ = o.is_load ? 1 : 0;
        std::memcpy(out, &o.addr, 8);
        out += 8;
        std::memcpy(out, &o.size, 4);
        out += 4;
        if (!o.is_load) {
            std::memcpy(out, o.data.data(), o.data.size());
            out += o.data.size();
        }
    }
    panic_if(out != blob.data() + blob.size(), "snapshot size mismatch");
    return blob;
}

void
KvWorkload::restore(const std::vector<std::uint8_t>& blob)
{
    panic_if(blob.size() < sizeof(Rng) + 25, "short kv snapshot");
    const std::uint8_t* in = blob.data();
    std::memcpy(&rng_, in, sizeof(Rng));
    in += sizeof(Rng);
    std::memcpy(&txns_planned_, in, 8);
    in += 8;
    std::memcpy(&txns_completed_, in, 8);
    in += 8;
    compute_pending_ = (*in++ != 0);
    std::uint64_t n = 0;
    std::memcpy(&n, in, 8);
    in += 8;
    ops_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
        PlannedOp o;
        o.is_load = (*in++ != 0);
        std::memcpy(&o.addr, in, 8);
        in += 8;
        std::memcpy(&o.size, in, 4);
        in += 4;
        if (!o.is_load) {
            o.data.assign(in, in + o.size);
            in += o.size;
        }
        ops_.push_back(std::move(o));
    }
    panic_if(in != blob.data() + blob.size(), "corrupt kv snapshot");
}

void
KvWorkload::runReference(const Params& p, std::uint64_t txns,
                         HostMemSpace& out)
{
    buildInitialImage(p, out);
    Rng rng(p.seed);
    const std::unique_ptr<ZipfianGenerator> zipf = makeKeyGenerator(p);
    for (std::uint64_t t = 1; t <= txns; ++t)
        applyTxn(p, out, rng, t, zipf.get());
}

void
KvWorkload::validateStructure(const Params& p, MemSpace& mem)
{
    SimHeap heap(heapBase(), p.phys_size - heapBase());
    if (p.structure == Structure::HashTable) {
        SimHashTable table(tableHeaderAddr(), heap);
        table.validate(mem);
    } else {
        SimRbTree tree(tableHeaderAddr(), heap);
        tree.validate(mem);
    }
}

} // namespace thynvm
