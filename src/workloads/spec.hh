/**
 * @file
 * Synthetic stand-ins for the eight memory-intensive SPEC CPU2006
 * applications evaluated in Figure 11 of the paper.
 *
 * Substitution (see DESIGN.md §1): each benchmark is modeled by its
 * first-order memory behaviour — memory-instruction fraction, working
 * set size, streaming/random mix, and write share — which is what
 * determines the IPC sensitivity to checkpointing that the figure
 * reports. Parameters are calibrated from published characterizations
 * of the suite.
 */

#ifndef THYNVM_WORKLOADS_SPEC_HH
#define THYNVM_WORKLOADS_SPEC_HH

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "cpu/workload.hh"

namespace thynvm {

/**
 * Behavioural profile of one SPEC application.
 */
struct SpecProfile
{
    const char* name;
    /** Fraction of instructions that access memory. */
    double mem_ratio;
    /** Working-set size in bytes. */
    std::size_t wss;
    /** Fraction of accesses that stream sequentially. */
    double streaming_frac;
    /** Fraction of memory accesses that are writes. */
    double write_frac;
    /** Typical access size in bytes. */
    std::uint32_t access_size;
};

/** The eight profiles used for Figure 11. */
const std::vector<SpecProfile>& specProfiles();

/** Profile looked up by name; fatal if unknown. */
const SpecProfile& specProfile(const std::string& name);

/**
 * Generator realizing a SpecProfile as a CPU op stream.
 */
class SpecWorkload : public Workload
{
  public:
    /**
     * @param profile behavioural parameters.
     * @param base physical base address of the working set.
     * @param total_instructions instruction budget (0 = unbounded).
     * @param seed RNG seed.
     */
    SpecWorkload(const SpecProfile& profile, Addr base,
                 std::uint64_t total_instructions, std::uint64_t seed)
        : p_(profile), base_(base), budget_(total_instructions),
          rng_(seed)
    {
        store_buf_.resize(p_.access_size);
    }

    bool
    next(WorkOp& op) override
    {
        if (budget_ != 0 && retired_ >= budget_)
            return false;

        if (!compute_emitted_) {
            compute_emitted_ = true;
            // Geometric-ish burst of non-memory instructions so that
            // the long-run memory ratio matches the profile.
            const double per_mem = (1.0 - p_.mem_ratio) / p_.mem_ratio;
            const std::uint64_t burst = 1 + rng_.below(
                static_cast<std::uint64_t>(2.0 * per_mem) + 1);
            retired_ += burst;
            op.kind = WorkOp::Kind::Compute;
            op.count = burst;
            return true;
        }
        compute_emitted_ = false;
        retired_ += 1;

        const std::uint64_t slots = p_.wss / p_.access_size;
        Addr addr;
        if (rng_.uniform() < p_.streaming_frac) {
            addr = base_ + cursor_ * p_.access_size;
            cursor_ = (cursor_ + 1) % slots;
        } else {
            addr = base_ + rng_.below(slots) * p_.access_size;
        }

        op.addr = addr;
        op.size = p_.access_size;
        if (rng_.uniform() < p_.write_frac) {
            op.kind = WorkOp::Kind::Store;
            std::uint64_t v = addr ^ (retired_ * 0x9e3779b97f4a7c15ULL);
            for (std::size_t i = 0; i < store_buf_.size(); ++i)
                store_buf_[i] =
                    static_cast<std::uint8_t>(v >> ((i % 8) * 8));
            op.data = store_buf_.data();
        } else {
            op.kind = WorkOp::Kind::Load;
        }
        return true;
    }

    std::vector<std::uint8_t>
    snapshot() const override
    {
        std::vector<std::uint8_t> blob(sizeof(State));
        State s{rng_, retired_, cursor_, compute_emitted_};
        std::memcpy(blob.data(), &s, sizeof(s));
        return blob;
    }

    void
    restore(const std::vector<std::uint8_t>& blob) override
    {
        panic_if(blob.size() != sizeof(State), "bad spec snapshot");
        State s{rng_, 0, 0, false};
        std::memcpy(&s, blob.data(), sizeof(s));
        rng_ = s.rng;
        retired_ = s.retired;
        cursor_ = s.cursor;
        compute_emitted_ = s.compute_emitted;
    }

    /** Instructions retired by the generator's own accounting. */
    std::uint64_t retired() const { return retired_; }

  private:
    struct State
    {
        Rng rng;
        std::uint64_t retired;
        std::uint64_t cursor;
        bool compute_emitted;
    };

    SpecProfile p_;
    Addr base_;
    std::uint64_t budget_;
    Rng rng_;
    std::uint64_t retired_ = 0;
    std::uint64_t cursor_ = 0;
    bool compute_emitted_ = false;
    std::vector<std::uint8_t> store_buf_;
};

} // namespace thynvm

#endif // THYNVM_WORKLOADS_SPEC_HH
