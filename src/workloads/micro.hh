/**
 * @file
 * Micro-benchmark workloads (paper §5.1): Random, Streaming, and
 * Sliding access patterns over a large array, with 1:1 read/write mix.
 */

#ifndef THYNVM_WORKLOADS_MICRO_HH
#define THYNVM_WORKLOADS_MICRO_HH

#include <cstring>

#include "common/rng.hh"
#include "cpu/workload.hh"

namespace thynvm {

/**
 * Synthetic access-pattern generator.
 */
class MicroWorkload : public Workload
{
  public:
    enum class Pattern
    {
        Random,    //!< uniform random accesses over the array
        Streaming, //!< sequential sweep over the array
        Sliding,   //!< random accesses within a window that slides
    };

    struct Params
    {
        Pattern pattern = Pattern::Random;
        /** Base physical address of the array. */
        Addr base = 0;
        /** Array size in bytes. */
        std::size_t array_bytes = 16u << 20;
        /** Bytes per access. */
        std::uint32_t access_size = 64;
        /** Fraction of accesses that are reads (paper: 1:1). */
        double read_fraction = 0.5;
        /** Window size for the Sliding pattern. */
        std::size_t window_bytes = 256 * 1024;
        /** Accesses within a window before it slides. */
        std::uint64_t accesses_per_window = 2048;
        /** Non-memory instructions between accesses. */
        std::uint64_t compute_per_access = 16;
        /** Total memory accesses (0 = unbounded). */
        std::uint64_t total_accesses = 0;
        /** RNG seed. */
        std::uint64_t seed = 1;
    };

    explicit MicroWorkload(const Params& p) : p_(p), rng_(p.seed)
    {
        store_buf_.resize(p_.access_size);
    }

    bool
    next(WorkOp& op) override
    {
        if (p_.total_accesses != 0 && issued_ >= p_.total_accesses)
            return false;

        if (!compute_emitted_) {
            compute_emitted_ = true;
            op.kind = WorkOp::Kind::Compute;
            op.count = p_.compute_per_access;
            return true;
        }
        compute_emitted_ = false;
        ++issued_;

        const Addr addr = nextAddr();
        const bool is_read = rng_.uniform() < p_.read_fraction;
        op.addr = addr;
        op.size = p_.access_size;
        if (is_read) {
            op.kind = WorkOp::Kind::Load;
        } else {
            op.kind = WorkOp::Kind::Store;
            fillPattern(addr);
            op.data = store_buf_.data();
        }
        return true;
    }

    std::vector<std::uint8_t>
    snapshot() const override
    {
        std::vector<std::uint8_t> blob(sizeof(State));
        State s{rng_, issued_, cursor_, window_base_, window_count_,
                compute_emitted_};
        std::memcpy(blob.data(), &s, sizeof(s));
        return blob;
    }

    void
    restore(const std::vector<std::uint8_t>& blob) override
    {
        panic_if(blob.size() != sizeof(State), "bad micro snapshot");
        State s{rng_, 0, 0, 0, 0, false};
        std::memcpy(&s, blob.data(), sizeof(s));
        rng_ = s.rng;
        issued_ = s.issued;
        cursor_ = s.cursor;
        window_base_ = s.window_base;
        window_count_ = s.window_count;
        compute_emitted_ = s.compute_emitted;
    }

    /** Memory accesses issued so far. */
    std::uint64_t issued() const { return issued_; }

  private:
    struct State
    {
        Rng rng;
        std::uint64_t issued;
        std::uint64_t cursor;
        std::uint64_t window_base;
        std::uint64_t window_count;
        bool compute_emitted;
    };

    Addr
    nextAddr()
    {
        const std::uint64_t slots = p_.array_bytes / p_.access_size;
        switch (p_.pattern) {
          case Pattern::Random:
            return p_.base + rng_.below(slots) * p_.access_size;
          case Pattern::Streaming: {
            const Addr a = p_.base + cursor_ * p_.access_size;
            cursor_ = (cursor_ + 1) % slots;
            return a;
          }
          case Pattern::Sliding: {
            const std::uint64_t window_slots =
                p_.window_bytes / p_.access_size;
            if (window_count_ >= p_.accesses_per_window) {
                window_count_ = 0;
                window_base_ =
                    (window_base_ + window_slots) % slots;
            }
            ++window_count_;
            const std::uint64_t slot =
                (window_base_ + rng_.below(window_slots)) % slots;
            return p_.base + slot * p_.access_size;
          }
        }
        panic("unhandled pattern");
    }

    void
    fillPattern(Addr addr)
    {
        // Deterministic, address- and sequence-dependent payload so
        // consistency checks can detect lost or misplaced writes. One
        // little-endian word store per 8 bytes produces exactly the
        // byte-at-a-time `v >> ((i % 8) * 8)` sequence this generator
        // has always emitted, at a fraction of the host cost.
        std::uint64_t v = addr * 0x9e3779b97f4a7c15ULL + issued_;
        const std::size_t size = store_buf_.size();
        std::size_t i = 0;
        for (; i + 8 <= size; i += 8) {
            std::memcpy(store_buf_.data() + i, &v, 8);
            v = v * 6364136223846793005ULL + 1442695040888963407ULL;
        }
        for (; i < size; ++i)
            store_buf_[i] = static_cast<std::uint8_t>(v >> ((i % 8) * 8));
    }

    Params p_;
    Rng rng_;
    std::uint64_t issued_ = 0;
    std::uint64_t cursor_ = 0;
    std::uint64_t window_base_ = 0;
    std::uint64_t window_count_ = 0;
    bool compute_emitted_ = false;
    std::vector<std::uint8_t> store_buf_;
};

} // namespace thynvm

#endif // THYNVM_WORKLOADS_MICRO_HH
