/**
 * @file
 * Byte-addressable memory-space abstraction for workload data
 * structures.
 *
 * The key-value stores (paper §5.1, "storage benchmarks") are real data
 * structures whose every field lives in *simulated* physical memory.
 * They are written once against this interface and run against:
 *  - HostMemSpace: a plain buffer, used to build initial heap images
 *    and as the reference model in consistency checks;
 *  - the transaction-planning overlay inside KvWorkload, which logs
 *    reads and buffers writes so the operations can be replayed through
 *    the timed CPU path.
 */

#ifndef THYNVM_WORKLOADS_MEMSPACE_HH
#define THYNVM_WORKLOADS_MEMSPACE_HH

#include <cstring>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "mem/paged_bytes.hh"

namespace thynvm {

/**
 * A flat byte-addressable space.
 */
class MemSpace
{
  public:
    virtual ~MemSpace() = default;

    /** Read @p len bytes at @p addr. */
    virtual void read(Addr addr, void* buf, std::size_t len) = 0;
    /** Write @p len bytes at @p addr. */
    virtual void write(Addr addr, const void* buf, std::size_t len) = 0;

    /** Typed scalar read. */
    template <typename T>
    T
    readT(Addr addr)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Typed scalar write. */
    template <typename T>
    void
    writeT(Addr addr, const T& v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &v, sizeof(T));
    }
};

/**
 * A host-resident memory space on a sparse COW paged store, so
 * GB-scale initial images only cost host memory for touched pages.
 */
class HostMemSpace : public MemSpace
{
  public:
    explicit HostMemSpace(std::size_t size) : bytes_(size) {}

    void
    read(Addr addr, void* buf, std::size_t len) override
    {
        panic_if(addr + len > bytes_.size(), "host space read overflow");
        bytes_.read(addr, buf, len);
    }

    void
    write(Addr addr, const void* buf, std::size_t len) override
    {
        panic_if(addr + len > bytes_.size(), "host space write overflow");
        bytes_.write(addr, buf, len);
    }

    /** Materialized contents (for byte comparisons in tests). */
    std::vector<std::uint8_t>
    bytes() const
    {
        std::vector<std::uint8_t> out(bytes_.size(), 0);
        bytes_.forEachTouchedRange(
            0, bytes_.size(),
            [&](Addr a, const std::uint8_t* data, std::size_t len) {
                std::memcpy(out.data() + a, data, len);
            });
        return out;
    }

    /**
     * Enumerate touched bytes as fn(addr, data, len), ascending; any
     * byte not reported is zero (see PagedBytes). Sparse image loads
     * iterate this instead of shipping the whole capacity.
     */
    template <typename Fn>
    void
    forEachTouchedRange(Fn&& fn) const
    {
        bytes_.forEachTouchedRange(0, bytes_.size(),
                                   std::forward<Fn>(fn));
    }

    std::size_t size() const { return bytes_.size(); }

  private:
    PagedBytes bytes_;
};

/**
 * A read-only MemSpace view over a byte-range reader function (e.g.,
 * the functional view through a simulated cache hierarchy). Used for
 * structural validation of live simulated data structures.
 */
class ReadOnlyMemSpace : public MemSpace
{
  public:
    using Reader = std::function<void(Addr, void*, std::size_t)>;

    explicit ReadOnlyMemSpace(Reader reader) : reader_(std::move(reader))
    {}

    void
    read(Addr addr, void* buf, std::size_t len) override
    {
        reader_(addr, buf, len);
    }

    void
    write(Addr, const void*, std::size_t) override
    {
        panic("write through a read-only memory space");
    }

  private:
    Reader reader_;
};

} // namespace thynvm

#endif // THYNVM_WORKLOADS_MEMSPACE_HH
