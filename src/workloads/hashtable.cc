/**
 * @file
 * SimHashTable implementation.
 */

#include "workloads/hashtable.hh"

#include <cstddef>

namespace thynvm {

void
SimHashTable::create(MemSpace& mem, std::uint64_t buckets) const
{
    mem.writeT<std::uint64_t>(header_, kMagic);
    mem.writeT<std::uint64_t>(header_ + 8, buckets);
    mem.writeT<std::uint64_t>(header_ + 16, 0); // count
    const Addr arr = heap_.alloc(mem, buckets * 8);
    mem.writeT<std::uint64_t>(header_ + 24, arr);
    for (std::uint64_t b = 0; b < buckets; ++b)
        mem.writeT<std::uint64_t>(arr + b * 8, 0);
}

bool
SimHashTable::find(MemSpace& mem, std::uint64_t key, Addr* value_addr,
                   std::uint32_t* value_len) const
{
    const Addr arr = bucketsAddr(mem);
    const std::uint64_t b = hashKey(key) % nbuckets(mem);
    std::uint64_t node = mem.readT<std::uint64_t>(arr + b * 8);
    while (node != 0) {
        Node n;
        mem.read(node, &n, sizeof(n));
        if (n.key == key) {
            if (value_addr != nullptr)
                *value_addr = n.value_addr;
            if (value_len != nullptr)
                *value_len = n.value_len;
            return true;
        }
        node = n.next;
    }
    return false;
}

void
SimHashTable::insert(MemSpace& mem, std::uint64_t key, const void* value,
                     std::uint32_t len) const
{
    const Addr arr = bucketsAddr(mem);
    const std::uint64_t b = hashKey(key) % nbuckets(mem);
    std::uint64_t node = mem.readT<std::uint64_t>(arr + b * 8);
    while (node != 0) {
        Node n;
        mem.read(node, &n, sizeof(n));
        if (n.key == key) {
            // Update. Reuse the allocation when the size class fits.
            if (SimHeap::classOf(n.value_len) == SimHeap::classOf(len)) {
                mem.write(n.value_addr, value, len);
                if (n.value_len != len) {
                    n.value_len = len;
                    mem.write(node, &n, sizeof(n));
                }
            } else {
                heap_.free(mem, n.value_addr, n.value_len);
                n.value_addr = heap_.alloc(mem, len);
                n.value_len = len;
                mem.write(n.value_addr, value, len);
                mem.write(node, &n, sizeof(n));
            }
            return;
        }
        node = n.next;
    }

    // Insert at chain head.
    Node n{};
    n.key = key;
    n.next = mem.readT<std::uint64_t>(arr + b * 8);
    n.value_addr = heap_.alloc(mem, len);
    n.value_len = len;
    mem.write(n.value_addr, value, len);
    const Addr node_addr = heap_.alloc(mem, sizeof(Node));
    mem.write(node_addr, &n, sizeof(n));
    mem.writeT<std::uint64_t>(arr + b * 8, node_addr);
    mem.writeT<std::uint64_t>(header_ + 16, count(mem) + 1);
}

bool
SimHashTable::erase(MemSpace& mem, std::uint64_t key) const
{
    const Addr arr = bucketsAddr(mem);
    const std::uint64_t b = hashKey(key) % nbuckets(mem);
    Addr link = arr + b * 8;
    std::uint64_t node = mem.readT<std::uint64_t>(link);
    while (node != 0) {
        Node n;
        mem.read(node, &n, sizeof(n));
        if (n.key == key) {
            mem.writeT<std::uint64_t>(link, n.next);
            heap_.free(mem, n.value_addr, n.value_len);
            heap_.free(mem, node, sizeof(Node));
            mem.writeT<std::uint64_t>(header_ + 16, count(mem) - 1);
            return true;
        }
        link = node + offsetof(Node, next);
        node = n.next;
    }
    return false;
}

std::uint64_t
SimHashTable::count(MemSpace& mem) const
{
    return mem.readT<std::uint64_t>(header_ + 16);
}

void
SimHashTable::validate(MemSpace& mem) const
{
    panic_if(mem.readT<std::uint64_t>(header_) != kMagic,
             "hash table header corrupt");
    const Addr arr = bucketsAddr(mem);
    const std::uint64_t buckets = nbuckets(mem);
    std::uint64_t seen = 0;
    for (std::uint64_t b = 0; b < buckets; ++b) {
        std::uint64_t node = mem.readT<std::uint64_t>(arr + b * 8);
        std::uint64_t chain_len = 0;
        while (node != 0) {
            Node n;
            mem.read(node, &n, sizeof(n));
            panic_if(hashKey(n.key) % buckets != b,
                     "node in the wrong bucket");
            panic_if(n.value_addr == 0 && n.value_len != 0,
                     "value pointer corrupt");
            ++seen;
            panic_if(++chain_len > seen,
                     "cycle detected in hash chain");
            node = n.next;
        }
    }
    panic_if(seen != count(mem), "hash table count mismatch");
}

} // namespace thynvm
