/**
 * @file
 * SimRbTree implementation (CLRS algorithms, null = address 0).
 *
 * All pointer surgery is done with field-granularity reads and writes
 * so the memory traffic resembles a real in-memory tree.
 */

#include "workloads/rbtree.hh"

namespace thynvm {

namespace {

constexpr Addr kOffKey = 0;
constexpr Addr kOffLeft = 8;
constexpr Addr kOffRight = 16;
constexpr Addr kOffParent = 24;
constexpr Addr kOffValueAddr = 32;
constexpr Addr kOffValueLen = 40;
constexpr Addr kOffColor = 44;

std::uint64_t
getP(MemSpace& mem, Addr node, Addr off)
{
    return mem.readT<std::uint64_t>(node + off);
}

void
setP(MemSpace& mem, Addr node, Addr off, std::uint64_t v)
{
    mem.writeT<std::uint64_t>(node + off, v);
}

std::uint64_t
keyOf(MemSpace& mem, Addr n)
{
    return getP(mem, n, kOffKey);
}

Addr
leftOf(MemSpace& mem, Addr n)
{
    return getP(mem, n, kOffLeft);
}

Addr
rightOf(MemSpace& mem, Addr n)
{
    return getP(mem, n, kOffRight);
}

Addr
parentOf(MemSpace& mem, Addr n)
{
    return getP(mem, n, kOffParent);
}

void
setColor(MemSpace& mem, Addr n, std::uint32_t c)
{
    mem.writeT<std::uint32_t>(n + kOffColor, c);
}

} // namespace

SimRbTree::Node
SimRbTree::loadNode(MemSpace& mem, Addr a) const
{
    panic_if(a == 0, "loading the null node");
    Node n;
    mem.read(a, &n, sizeof(n));
    return n;
}

void
SimRbTree::storeNode(MemSpace& mem, Addr a, const Node& n) const
{
    mem.write(a, &n, sizeof(n));
}

Addr
SimRbTree::root(MemSpace& mem) const
{
    return mem.readT<std::uint64_t>(header_ + 8);
}

void
SimRbTree::setRoot(MemSpace& mem, Addr a) const
{
    mem.writeT<std::uint64_t>(header_ + 8, a);
}

std::uint64_t
SimRbTree::count(MemSpace& mem) const
{
    return mem.readT<std::uint64_t>(header_ + 16);
}

void
SimRbTree::setCount(MemSpace& mem, std::uint64_t c) const
{
    mem.writeT<std::uint64_t>(header_ + 16, c);
}

std::uint32_t
SimRbTree::colorOf(MemSpace& mem, Addr a) const
{
    if (a == 0)
        return kBlack; // null nodes are black
    return mem.readT<std::uint32_t>(a + kOffColor);
}

void
SimRbTree::create(MemSpace& mem) const
{
    mem.writeT<std::uint64_t>(header_, kMagic);
    setRoot(mem, 0);
    setCount(mem, 0);
}

bool
SimRbTree::find(MemSpace& mem, std::uint64_t key, Addr* value_addr,
                std::uint32_t* value_len) const
{
    Addr n = root(mem);
    while (n != 0) {
        const std::uint64_t k = keyOf(mem, n);
        if (key == k) {
            if (value_addr != nullptr)
                *value_addr = getP(mem, n, kOffValueAddr);
            if (value_len != nullptr)
                *value_len = mem.readT<std::uint32_t>(n + kOffValueLen);
            return true;
        }
        n = key < k ? leftOf(mem, n) : rightOf(mem, n);
    }
    return false;
}

void
SimRbTree::rotateLeft(MemSpace& mem, Addr x) const
{
    const Addr y = rightOf(mem, x);
    const Addr yl = leftOf(mem, y);
    setP(mem, x, kOffRight, yl);
    if (yl != 0)
        setP(mem, yl, kOffParent, x);
    const Addr xp = parentOf(mem, x);
    setP(mem, y, kOffParent, xp);
    if (xp == 0)
        setRoot(mem, y);
    else if (leftOf(mem, xp) == x)
        setP(mem, xp, kOffLeft, y);
    else
        setP(mem, xp, kOffRight, y);
    setP(mem, y, kOffLeft, x);
    setP(mem, x, kOffParent, y);
}

void
SimRbTree::rotateRight(MemSpace& mem, Addr x) const
{
    const Addr y = leftOf(mem, x);
    const Addr yr = rightOf(mem, y);
    setP(mem, x, kOffLeft, yr);
    if (yr != 0)
        setP(mem, yr, kOffParent, x);
    const Addr xp = parentOf(mem, x);
    setP(mem, y, kOffParent, xp);
    if (xp == 0)
        setRoot(mem, y);
    else if (rightOf(mem, xp) == x)
        setP(mem, xp, kOffRight, y);
    else
        setP(mem, xp, kOffLeft, y);
    setP(mem, y, kOffRight, x);
    setP(mem, x, kOffParent, y);
}

void
SimRbTree::insert(MemSpace& mem, std::uint64_t key, const void* value,
                  std::uint32_t len) const
{
    // Descend to find the insertion point or an existing node.
    Addr parent = 0;
    Addr cur = root(mem);
    bool went_left = false;
    while (cur != 0) {
        const std::uint64_t k = keyOf(mem, cur);
        if (key == k) {
            // Update in place (mirrors SimHashTable::insert).
            const Addr va = getP(mem, cur, kOffValueAddr);
            const std::uint32_t vl =
                mem.readT<std::uint32_t>(cur + kOffValueLen);
            if (SimHeap::classOf(vl) == SimHeap::classOf(len)) {
                mem.write(va, value, len);
                if (vl != len)
                    mem.writeT<std::uint32_t>(cur + kOffValueLen, len);
            } else {
                heap_.free(mem, va, vl);
                const Addr nva = heap_.alloc(mem, len);
                mem.write(nva, value, len);
                setP(mem, cur, kOffValueAddr, nva);
                mem.writeT<std::uint32_t>(cur + kOffValueLen, len);
            }
            return;
        }
        parent = cur;
        went_left = key < k;
        cur = went_left ? leftOf(mem, cur) : rightOf(mem, cur);
    }

    Node n{};
    n.key = key;
    n.parent = parent;
    n.color = kRed;
    n.value_addr = heap_.alloc(mem, len);
    n.value_len = len;
    mem.write(n.value_addr, value, len);
    const Addr z = heap_.alloc(mem, sizeof(Node));
    storeNode(mem, z, n);

    if (parent == 0)
        setRoot(mem, z);
    else if (went_left)
        setP(mem, parent, kOffLeft, z);
    else
        setP(mem, parent, kOffRight, z);

    insertFixup(mem, z);
    setCount(mem, count(mem) + 1);
}

void
SimRbTree::insertFixup(MemSpace& mem, Addr z) const
{
    while (true) {
        const Addr zp = parentOf(mem, z);
        if (zp == 0 || colorOf(mem, zp) == kBlack)
            break;
        const Addr zpp = parentOf(mem, zp);
        panic_if(zpp == 0, "red root during fixup");
        if (zp == leftOf(mem, zpp)) {
            const Addr y = rightOf(mem, zpp); // uncle
            if (colorOf(mem, y) == kRed) {
                setColor(mem, zp, kBlack);
                setColor(mem, y, kBlack);
                setColor(mem, zpp, kRed);
                z = zpp;
            } else {
                if (z == rightOf(mem, zp)) {
                    z = zp;
                    rotateLeft(mem, z);
                }
                const Addr nzp = parentOf(mem, z);
                const Addr nzpp = parentOf(mem, nzp);
                setColor(mem, nzp, kBlack);
                setColor(mem, nzpp, kRed);
                rotateRight(mem, nzpp);
            }
        } else {
            const Addr y = leftOf(mem, zpp); // uncle
            if (colorOf(mem, y) == kRed) {
                setColor(mem, zp, kBlack);
                setColor(mem, y, kBlack);
                setColor(mem, zpp, kRed);
                z = zpp;
            } else {
                if (z == leftOf(mem, zp)) {
                    z = zp;
                    rotateRight(mem, z);
                }
                const Addr nzp = parentOf(mem, z);
                const Addr nzpp = parentOf(mem, nzp);
                setColor(mem, nzp, kBlack);
                setColor(mem, nzpp, kRed);
                rotateLeft(mem, nzpp);
            }
        }
    }
    setColor(mem, root(mem), kBlack);
}

void
SimRbTree::transplant(MemSpace& mem, Addr u, Addr v) const
{
    const Addr up = parentOf(mem, u);
    if (up == 0)
        setRoot(mem, v);
    else if (leftOf(mem, up) == u)
        setP(mem, up, kOffLeft, v);
    else
        setP(mem, up, kOffRight, v);
    if (v != 0)
        setP(mem, v, kOffParent, up);
}

Addr
SimRbTree::minimum(MemSpace& mem, Addr x) const
{
    Addr l = leftOf(mem, x);
    while (l != 0) {
        x = l;
        l = leftOf(mem, x);
    }
    return x;
}

bool
SimRbTree::erase(MemSpace& mem, std::uint64_t key) const
{
    // Locate z.
    Addr z = root(mem);
    while (z != 0) {
        const std::uint64_t k = keyOf(mem, z);
        if (key == k)
            break;
        z = key < k ? leftOf(mem, z) : rightOf(mem, z);
    }
    if (z == 0)
        return false;

    const Addr zva = getP(mem, z, kOffValueAddr);
    const std::uint32_t zvl = mem.readT<std::uint32_t>(z + kOffValueLen);

    Addr y = z;
    std::uint32_t y_color = colorOf(mem, y);
    Addr x;
    Addr x_parent;

    if (leftOf(mem, z) == 0) {
        x = rightOf(mem, z);
        x_parent = parentOf(mem, z);
        transplant(mem, z, x);
    } else if (rightOf(mem, z) == 0) {
        x = leftOf(mem, z);
        x_parent = parentOf(mem, z);
        transplant(mem, z, x);
    } else {
        y = minimum(mem, rightOf(mem, z));
        y_color = colorOf(mem, y);
        x = rightOf(mem, y);
        if (parentOf(mem, y) == z) {
            x_parent = y;
            if (x != 0)
                setP(mem, x, kOffParent, y);
        } else {
            x_parent = parentOf(mem, y);
            transplant(mem, y, x);
            const Addr zr = rightOf(mem, z);
            setP(mem, y, kOffRight, zr);
            setP(mem, zr, kOffParent, y);
        }
        transplant(mem, z, y);
        const Addr zl = leftOf(mem, z);
        setP(mem, y, kOffLeft, zl);
        setP(mem, zl, kOffParent, y);
        setColor(mem, y, colorOf(mem, z));
    }

    if (y_color == kBlack)
        eraseFixup(mem, x, x_parent);

    heap_.free(mem, zva, zvl);
    heap_.free(mem, z, sizeof(Node));
    setCount(mem, count(mem) - 1);
    return true;
}

void
SimRbTree::eraseFixup(MemSpace& mem, Addr x, Addr x_parent) const
{
    while (x != root(mem) && colorOf(mem, x) == kBlack) {
        if (x_parent == 0)
            break;
        if (x == leftOf(mem, x_parent)) {
            Addr w = rightOf(mem, x_parent);
            if (colorOf(mem, w) == kRed) {
                setColor(mem, w, kBlack);
                setColor(mem, x_parent, kRed);
                rotateLeft(mem, x_parent);
                w = rightOf(mem, x_parent);
            }
            if (colorOf(mem, leftOf(mem, w)) == kBlack &&
                colorOf(mem, rightOf(mem, w)) == kBlack) {
                setColor(mem, w, kRed);
                x = x_parent;
                x_parent = parentOf(mem, x);
            } else {
                if (colorOf(mem, rightOf(mem, w)) == kBlack) {
                    const Addr wl = leftOf(mem, w);
                    if (wl != 0)
                        setColor(mem, wl, kBlack);
                    setColor(mem, w, kRed);
                    rotateRight(mem, w);
                    w = rightOf(mem, x_parent);
                }
                setColor(mem, w, colorOf(mem, x_parent));
                setColor(mem, x_parent, kBlack);
                const Addr wr = rightOf(mem, w);
                if (wr != 0)
                    setColor(mem, wr, kBlack);
                rotateLeft(mem, x_parent);
                x = root(mem);
                x_parent = 0;
            }
        } else {
            Addr w = leftOf(mem, x_parent);
            if (colorOf(mem, w) == kRed) {
                setColor(mem, w, kBlack);
                setColor(mem, x_parent, kRed);
                rotateRight(mem, x_parent);
                w = leftOf(mem, x_parent);
            }
            if (colorOf(mem, rightOf(mem, w)) == kBlack &&
                colorOf(mem, leftOf(mem, w)) == kBlack) {
                setColor(mem, w, kRed);
                x = x_parent;
                x_parent = parentOf(mem, x);
            } else {
                if (colorOf(mem, leftOf(mem, w)) == kBlack) {
                    const Addr wr = rightOf(mem, w);
                    if (wr != 0)
                        setColor(mem, wr, kBlack);
                    setColor(mem, w, kRed);
                    rotateLeft(mem, w);
                    w = leftOf(mem, x_parent);
                }
                setColor(mem, w, colorOf(mem, x_parent));
                setColor(mem, x_parent, kBlack);
                const Addr wl = leftOf(mem, w);
                if (wl != 0)
                    setColor(mem, wl, kBlack);
                rotateRight(mem, x_parent);
                x = root(mem);
                x_parent = 0;
            }
        }
    }
    if (x != 0)
        setColor(mem, x, kBlack);
}

int
SimRbTree::validateSubtree(MemSpace& mem, Addr node, Addr parent,
                           std::uint64_t lo, std::uint64_t hi,
                           std::uint64_t* seen) const
{
    if (node == 0)
        return 1; // null nodes are black and contribute height 1

    const Node n = loadNode(mem, node);
    panic_if(n.parent != parent, "parent link corrupt");
    panic_if(n.key < lo || n.key > hi, "BST ordering violated");
    if (n.color == kRed) {
        panic_if(colorOf(mem, n.left) == kRed ||
                     colorOf(mem, n.right) == kRed,
                 "red-red edge");
    } else {
        panic_if(n.color != kBlack, "invalid node color");
    }
    ++*seen;

    const int lh = validateSubtree(mem, n.left, node, lo,
                                   n.key == 0 ? 0 : n.key - 1, seen);
    const int rh = validateSubtree(mem, n.right, node, n.key + 1, hi,
                                   seen);
    panic_if(lh != rh, "black height mismatch");
    return lh + (n.color == kBlack ? 1 : 0);
}

void
SimRbTree::validate(MemSpace& mem) const
{
    panic_if(mem.readT<std::uint64_t>(header_) != kMagic,
             "rbtree header corrupt");
    const Addr r = root(mem);
    panic_if(colorOf(mem, r) != kBlack, "root is not black");
    std::uint64_t seen = 0;
    validateSubtree(mem, r, 0, 0, ~0ull, &seen);
    panic_if(seen != count(mem), "rbtree count mismatch");
}

} // namespace thynvm
