/**
 * @file
 * A chained hash table living entirely in simulated memory.
 *
 * Represents the paper's hash-table key-value store (Figure 9a/10a).
 * Layout (all addresses are simulated physical addresses):
 *   header  : {magic, nbuckets, count, buckets_addr}
 *   buckets : nbuckets x u64 head-node pointers
 *   node    : {key, next, value_addr, value_len, pad} in the SimHeap
 *   value   : value_len bytes in the SimHeap
 */

#ifndef THYNVM_WORKLOADS_HASHTABLE_HH
#define THYNVM_WORKLOADS_HASHTABLE_HH

#include "workloads/simheap.hh"

namespace thynvm {

/**
 * Simulated-memory chained hash table with u64 keys and byte-string
 * values.
 */
class SimHashTable
{
  public:
    /**
     * @param header_addr address of the table header.
     * @param heap allocator used for nodes and values.
     */
    SimHashTable(Addr header_addr, const SimHeap& heap)
        : header_(header_addr), heap_(heap)
    {}

    /** Create an empty table with @p nbuckets buckets. */
    void create(MemSpace& mem, std::uint64_t nbuckets) const;

    /**
     * Look up @p key. Returns true and sets @p value_addr/@p value_len
     * if present.
     */
    bool find(MemSpace& mem, std::uint64_t key, Addr* value_addr,
              std::uint32_t* value_len) const;

    /**
     * Insert or update @p key with @p len value bytes at @p value.
     * Same-size updates overwrite the value allocation in place.
     */
    void insert(MemSpace& mem, std::uint64_t key, const void* value,
                std::uint32_t len) const;

    /** Erase @p key. Returns false if absent. */
    bool erase(MemSpace& mem, std::uint64_t key) const;

    /** Number of live keys. */
    std::uint64_t count(MemSpace& mem) const;

    /**
     * Structural self-check: walks every chain, verifies node
     * plausibility, and checks the stored count. Panics on corruption.
     */
    void validate(MemSpace& mem) const;

  private:
    struct Node
    {
        std::uint64_t key;
        std::uint64_t next;
        std::uint64_t value_addr;
        std::uint32_t value_len;
        std::uint32_t pad;
    };
    static_assert(sizeof(Node) == 32);

    static constexpr std::uint64_t kMagic = 0x484153485441424cull;

    Addr bucketsAddr(MemSpace& mem) const
    {
        return mem.readT<std::uint64_t>(header_ + 24);
    }
    std::uint64_t nbuckets(MemSpace& mem) const
    {
        return mem.readT<std::uint64_t>(header_ + 8);
    }
    static std::uint64_t
    hashKey(std::uint64_t key)
    {
        std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    Addr header_;
    SimHeap heap_;
};

} // namespace thynvm

#endif // THYNVM_WORKLOADS_HASHTABLE_HH
