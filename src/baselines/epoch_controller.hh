/**
 * @file
 * Shared machinery for the stop-the-world baseline controllers
 * (journaling and shadow paging, paper §5.1).
 *
 * Both baselines checkpoint with a traditional epoch model (Figure 3a):
 * at each epoch boundary the CPU is paused, volatile state is flushed,
 * the checkpoint is taken to completion, and only then does execution
 * resume. The whole window counts as checkpoint stall time.
 */

#ifndef THYNVM_BASELINES_EPOCH_CONTROLLER_HH
#define THYNVM_BASELINES_EPOCH_CONTROLLER_HH

#include <cstring>
#include <deque>

#include "mem/controller.hh"

namespace thynvm {

/**
 * Base class implementing the stop-the-world epoch loop.
 */
class EpochController : public MemController
{
  public:
    EpochController(EventQueue& eq, std::string name, Tick epoch_length)
        : MemController(eq, std::move(name)),
          epoch_length_(epoch_length),
          epoch_timer_([this] { requestEpochEnd(); }),
          boundary_event_([this] { tryBeginBoundary(); })
    {}

    void
    start() override
    {
        panic_if(started_, "controller started twice");
        started_ = true;
        armTimer();
    }

    /** Register the callback that resumes the paused CPU. */
    void setResumeClient(std::function<void()> cb)
    {
        resume_client_ = std::move(cb);
    }

    /** Force an early epoch boundary (e.g., on buffer overflow). */
    void
    requestEpochEnd() override
    {
        if (!started_ || halted_)
            return;
        boundary_requested_ = true;
        // Defer: the request may originate mid-way through an access
        // path; the checkpoint must only start between accesses. A
        // pending attempt is necessarily at this tick and covers us.
        if (!boundary_event_.scheduled())
            eventq_.schedule(boundary_event_, curTick());
    }

    /**
     * Stop initiating boundaries: cancel the epoch timer and refuse
     * future requests. An in-flight checkpoint completes normally (its
     * events are already scheduled), after which nothing re-arms, so
     * the queue drains — the termination handshake of the per-channel
     * kernel shards.
     */
    void
    halt() override
    {
        halted_ = true;
        if (epoch_timer_.scheduled())
            eventq_.deschedule(epoch_timer_);
        if (!ckpt_in_progress_)
            boundary_requested_ = false;
    }

    /** True while a stop-the-world checkpoint is running. */
    bool checkpointInProgress() const { return ckpt_in_progress_; }

    void
    persistCpuState(const std::vector<std::uint8_t>& blob) override
    {
        cpu_state_ = blob;
    }

    const std::vector<std::uint8_t>&
    recoveredCpuState() const override
    {
        return recovered_cpu_state_;
    }

  protected:
    /**
     * Subclass hook: take a complete checkpoint (all data durable, a
     * commit point written), then invoke @p done.
     */
    virtual void doCheckpoint(std::function<void()> done) = 0;

    /**
     * Stall an access until the running checkpoint finishes; the access
     * is replayed through accessBlock afterwards.
     */
    void
    stallAccess(Addr paddr, bool is_write, const std::uint8_t* wdata,
                std::function<void()> done)
    {
        Stalled s;
        s.paddr = paddr;
        s.is_write = is_write;
        if (is_write)
            std::memcpy(s.data.data(), wdata, kBlockSize);
        s.done = std::move(done);
        s.stalled_at = curTick();
        stalled_.push_back(std::move(s));
    }

    void
    armTimer()
    {
        if (halted_)
            return;
        if (epoch_timer_.scheduled())
            eventq_.deschedule(epoch_timer_);
        eventq_.schedule(epoch_timer_, curTick() + epoch_length_);
    }

    void
    tryBeginBoundary()
    {
        if (!started_ || !boundary_requested_ || ckpt_in_progress_)
            return;
        boundary_requested_ = false;
        ckpt_in_progress_ = true;
        crashPoint("boundary.begin");
        stall_start_ = curTick();
        if (epoch_timer_.scheduled())
            eventq_.deschedule(epoch_timer_);
        auto run = [this] {
            crashPoint("epoch.flush_done");
            doCheckpoint([this] { boundaryDone(); });
        };
        if (flush_)
            flush_(run);
        else
            run();
    }

    void
    boundaryDone()
    {
        crashPoint("ckpt.committed");
        ++epochs_;
        noteEpochCommitted();
        const Tick stalled = curTick() - stall_start_;
        ckpt_stall_time_ += static_cast<double>(stalled);
        ckpt_busy_time_ += static_cast<double>(stalled);
        ckpt_in_progress_ = false;
        if (resume_client_)
            resume_client_();
        armTimer();
        replayStalled();
        tryBeginBoundary();
    }

    void
    replayStalled()
    {
        auto stalled = std::move(stalled_);
        stalled_.clear();
        // Replays re-enter accessBlock but are the same program stores
        // that already counted toward app_write_bytes on first arrival.
        replaying_app_ = true;
        for (auto& s : stalled) {
            ckpt_stall_time_ +=
                static_cast<double>(curTick() - s.stalled_at);
            accessBlock(s.paddr, s.is_write, s.data.data(), nullptr,
                        TrafficSource::CpuWriteback, std::move(s.done));
        }
        replaying_app_ = false;
    }

    /** Reset the epoch machinery after a crash. */
    void
    resetEpochState()
    {
        started_ = false;
        halted_ = false;
        ckpt_in_progress_ = false;
        boundary_requested_ = false;
        stalled_.clear();
        cpu_state_.clear();
        if (epoch_timer_.scheduled())
            eventq_.deschedule(epoch_timer_);
        if (boundary_event_.scheduled())
            eventq_.deschedule(boundary_event_);
    }

    Tick epoch_length_;
    bool started_ = false;
    bool halted_ = false;
    bool ckpt_in_progress_ = false;
    bool boundary_requested_ = false;
    Tick stall_start_ = 0;
    Event epoch_timer_;
    /** Deferred boundary attempt; coalesces repeated requestEpochEnd(). */
    Event boundary_event_;
    std::function<void()> resume_client_;
    std::vector<std::uint8_t> cpu_state_;
    std::vector<std::uint8_t> recovered_cpu_state_;

  private:
    struct Stalled
    {
        Addr paddr;
        bool is_write;
        std::array<std::uint8_t, kBlockSize> data;
        std::function<void()> done;
        Tick stalled_at;
    };
    std::deque<Stalled> stalled_;
};

} // namespace thynvm

#endif // THYNVM_BASELINES_EPOCH_CONTROLLER_HH
