/**
 * @file
 * IclController implementation.
 */

#include "baselines/icl.hh"

#include <algorithm>
#include <set>

namespace thynvm {

namespace {

constexpr std::uint64_t kIclMagic = 0x49434c4c4f472121ull; // ICLLOG!!

/** Bit 8 of the record mask: the committed line sits in the overflow
 * block and the inline saved words are unused. */
constexpr std::uint64_t kFatFlag = 1ull << 8;

struct IclHeader
{
    std::uint64_t magic;
    std::uint64_t epoch;
    std::uint64_t cpu_len;
};

/** Log-record field offsets within the 64-byte log block. */
constexpr std::size_t kRecTag = 0;
constexpr std::size_t kRecMask = 8;
constexpr std::size_t kRecWords = 16;

constexpr unsigned kWordsPerBlock = kBlockSize / 8;

unsigned
popcount(std::uint16_t mask)
{
    unsigned n = 0;
    for (; mask != 0; mask &= mask - 1)
        ++n;
    return n;
}

} // namespace

std::size_t
IclController::nvmCapacity(const IclConfig& cfg)
{
    return cfg.phys_size * 4 + kBlockSize +
           2 * roundUp(8 + cfg.cpu_state_max, kBlockSize);
}

IclController::IclController(EventQueue& eq, std::string name,
                             const IclConfig& cfg,
                             std::shared_ptr<BackingStore> nvm_store)
    : EpochController(eq, std::move(name), cfg.epoch_length),
      cfg_(cfg),
      nvm_dev_(eq, this->name() + ".nvm",
               DeviceParams::nvm(nvmCapacity(cfg)), std::move(nvm_store)),
      nvm_port_(nvm_dev_)
{
    stats().addScalar("slim_logs", &slim_logs_,
                      "undo records that fit inline in the log block");
    stats().addScalar("fat_logs", &fat_logs_,
                      "undo records that spilled into the overflow block");
    stats().addScalar("log_merges", &log_merges_,
                      "records rewritten to widen an earlier one");
    stats().addScalar("undone_lines", &undone_lines_,
                      "lines rolled back from their log at recovery");
}

Addr
IclController::cpuAddr(unsigned k) const
{
    return headerAddr() + kBlockSize +
           k * roundUp(8 + cfg_.cpu_state_max, kBlockSize);
}

void
IclController::accessBlock(Addr paddr, bool is_write,
                           const std::uint8_t* wdata, std::uint8_t* rdata,
                           TrafficSource source, std::function<void()> done)
{
    panic_if(paddr % kBlockSize != 0, "unaligned controller access");
    panic_if(paddr + kBlockSize > cfg_.phys_size,
             "physical address out of range");

    if (!is_write) {
        nvm_port_.functionalRead(homeAddr(paddr), rdata, kBlockSize);
        nvm_port_.sendRead(homeAddr(paddr), source, std::move(done));
        return;
    }

    // Store: make sure an undo record covering every word this write
    // changes is (being made) durable before the in-place home update.
    // The log, overflow and home blocks share one device row, and both
    // the port and the per-bank queues are FIFO, so enqueue order below
    // is service order — no drain barrier needed.
    noteAppWrite();
    std::uint8_t home[kBlockSize];
    nvm_port_.functionalRead(homeAddr(paddr), home, kBlockSize);

    auto it = live_.find(paddr);
    if (it == live_.end() || !it->second.fat) {
        std::uint16_t diff = 0;
        for (unsigned w = 0; w < kWordsPerBlock; ++w) {
            if (std::memcmp(home + w * 8, wdata + w * 8, 8) != 0)
                diff |= static_cast<std::uint16_t>(1u << w);
        }
        const std::uint16_t existing =
            it != live_.end() ? it->second.mask : 0;
        const std::uint16_t fresh =
            diff & static_cast<std::uint16_t>(~existing);
        if (fresh != 0) {
            // Pre-epoch values: words already saved keep the values in
            // the current record; words saved for the first time take
            // the current home value (untouched this epoch, hence still
            // the committed one).
            std::uint64_t saved[kWordsPerBlock] = {};
            if (existing != 0) {
                std::uint8_t rec[kBlockSize];
                nvm_port_.functionalRead(logAddr(paddr), rec, kBlockSize);
                unsigned slot = 0;
                for (unsigned w = 0; w < kWordsPerBlock; ++w) {
                    if ((existing >> w) & 1) {
                        std::memcpy(&saved[w], rec + kRecWords + slot * 8,
                                    8);
                        ++slot;
                    }
                }
                ++log_merges_;
            }
            for (unsigned w = 0; w < kWordsPerBlock; ++w) {
                if ((fresh >> w) & 1)
                    std::memcpy(&saved[w], home + w * 8, 8);
            }

            const std::uint16_t merged = existing | fresh;
            std::uint8_t rec[kBlockSize] = {};
            std::memcpy(rec + kRecTag, &epoch_num_, 8);
            if (popcount(merged) <= kSlimWords) {
                const std::uint64_t m = merged;
                std::memcpy(rec + kRecMask, &m, 8);
                unsigned slot = 0;
                for (unsigned w = 0; w < kWordsPerBlock; ++w) {
                    if ((merged >> w) & 1) {
                        std::memcpy(rec + kRecWords + slot * 8, &saved[w],
                                    8);
                        ++slot;
                    }
                }
                crashPoint("icl.log_slim");
                nvm_port_.sendWrite(logAddr(paddr), rec,
                                    TrafficSource::Checkpoint);
                live_[paddr] = LiveLog{merged, false};
                ++slim_logs_;
            } else {
                // Too wide for the inline words: preserve the whole
                // committed line in the overflow block, then a fat
                // record. Overflow before log: the record must never
                // point at a not-yet-durable overflow image.
                std::uint8_t committed[kBlockSize];
                std::memcpy(committed, home, kBlockSize);
                for (unsigned w = 0; w < kWordsPerBlock; ++w) {
                    if ((existing >> w) & 1)
                        std::memcpy(committed + w * 8, &saved[w], 8);
                }
                crashPoint("icl.log_fat");
                nvm_port_.sendWrite(ovfAddr(paddr), committed,
                                    TrafficSource::Checkpoint);
                const std::uint64_t m = kFatFlag;
                std::memcpy(rec + kRecMask, &m, 8);
                nvm_port_.sendWrite(logAddr(paddr), rec,
                                    TrafficSource::Checkpoint);
                live_[paddr] = LiveLog{0, true};
                ++fat_logs_;
            }
        }
    }

    crashPoint("icl.home_write");
    nvm_port_.sendWrite(homeAddr(paddr), wdata,
                        TrafficSource::CpuWriteback, {}, std::move(done));
}

void
IclController::functionalRead(Addr paddr, void* buf, std::size_t len) const
{
    auto* out = static_cast<std::uint8_t*>(buf);
    std::size_t remaining = len;
    Addr addr = paddr;
    while (remaining > 0) {
        const Addr block = blockAlign(addr);
        const std::size_t in_block = addr - block;
        const std::size_t chunk =
            std::min(remaining, kBlockSize - in_block);
        std::uint8_t tmp[kBlockSize];
        nvm_port_.functionalRead(homeAddr(block), tmp, kBlockSize);
        std::memcpy(out, tmp + in_block, chunk);
        out += chunk;
        addr += chunk;
        remaining -= chunk;
    }
}

void
IclController::loadImage(Addr paddr, const void* buf, std::size_t len)
{
    panic_if(paddr + len > cfg_.phys_size, "image beyond physical space");
    const auto* src = static_cast<const std::uint8_t*>(buf);
    std::size_t remaining = len;
    Addr addr = paddr;
    while (remaining > 0) {
        const Addr block = blockAlign(addr);
        const std::size_t in_block = addr - block;
        const std::size_t chunk =
            std::min(remaining, kBlockSize - in_block);
        nvm_dev_.store().write(homeAddr(block) + in_block, src, chunk);
        src += chunk;
        addr += chunk;
        remaining -= chunk;
    }
}

void
IclController::forEachTouchedPhysRange(
    const std::function<void(Addr, std::size_t)>& fn) const
{
    // Home bytes are the first block of each 4-block group; the log,
    // overflow, header and CPU areas are never software-visible.
    const Addr limit = cfg_.phys_size * 4;
    nvm_dev_.store().forEachTouchedRange(
        [&](Addr a, const std::uint8_t*, std::size_t len) {
            const Addr end = std::min<Addr>(a + len, limit);
            Addr p = a;
            while (p < end) {
                const Addr g = (p / kGroupSize) * kGroupSize;
                const Addr home_end = g + kBlockSize;
                if (p < home_end) {
                    const Addr seg = std::min<Addr>(end, home_end);
                    fn(g / 4 + (p - g), seg - p);
                }
                p = g + kGroupSize;
            }
        });
    nvm_port_.forEachStagedWriteAddr([&](Addr a) {
        if (a < limit && a % kGroupSize == 0)
            fn(a / 4, kBlockSize);
    });
}

void
IclController::doCheckpoint(std::function<void()> done)
{
    crashPoint("ckpt.start");
    // Every home and log write of this epoch is already in the write
    // FIFO; the durability drain below covers them together with the
    // CPU blob. Committing is then just the header: the epoch advance
    // invalidates every live record by tag, nothing is cleaned.
    const std::uint64_t epoch = epoch_num_;
    std::vector<std::uint8_t> cpu(
        roundUp(8 + cpu_state_.size(), kBlockSize), 0);
    const std::uint64_t cpu_len = cpu_state_.size();
    std::memcpy(cpu.data(), &cpu_len, 8);
    std::memcpy(cpu.data() + 8, cpu_state_.data(), cpu_state_.size());
    crashPoint("ckpt.cpu_state");
    for (std::size_t off = 0; off < cpu.size(); off += kBlockSize) {
        nvm_port_.sendWrite(cpuAddr(epoch & 1) + off, cpu.data() + off,
                            TrafficSource::Checkpoint);
    }

    // Commit header once everything is durable. Commit-gate phase 0
    // interposes here — in a channel group no channel writes its header
    // until every channel's epoch image is durable.
    nvm_port_.notifyWhenWritesDurable([this, epoch,
                                       done = std::move(done)]() mutable {
      commitGate(0, [this, epoch, done = std::move(done)]() mutable {
        crashPoint("ckpt.pre_commit_header");
        IclHeader hdr{};
        hdr.magic = kIclMagic;
        hdr.epoch = epoch;
        hdr.cpu_len = cpu_state_.size();
        std::uint8_t hdr_blk[kBlockSize] = {};
        std::memcpy(hdr_blk, &hdr, sizeof(hdr));
        nvm_port_.sendWrite(headerAddr(), hdr_blk,
                            TrafficSource::Checkpoint);

        // Phase 1 gate before the epoch advance: execution (and with it
        // the first destructive home write of the next epoch) must not
        // resume until every channel's commit header is durable.
        nvm_port_.notifyWhenWritesDurable(
            [this, done = std::move(done)]() mutable {
                commitGate(1, [this, done = std::move(done)]() mutable {
                    crashPoint("ckpt.pre_epoch_advance");
                    ++epoch_num_;
                    live_.clear();
                    done();
                });
            });
      });
    });
}

void
IclController::crash()
{
    nvm_port_.crash();
    nvm_dev_.crash();
    live_.clear();
    resetEpochState();
}

void
IclController::undoEpoch(std::uint64_t target_epoch,
                         const std::function<void()>& track,
                         const std::function<void()>& dec)
{
    // Collect candidate log blocks from the touched ranges (sorted and
    // deduplicated: ranges may overlap and arrive in any order). A
    // never-written log block reads tag 0, which is never a target.
    std::set<Addr> logs;
    const Addr limit = cfg_.phys_size * 4;
    nvm_dev_.store().forEachTouchedRange(
        [&](Addr a, const std::uint8_t*, std::size_t len) {
            const Addr end = std::min<Addr>(a + len, limit);
            Addr g = (a / kGroupSize) * kGroupSize;
            for (; g < end; g += kGroupSize) {
                const Addr la = g + kBlockSize;
                if (la < end && la + kBlockSize > a)
                    logs.insert(la);
            }
        });

    for (const Addr la : logs) {
        std::uint64_t tag = 0;
        nvm_dev_.store().read(la + kRecTag, &tag, 8);
        if (tag != target_epoch)
            continue;
        std::uint8_t rec[kBlockSize];
        nvm_dev_.store().read(la, rec, kBlockSize);
        std::uint64_t mask = 0;
        std::memcpy(&mask, rec + kRecMask, 8);

        const Addr g = la - kBlockSize;
        std::uint8_t restored[kBlockSize];
        track();
        nvm_port_.sendRead(la, TrafficSource::Recovery, dec);
        if (mask & kFatFlag) {
            nvm_dev_.store().read(g + 2 * kBlockSize, restored,
                                  kBlockSize);
            track();
            nvm_port_.sendRead(g + 2 * kBlockSize, TrafficSource::Recovery,
                               dec);
        } else {
            nvm_dev_.store().read(g, restored, kBlockSize);
            unsigned slot = 0;
            for (unsigned w = 0; w < kWordsPerBlock; ++w) {
                if ((mask >> w) & 1) {
                    std::memcpy(restored + w * 8,
                                rec + kRecWords + slot * 8, 8);
                    ++slot;
                }
            }
        }
        ++undone_lines_;
        track();
        nvm_port_.sendWrite(g, restored, TrafficSource::Recovery, dec);
    }
}

void
IclController::recover(std::function<void()> done)
{
    IclHeader hdr{};
    nvm_dev_.store().read(headerAddr(), &hdr, sizeof(hdr));

    auto outstanding = std::make_shared<std::uint64_t>(1);
    auto fire = std::make_shared<std::function<void()>>(std::move(done));
    auto dec = [this, outstanding, fire] {
        if (--*outstanding == 0) {
            ++recoveries_;
            auto cb = std::move(*fire);
            *fire = nullptr;
            if (cb)
                cb();
        }
    };
    auto track = [outstanding] { ++*outstanding; };

    if (hdr.magic == kIclMagic) {
        const unsigned k = static_cast<unsigned>(hdr.epoch & 1);
        std::uint64_t cpu_len = 0;
        nvm_dev_.store().read(cpuAddr(k), &cpu_len, 8);
        panic_if(cpu_len != hdr.cpu_len, "CPU state length mismatch");
        recovered_cpu_state_.resize(cpu_len);
        nvm_dev_.store().read(cpuAddr(k) + 8, recovered_cpu_state_.data(),
                              cpu_len);
        epoch_num_ = hdr.epoch + 1;
    } else {
        recovered_cpu_state_.clear();
        epoch_num_ = 1;
    }

    // Roll back the crashed epoch: undo every record it tagged. The
    // records themselves are never modified, so a second crash during
    // (or right after) recovery just repeats identical undo writes.
    undoEpoch(epoch_num_, track, dec);

    eventq_.scheduleIn(0, dec);
}

std::uint64_t
IclController::committedEpoch() const
{
    IclHeader hdr{};
    nvm_dev_.store().read(headerAddr(), &hdr, sizeof(hdr));
    return hdr.magic == kIclMagic ? hdr.epoch : 0;
}

void
IclController::recoverTo(std::uint64_t max_epoch,
                         std::function<void()> done)
{
    IclHeader hdr{};
    nvm_dev_.store().read(headerAddr(), &hdr, sizeof(hdr));
    const bool valid = hdr.magic == kIclMagic;
    if (!valid || hdr.epoch <= max_epoch) {
        recover(std::move(done));
        return;
    }
    // The durable header is one epoch past the recovery target: this
    // channel committed, but the group's phase-1 barrier proves no
    // channel resumed execution, so every live record is still tagged
    // max_epoch + 1 and none was overwritten by a later epoch — the
    // target image is fully reconstructible by undoing them.
    panic_if(hdr.epoch > max_epoch + 1,
             "ICL header epoch %llu too far past recovery target %llu",
             static_cast<unsigned long long>(hdr.epoch),
             static_cast<unsigned long long>(max_epoch));

    auto outstanding = std::make_shared<std::uint64_t>(1);
    auto fire = std::make_shared<std::function<void()>>(std::move(done));
    auto dec = [this, outstanding, fire] {
        if (--*outstanding == 0) {
            ++recoveries_;
            auto cb = std::move(*fire);
            *fire = nullptr;
            if (cb)
                cb();
        }
    };
    auto track = [outstanding] { ++*outstanding; };

    // Demote the header to the target epoch *before* undoing, and
    // durably (functional store write): a crash mid-undo then recovers
    // to the same target through the normal recover() path, repeating
    // the same idempotent undo writes.
    IclHeader demoted{};
    std::uint8_t hdr_blk[kBlockSize] = {};
    if (max_epoch > 0) {
        const unsigned k = static_cast<unsigned>(max_epoch & 1);
        std::uint64_t cpu_len = 0;
        nvm_dev_.store().read(cpuAddr(k), &cpu_len, 8);
        panic_if(cpu_len > cfg_.cpu_state_max,
                 "implausible rolled-back CPU state length");
        recovered_cpu_state_.resize(cpu_len);
        nvm_dev_.store().read(cpuAddr(k) + 8, recovered_cpu_state_.data(),
                              cpu_len);
        demoted.magic = kIclMagic;
        demoted.epoch = max_epoch;
        demoted.cpu_len = cpu_len;
        epoch_num_ = max_epoch + 1;
    } else {
        // Nothing ever committed anywhere: pristine machine.
        recovered_cpu_state_.clear();
        epoch_num_ = 1;
    }
    std::memcpy(hdr_blk, &demoted, sizeof(demoted));
    nvm_dev_.store().write(headerAddr(), hdr_blk, kBlockSize);
    track();
    nvm_port_.sendWrite(headerAddr(), hdr_blk, TrafficSource::Recovery,
                        dec);

    undoEpoch(max_epoch + 1, track, dec);

    eventq_.scheduleIn(0, dec);
}

} // namespace thynvm
