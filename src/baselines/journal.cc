/**
 * @file
 * JournalController implementation.
 */

#include "baselines/journal.hh"

#include <algorithm>

namespace thynvm {

namespace {

constexpr std::uint64_t kJournalMagic = 0x4a4f55524e414c21ull; // JOURNAL!

struct JournalHeader
{
    std::uint64_t magic;
    std::uint64_t epoch;
    std::uint64_t count;
    std::uint64_t cpu_len;
};

struct AppliedMarker
{
    std::uint64_t magic;
    std::uint64_t epoch;
};

} // namespace

std::size_t
JournalController::nvmCapacity(const JournalConfig& cfg)
{
    const std::size_t entries = cfg.table_entries + cfg.table_headroom;
    return cfg.phys_size + entries * kBlockSize +
           roundUp(entries * 8, kBlockSize) + 2 * kBlockSize +
           2 * roundUp(8 + cfg.cpu_state_max, kBlockSize);
}

JournalController::JournalController(
    EventQueue& eq, std::string name, const JournalConfig& cfg,
    std::shared_ptr<BackingStore> nvm_store)
    : EpochController(eq, std::move(name), cfg.epoch_length),
      cfg_(cfg),
      dram_dev_(eq, this->name() + ".dram",
                DeviceParams::dram((cfg.table_entries + cfg.table_headroom)
                                   * kBlockSize)),
      nvm_dev_(eq, this->name() + ".nvm",
               DeviceParams::nvm(nvmCapacity(cfg)), std::move(nvm_store)),
      dram_port_(dram_dev_),
      nvm_port_(nvm_dev_)
{
    stats().addScalar("journaled_blocks", &journaled_blocks_,
                      "blocks written to the NVM journal");
    stats().addScalar("applied_blocks", &applied_blocks_,
                      "journaled blocks applied in place");
    stats().addScalar("replayed_blocks", &replayed_blocks_,
                      "blocks replayed from the journal at recovery");
    stats().addScalar("overflow_epochs", &overflow_epochs_,
                      "epochs forced by table overflow");
}

Addr
JournalController::journalDataAddr(std::size_t i) const
{
    return cfg_.phys_size + i * kBlockSize;
}

Addr
JournalController::journalMetaAddr() const
{
    return cfg_.phys_size + hardCapacity() * kBlockSize;
}

Addr
JournalController::headerAddr() const
{
    return journalMetaAddr() + roundUp(hardCapacity() * 8, kBlockSize);
}

Addr
JournalController::appliedAddr() const
{
    return headerAddr() + kBlockSize;
}

Addr
JournalController::cpuAddr(unsigned k) const
{
    return appliedAddr() + kBlockSize +
           k * roundUp(8 + cfg_.cpu_state_max, kBlockSize);
}

void
JournalController::accessBlock(Addr paddr, bool is_write,
                               const std::uint8_t* wdata,
                               std::uint8_t* rdata, TrafficSource source,
                               std::function<void()> done)
{
    panic_if(paddr % kBlockSize != 0, "unaligned controller access");
    panic_if(paddr + kBlockSize > cfg_.phys_size,
             "physical address out of range");

    auto it = table_.find(paddr);
    if (!is_write) {
        if (it != table_.end()) {
            const Addr slot = dramSlotAddr(it->second);
            dram_port_.functionalRead(slot, rdata, kBlockSize);
            dram_port_.sendRead(slot, source, std::move(done));
        } else {
            nvm_port_.functionalRead(paddr, rdata, kBlockSize);
            nvm_port_.sendRead(paddr, source, std::move(done));
        }
        return;
    }

    // Store: coalesce into the DRAM journal buffer.
    noteAppWrite();
    std::size_t slot;
    if (it != table_.end()) {
        slot = it->second;
    } else {
        if (table_.size() >= hardCapacity()) {
            // Should be unreachable: the soft trigger fires well before.
            stallAccess(paddr, true, wdata, std::move(done));
            requestEpochEnd();
            return;
        }
        slot = next_slot_++;
        table_.emplace(paddr, slot);
        if (table_.size() >= cfg_.table_entries && !ckpt_in_progress_) {
            ++overflow_epochs_;
            requestEpochEnd();
        }
    }

    dram_port_.sendWrite(dramSlotAddr(slot), wdata,
                         TrafficSource::CpuWriteback, {}, std::move(done));
}

void
JournalController::functionalRead(Addr paddr, void* buf,
                                  std::size_t len) const
{
    auto* out = static_cast<std::uint8_t*>(buf);
    std::size_t remaining = len;
    Addr addr = paddr;
    while (remaining > 0) {
        const Addr block = blockAlign(addr);
        const std::size_t in_block = addr - block;
        const std::size_t chunk =
            std::min(remaining, kBlockSize - in_block);
        std::uint8_t tmp[kBlockSize];
        auto it = table_.find(block);
        if (it != table_.end())
            dram_port_.functionalRead(dramSlotAddr(it->second), tmp,
                                      kBlockSize);
        else
            nvm_port_.functionalRead(block, tmp, kBlockSize);
        std::memcpy(out, tmp + in_block, chunk);
        out += chunk;
        addr += chunk;
        remaining -= chunk;
    }
}

void
JournalController::loadImage(Addr paddr, const void* buf, std::size_t len)
{
    panic_if(paddr + len > cfg_.phys_size, "image beyond physical space");
    nvm_dev_.store().write(paddr, buf, len);
}

void
JournalController::forEachTouchedPhysRange(
    const std::function<void(Addr, std::size_t)>& fn) const
{
    // Home region is NVM at identity addresses below phys_size; the
    // journal/header/CPU areas above it are never software-visible.
    nvm_dev_.store().forEachTouchedRange(
        [&](Addr a, const std::uint8_t*, std::size_t len) {
            if (a < cfg_.phys_size)
                fn(a, std::min(len, cfg_.phys_size - a));
        });
    nvm_port_.forEachStagedWriteAddr([&](Addr a) {
        if (a < cfg_.phys_size)
            fn(a, kBlockSize);
    });
    // Blocks redirected to the DRAM journal buffer.
    for (const auto& [paddr, slot] : table_)
        fn(paddr, kBlockSize);
}

void
JournalController::doCheckpoint(std::function<void()> done)
{
    crashPoint("ckpt.start");
    // Snapshot the table in slot order for deterministic journal layout.
    std::vector<std::pair<std::size_t, Addr>> entries;
    entries.reserve(table_.size());
    for (const auto& [paddr, slot] : table_)
        entries.emplace_back(slot, paddr);
    std::sort(entries.begin(), entries.end());

    // Phase 1: write journal data + metadata records.
    std::vector<std::uint8_t> meta(roundUp(entries.size() * 8, kBlockSize),
                                   0);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto [slot, paddr] = entries[i];
        std::uint8_t data[kBlockSize];
        dram_port_.functionalRead(dramSlotAddr(slot), data, kBlockSize);

        crashPoint("ckpt.journal_block");
        dram_port_.sendRead(dramSlotAddr(slot), TrafficSource::Checkpoint);
        nvm_port_.sendWrite(journalDataAddr(i), data,
                            TrafficSource::Checkpoint);
        ++journaled_blocks_;

        std::memcpy(meta.data() + i * 8, &paddr, 8);
    }
    for (std::size_t off = 0; off < meta.size(); off += kBlockSize) {
        nvm_port_.sendWrite(journalMetaAddr() + off, meta.data() + off,
                            TrafficSource::Checkpoint);
    }

    const std::uint64_t epoch = epoch_num_++;

    // CPU state blob, in the area of this epoch's parity: the area the
    // committed header points at stays intact until the new header is
    // durable.
    std::vector<std::uint8_t> cpu(roundUp(8 + cpu_state_.size(),
                                          kBlockSize),
                                  0);
    const std::uint64_t cpu_len = cpu_state_.size();
    std::memcpy(cpu.data(), &cpu_len, 8);
    std::memcpy(cpu.data() + 8, cpu_state_.data(), cpu_state_.size());
    for (std::size_t off = 0; off < cpu.size(); off += kBlockSize) {
        nvm_port_.sendWrite(cpuAddr(epoch & 1) + off, cpu.data() + off,
                            TrafficSource::Checkpoint);
    }
    auto commit_entries = std::make_shared<
        std::vector<std::pair<std::size_t, Addr>>>(std::move(entries));

    // Phase 2: commit header after the journal is durable. Commit-gate
    // phase 0 interposes here — in a channel group no channel writes
    // its header until every channel's journal image is durable.
    nvm_port_.notifyWhenWritesDurable([this, epoch, commit_entries,
                                       done = std::move(done)]() mutable {
      commitGate(0, [this, epoch, commit_entries,
                     done = std::move(done)]() mutable {
        crashPoint("ckpt.pre_commit_header");
        JournalHeader hdr{};
        hdr.magic = kJournalMagic;
        hdr.epoch = epoch;
        hdr.count = commit_entries->size();
        hdr.cpu_len = cpu_state_.size();
        std::uint8_t hdr_blk[kBlockSize] = {};
        std::memcpy(hdr_blk, &hdr, sizeof(hdr));
        nvm_port_.sendWrite(headerAddr(), hdr_blk,
                            TrafficSource::Checkpoint);

        // Phase 3: apply in place, then retire the journal. Commit-gate
        // phase 1 interposes before the first in-place (destructive)
        // write: every channel's commit header must be durable first,
        // so the group's minimum committed epoch has already advanced
        // past the state the apply destroys.
        nvm_port_.notifyWhenWritesDurable([this, epoch, commit_entries,
                                           done = std::move(done)]()
                                              mutable {
          commitGate(1, [this, epoch, commit_entries,
                         done = std::move(done)]() mutable {
            for (const auto& [slot, paddr] : *commit_entries) {
                crashPoint("ckpt.apply_block");
                std::uint8_t data[kBlockSize];
                dram_port_.functionalRead(dramSlotAddr(slot), data,
                                          kBlockSize);
                nvm_port_.sendWrite(paddr, data,
                                    TrafficSource::Checkpoint);
                ++applied_blocks_;
            }
            nvm_port_.notifyWhenWritesDurable([this, epoch,
                                               done = std::move(done)]()
                                                  mutable {
                crashPoint("ckpt.pre_applied_marker");
                AppliedMarker mk{kJournalMagic, epoch};
                std::uint8_t mk_blk[kBlockSize] = {};
                std::memcpy(mk_blk, &mk, sizeof(mk));
                nvm_port_.sendWrite(appliedAddr(), mk_blk,
                                    TrafficSource::Checkpoint);
                nvm_port_.notifyWhenWritesDurable(
                    [this, done = std::move(done)]() mutable {
                        table_.clear();
                        next_slot_ = 0;
                        done();
                    });
            });
          });
        });
      });
    });
}

void
JournalController::crash()
{
    dram_port_.crash();
    nvm_port_.crash();
    dram_dev_.crash();
    nvm_dev_.crash();
    dram_dev_.store().clear();
    table_.clear();
    next_slot_ = 0;
    resetEpochState();
}

void
JournalController::recover(std::function<void()> done)
{
    JournalHeader hdr{};
    nvm_dev_.store().read(headerAddr(), &hdr, sizeof(hdr));
    AppliedMarker mk{};
    nvm_dev_.store().read(appliedAddr(), &mk, sizeof(mk));

    auto outstanding = std::make_shared<std::uint64_t>(1);
    auto fire = std::make_shared<std::function<void()>>(std::move(done));
    auto dec = [this, outstanding, fire] {
        if (--*outstanding == 0) {
            ++recoveries_;
            auto cb = std::move(*fire);
            *fire = nullptr;
            if (cb)
                cb();
        }
    };
    auto track = [outstanding] { ++*outstanding; };

    if (hdr.magic == kJournalMagic) {
        // Restore the CPU state of the committed epoch.
        const unsigned k = static_cast<unsigned>(hdr.epoch & 1);
        std::uint64_t cpu_len = 0;
        nvm_dev_.store().read(cpuAddr(k), &cpu_len, 8);
        panic_if(cpu_len != hdr.cpu_len, "CPU state length mismatch");
        recovered_cpu_state_.resize(cpu_len);
        nvm_dev_.store().read(cpuAddr(k) + 8, recovered_cpu_state_.data(),
                              cpu_len);

        if (mk.magic != kJournalMagic || mk.epoch < hdr.epoch) {
            // Committed but not applied: redo the journal.
            for (std::uint64_t i = 0; i < hdr.count; ++i) {
                Addr paddr = 0;
                nvm_dev_.store().read(journalMetaAddr() + i * 8, &paddr,
                                      8);
                std::uint8_t data[kBlockSize];
                nvm_dev_.store().read(journalDataAddr(i), data,
                                      kBlockSize);
                ++replayed_blocks_;

                track();
                nvm_port_.sendRead(journalDataAddr(i),
                                   TrafficSource::Recovery, dec);

                track();
                nvm_port_.sendWrite(paddr, data, TrafficSource::Recovery,
                                    dec);
            }
            AppliedMarker newmk{kJournalMagic, hdr.epoch};
            std::uint8_t mk_blk[kBlockSize] = {};
            std::memcpy(mk_blk, &newmk, sizeof(newmk));
            track();
            nvm_port_.sendWrite(appliedAddr(), mk_blk,
                                TrafficSource::Recovery, dec);
        }
        epoch_num_ = hdr.epoch + 1;
    } else {
        recovered_cpu_state_.clear();
        epoch_num_ = 1;
    }

    eventq_.scheduleIn(0, dec);
}

std::uint64_t
JournalController::committedEpoch() const
{
    JournalHeader hdr{};
    nvm_dev_.store().read(headerAddr(), &hdr, sizeof(hdr));
    return hdr.magic == kJournalMagic ? hdr.epoch : 0;
}

void
JournalController::recoverTo(std::uint64_t max_epoch,
                             std::function<void()> done)
{
    JournalHeader hdr{};
    nvm_dev_.store().read(headerAddr(), &hdr, sizeof(hdr));
    const bool valid = hdr.magic == kJournalMagic;
    if (!valid || hdr.epoch <= max_epoch) {
        recover(std::move(done));
        return;
    }
    // The durable header is one epoch past the recovery target: this
    // channel wrote its commit header but the group's phase-1 barrier
    // proves no channel applied it in place, so Home still holds
    // exactly the target epoch's image (the journal apply is the only
    // destructive step). The barrier also bounds the spread to one.
    panic_if(hdr.epoch > max_epoch + 1,
             "journal header epoch %llu too far past recovery target "
             "%llu",
             static_cast<unsigned long long>(hdr.epoch),
             static_cast<unsigned long long>(max_epoch));

    auto outstanding = std::make_shared<std::uint64_t>(1);
    auto fire = std::make_shared<std::function<void()>>(std::move(done));
    auto dec = [this, outstanding, fire] {
        if (--*outstanding == 0) {
            ++recoveries_;
            auto cb = std::move(*fire);
            *fire = nullptr;
            if (cb)
                cb();
        }
    };

    // Demote the stale header to describe the target epoch (count 0:
    // the target's journal is fully applied), so a later crash before
    // the next commit recovers the same cut instead of replaying the
    // abandoned epoch's journal over freshly staged blocks.
    JournalHeader demoted{};
    std::uint8_t hdr_blk[kBlockSize] = {};
    if (max_epoch > 0) {
        const unsigned k = static_cast<unsigned>(max_epoch & 1);
        std::uint64_t cpu_len = 0;
        nvm_dev_.store().read(cpuAddr(k), &cpu_len, 8);
        panic_if(cpu_len > cfg_.cpu_state_max,
                 "implausible rolled-back CPU state length");
        recovered_cpu_state_.resize(cpu_len);
        nvm_dev_.store().read(cpuAddr(k) + 8, recovered_cpu_state_.data(),
                              cpu_len);
        demoted.magic = kJournalMagic;
        demoted.epoch = max_epoch;
        demoted.count = 0;
        demoted.cpu_len = cpu_len;
        epoch_num_ = max_epoch + 1;
    } else {
        // Nothing ever committed anywhere: pristine machine.
        recovered_cpu_state_.clear();
        epoch_num_ = 1;
    }
    std::memcpy(hdr_blk, &demoted, sizeof(demoted));
    // Durable immediately (functional store write, so a crash before
    // the timed write services cannot roll the demotion back), plus the
    // timed write for the recovery-traffic model.
    nvm_dev_.store().write(headerAddr(), hdr_blk, kBlockSize);
    ++*outstanding;
    nvm_port_.sendWrite(headerAddr(), hdr_blk, TrafficSource::Recovery,
                        dec);

    eventq_.scheduleIn(0, dec);
}

} // namespace thynvm
