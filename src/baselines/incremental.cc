/**
 * @file
 * IncrementalController implementation.
 */

#include "baselines/incremental.hh"

#include <algorithm>

namespace thynvm {

namespace {

constexpr std::uint64_t kIncMagic = 0x494e4352434b5054ull; // INCRCKPT

struct IncHeader
{
    std::uint64_t magic;
    std::uint64_t epoch;
    std::uint64_t cpu_len;
};

} // namespace

std::size_t
IncrementalController::nvmCapacity(const IncrementalConfig& cfg)
{
    const std::size_t bitmap =
        roundUp((cfg.phys_size / kBlockSize + 7) / 8, kBlockSize);
    return 2 * cfg.phys_size + 2 * bitmap + 2 * kBlockSize +
           2 * roundUp(8 + cfg.cpu_state_max, kBlockSize);
}

IncrementalController::IncrementalController(
    EventQueue& eq, std::string name, const IncrementalConfig& cfg,
    std::shared_ptr<BackingStore> nvm_store)
    : EpochController(eq, std::move(name), cfg.epoch_length),
      cfg_(cfg),
      dram_dev_(eq, this->name() + ".dram",
                DeviceParams::dram((cfg.table_entries + cfg.table_headroom)
                                   * kBlockSize)),
      nvm_dev_(eq, this->name() + ".nvm",
               DeviceParams::nvm(nvmCapacity(cfg)), std::move(nvm_store)),
      dram_port_(dram_dev_),
      nvm_port_(nvm_dev_),
      committed_bit_(cfg.phys_size / kBlockSize, 0)
{
    stats().addScalar("staged_blocks", &staged_blocks_,
                      "dirty blocks staged into their inactive slot");
    stats().addScalar("bitmap_blocks", &bitmap_blocks_,
                      "slot-bitmap blocks rewritten at checkpoints");
    stats().addScalar("overflow_epochs", &overflow_epochs_,
                      "epochs forced by table overflow");
}

Addr
IncrementalController::bitmapAddr(unsigned k) const
{
    return 2 * cfg_.phys_size + k * bitmapArea();
}

Addr
IncrementalController::headerAddr(unsigned k) const
{
    return 2 * cfg_.phys_size + 2 * bitmapArea() + k * kBlockSize;
}

Addr
IncrementalController::cpuAddr(unsigned k) const
{
    return headerAddr(1) + kBlockSize +
           k * roundUp(8 + cfg_.cpu_state_max, kBlockSize);
}

void
IncrementalController::accessBlock(Addr paddr, bool is_write,
                                   const std::uint8_t* wdata,
                                   std::uint8_t* rdata,
                                   TrafficSource source,
                                   std::function<void()> done)
{
    panic_if(paddr % kBlockSize != 0, "unaligned controller access");
    panic_if(paddr + kBlockSize > cfg_.phys_size,
             "physical address out of range");

    auto it = table_.find(paddr);
    if (!is_write) {
        if (it != table_.end()) {
            const Addr slot = dramSlotAddr(it->second);
            dram_port_.functionalRead(slot, rdata, kBlockSize);
            dram_port_.sendRead(slot, source, std::move(done));
        } else {
            const Addr src = committedAddr(paddr);
            nvm_port_.functionalRead(src, rdata, kBlockSize);
            nvm_port_.sendRead(src, source, std::move(done));
        }
        return;
    }

    // Store: coalesce into the DRAM dirty-block buffer.
    noteAppWrite();
    std::size_t slot;
    if (it != table_.end()) {
        slot = it->second;
    } else {
        if (table_.size() >= hardCapacity()) {
            // Should be unreachable: the soft trigger fires well before.
            stallAccess(paddr, true, wdata, std::move(done));
            requestEpochEnd();
            return;
        }
        slot = next_slot_++;
        table_.emplace(paddr, slot);
        if (table_.size() >= cfg_.table_entries && !ckpt_in_progress_) {
            ++overflow_epochs_;
            requestEpochEnd();
        }
    }

    dram_port_.sendWrite(dramSlotAddr(slot), wdata,
                         TrafficSource::CpuWriteback, {}, std::move(done));
}

void
IncrementalController::functionalRead(Addr paddr, void* buf,
                                      std::size_t len) const
{
    auto* out = static_cast<std::uint8_t*>(buf);
    std::size_t remaining = len;
    Addr addr = paddr;
    while (remaining > 0) {
        const Addr block = blockAlign(addr);
        const std::size_t in_block = addr - block;
        const std::size_t chunk =
            std::min(remaining, kBlockSize - in_block);
        std::uint8_t tmp[kBlockSize];
        auto it = table_.find(block);
        if (it != table_.end())
            dram_port_.functionalRead(dramSlotAddr(it->second), tmp,
                                      kBlockSize);
        else
            nvm_port_.functionalRead(committedAddr(block), tmp,
                                     kBlockSize);
        std::memcpy(out, tmp + in_block, chunk);
        out += chunk;
        addr += chunk;
        remaining -= chunk;
    }
}

void
IncrementalController::loadImage(Addr paddr, const void* buf,
                                 std::size_t len)
{
    // Slot A, matching the all-zero pristine bitmap.
    panic_if(paddr + len > cfg_.phys_size, "image beyond physical space");
    nvm_dev_.store().write(paddr, buf, len);
}

void
IncrementalController::forEachTouchedPhysRange(
    const std::function<void(Addr, std::size_t)>& fn) const
{
    // Both image slots alias the physical space; the bitmap, header and
    // CPU areas above them are never software-visible.
    const Addr phys = cfg_.phys_size;
    nvm_dev_.store().forEachTouchedRange(
        [&](Addr a, const std::uint8_t*, std::size_t len) {
            if (a < phys)
                fn(a, std::min(len, phys - a));
            const Addr s = std::max<Addr>(a, phys);
            const Addr e = std::min<Addr>(a + len, 2 * phys);
            if (s < e)
                fn(s - phys, e - s);
        });
    nvm_port_.forEachStagedWriteAddr([&](Addr a) {
        if (a < phys)
            fn(a, kBlockSize);
        else if (a < 2 * phys)
            fn(a - phys, kBlockSize);
    });
    // Blocks redirected to the DRAM buffer.
    for (const auto& [paddr, slot] : table_)
        fn(paddr, kBlockSize);
}

void
IncrementalController::doCheckpoint(std::function<void()> done)
{
    crashPoint("ckpt.start");
    // Snapshot the table in slot order for a deterministic staging
    // sequence.
    std::vector<std::pair<std::size_t, Addr>> entries;
    entries.reserve(table_.size());
    for (const auto& [paddr, slot] : table_)
        entries.emplace_back(slot, paddr);
    std::sort(entries.begin(), entries.end());

    const std::uint64_t epoch = epoch_num_;

    // Stage every dirty block into its inactive slot. The committed
    // image is never written, so the previous epoch stays recoverable
    // throughout.
    for (const auto& [slot, paddr] : entries) {
        crashPoint("ckpt.stage_block");
        std::uint8_t data[kBlockSize];
        dram_port_.functionalRead(dramSlotAddr(slot), data, kBlockSize);
        dram_port_.sendRead(dramSlotAddr(slot), TrafficSource::Checkpoint);
        const std::size_t bi = paddr / kBlockSize;
        const Addr dst =
            (committed_bit_[bi] != 0 ? 0 : cfg_.phys_size) + paddr;
        nvm_port_.sendWrite(dst, data, TrafficSource::Checkpoint);
        ++staged_blocks_;
        cur_changed_.insert(((bi / 8) / kBlockSize) * kBlockSize);
    }

    // Refresh the slot bitmap of this epoch's parity area with the
    // post-commit bit values. The area is two epochs stale, so it needs
    // every bitmap block that flipped in the previous epoch or this one
    // — or all of them right after a recovery.
    std::set<Addr> bm_blocks;
    if (write_all_) {
        for (Addr off = 0; off < bitmapArea(); off += kBlockSize)
            bm_blocks.insert(off);
    } else {
        bm_blocks = cur_changed_;
        bm_blocks.insert(prev_changed_.begin(), prev_changed_.end());
    }
    for (const Addr off : bm_blocks) {
        std::uint8_t blk[kBlockSize] = {};
        for (std::size_t j = 0; j < kBlockSize; ++j) {
            std::uint8_t byte = 0;
            for (unsigned b = 0; b < 8; ++b) {
                const std::size_t bi = (off + j) * 8 + b;
                if (bi >= numBlocks())
                    break;
                std::uint8_t bit = committed_bit_[bi];
                if (table_.count(bi * kBlockSize) != 0)
                    bit ^= 1;
                byte |= static_cast<std::uint8_t>(bit << b);
            }
            blk[j] = byte;
        }
        crashPoint("ckpt.stage_bitmap");
        nvm_port_.sendWrite(bitmapAddr(epoch & 1) + off, blk,
                            TrafficSource::Checkpoint);
        ++bitmap_blocks_;
    }

    // CPU state blob, in this epoch's parity area.
    std::vector<std::uint8_t> cpu(
        roundUp(8 + cpu_state_.size(), kBlockSize), 0);
    const std::uint64_t cpu_len = cpu_state_.size();
    std::memcpy(cpu.data(), &cpu_len, 8);
    std::memcpy(cpu.data() + 8, cpu_state_.data(), cpu_state_.size());
    crashPoint("ckpt.cpu_state");
    for (std::size_t off = 0; off < cpu.size(); off += kBlockSize) {
        nvm_port_.sendWrite(cpuAddr(epoch & 1) + off, cpu.data() + off,
                            TrafficSource::Checkpoint);
    }

    auto commit_entries = std::make_shared<
        std::vector<std::pair<std::size_t, Addr>>>(std::move(entries));

    // Commit header once the staged image is durable. Commit-gate phase
    // 0 interposes here — in a channel group no channel writes its
    // header until every channel's staged extents are durable.
    nvm_port_.notifyWhenWritesDurable([this, epoch, commit_entries,
                                       done = std::move(done)]() mutable {
      crashPoint("ckpt.staged");
      commitGate(0, [this, epoch, commit_entries,
                     done = std::move(done)]() mutable {
        crashPoint("ckpt.pre_commit_header");
        IncHeader hdr{};
        hdr.magic = kIncMagic;
        hdr.epoch = epoch;
        hdr.cpu_len = cpu_state_.size();
        std::uint8_t hdr_blk[kBlockSize] = {};
        std::memcpy(hdr_blk, &hdr, sizeof(hdr));
        nvm_port_.sendWrite(headerAddr(epoch & 1), hdr_blk,
                            TrafficSource::Checkpoint);

        // Phase 1 gate before the slot flip: execution (whose next
        // epoch stages over the slots this header just retired) must
        // not resume until every channel's commit header is durable.
        nvm_port_.notifyWhenWritesDurable([this, commit_entries,
                                           done = std::move(done)]()
                                              mutable {
            commitGate(1, [this, commit_entries,
                           done = std::move(done)]() mutable {
                crashPoint("ckpt.pre_epoch_advance");
                for (const auto& [slot, paddr] : *commit_entries)
                    committed_bit_[paddr / kBlockSize] ^= 1;
                prev_changed_ = std::move(cur_changed_);
                cur_changed_.clear();
                write_all_ = false;
                table_.clear();
                next_slot_ = 0;
                ++epoch_num_;
                done();
            });
        });
      });
    });
}

void
IncrementalController::crash()
{
    dram_port_.crash();
    nvm_port_.crash();
    dram_dev_.crash();
    nvm_dev_.crash();
    dram_dev_.store().clear();
    table_.clear();
    next_slot_ = 0;
    cur_changed_.clear();
    prev_changed_.clear();
    resetEpochState();
}

void
IncrementalController::recover(std::function<void()> done)
{
    IncHeader h0{}, h1{};
    nvm_dev_.store().read(headerAddr(0), &h0, sizeof(h0));
    nvm_dev_.store().read(headerAddr(1), &h1, sizeof(h1));
    const bool v0 = h0.magic == kIncMagic;
    const bool v1 = h1.magic == kIncMagic;

    auto outstanding = std::make_shared<std::uint64_t>(1);
    auto fire = std::make_shared<std::function<void()>>(std::move(done));
    auto dec = [this, outstanding, fire] {
        if (--*outstanding == 0) {
            ++recoveries_;
            auto cb = std::move(*fire);
            *fire = nullptr;
            if (cb)
                cb();
        }
    };
    auto track = [outstanding] { ++*outstanding; };

    if (v0 || v1) {
        const IncHeader& hdr = (v1 && (!v0 || h1.epoch > h0.epoch)) ? h1
                                                                    : h0;
        const unsigned k = static_cast<unsigned>(hdr.epoch & 1);

        // Metadata-only recovery: rebuild the slot bitmap from the
        // committed parity area — no data is copied.
        std::vector<std::uint8_t> bm((numBlocks() + 7) / 8, 0);
        nvm_dev_.store().read(bitmapAddr(k), bm.data(), bm.size());
        for (std::size_t bi = 0; bi < numBlocks(); ++bi)
            committed_bit_[bi] = (bm[bi / 8] >> (bi % 8)) & 1;
        for (Addr off = 0; off < bitmapArea(); off += kBlockSize) {
            track();
            nvm_port_.sendRead(bitmapAddr(k) + off,
                               TrafficSource::Recovery, dec);
        }

        std::uint64_t cpu_len = 0;
        nvm_dev_.store().read(cpuAddr(k), &cpu_len, 8);
        panic_if(cpu_len != hdr.cpu_len, "CPU state length mismatch");
        recovered_cpu_state_.resize(cpu_len);
        nvm_dev_.store().read(cpuAddr(k) + 8, recovered_cpu_state_.data(),
                              cpu_len);
        epoch_num_ = hdr.epoch + 1;
    } else {
        std::fill(committed_bit_.begin(), committed_bit_.end(), 0);
        recovered_cpu_state_.clear();
        epoch_num_ = 1;
    }

    // The non-authoritative parity area may hold partial staging from
    // the crashed epoch: the next checkpoint must rewrite it whole.
    cur_changed_.clear();
    prev_changed_.clear();
    write_all_ = true;

    eventq_.scheduleIn(0, dec);
}

std::uint64_t
IncrementalController::committedEpoch() const
{
    IncHeader h0{}, h1{};
    nvm_dev_.store().read(headerAddr(0), &h0, sizeof(h0));
    nvm_dev_.store().read(headerAddr(1), &h1, sizeof(h1));
    std::uint64_t best = 0;
    if (h0.magic == kIncMagic)
        best = h0.epoch;
    if (h1.magic == kIncMagic && h1.epoch > best)
        best = h1.epoch;
    return best;
}

void
IncrementalController::recoverTo(std::uint64_t max_epoch,
                                 std::function<void()> done)
{
    const std::uint64_t committed = committedEpoch();
    if (committed <= max_epoch) {
        recover(std::move(done));
        return;
    }
    // The newest header is one epoch past the recovery target: this
    // channel committed, but the group's phase-1 barrier proves no
    // channel resumed, so nothing staged over the target epoch's slots
    // and its parity areas are intact. Invalidating the stale header
    // durably (functional store write) makes recover() — now and after
    // any further crash — land on the target.
    panic_if(committed > max_epoch + 1,
             "incremental header epoch %llu too far past recovery "
             "target %llu",
             static_cast<unsigned long long>(committed),
             static_cast<unsigned long long>(max_epoch));
    const unsigned k = static_cast<unsigned>(committed & 1);
    std::uint8_t zero_blk[kBlockSize] = {};
    nvm_dev_.store().write(headerAddr(k), zero_blk, kBlockSize);
    nvm_port_.sendWrite(headerAddr(k), zero_blk, TrafficSource::Recovery);
    recover(std::move(done));
}

} // namespace thynvm
