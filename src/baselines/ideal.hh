/**
 * @file
 * Idealized single-technology controllers (paper §5.1).
 *
 * Ideal DRAM / Ideal NVM: main memory is a single device covering the
 * whole physical address space, and crash consistency is assumed to be
 * provided at zero cost — no checkpointing, no versioning, no stalls.
 * These set the upper (DRAM) and technology-limited (NVM) reference
 * points the paper normalizes against.
 */

#ifndef THYNVM_BASELINES_IDEAL_HH
#define THYNVM_BASELINES_IDEAL_HH

#include <algorithm>
#include <cstring>
#include <memory>

#include "mem/controller.hh"
#include "mem/port.hh"

namespace thynvm {

/**
 * A flat controller over one memory device with no consistency cost.
 */
class IdealController : public MemController
{
  public:
    /**
     * @param eq event queue.
     * @param name instance name.
     * @param phys_size physical address space in bytes.
     * @param is_dram true for Ideal DRAM timing, false for Ideal NVM.
     * @param store optional surviving device contents.
     */
    IdealController(EventQueue& eq, std::string name,
                    std::size_t phys_size, bool is_dram,
                    std::shared_ptr<BackingStore> store = nullptr)
        : MemController(eq, std::move(name)),
          phys_size_(phys_size),
          is_dram_(is_dram),
          dev_(eq, this->name() + (is_dram ? ".dram" : ".nvm"),
               is_dram ? DeviceParams::dram(phys_size)
                       : DeviceParams::nvm(phys_size),
               std::move(store)),
          port_(dev_)
    {}

    /**
     * Device bytes a controller over @p phys_size occupies (the flat
     * space itself). The channel group sizes per-channel backing-store
     * slices with this before construction.
     */
    static std::size_t nvmCapacity(std::size_t phys_size)
    {
        return phys_size;
    }

    std::size_t physCapacity() const override { return phys_size_; }

    void
    accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                std::uint8_t* rdata, TrafficSource source,
                std::function<void()> done) override
    {
        panic_if(paddr % kBlockSize != 0, "unaligned controller access");
        panic_if(paddr + kBlockSize > phys_size_,
                 "physical address out of range");
        if (is_write) {
            noteAppWrite();
            port_.sendWrite(paddr, wdata, source, {}, std::move(done));
        } else {
            port_.functionalRead(paddr, rdata, kBlockSize);
            port_.sendRead(paddr, source, std::move(done));
        }
    }

    /**
     * Never fast: even the ideal controller models device timing, so
     * every access enqueues into the device's bank queues and the
     * enqueue tick is timing-visible.
     */
    Tick
    tryAccessFast(Addr, bool, const std::uint8_t*, std::uint8_t*,
                  TrafficSource) final
    {
        return kNoFastPath;
    }

    void
    functionalRead(Addr paddr, void* buf, std::size_t len) const override
    {
        panic_if(paddr + len > phys_size_, "functional read out of range");
        auto* out = static_cast<std::uint8_t*>(buf);
        std::size_t remaining = len;
        Addr addr = paddr;
        while (remaining > 0) {
            const Addr block = blockAlign(addr);
            const std::size_t in_block = addr - block;
            const std::size_t chunk =
                std::min(remaining, kBlockSize - in_block);
            std::uint8_t tmp[kBlockSize];
            port_.functionalRead(block, tmp, kBlockSize);
            std::memcpy(out, tmp + in_block, chunk);
            out += chunk;
            addr += chunk;
            remaining -= chunk;
        }
    }

    void
    loadImage(Addr paddr, const void* buf, std::size_t len) override
    {
        panic_if(paddr + len > phys_size_, "image beyond physical space");
        dev_.store().write(paddr, buf, len);
    }

    void
    forEachTouchedPhysRange(
        const std::function<void(Addr, std::size_t)>& fn) const override
    {
        // The flat space maps identity onto the device; functionalRead
        // overlays staged port writes on the store.
        dev_.store().forEachTouchedRange(
            [&](Addr a, const std::uint8_t*, std::size_t len) {
                if (a < phys_size_)
                    fn(a, std::min(len, phys_size_ - a));
            });
        port_.forEachStagedWriteAddr([&](Addr a) {
            if (a < phys_size_)
                fn(a, kBlockSize);
        });
    }

    void
    crash() override
    {
        // Idealized systems are *assumed* to provide crash consistency
        // at no cost (paper §5.1), so their contents survive intact —
        // including writes still queued at the instant of failure.
        port_.quiesce();
        dev_.quiesce();
    }

    void
    recover(std::function<void()> done) override
    {
        // Idealized: consistency is free by assumption.
        ++recoveries_;
        eventq_.scheduleIn(0, std::move(done));
    }

    /** The single backing device. */
    MemDevice& device() { return dev_; }

    MemDevice* nvmDevice() override { return is_dram_ ? nullptr : &dev_; }
    MemDevice* dramDevice() override { return is_dram_ ? &dev_ : nullptr; }
    std::shared_ptr<BackingStore> nvmStoreHandle() override
    {
        return dev_.storeHandle();
    }

  private:
    std::size_t phys_size_;
    bool is_dram_;
    MemDevice dev_;
    DevicePort port_;
};

} // namespace thynvm

#endif // THYNVM_BASELINES_IDEAL_HH
