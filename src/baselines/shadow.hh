/**
 * @file
 * Shadow paging (copy-on-write) baseline controller (paper §5.1,
 * system 4).
 *
 * Written pages are copied on first write from NVM into a DRAM buffer;
 * subsequent writes coalesce there. When the buffer fills, LRU dirty
 * pages are flushed to the *shadow* NVM slot of the page (never
 * overwriting the committed copy in place). At each epoch boundary,
 * stop-the-world: all dirty pages are flushed to their shadow slots and
 * a per-page slot table plus the CPU state are committed atomically.
 * Its pathology, reproduced here, is write amplification under sparse
 * (random) updates: a single dirty block costs a whole-page flush.
 */

#ifndef THYNVM_BASELINES_SHADOW_HH
#define THYNVM_BASELINES_SHADOW_HH

#include <unordered_map>

#include "baselines/epoch_controller.hh"
#include "mem/port.hh"

namespace thynvm {

/** Configuration of the shadow-paging controller. */
struct ShadowConfig
{
    /** Software-visible physical address space in bytes. */
    std::size_t phys_size = 32u << 20;
    /** DRAM buffer size in bytes (paper: same as ThyNVM's DRAM). */
    std::size_t dram_size = 16u << 20;
    /** Epoch length. */
    Tick epoch_length = 10 * kMillisecond;
    /** Reserved bytes for the CPU state blob. */
    std::size_t cpu_state_max = 16384;
};

/**
 * Copy-on-write hybrid persistent-memory controller.
 */
class ShadowController : public EpochController
{
  public:
    ShadowController(EventQueue& eq, std::string name,
                     const ShadowConfig& cfg,
                     std::shared_ptr<BackingStore> nvm_store = nullptr);

    /**
     * NVM bytes a controller with this config occupies (home + shadow
     * regions, slot tables, headers, CPU areas). The channel group
     * sizes per-channel backing-store slices with this before
     * construction.
     */
    static std::size_t nvmCapacity(const ShadowConfig& cfg);

    std::size_t physCapacity() const override { return cfg_.phys_size; }
    void accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata, TrafficSource source,
                     std::function<void()> done) override;

    /**
     * Never fast: every access may trigger a copy-on-write page fetch
     * into the DRAM buffer and always travels the device ports, so the
     * issue tick is timing-visible.
     */
    Tick
    tryAccessFast(Addr, bool, const std::uint8_t*, std::uint8_t*,
                  TrafficSource) final
    {
        return kNoFastPath;
    }

    void functionalRead(Addr paddr, void* buf,
                        std::size_t len) const override;
    void forEachTouchedPhysRange(
        const std::function<void(Addr, std::size_t)>& fn) const override;
    void loadImage(Addr paddr, const void* buf, std::size_t len) override;
    void crash() override;
    void recover(std::function<void()> done) override;
    void recoverTo(std::uint64_t max_epoch,
                   std::function<void()> done) override;
    std::uint64_t committedEpoch() const override;

    /** DRAM device (page buffer). */
    MemDevice& dram() { return dram_dev_; }
    /** NVM device (home + shadow + table slots). */
    MemDevice& nvm() { return nvm_dev_; }
    MemDevice* nvmDevice() override { return &nvm_dev_; }
    MemDevice* dramDevice() override { return &dram_dev_; }
    std::shared_ptr<BackingStore> nvmStoreHandle() override
    {
        return nvm_dev_.storeHandle();
    }
    /** Pages currently resident in the DRAM buffer. */
    std::size_t residentPages() const { return resident_.size(); }

  protected:
    void doCheckpoint(std::function<void()> done) override;

  private:
    struct Resident
    {
        std::size_t slot;
        bool dirty;
        std::uint64_t lru;
    };

    std::size_t numPages() const { return cfg_.phys_size / kPageSize; }
    std::size_t numSlots() const { return cfg_.dram_size / kPageSize; }
    Addr nvmPageAddr(std::size_t page_idx, std::uint8_t slot) const
    {
        // Slot 0 = home, slot 1 = shadow region.
        return (slot == 0 ? 0 : cfg_.phys_size) + page_idx * kPageSize;
    }
    Addr tableAddr(unsigned k) const;
    Addr headerAddr(unsigned k) const;
    Addr cpuAddr(unsigned k) const;

    /** Bring a page into the DRAM buffer (copy-on-write). */
    Resident& fault(Addr page_paddr);
    /** Flush one resident dirty page to its shadow NVM slot. */
    void flushPage(Addr page_paddr, Resident& r, TrafficSource src);
    /** Evict a page to free a DRAM slot. */
    void evictOne();
    /** NVM address of the current visible copy of @p page_paddr. */
    Addr visibleNvmPage(Addr page_paddr) const;

    ShadowConfig cfg_;
    MemDevice dram_dev_;
    MemDevice nvm_dev_;
    DevicePort dram_port_;
    DevicePort nvm_port_;

    /** Committed NVM slot per page (0 = home, 1 = shadow). */
    std::vector<std::uint8_t> committed_slot_;
    /** Pages flushed to the shadow slot since the last commit. */
    std::vector<std::uint8_t> working_nvm_valid_;
    /** page paddr -> DRAM residency. */
    std::unordered_map<Addr, Resident> resident_;
    std::vector<std::size_t> free_slots_;
    std::uint64_t lru_clock_ = 0;
    std::uint64_t epoch_num_ = 1;

    stats::Scalar cow_faults_;
    stats::Scalar evictions_;
    stats::Scalar pages_flushed_;
};

} // namespace thynvm

#endif // THYNVM_BASELINES_SHADOW_HH
