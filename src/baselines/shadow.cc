/**
 * @file
 * ShadowController implementation.
 */

#include "baselines/shadow.hh"

#include <algorithm>

namespace thynvm {

namespace {

constexpr std::uint64_t kShadowMagic = 0x5348414457504721ull; // SHADWPG!

struct ShadowHeader
{
    std::uint64_t magic;
    std::uint64_t epoch;
    std::uint64_t cpu_len;
};

} // namespace

ShadowController::ShadowController(
    EventQueue& eq, std::string name, const ShadowConfig& cfg,
    std::shared_ptr<BackingStore> nvm_store)
    : EpochController(eq, std::move(name), cfg.epoch_length),
      cfg_(cfg),
      dram_dev_(eq, this->name() + ".dram",
                DeviceParams::dram(cfg.dram_size)),
      nvm_dev_(eq, this->name() + ".nvm",
               DeviceParams::nvm(nvmCapacity(cfg)),
               std::move(nvm_store)),
      dram_port_(dram_dev_),
      nvm_port_(nvm_dev_),
      committed_slot_(numPages(), 0),
      working_nvm_valid_(numPages(), 0)
{
    fatal_if(cfg_.phys_size % kPageSize != 0 ||
                 cfg_.dram_size % kPageSize != 0,
             "sizes must be page aligned");
    free_slots_.reserve(numSlots());
    for (std::size_t i = numSlots(); i-- > 0;)
        free_slots_.push_back(i);

    stats().addScalar("cow_faults", &cow_faults_,
                      "pages copied into the DRAM buffer on write");
    stats().addScalar("evictions", &evictions_,
                      "pages evicted from the DRAM buffer");
    stats().addScalar("pages_flushed", &pages_flushed_,
                      "dirty pages flushed to shadow NVM slots");
}

std::size_t
ShadowController::nvmCapacity(const ShadowConfig& cfg)
{
    return 2 * cfg.phys_size +
           2 * roundUp(cfg.phys_size / kPageSize, kBlockSize) +
           2 * (kBlockSize + roundUp(8 + cfg.cpu_state_max, kBlockSize));
}

Addr
ShadowController::tableAddr(unsigned k) const
{
    return 2 * cfg_.phys_size +
           k * roundUp(numPages(), kBlockSize);
}

Addr
ShadowController::headerAddr(unsigned k) const
{
    return 2 * cfg_.phys_size + 2 * roundUp(numPages(), kBlockSize) +
           k * (kBlockSize + roundUp(8 + cfg_.cpu_state_max, kBlockSize));
}

Addr
ShadowController::cpuAddr(unsigned k) const
{
    return headerAddr(k) + kBlockSize;
}

Addr
ShadowController::visibleNvmPage(Addr page_paddr) const
{
    const std::size_t idx = pageIndex(page_paddr);
    std::uint8_t slot = committed_slot_[idx];
    if (working_nvm_valid_[idx])
        slot ^= 1u;
    return nvmPageAddr(idx, slot);
}

ShadowController::Resident&
ShadowController::fault(Addr page_paddr)
{
    auto it = resident_.find(page_paddr);
    if (it != resident_.end()) {
        it->second.lru = ++lru_clock_;
        return it->second;
    }

    if (free_slots_.empty())
        evictOne();
    panic_if(free_slots_.empty(), "no DRAM slot after eviction");
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();

    // Copy-on-write: bring the visible NVM copy into DRAM.
    ++cow_faults_;
    const Addr src = visibleNvmPage(page_paddr);
    for (std::size_t blk = 0; blk < kBlocksPerPage; ++blk) {
        std::uint8_t data[kBlockSize];
        nvm_port_.functionalRead(src + blk * kBlockSize, data, kBlockSize);

        nvm_port_.sendRead(src + blk * kBlockSize,
                           TrafficSource::Migration);
        dram_port_.sendWrite(slot * kPageSize + blk * kBlockSize, data,
                             TrafficSource::Migration);
    }

    auto [nit, ok] =
        resident_.emplace(page_paddr, Resident{slot, false, ++lru_clock_});
    panic_if(!ok, "duplicate residency");
    return nit->second;
}

void
ShadowController::evictOne()
{
    // Prefer the LRU clean page (free drop); otherwise flush LRU dirty.
    Addr victim = kInvalidAddr;
    bool victim_dirty = true;
    std::uint64_t victim_lru = 0;
    for (const auto& [paddr, r] : resident_) {
        const bool better = victim == kInvalidAddr ||
                            (victim_dirty && !r.dirty) ||
                            (victim_dirty == r.dirty && r.lru < victim_lru);
        if (better) {
            victim = paddr;
            victim_dirty = r.dirty;
            victim_lru = r.lru;
        }
    }
    panic_if(victim == kInvalidAddr, "eviction from empty buffer");

    auto it = resident_.find(victim);
    ++evictions_;
    if (it->second.dirty)
        flushPage(victim, it->second, TrafficSource::Checkpoint);
    free_slots_.push_back(it->second.slot);
    resident_.erase(it);
}

void
ShadowController::flushPage(Addr page_paddr, Resident& r,
                            TrafficSource src)
{
    crashPoint("ckpt.page_flushed");
    const std::size_t idx = pageIndex(page_paddr);
    const std::uint8_t target = committed_slot_[idx] ^ 1u;
    const Addr dst = nvmPageAddr(idx, target);
    for (std::size_t blk = 0; blk < kBlocksPerPage; ++blk) {
        std::uint8_t data[kBlockSize];
        dram_port_.functionalRead(r.slot * kPageSize + blk * kBlockSize,
                                  data, kBlockSize);

        dram_port_.sendRead(r.slot * kPageSize + blk * kBlockSize, src);
        nvm_port_.sendWrite(dst + blk * kBlockSize, data, src);
    }
    working_nvm_valid_[idx] = 1;
    r.dirty = false;
    ++pages_flushed_;
}

void
ShadowController::accessBlock(Addr paddr, bool is_write,
                              const std::uint8_t* wdata,
                              std::uint8_t* rdata, TrafficSource source,
                              std::function<void()> done)
{
    panic_if(paddr % kBlockSize != 0, "unaligned controller access");
    panic_if(paddr + kBlockSize > cfg_.phys_size,
             "physical address out of range");
    const Addr page = pageAlign(paddr);
    auto it = resident_.find(page);

    if (!is_write) {
        if (it != resident_.end()) {
            it->second.lru = ++lru_clock_;
            const Addr a =
                it->second.slot * kPageSize + (paddr - page);
            dram_port_.functionalRead(a, rdata, kBlockSize);
            dram_port_.sendRead(a, source, std::move(done));
        } else {
            const Addr a = visibleNvmPage(page) + (paddr - page);
            nvm_port_.functionalRead(a, rdata, kBlockSize);
            nvm_port_.sendRead(a, source, std::move(done));
        }
        return;
    }

    noteAppWrite();
    Resident& r = fault(page);
    r.dirty = true;
    dram_port_.sendWrite(r.slot * kPageSize + (paddr - page), wdata,
                         TrafficSource::CpuWriteback, {}, std::move(done));
}

void
ShadowController::functionalRead(Addr paddr, void* buf,
                                 std::size_t len) const
{
    auto* out = static_cast<std::uint8_t*>(buf);
    std::size_t remaining = len;
    Addr addr = paddr;
    while (remaining > 0) {
        const Addr block = blockAlign(addr);
        const Addr page = pageAlign(addr);
        const std::size_t in_block = addr - block;
        const std::size_t chunk =
            std::min(remaining, kBlockSize - in_block);
        std::uint8_t tmp[kBlockSize];
        auto it = resident_.find(page);
        if (it != resident_.end()) {
            dram_port_.functionalRead(
                it->second.slot * kPageSize + (block - page), tmp,
                kBlockSize);
        } else {
            nvm_port_.functionalRead(visibleNvmPage(page) + (block - page),
                                     tmp, kBlockSize);
        }
        std::memcpy(out, tmp + in_block, chunk);
        out += chunk;
        addr += chunk;
        remaining -= chunk;
    }
}

void
ShadowController::loadImage(Addr paddr, const void* buf, std::size_t len)
{
    panic_if(paddr + len > cfg_.phys_size, "image beyond physical space");
    nvm_dev_.store().write(paddr, buf, len);
}

void
ShadowController::forEachTouchedPhysRange(
    const std::function<void(Addr, std::size_t)>& fn) const
{
    // NVM page slots: slot 0 of page i lives at i*kPageSize, slot 1 at
    // phys_size + i*kPageSize (see nvmPageAddr). Both regions are
    // phys_size long and kPageSize-aligned, and touched-range chunks
    // never straddle a host page, so mapping a chunk's base address
    // back to its physical page is exact. Device areas beyond the two
    // slot regions (page table, headers, CPU state) are never
    // software-visible.
    const auto mapNvm = [&](Addr a, std::size_t len) {
        const Addr end = a + len;
        if (a < cfg_.phys_size) {
            const Addr hi = std::min<Addr>(end, cfg_.phys_size);
            fn(a, hi - a);
        }
        const Addr lo1 = std::max<Addr>(a, cfg_.phys_size);
        const Addr hi1 = std::min<Addr>(end, 2 * cfg_.phys_size);
        if (lo1 < hi1)
            fn(lo1 - cfg_.phys_size, hi1 - lo1);
    };
    nvm_dev_.store().forEachTouchedRange(
        [&](Addr a, const std::uint8_t*, std::size_t len) {
            mapNvm(a, len);
        });
    nvm_port_.forEachStagedWriteAddr(
        [&](Addr a) { mapNvm(a, kBlockSize); });
    // Pages faulted into the DRAM working set shadow whatever is in
    // NVM for reads.
    for (const auto& [page, r] : resident_)
        fn(page, kPageSize);
}

void
ShadowController::doCheckpoint(std::function<void()> done)
{
    crashPoint("ckpt.start");
    // Flush every dirty resident page to its shadow slot.
    std::vector<Addr> pages;
    for (auto& [paddr, r] : resident_) {
        if (r.dirty)
            pages.push_back(paddr);
    }
    std::sort(pages.begin(), pages.end());
    for (Addr paddr : pages)
        flushPage(paddr, resident_.at(paddr), TrafficSource::Checkpoint);

    // New committed-slot table: flushed pages flip to the shadow slot.
    std::vector<std::uint8_t> table(roundUp(numPages(), kBlockSize), 0);
    for (std::size_t i = 0; i < numPages(); ++i)
        table[i] = committed_slot_[i] ^ working_nvm_valid_[i];

    const unsigned k = static_cast<unsigned>(epoch_num_ & 1);
    for (std::size_t off = 0; off < table.size(); off += kBlockSize) {
        nvm_port_.sendWrite(tableAddr(k) + off, table.data() + off,
                            TrafficSource::Checkpoint);
    }

    std::vector<std::uint8_t> cpu(roundUp(8 + cpu_state_.size(),
                                          kBlockSize),
                                  0);
    const std::uint64_t cpu_len = cpu_state_.size();
    std::memcpy(cpu.data(), &cpu_len, 8);
    std::memcpy(cpu.data() + 8, cpu_state_.data(), cpu_state_.size());
    for (std::size_t off = 0; off < cpu.size(); off += kBlockSize) {
        nvm_port_.sendWrite(cpuAddr(k) + off, cpu.data() + off,
                            TrafficSource::Checkpoint);
    }
    crashPoint("ckpt.table_staged");

    nvm_port_.notifyWhenWritesDurable([this, k,
                                       done = std::move(done)]() mutable {
      commitGate(0, [this, k, done = std::move(done)]() mutable {
        crashPoint("ckpt.pre_commit_header");
        ShadowHeader hdr{};
        hdr.magic = kShadowMagic;
        hdr.epoch = epoch_num_;
        hdr.cpu_len = cpu_state_.size();
        std::uint8_t hdr_blk[kBlockSize] = {};
        std::memcpy(hdr_blk, &hdr, sizeof(hdr));
        nvm_port_.sendWrite(headerAddr(k), hdr_blk,
                            TrafficSource::Checkpoint);
        nvm_port_.notifyWhenWritesDurable(
            [this, done = std::move(done)]() mutable {
              commitGate(1, [this, done = std::move(done)]() mutable {
                crashPoint("ckpt.pre_slot_flip");
                // Commit: flip slots for flushed pages.
                for (std::size_t i = 0; i < numPages(); ++i) {
                    committed_slot_[i] ^= working_nvm_valid_[i];
                    working_nvm_valid_[i] = 0;
                }
                ++epoch_num_;
                done();
              });
            });
      });
    });
}

void
ShadowController::crash()
{
    dram_port_.crash();
    nvm_port_.crash();
    dram_dev_.crash();
    nvm_dev_.crash();
    dram_dev_.store().clear();
    resident_.clear();
    free_slots_.clear();
    for (std::size_t i = numSlots(); i-- > 0;)
        free_slots_.push_back(i);
    std::fill(committed_slot_.begin(), committed_slot_.end(), 0);
    std::fill(working_nvm_valid_.begin(), working_nvm_valid_.end(), 0);
    resetEpochState();
}

void
ShadowController::recover(std::function<void()> done)
{
    int best = -1;
    std::uint64_t best_epoch = 0;
    std::uint64_t cpu_len = 0;
    for (unsigned k = 0; k < 2; ++k) {
        ShadowHeader hdr{};
        nvm_dev_.store().read(headerAddr(k), &hdr, sizeof(hdr));
        if (hdr.magic == kShadowMagic &&
            (best < 0 || hdr.epoch > best_epoch)) {
            best = static_cast<int>(k);
            best_epoch = hdr.epoch;
            cpu_len = hdr.cpu_len;
        }
    }

    auto outstanding = std::make_shared<std::uint64_t>(1);
    auto fire = std::make_shared<std::function<void()>>(std::move(done));
    auto dec = [this, outstanding, fire] {
        if (--*outstanding == 0) {
            ++recoveries_;
            auto cb = std::move(*fire);
            *fire = nullptr;
            if (cb)
                cb();
        }
    };

    if (best >= 0) {
        const unsigned k = static_cast<unsigned>(best);
        std::vector<std::uint8_t> table(roundUp(numPages(), kBlockSize));
        nvm_dev_.store().read(tableAddr(k), table.data(), table.size());
        for (std::size_t i = 0; i < numPages(); ++i)
            committed_slot_[i] = table[i] & 1u;
        for (std::size_t off = 0; off < table.size(); off += kBlockSize) {
            ++*outstanding;
            nvm_port_.sendRead(tableAddr(k) + off, TrafficSource::Recovery,
                               dec);
        }
        recovered_cpu_state_.resize(cpu_len);
        std::uint64_t stored_len = 0;
        nvm_dev_.store().read(cpuAddr(k), &stored_len, 8);
        panic_if(stored_len != cpu_len, "CPU state length mismatch");
        nvm_dev_.store().read(cpuAddr(k) + 8, recovered_cpu_state_.data(),
                              cpu_len);
        epoch_num_ = best_epoch + 1;
    } else {
        recovered_cpu_state_.clear();
        epoch_num_ = 1;
    }

    eventq_.scheduleIn(0, dec);
}

std::uint64_t
ShadowController::committedEpoch() const
{
    std::uint64_t best = 0;
    for (unsigned k = 0; k < 2; ++k) {
        ShadowHeader hdr{};
        nvm_dev_.store().read(headerAddr(k), &hdr, sizeof(hdr));
        if (hdr.magic == kShadowMagic && hdr.epoch > best)
            best = hdr.epoch;
    }
    return best;
}

void
ShadowController::recoverTo(std::uint64_t max_epoch,
                            std::function<void()> done)
{
    for (unsigned k = 0; k < 2; ++k) {
        ShadowHeader hdr{};
        nvm_dev_.store().read(headerAddr(k), &hdr, sizeof(hdr));
        if (hdr.magic != kShadowMagic || hdr.epoch <= max_epoch)
            continue;
        panic_if(hdr.epoch > max_epoch + 1,
                 "committed epoch beyond the recovery target + 1: the "
                 "cross-channel commit barrier should bound the spread");
        // This slot committed past the group minimum. The phase-1
        // barrier guarantees its slot flip never happened on any
        // channel, so the other slot's table still describes the target
        // image and that image's pages were never overwritten.
        // Invalidate the stale header durably (functional store write
        // so a crash mid-recovery cannot roll it back) and model the
        // timed write; otherwise a crash while the epoch is re-executed
        // and re-staged could resurrect the stale header over a
        // half-rewritten slot table.
        std::uint8_t zero_blk[kBlockSize] = {};
        nvm_dev_.store().write(headerAddr(k), zero_blk, kBlockSize);
        nvm_port_.sendWrite(headerAddr(k), zero_blk,
                            TrafficSource::Recovery);
    }
    recover(std::move(done));
}

} // namespace thynvm
