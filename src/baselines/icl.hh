/**
 * @file
 * In-cache-line logging controller (Cohen et al., "Fine-Grain
 * Checkpointing with In-Cache-Line Logging").
 *
 * Every software-visible cache line owns a 256-byte NVM group holding
 * the line itself plus its undo state: [home | log | overflow | pad].
 * A store first writes an undo record into the line's log block — the
 * pre-epoch values of the words it changes, tagged with the current
 * epoch number — then updates the home block in place. Records are
 * never cleared: committing an epoch just advances the durable epoch
 * number, which invalidates every live record by tag mismatch (the
 * ICL trick), so a checkpoint writes only the CPU blob and a header.
 * Recovery undoes the records tagged with the crashed epoch.
 *
 * Up to six changed words fit inline in the log block (a "slim"
 * record); a wider update first copies the committed line into the
 * overflow block and logs a "fat" record pointing at it. The whole
 * group lives in one device row (256 divides the 8 KiB row), and the
 * write port issues in FIFO order into per-bank FIFO queues, so the
 * overflow -> log -> home enqueue order *is* the durability order —
 * undo state is always durable before the in-place update it covers,
 * with no drain barrier on the store path.
 */

#ifndef THYNVM_BASELINES_ICL_HH
#define THYNVM_BASELINES_ICL_HH

#include <unordered_map>

#include "baselines/epoch_controller.hh"
#include "mem/port.hh"

namespace thynvm {

/** Configuration of the in-cache-line logging controller. */
struct IclConfig
{
    /** Software-visible physical address space in bytes. */
    std::size_t phys_size = 32u << 20;
    /** Epoch length. */
    Tick epoch_length = 10 * kMillisecond;
    /** Reserved bytes for the CPU state blob. */
    std::size_t cpu_state_max = 16384;
};

/**
 * In-cache-line logging persistent-memory controller (NVM only; the
 * log rides in each line's own NVM footprint, so there is no DRAM).
 */
class IclController : public EpochController
{
  public:
    /** Saved words a slim record holds inline. */
    static constexpr std::size_t kSlimWords = 6;
    /** Bytes of NVM footprint per software-visible line. */
    static constexpr std::size_t kGroupSize = 4 * kBlockSize;

    IclController(EventQueue& eq, std::string name, const IclConfig& cfg,
                  std::shared_ptr<BackingStore> nvm_store = nullptr);

    /**
     * NVM bytes a controller with this config occupies (per-line
     * groups + header + CPU areas). The channel group sizes
     * per-channel backing-store slices with this before construction.
     */
    static std::size_t nvmCapacity(const IclConfig& cfg);

    std::size_t physCapacity() const override { return cfg_.phys_size; }
    void accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata, TrafficSource source,
                     std::function<void()> done) override;

    /**
     * Never fast: every access travels the NVM device queues (reads
     * from home, writes as log+home traffic), so the issue tick is
     * timing-visible.
     */
    Tick
    tryAccessFast(Addr, bool, const std::uint8_t*, std::uint8_t*,
                  TrafficSource) final
    {
        return kNoFastPath;
    }

    void functionalRead(Addr paddr, void* buf,
                        std::size_t len) const override;
    void forEachTouchedPhysRange(
        const std::function<void(Addr, std::size_t)>& fn) const override;
    void loadImage(Addr paddr, const void* buf, std::size_t len) override;
    void crash() override;
    void recover(std::function<void()> done) override;
    void recoverTo(std::uint64_t max_epoch,
                   std::function<void()> done) override;
    std::uint64_t committedEpoch() const override;

    /** NVM device (home lines + embedded logs + header + CPU areas). */
    MemDevice& nvm() { return nvm_dev_; }
    MemDevice* nvmDevice() override { return &nvm_dev_; }
    std::shared_ptr<BackingStore> nvmStoreHandle() override
    {
        return nvm_dev_.storeHandle();
    }
    /** Lines with a live (current-epoch) log record. */
    std::size_t liveLogLines() const { return live_.size(); }

  protected:
    void doCheckpoint(std::function<void()> done) override;

  private:
    /** Per-line volatile view of the current epoch's log record. */
    struct LiveLog
    {
        /** Saved-word mask (bits 0..7); ignored once fat. */
        std::uint16_t mask = 0;
        /** True once the committed line sits in the overflow block. */
        bool fat = false;
    };

    Addr groupBase(Addr paddr) const { return paddr * 4; }
    Addr homeAddr(Addr paddr) const { return groupBase(paddr); }
    Addr logAddr(Addr paddr) const
    {
        return groupBase(paddr) + kBlockSize;
    }
    Addr ovfAddr(Addr paddr) const
    {
        return groupBase(paddr) + 2 * kBlockSize;
    }
    Addr headerAddr() const { return cfg_.phys_size * 4; }
    Addr cpuAddr(unsigned k) const;

    /**
     * Undo every log record tagged @p target_epoch (functionally via
     * the store plus timed Recovery traffic, accounted on the
     * outstanding counter through @p track / @p dec). Idempotent: the
     * records themselves are never modified.
     */
    void undoEpoch(std::uint64_t target_epoch,
                   const std::function<void()>& track,
                   const std::function<void()>& dec);

    IclConfig cfg_;
    MemDevice nvm_dev_;
    DevicePort nvm_port_;

    /** Lines logged in the current epoch: paddr -> record view. */
    std::unordered_map<Addr, LiveLog> live_;
    std::uint64_t epoch_num_ = 1;

    stats::Scalar slim_logs_;
    stats::Scalar fat_logs_;
    stats::Scalar log_merges_;
    stats::Scalar undone_lines_;
};

} // namespace thynvm

#endif // THYNVM_BASELINES_ICL_HH
