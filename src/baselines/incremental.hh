/**
 * @file
 * Incremental-checkpoint controller (libcrpm-style dirty-range
 * tracking over a double NVM image).
 *
 * Every physical block has two NVM copies (slot A and slot B); a
 * per-block slot bitmap says which copy the committed image uses. Dirty
 * blocks coalesce in a DRAM buffer during the epoch; the checkpoint
 * stages each one into its block's *non*-committed slot, rewrites only
 * the bitmap blocks whose bits changed in the last two epochs (the
 * bitmap itself is double-buffered by epoch parity), and commits with a
 * parity-addressed header. Nothing is ever copied at commit time — only
 * touched extents are written, so write amplification stays near 1 —
 * and recovery is metadata-only: rebuild the slot bitmap from the
 * committed parity area and resume.
 */

#ifndef THYNVM_BASELINES_INCREMENTAL_HH
#define THYNVM_BASELINES_INCREMENTAL_HH

#include <set>
#include <unordered_map>

#include "baselines/epoch_controller.hh"
#include "mem/port.hh"

namespace thynvm {

/** Configuration of the incremental-checkpoint controller. */
struct IncrementalConfig
{
    /** Software-visible physical address space in bytes. */
    std::size_t phys_size = 32u << 20;
    /**
     * Soft capacity of the dirty-block table; reaching it forces an
     * epoch boundary (sized as ThyNVM's BTT + PTT, like the journal).
     */
    std::size_t table_entries = 2048 + 4096;
    /**
     * Extra hard headroom so the cache-flush writebacks at a boundary
     * can always be absorbed (more than the whole hierarchy's blocks).
     */
    std::size_t table_headroom = 40 * 1024;
    /** Epoch length. */
    Tick epoch_length = 10 * kMillisecond;
    /** Reserved bytes for the CPU state blob. */
    std::size_t cpu_state_max = 16384;
};

/**
 * Incremental (touched-extent) checkpointing hybrid controller.
 */
class IncrementalController : public EpochController
{
  public:
    IncrementalController(EventQueue& eq, std::string name,
                          const IncrementalConfig& cfg,
                          std::shared_ptr<BackingStore> nvm_store =
                              nullptr);

    /**
     * NVM bytes a controller with this config occupies (two image
     * slots + two bitmap areas + headers + CPU areas). The channel
     * group sizes per-channel backing-store slices with this before
     * construction.
     */
    static std::size_t nvmCapacity(const IncrementalConfig& cfg);

    std::size_t physCapacity() const override { return cfg_.phys_size; }
    void accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata, TrafficSource source,
                     std::function<void()> done) override;

    /**
     * Never fast: reads hit an NVM slot or the DRAM buffer and writes
     * coalesce into DRAM, all as timed device-queue traffic; a boundary
     * may also stall the access entirely.
     */
    Tick
    tryAccessFast(Addr, bool, const std::uint8_t*, std::uint8_t*,
                  TrafficSource) final
    {
        return kNoFastPath;
    }

    void functionalRead(Addr paddr, void* buf,
                        std::size_t len) const override;
    void forEachTouchedPhysRange(
        const std::function<void(Addr, std::size_t)>& fn) const override;
    void loadImage(Addr paddr, const void* buf, std::size_t len) override;
    void crash() override;
    void recover(std::function<void()> done) override;
    void recoverTo(std::uint64_t max_epoch,
                   std::function<void()> done) override;
    std::uint64_t committedEpoch() const override;

    /** DRAM device (dirty-block buffer). */
    MemDevice& dram() { return dram_dev_; }
    /** NVM device (double image + bitmaps + headers). */
    MemDevice& nvm() { return nvm_dev_; }
    MemDevice* nvmDevice() override { return &nvm_dev_; }
    MemDevice* dramDevice() override { return &dram_dev_; }
    std::shared_ptr<BackingStore> nvmStoreHandle() override
    {
        return nvm_dev_.storeHandle();
    }
    /** Live entries in the dirty-block table. */
    std::size_t tableLive() const { return table_.size(); }

  protected:
    void doCheckpoint(std::function<void()> done) override;

  private:
    std::size_t hardCapacity() const
    {
        return cfg_.table_entries + cfg_.table_headroom;
    }
    std::size_t numBlocks() const { return cfg_.phys_size / kBlockSize; }
    /** Bytes of one slot bitmap, rounded up to whole blocks. */
    std::size_t bitmapArea() const
    {
        return roundUp((numBlocks() + 7) / 8, kBlockSize);
    }
    Addr dramSlotAddr(std::size_t slot) const { return slot * kBlockSize; }
    /** NVM address of @p paddr's committed copy. */
    Addr committedAddr(Addr paddr) const
    {
        return (committed_bit_[paddr / kBlockSize] != 0 ? cfg_.phys_size
                                                        : 0) +
               paddr;
    }
    Addr bitmapAddr(unsigned k) const;
    Addr headerAddr(unsigned k) const;
    /**
     * CPU-state area of epoch parity @p k; double-buffered for the same
     * reason as the bitmap — the committing epoch's staging writes must
     * not clobber the areas the still-committed header points at.
     */
    Addr cpuAddr(unsigned k) const;

    IncrementalConfig cfg_;
    MemDevice dram_dev_;
    MemDevice nvm_dev_;
    DevicePort dram_port_;
    DevicePort nvm_port_;

    /** physical block address -> DRAM buffer slot. */
    std::unordered_map<Addr, std::size_t> table_;
    std::size_t next_slot_ = 0;
    std::uint64_t epoch_num_ = 1;
    /** Per-block committed-slot bit (0 = slot A, 1 = slot B). */
    std::vector<std::uint8_t> committed_bit_;
    /**
     * Bitmap blocks (block-aligned byte offsets within a bitmap area)
     * whose bits flipped in the current / previous epoch. A parity area
     * is two epochs stale when rewritten, so the checkpoint refreshes
     * the union of both sets.
     */
    std::set<Addr> cur_changed_;
    std::set<Addr> prev_changed_;
    /** Rewrite the whole bitmap at the next checkpoint (post-recovery:
     * the non-authoritative parity area may hold partial staging). */
    bool write_all_ = false;

    stats::Scalar staged_blocks_;
    stats::Scalar bitmap_blocks_;
    stats::Scalar overflow_epochs_;
};

} // namespace thynvm

#endif // THYNVM_BASELINES_INCREMENTAL_HH
