/**
 * @file
 * Journaling (redo-log) baseline controller (paper §5.1, system 3).
 *
 * A journal buffer in DRAM collects and coalesces updated blocks. At
 * each epoch boundary, stop-the-world: the buffer is written to a
 * journal region in NVM together with its metadata, a commit header is
 * written after a full drain, the blocks are then applied in place to
 * the Home region, and finally an "applied" marker retires the journal.
 * Recovery replays a committed-but-unapplied journal (redo semantics).
 *
 * The dirty-block tracking table is sized like ThyNVM's BTT+PTT
 * combined, as in the paper's evaluation setup.
 */

#ifndef THYNVM_BASELINES_JOURNAL_HH
#define THYNVM_BASELINES_JOURNAL_HH

#include <unordered_map>

#include "baselines/epoch_controller.hh"
#include "mem/port.hh"

namespace thynvm {

/** Configuration of the journaling controller. */
struct JournalConfig
{
    /** Software-visible physical address space in bytes. */
    std::size_t phys_size = 32u << 20;
    /**
     * Soft capacity of the dirty-block table; reaching it forces an
     * epoch boundary (paper: sized as ThyNVM's BTT + PTT).
     */
    std::size_t table_entries = 2048 + 4096;
    /**
     * Extra hard headroom so the cache-flush writebacks at a boundary
     * can always be absorbed (more than the whole hierarchy's blocks).
     */
    std::size_t table_headroom = 40 * 1024;
    /** Epoch length. */
    Tick epoch_length = 10 * kMillisecond;
    /** Reserved bytes for the CPU state blob. */
    std::size_t cpu_state_max = 16384;
};

/**
 * Redo-journaling hybrid persistent-memory controller.
 */
class JournalController : public EpochController
{
  public:
    JournalController(EventQueue& eq, std::string name,
                      const JournalConfig& cfg,
                      std::shared_ptr<BackingStore> nvm_store = nullptr);

    /**
     * NVM bytes a controller with this config occupies (home + journal
     * + headers + CPU areas). The channel group sizes per-channel
     * backing-store slices with this before construction.
     */
    static std::size_t nvmCapacity(const JournalConfig& cfg);

    std::size_t physCapacity() const override { return cfg_.phys_size; }
    void accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata, TrafficSource source,
                     std::function<void()> done) override;

    /**
     * Never fast: reads hit NVM home or the DRAM journal buffer and
     * writes journal into DRAM, all as timed device-queue traffic; a
     * boundary may also stall the access entirely.
     */
    Tick
    tryAccessFast(Addr, bool, const std::uint8_t*, std::uint8_t*,
                  TrafficSource) final
    {
        return kNoFastPath;
    }

    void functionalRead(Addr paddr, void* buf,
                        std::size_t len) const override;
    void forEachTouchedPhysRange(
        const std::function<void(Addr, std::size_t)>& fn) const override;
    void loadImage(Addr paddr, const void* buf, std::size_t len) override;
    void crash() override;
    void recover(std::function<void()> done) override;
    void recoverTo(std::uint64_t max_epoch,
                   std::function<void()> done) override;
    std::uint64_t committedEpoch() const override;

    /** DRAM device (journal buffer). */
    MemDevice& dram() { return dram_dev_; }
    /** NVM device (home + journal + headers). */
    MemDevice& nvm() { return nvm_dev_; }
    MemDevice* nvmDevice() override { return &nvm_dev_; }
    MemDevice* dramDevice() override { return &dram_dev_; }
    std::shared_ptr<BackingStore> nvmStoreHandle() override
    {
        return nvm_dev_.storeHandle();
    }
    /** Live entries in the dirty-block table. */
    std::size_t tableLive() const { return table_.size(); }

  protected:
    void doCheckpoint(std::function<void()> done) override;

  private:
    std::size_t hardCapacity() const
    {
        return cfg_.table_entries + cfg_.table_headroom;
    }
    Addr dramSlotAddr(std::size_t slot) const { return slot * kBlockSize; }
    Addr journalDataAddr(std::size_t i) const;
    Addr journalMetaAddr() const;
    Addr headerAddr() const;
    Addr appliedAddr() const;
    /**
     * CPU-state area of epoch parity @p k. Double-buffered: the next
     * checkpoint's phase-1 writes must not clobber the state the
     * still-committed header points at (a crash between those writes
     * becoming durable and the new header landing would otherwise
     * recover old data with new CPU state).
     */
    Addr cpuAddr(unsigned k) const;

    JournalConfig cfg_;
    MemDevice dram_dev_;
    MemDevice nvm_dev_;
    DevicePort dram_port_;
    DevicePort nvm_port_;

    /** physical block address -> DRAM buffer slot. */
    std::unordered_map<Addr, std::size_t> table_;
    std::size_t next_slot_ = 0;
    std::uint64_t epoch_num_ = 1;

    stats::Scalar journaled_blocks_;
    stats::Scalar applied_blocks_;
    stats::Scalar replayed_blocks_;
    stats::Scalar overflow_epochs_;
};

} // namespace thynvm

#endif // THYNVM_BASELINES_JOURNAL_HH
