/**
 * @file
 * Timing model of a memory device (DRAM or NVM) with banked row buffers,
 * separate read/write queues, FR-FCFS-style scheduling with write-drain
 * watermarks, and crash-precise durability semantics.
 *
 * Timing follows Table 2 of the paper: row-buffer hits and misses have
 * fixed service latencies; NVM distinguishes clean and dirty row-buffer
 * misses (a dirty miss must first write the evicted row back to the cell
 * array). A shared data bus serializes block transfers.
 */

#ifndef THYNVM_MEM_DEVICE_HH
#define THYNVM_MEM_DEVICE_HH

#include <deque>
#include <memory>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/request.hh"
#include "sim/sim_object.hh"

namespace thynvm {

/**
 * Static configuration of a memory device.
 */
struct DeviceParams
{
    /** Total capacity in bytes. */
    std::size_t capacity = 16u << 20;
    /** Number of banks (requests to distinct banks proceed in parallel). */
    unsigned banks = 8;
    /** Row-buffer size in bytes. */
    std::size_t row_size = 8192;
    /** Service latency of a row-buffer hit. */
    Tick row_hit_latency = 40 * kNanosecond;
    /** Service latency of a row miss with a clean open row. */
    Tick row_miss_clean_latency = 80 * kNanosecond;
    /** Service latency of a row miss with a dirty open row. */
    Tick row_miss_dirty_latency = 80 * kNanosecond;
    /** Data-bus occupancy per 64-byte block transfer. */
    Tick burst_latency = 5 * kNanosecond;
    /** Read queue capacity. */
    unsigned read_queue_capacity = 32;
    /** Write queue capacity. */
    unsigned write_queue_capacity = 64;
    /** Start draining writes when the write queue reaches this level. */
    unsigned write_drain_high = 48;
    /** Stop draining when the write queue falls to this level. */
    unsigned write_drain_low = 16;

    /** Standard DDR3-1600 DRAM per Table 2. */
    static DeviceParams dram(std::size_t capacity);
    /** NVM timing per Table 2 (40/128/368 ns hit/clean/dirty). */
    static DeviceParams nvm(std::size_t capacity);
};

/**
 * A banked memory device with timing and functional state.
 *
 * Functional semantics: write data hits the backing store at *enqueue*
 * time so that producers can immediately read their own writes. For crash
 * fidelity every queued write saves undo bytes; crash() rolls back all
 * writes that the timing model had not yet serviced, leaving exactly the
 * bytes a real device would hold after power loss.
 */
class MemDevice : public SimObject
{
  public:
    MemDevice(EventQueue& eq, std::string name, const DeviceParams& params,
              std::shared_ptr<BackingStore> store = nullptr);

    /** Device configuration. */
    const DeviceParams& params() const { return params_; }
    /** Functional contents. */
    BackingStore& store() { return *store_; }
    const BackingStore& store() const { return *store_; }
    /** Shared handle to the functional contents (survives crash). */
    std::shared_ptr<BackingStore> storeHandle() { return store_; }

    /** True if a request of the given kind can be enqueued now. */
    bool canAccept(bool is_write) const;

    /**
     * Enqueue a request. Returns false (and does nothing) if the
     * corresponding queue is full. Write data is applied to the backing
     * store immediately on successful enqueue.
     */
    bool enqueue(DeviceRequest req);

    /** Register a one-shot callback for when queue space frees up. */
    void notifyWhenAccepting(bool is_write, std::function<void()> cb);

    /** True if no writes are queued or in flight. */
    bool writesDrained() const;

    /** One-shot callback for when all currently queued writes finish. */
    void notifyWhenWritesDrained(std::function<void()> cb);

    /**
     * Power-loss semantics: roll back queued-but-unserviced writes (in
     * reverse enqueue order), drop all queued requests and callbacks.
     * The event queue is assumed to be abandoned by the caller.
     */
    void crash();

    /**
     * Drop all queued requests and callbacks but keep the functional
     * contents (no rollback). Used by the idealized systems, whose
     * crash consistency is free by assumption.
     */
    void quiesce();

    /** Total bytes written, by traffic source. */
    std::uint64_t writeBytes(TrafficSource s) const;
    /** Total bytes written across all sources. */
    std::uint64_t totalWriteBytes() const;
    /** Total bytes read. */
    std::uint64_t totalReadBytes() const;

  private:
    struct QueuedRequest
    {
        DeviceRequest req;
        /** Undo bytes for crash rollback (writes only). */
        std::array<std::uint8_t, kBlockSize> undo;
        Tick enqueue_tick;
        std::uint64_t seq;
        bool in_service = false;
    };

    struct Bank
    {
        Tick busy_until = 0;
        std::uint64_t open_row = ~0ull;
        bool row_dirty = false;
        bool row_valid = false;
    };

    unsigned bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    /** Try to start servicing queued requests; schedules completions. */
    void trySchedule();
    /** Pick the next serviceable request index in @p q, or npos. */
    std::size_t pickNext(std::deque<QueuedRequest>& q);
    /** Begin timed service of request at index @p idx of queue @p q. */
    void startService(std::deque<QueuedRequest>& q, std::size_t idx);
    void finishService(bool is_write, std::uint64_t seq);
    void fireAcceptCallbacks(bool is_write);

    DeviceParams params_;
    std::shared_ptr<BackingStore> store_;
    std::vector<Bank> banks_;
    Tick bus_free_ = 0;

    std::deque<QueuedRequest> read_q_;
    std::deque<QueuedRequest> write_q_;
    bool draining_writes_ = false;
    std::uint64_t next_seq_ = 0;
    /** Coalesces a same-tick burst of enqueues into one scheduling pass. */
    Event schedule_event_;

    std::vector<std::function<void()>> read_accept_cbs_;
    std::vector<std::function<void()>> write_accept_cbs_;
    std::vector<std::function<void()>> drain_cbs_;

    // Statistics.
    stats::Scalar reads_;
    stats::Scalar writes_;
    stats::Scalar read_bytes_;
    stats::Scalar write_bytes_by_source_[kNumTrafficSources];
    stats::Scalar row_hits_;
    stats::Scalar row_misses_clean_;
    stats::Scalar row_misses_dirty_;
    stats::Scalar write_drain_entries_;
    stats::Histogram read_latency_{32, 2000.0}; // ns
};

} // namespace thynvm

#endif // THYNVM_MEM_DEVICE_HH
