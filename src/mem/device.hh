/**
 * @file
 * Timing model of a memory device (DRAM or NVM) with banked row buffers,
 * separate read/write queues, FR-FCFS-style scheduling with write-drain
 * watermarks, and crash-precise durability semantics.
 *
 * Timing follows Table 2 of the paper: row-buffer hits and misses have
 * fixed service latencies; NVM distinguishes clean and dirty row-buffer
 * misses (a dirty miss must first write the evicted row back to the cell
 * array). A shared data bus serializes block transfers.
 *
 * Hot-path design (DESIGN.md "Per-bank device scheduler"):
 *  - Requests live in a fixed slab of pooled slots; queues are intrusive
 *    doubly-linked FIFOs threaded through the slots, bucketed per bank
 *    and direction. Nothing is copied or shifted after enqueue.
 *  - FR-FCFS picks among at most `banks` head candidates; the oldest
 *    row-buffer hit per bank is tracked incrementally instead of being
 *    rediscovered by scanning the whole queue every pass.
 *  - Completions resolve by slot index in O(1); no search, no erase.
 *  - Undo bytes for crash rollback live in a per-device append-only
 *    undo log (truncated whenever the write queue drains), so queued
 *    requests carry no block-sized payloads at all.
 */

#ifndef THYNVM_MEM_DEVICE_HH
#define THYNVM_MEM_DEVICE_HH

#include <array>
#include <memory>
#include <vector>

#include "mem/backing_store.hh"
#include "mem/request.hh"
#include "sim/sim_object.hh"

namespace thynvm {

/**
 * Static configuration of a memory device.
 */
struct DeviceParams
{
    /** Total capacity in bytes. */
    std::size_t capacity = 16u << 20;
    /** Number of banks (requests to distinct banks proceed in parallel). */
    unsigned banks = 8;
    /** Row-buffer size in bytes. */
    std::size_t row_size = 8192;
    /** Service latency of a row-buffer hit. */
    Tick row_hit_latency = 40 * kNanosecond;
    /** Service latency of a row miss with a clean open row. */
    Tick row_miss_clean_latency = 80 * kNanosecond;
    /** Service latency of a row miss with a dirty open row. */
    Tick row_miss_dirty_latency = 80 * kNanosecond;
    /** Data-bus occupancy per 64-byte block transfer. */
    Tick burst_latency = 5 * kNanosecond;
    /** Read queue capacity. */
    unsigned read_queue_capacity = 32;
    /** Write queue capacity. */
    unsigned write_queue_capacity = 64;
    /** Start draining writes when the write queue reaches this level. */
    unsigned write_drain_high = 48;
    /** Stop draining when the write queue falls to this level. */
    unsigned write_drain_low = 16;

    /** Standard DDR3-1600 DRAM per Table 2. */
    static DeviceParams dram(std::size_t capacity);
    /** NVM timing per Table 2 (40/128/368 ns hit/clean/dirty). */
    static DeviceParams nvm(std::size_t capacity);
};

/**
 * A banked memory device with timing and functional state.
 *
 * Functional semantics: write data hits the backing store at *enqueue*
 * time so that producers can immediately read their own writes. For crash
 * fidelity every accepted write appends (addr, previous bytes) to the
 * device's undo log; crash() replays the log backwards over all writes
 * that the timing model had not yet serviced, leaving exactly the bytes
 * a real device would hold after power loss.
 */
class MemDevice : public SimObject
{
  public:
    MemDevice(EventQueue& eq, std::string name, const DeviceParams& params,
              std::shared_ptr<BackingStore> store = nullptr);

    /** Device configuration. */
    const DeviceParams& params() const { return params_; }
    /** Functional contents. */
    BackingStore& store() { return *store_; }
    const BackingStore& store() const { return *store_; }
    /** Shared handle to the functional contents (survives crash). */
    std::shared_ptr<BackingStore> storeHandle() { return store_; }

    /** True if a request of the given kind can be enqueued now. */
    bool canAccept(bool is_write) const;

    /**
     * Enqueue a read. Returns false (and does nothing) if the read
     * queue is full. @p on_complete fires when the timed service ends.
     */
    bool enqueueRead(Addr addr, TrafficSource source,
                     std::function<void()> on_complete = {});

    /**
     * Enqueue a write of one block. Returns false (and does nothing) if
     * the write queue is full. @p data (kBlockSize bytes) is applied to
     * the backing store immediately on acceptance; the queued request
     * itself carries no payload.
     */
    bool enqueueWrite(Addr addr, const std::uint8_t* data,
                      TrafficSource source,
                      std::function<void()> on_complete = {});

    /** Legacy request-struct enqueue; forwards to the zero-copy API. */
    bool enqueue(DeviceRequest req);

    /** Register a one-shot callback for when queue space frees up. */
    void notifyWhenAccepting(bool is_write, std::function<void()> cb);

    /** True if no writes are queued or in flight. */
    bool writesDrained() const;

    /** One-shot callback for when all currently queued writes finish. */
    void notifyWhenWritesDrained(std::function<void()> cb);

    /**
     * Power-loss semantics: roll back queued-but-unserviced writes (in
     * reverse enqueue order), drop all queued requests and callbacks.
     * The event queue is assumed to be abandoned by the caller.
     */
    void crash();

    /**
     * Drop all queued requests and callbacks but keep the functional
     * contents (no rollback). Used by the idealized systems, whose
     * crash consistency is free by assumption.
     */
    void quiesce();

    /** Total bytes written, by traffic source. */
    std::uint64_t writeBytes(TrafficSource s) const;
    /** Total bytes written across all sources. */
    std::uint64_t totalWriteBytes() const;
    /** Total bytes read. */
    std::uint64_t totalReadBytes() const;

  private:
    /** Slot-index sentinel for "no slot" / list end. */
    static constexpr std::uint32_t kNullSlot = 0xffffffffu;

    /**
     * One pooled request slot. Slots never move: queues are linked
     * lists threaded through `prev`/`next`, and a completion addresses
     * its slot directly by index.
     */
    struct Slot
    {
        Addr addr = 0;
        std::uint64_t row = 0;
        Tick enqueue_tick = 0;
        std::uint64_t seq = 0;
        std::function<void()> on_complete;
        std::uint32_t prev = kNullSlot;
        std::uint32_t next = kNullSlot;
        /** Owning undo-log entry (writes only). */
        std::uint32_t undo_index = kNullSlot;
        TrafficSource source = TrafficSource::DemandRead;
        bool is_write = false;
        bool in_service = false;
    };

    /** Waiting requests of one direction at one bank, in seq order. */
    struct BankQueue
    {
        std::uint32_t head = kNullSlot;
        std::uint32_t tail = kNullSlot;
        /**
         * Oldest waiting request targeting the bank's open row, or
         * kNullSlot. Only meaningful while `row_valid`; maintained on
         * enqueue, dequeue, and row change.
         */
        std::uint32_t hit = kNullSlot;
    };

    struct Bank
    {
        Tick busy_until = 0;
        std::uint64_t open_row = ~0ull;
        bool row_dirty = false;
        bool row_valid = false;
        /** Waiting requests: [0] reads, [1] writes. */
        BankQueue q[2];
    };

    /** One saved pre-image in the append-only undo log. */
    struct UndoEntry
    {
        Addr addr = 0;
        /** Owning write slot; kNullSlot once that write is durable. */
        std::uint32_t slot = kNullSlot;
        std::array<std::uint8_t, kBlockSize> old_data{};
    };

    unsigned bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t idx);
    void linkTail(BankQueue& bq, std::uint32_t idx);
    void unlink(BankQueue& bq, std::uint32_t idx);
    /** Oldest slot with @p row in the chain starting at @p from. */
    std::uint32_t scanForRow(std::uint32_t from, std::uint64_t row) const;
    /** Drop dead entries once the undo log outgrows its watermark. */
    void compactUndoLog();

    /** Try to start servicing queued requests; schedules completions. */
    void trySchedule();
    /**
     * Next serviceable slot of direction @p dir (0 = read, 1 = write),
     * or kNullSlot. FR-FCFS over at most `banks` candidates: the oldest
     * row hit across ready banks wins outright, else the oldest ready
     * request.
     */
    std::uint32_t pickNext(int dir);
    /** Begin timed service of the request in slot @p idx. */
    void startService(std::uint32_t idx);
    void finishService(std::uint32_t idx, std::uint64_t seq);
    void fireAcceptCallbacks(bool is_write);
    /**
     * Arm the bank-ready wakeup: when requests wait but no completion
     * is pending (possible after quiesce() left banks busy), schedule
     * a scheduling pass at the earliest busy_until instead of stalling
     * forever.
     */
    void maybeScheduleWakeup();

    DeviceParams params_;
    std::shared_ptr<BackingStore> store_;
    std::vector<Bank> banks_;
    Tick bus_free_ = 0;

    /** Pooled slots; read_queue_capacity + write_queue_capacity. */
    std::vector<Slot> slots_;
    /** Free-slot stack threaded through Slot::next. */
    std::uint32_t free_head_ = kNullSlot;
    /** Queued requests per direction, in-service included. */
    unsigned read_count_ = 0;
    unsigned write_count_ = 0;
    /** Requests in timed service (completion event pending). */
    unsigned in_flight_ = 0;

    std::vector<UndoEntry> undo_log_;

    bool draining_writes_ = false;
    std::uint64_t next_seq_ = 0;
    /** Coalesces a same-tick burst of enqueues into one scheduling pass. */
    Event schedule_event_;
    /** Bank-ready wakeup when no completion will drive scheduling. */
    Event wakeup_event_;

    std::vector<std::function<void()>> read_accept_cbs_;
    std::vector<std::function<void()>> write_accept_cbs_;
    std::vector<std::function<void()>> drain_cbs_;

    // Statistics.
    stats::Scalar reads_;
    stats::Scalar writes_;
    stats::Scalar read_bytes_;
    stats::Scalar write_bytes_by_source_[kNumTrafficSources];
    stats::Scalar row_hits_;
    stats::Scalar row_misses_clean_;
    stats::Scalar row_misses_dirty_;
    stats::Scalar write_drain_entries_;
    stats::Histogram read_latency_{32, 2000.0}; // ns
};

} // namespace thynvm

#endif // THYNVM_MEM_DEVICE_HH
