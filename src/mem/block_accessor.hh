/**
 * @file
 * Interface for block-granularity timed memory access.
 *
 * Implemented by caches and memory controllers so a cache level can be
 * stacked on either. The functional/timing split contract: read data is
 * produced synchronously at call time; write data is consumed at call
 * time; the callback models timing only.
 */

#ifndef THYNVM_MEM_BLOCK_ACCESSOR_HH
#define THYNVM_MEM_BLOCK_ACCESSOR_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "mem/request.hh"

namespace thynvm {

/**
 * Returned by tryAccessFast() when the access cannot complete
 * synchronously and must take the event path instead.
 */
constexpr Tick kNoFastPath = kMaxTick;

/**
 * Anything that services 64-byte block accesses with split
 * functional/timing semantics.
 */
class BlockAccessor
{
  public:
    virtual ~BlockAccessor() = default;

    /**
     * Access one block.
     * @param paddr block-aligned physical address.
     * @param is_write write (data consumed now) vs read (data produced
     *        now into @p rdata).
     * @param wdata kBlockSize bytes of write data, or nullptr for reads.
     * @param rdata kBlockSize byte output buffer, or nullptr for writes.
     * @param source traffic attribution.
     * @param done timing-completion callback (reads: data was already
     *        delivered at call time; writes: posted acknowledgment).
     */
    virtual void accessBlock(Addr paddr, bool is_write,
                             const std::uint8_t* wdata,
                             std::uint8_t* rdata, TrafficSource source,
                             std::function<void()> done) = 0;

    /**
     * Synchronous fast path: service the access inline and return its
     * latency, or return kNoFastPath without any observable effect.
     *
     * A level may answer only when the access completes entirely within
     * state it owns synchronously — a cache hit, or a miss whose fill
     * resolves fast below and whose victim needs no writeback. Anything
     * that would stage device-queue traffic (and thus make the issue
     * tick timing-visible) must refuse. On success the level performs
     * exactly the mutations the event path would (stats, LRU, data) and
     * the caller charges the returned latency itself; no callback fires.
     * On refusal the level must leave all state, including @p rdata,
     * untouched, so the caller can replay the access via accessBlock()
     * with identical results.
     */
    virtual Tick
    tryAccessFast(Addr paddr, bool is_write, const std::uint8_t* wdata,
                  std::uint8_t* rdata, TrafficSource source)
    {
        (void)paddr;
        (void)is_write;
        (void)wdata;
        (void)rdata;
        (void)source;
        return kNoFastPath;
    }

    /**
     * Functional (zero-time) read of one block's current architectural
     * contents, observing any copies held at this level. Caches check
     * their own lines before delegating downward; controllers resolve
     * the software-visible version.
     */
    virtual void functionalReadBlock(Addr paddr, std::uint8_t* buf) = 0;
};

} // namespace thynvm

#endif // THYNVM_MEM_BLOCK_ACCESSOR_HH
