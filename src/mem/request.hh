/**
 * @file
 * Request types exchanged between memory controllers and devices.
 */

#ifndef THYNVM_MEM_REQUEST_HH
#define THYNVM_MEM_REQUEST_HH

#include <array>
#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace thynvm {

/**
 * Who generated a piece of memory traffic. Mirrors the traffic breakdown
 * of Figure 8 in the paper: demand traffic from the CPU (reads and cache
 * writebacks), checkpointing traffic (data and metadata), and migration
 * traffic from switching data between checkpointing schemes.
 */
enum class TrafficSource : std::uint8_t
{
    DemandRead,    //!< Cache-fill read on behalf of the CPU.
    CpuWriteback,  //!< Dirty-block writeback from the cache hierarchy.
    Checkpoint,    //!< Checkpoint data or metadata writes.
    Migration,     //!< Data movement between checkpointing schemes.
    Recovery,      //!< Post-crash restoration traffic.
};

/** Number of TrafficSource values, for stat arrays. */
constexpr std::size_t kNumTrafficSources = 5;

/** Human-readable name of a traffic source. */
const char* trafficSourceName(TrafficSource s);

/**
 * A block-granularity request at a memory device.
 *
 * Write data is applied to the device's backing store when the request is
 * enqueued; @p on_complete fires when the device finishes the timed
 * service of the request (data transfer done).
 */
struct DeviceRequest
{
    /** Device-local byte address; must be block aligned. */
    Addr addr = 0;
    /** True for a write, false for a read. */
    bool is_write = false;
    /** Attribution for the traffic-breakdown statistics. */
    TrafficSource source = TrafficSource::DemandRead;
    /** Write payload (ignored for reads). */
    std::array<std::uint8_t, kBlockSize> data{};
    /** Completion callback; may be empty for posted writes. */
    std::function<void()> on_complete;
};

} // namespace thynvm

#endif // THYNVM_MEM_REQUEST_HH
