/**
 * @file
 * Cache-block-granularity address interleaving across memory channels.
 *
 * A multi-channel machine distributes the software-visible physical
 * address space round-robin over its channels at cache-block (64 B)
 * granularity, the finest grain the controllers operate at: block i
 * lives on channel i mod C. Each channel then sees a dense, contiguous
 * *local* physical space of phys_size / C bytes, so an unmodified
 * single-channel controller can serve it — the interleaver is the only
 * component that knows about the global layout.
 *
 * Channel counts are restricted to powers of two so the mapping is a
 * shift and a mask on the block index (real memory controllers make
 * the same choice for the same reason).
 */

#ifndef THYNVM_MEM_INTERLEAVE_HH
#define THYNVM_MEM_INTERLEAVE_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace thynvm {

/**
 * Maps global physical block addresses to (channel, local address)
 * pairs and back.
 */
class ChannelInterleaver
{
  public:
    /** @param channels channel count; must be a nonzero power of two. */
    explicit ChannelInterleaver(unsigned channels) : channels_(channels)
    {
        fatal_if(channels == 0 || (channels & (channels - 1)) != 0,
                 "channel count must be a nonzero power of two, got %u",
                 channels);
        while ((1u << log2_) < channels)
            ++log2_;
    }

    /** Number of channels. */
    unsigned channels() const { return channels_; }

    /** Channel owning the block that contains @p paddr. */
    unsigned
    channelOf(Addr paddr) const
    {
        return static_cast<unsigned>((paddr / kBlockSize) &
                                     (channels_ - 1));
    }

    /** Address of @p paddr within its owning channel's local space. */
    Addr
    localAddr(Addr paddr) const
    {
        const Addr block = paddr / kBlockSize;
        return (block >> log2_) * kBlockSize + paddr % kBlockSize;
    }

    /** Inverse mapping: global address of @p local on @p channel. */
    Addr
    globalAddr(unsigned channel, Addr local) const
    {
        panic_if(channel >= channels_, "channel index out of range");
        const Addr block = local / kBlockSize;
        return ((block << log2_) | channel) * kBlockSize +
               local % kBlockSize;
    }

    /**
     * Local physical space each channel serves for a @p phys_size
     * global space. Must divide evenly into whole blocks per channel.
     */
    std::size_t
    localCapacity(std::size_t phys_size) const
    {
        fatal_if(phys_size % (static_cast<std::size_t>(channels_) *
                              kBlockSize) !=
                     0,
                 "physical size %zu not divisible into whole blocks "
                 "across %u channels",
                 phys_size, channels_);
        return phys_size / channels_;
    }

  private:
    unsigned channels_;
    unsigned log2_ = 0;
};

} // namespace thynvm

#endif // THYNVM_MEM_INTERLEAVE_HH
