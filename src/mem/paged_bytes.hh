/**
 * @file
 * Sparse, copy-on-write paged byte container.
 *
 * The functional stores of a simulated machine (device backing stores,
 * the multi-channel functional mirror, host-side image builders) are
 * logically flat byte arrays, but on a GB-scale machine only a small
 * fraction of the space is ever touched. PagedBytes keeps a page table
 * of 4 KiB host pages allocated on first write; untouched ranges read
 * as an implicit shared zero page, copies share pages under a per-page
 * refcount and diverge on write, and the touched set is enumerable so
 * image capture, recovery rebuilds, and clone are O(touched pages)
 * instead of O(capacity).
 *
 * Concurrency contract (matches how simulated stores are used):
 *  - Concurrent writers to *disjoint byte ranges* are safe: first-touch
 *    page allocation races are resolved with a CAS on the table slot,
 *    and the byte writes themselves never overlap. A multi-channel
 *    machine writes disjoint channel slices of one root store from
 *    per-channel kernel shards.
 *  - Concurrent readers of ranges not being written are safe.
 *  - Copying (COW share), clear() and touched-set enumeration require
 *    quiescence; they happen at crash, recovery, and test time only.
 *
 * The THYNVM_DENSE_STORE escape hatch (read at construction) swaps in a
 * flat vector that reports every page as touched — byte-identical
 * behavior at dense cost, for differential testing of the paged path.
 */

#ifndef THYNVM_MEM_PAGED_BYTES_HH
#define THYNVM_MEM_PAGED_BYTES_HH

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace thynvm {

/** Host page granularity; equal to the simulated kPageSize. */
constexpr std::size_t kHostPageSize = 4096;

class PagedBytes
{
  public:
    /** True when THYNVM_DENSE_STORE requests the flat fallback. */
    static bool
    denseRequested()
    {
        const char* env = std::getenv("THYNVM_DENSE_STORE");
        return env != nullptr && env[0] != '\0' && env[0] != '0';
    }

    PagedBytes() : PagedBytes(0) {}

    explicit PagedBytes(std::size_t size)
        : size_(size), dense_(denseRequested())
    {
        if (dense_) {
            flat_.assign(size_, 0);
        } else {
            table_ = std::make_unique<Slot[]>(numPages());
        }
    }

    /** COW copy: shares every allocated page (requires quiescence). */
    PagedBytes(const PagedBytes& other)
        : size_(other.size_), dense_(other.dense_), flat_(other.flat_)
    {
        if (!dense_) {
            table_ = std::make_unique<Slot[]>(numPages());
            for (std::size_t i = 0; i < numPages(); ++i) {
                Page* p = other.table_[i].load(std::memory_order_acquire);
                if (p != nullptr)
                    p->refs.fetch_add(1, std::memory_order_relaxed);
                table_[i].store(p, std::memory_order_relaxed);
            }
        }
    }

    PagedBytes&
    operator=(const PagedBytes& other)
    {
        if (this != &other) {
            PagedBytes copy(other);
            *this = std::move(copy);
        }
        return *this;
    }

    PagedBytes(PagedBytes&& other) noexcept { moveFrom(other); }

    PagedBytes&
    operator=(PagedBytes&& other) noexcept
    {
        if (this != &other) {
            releaseAll();
            moveFrom(other);
        }
        return *this;
    }

    ~PagedBytes() { releaseAll(); }

    std::size_t size() const { return size_; }
    bool dense() const { return dense_; }

    void
    read(Addr addr, void* buf, std::size_t len) const
    {
        checkRange(addr, len);
        if (dense_) {
            std::memcpy(buf, flat_.data() + addr, len);
            return;
        }
        std::uint8_t* out = static_cast<std::uint8_t*>(buf);
        while (len > 0) {
            const std::size_t pi = addr / kHostPageSize;
            const std::size_t off = addr % kHostPageSize;
            const std::size_t chunk = std::min(len, kHostPageSize - off);
            const Page* p = table_[pi].load(std::memory_order_acquire);
            if (p != nullptr)
                std::memcpy(out, p->bytes + off, chunk);
            else
                std::memset(out, 0, chunk);
            out += chunk;
            addr += chunk;
            len -= chunk;
        }
    }

    void
    write(Addr addr, const void* buf, std::size_t len)
    {
        checkRange(addr, len);
        if (dense_) {
            std::memcpy(flat_.data() + addr, buf, len);
            return;
        }
        const std::uint8_t* in = static_cast<const std::uint8_t*>(buf);
        while (len > 0) {
            const std::size_t pi = addr / kHostPageSize;
            const std::size_t off = addr % kHostPageSize;
            const std::size_t chunk = std::min(len, kHostPageSize - off);
            std::memcpy(pageForWrite(pi) + off, in, chunk);
            in += chunk;
            addr += chunk;
            len -= chunk;
        }
    }

    void
    fill(Addr addr, std::uint8_t value, std::size_t len)
    {
        checkRange(addr, len);
        if (dense_) {
            std::memset(flat_.data() + addr, value, len);
            return;
        }
        while (len > 0) {
            const std::size_t pi = addr / kHostPageSize;
            const std::size_t off = addr % kHostPageSize;
            const std::size_t chunk = std::min(len, kHostPageSize - off);
            // Zero-filling a never-touched page is a no-op: it already
            // reads as zeros, and materializing it would defeat the
            // sparse representation (clear() relies on this).
            if (value != 0 ||
                table_[pi].load(std::memory_order_acquire) != nullptr) {
                std::memset(pageForWrite(pi) + off, value, chunk);
            }
            addr += chunk;
            len -= chunk;
        }
    }

    /** Zero the whole store, dropping every page (O(pages-table)). */
    void
    clear()
    {
        clearRange(0, size_);
    }

    /**
     * Zero [@p addr, @p addr + @p len): fully covered pages are
     * *dropped* back to the implicit zero page; partial head/tail
     * pages are memset in place (only if already materialized).
     */
    void
    clearRange(Addr addr, std::size_t len)
    {
        checkRange(addr, len);
        if (dense_) {
            std::memset(flat_.data() + addr, 0, len);
            return;
        }
        while (len > 0) {
            const std::size_t pi = addr / kHostPageSize;
            const std::size_t off = addr % kHostPageSize;
            const std::size_t chunk = std::min(len, kHostPageSize - off);
            if (off == 0 && chunk == kHostPageSize) {
                Page* p = table_[pi].exchange(nullptr,
                                              std::memory_order_acq_rel);
                unref(p);
            } else {
                fill(addr, 0, chunk);
            }
            addr += chunk;
            len -= chunk;
        }
    }

    /** Number of materialized (touched) pages. */
    std::size_t
    touchedPageCount() const
    {
        if (dense_)
            return numPages();
        std::size_t n = 0;
        for (std::size_t i = 0; i < numPages(); ++i) {
            if (table_[i].load(std::memory_order_acquire) != nullptr)
                ++n;
        }
        return n;
    }

    /** True when the page containing @p addr has been materialized. */
    bool
    touched(Addr addr) const
    {
        checkRange(addr, 1);
        if (dense_)
            return true;
        return table_[addr / kHostPageSize].load(
                   std::memory_order_acquire) != nullptr;
    }

    /**
     * Enumerate touched bytes overlapping [@p lo, @p hi) in ascending
     * address order as fn(addr, data, len). Every byte *not* reported
     * reads as zero. The dense fallback reports the whole clipped
     * range. Requires quiescence (no concurrent writers).
     */
    template <typename Fn>
    void
    forEachTouchedRange(Addr lo, Addr hi, Fn&& fn) const
    {
        hi = std::min<Addr>(hi, size_);
        if (lo >= hi)
            return;
        if (dense_) {
            fn(lo, flat_.data() + lo, static_cast<std::size_t>(hi - lo));
            return;
        }
        for (std::size_t pi = lo / kHostPageSize;
             pi * kHostPageSize < hi; ++pi) {
            const Page* p = table_[pi].load(std::memory_order_acquire);
            if (p == nullptr)
                continue;
            const Addr page_lo = std::max<Addr>(lo, pi * kHostPageSize);
            const Addr page_hi =
                std::min<Addr>(hi, (pi + 1) * kHostPageSize);
            fn(page_lo, p->bytes + (page_lo % kHostPageSize),
               static_cast<std::size_t>(page_hi - page_lo));
        }
    }

  private:
    struct Page
    {
        std::atomic<std::uint32_t> refs{1};
        std::uint8_t bytes[kHostPageSize];
    };
    using Slot = std::atomic<Page*>;

    std::size_t
    numPages() const
    {
        return (size_ + kHostPageSize - 1) / kHostPageSize;
    }

    static Page*
    newPage(const Page* src)
    {
        Page* p = new Page();
        if (src != nullptr)
            std::memcpy(p->bytes, src->bytes, kHostPageSize);
        else
            std::memset(p->bytes, 0, kHostPageSize);
        return p;
    }

    static void
    unref(Page* p)
    {
        if (p != nullptr &&
            p->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            delete p;
        }
    }

    /**
     * Return writable page @p pi, materializing (first touch) or
     * privatizing (COW) it as needed. Races between first-touch
     * writers of the same page are settled by a CAS on the table slot;
     * the loser frees its candidate and adopts the winner's page (the
     * byte ranges being written never overlap, per the class contract).
     */
    std::uint8_t*
    pageForWrite(std::size_t pi)
    {
        Slot& slot = table_[pi];
        Page* p = slot.load(std::memory_order_acquire);
        for (;;) {
            if (p == nullptr) {
                Page* fresh = newPage(nullptr);
                if (slot.compare_exchange_strong(
                        p, fresh, std::memory_order_acq_rel,
                        std::memory_order_acquire)) {
                    return fresh->bytes;
                }
                delete fresh; // lost the race; p reloaded
                continue;
            }
            if (p->refs.load(std::memory_order_acquire) == 1)
                return p->bytes; // sole owner: write in place
            Page* mine = newPage(p); // shared: copy-on-write
            if (slot.compare_exchange_strong(p, mine,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
                unref(p);
                return mine->bytes;
            }
            delete mine; // another writer of this store privatized first
        }
    }

    void
    releaseAll()
    {
        if (table_ != nullptr) {
            for (std::size_t i = 0; i < numPages(); ++i)
                unref(table_[i].load(std::memory_order_acquire));
            table_.reset();
        }
        flat_.clear();
        size_ = 0;
    }

    void
    moveFrom(PagedBytes& other)
    {
        size_ = other.size_;
        dense_ = other.dense_;
        flat_ = std::move(other.flat_);
        table_ = std::move(other.table_);
        other.size_ = 0;
        other.flat_.clear();
    }

    void
    checkRange(Addr addr, std::size_t len) const
    {
        panic_if(addr + len > size_ || addr + len < addr,
                 "paged store access out of range: addr=%llu len=%zu "
                 "capacity=%zu",
                 static_cast<unsigned long long>(addr), len, size_);
    }

    std::size_t size_ = 0;
    bool dense_ = false;
    std::vector<std::uint8_t> flat_;   //!< dense fallback storage
    std::unique_ptr<Slot[]> table_;    //!< page table (paged mode)
};

} // namespace thynvm

#endif // THYNVM_MEM_PAGED_BYTES_HH
