/**
 * @file
 * MemDevice implementation.
 *
 * Scheduling-equivalence note: the slab + per-bank-queue structures are
 * a faithful reimplementation of the original whole-queue FR-FCFS scan.
 * The old scan returned the first (oldest-seq) row hit across the whole
 * queue, else the oldest ready request; per bank that is exactly "the
 * bank's oldest waiting row hit" and "the bank's FIFO head", so picking
 * the minimum sequence number among at most `banks` such candidates
 * reproduces the original choice tick for tick.
 */

#include "mem/device.hh"

#include <algorithm>

namespace thynvm {

const char*
trafficSourceName(TrafficSource s)
{
    switch (s) {
      case TrafficSource::DemandRead: return "demand_read";
      case TrafficSource::CpuWriteback: return "cpu_writeback";
      case TrafficSource::Checkpoint: return "checkpoint";
      case TrafficSource::Migration: return "migration";
      case TrafficSource::Recovery: return "recovery";
    }
    return "unknown";
}

DeviceParams
DeviceParams::dram(std::size_t capacity)
{
    DeviceParams p;
    p.capacity = capacity;
    p.row_hit_latency = 40 * kNanosecond;
    p.row_miss_clean_latency = 80 * kNanosecond;
    p.row_miss_dirty_latency = 80 * kNanosecond;
    return p;
}

DeviceParams
DeviceParams::nvm(std::size_t capacity)
{
    DeviceParams p;
    p.capacity = capacity;
    p.row_hit_latency = 40 * kNanosecond;
    p.row_miss_clean_latency = 128 * kNanosecond;
    p.row_miss_dirty_latency = 368 * kNanosecond;
    return p;
}

MemDevice::MemDevice(EventQueue& eq, std::string name,
                     const DeviceParams& params,
                     std::shared_ptr<BackingStore> store)
    : SimObject(eq, std::move(name)),
      params_(params),
      store_(store ? std::move(store)
                   : std::make_shared<BackingStore>(params.capacity)),
      banks_(params.banks),
      schedule_event_([this] { trySchedule(); }),
      wakeup_event_([this] { trySchedule(); })
{
    fatal_if(params_.banks == 0, "device must have at least one bank");
    fatal_if(params_.row_size == 0 || params_.row_size % kBlockSize != 0,
             "row size must be a nonzero multiple of the block size");
    fatal_if(store_->size() < params_.capacity,
             "backing store smaller than device capacity");
    fatal_if(params_.write_drain_low >= params_.write_drain_high ||
                 params_.write_drain_high > params_.write_queue_capacity,
             "invalid write drain watermarks");

    slots_.resize(params_.read_queue_capacity +
                  params_.write_queue_capacity);
    for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size());
         i-- > 0;) {
        slots_[i].next = free_head_;
        free_head_ = i;
    }
    undo_log_.reserve(2u * params_.write_queue_capacity);

    stats().addScalar("reads", &reads_, "read requests serviced");
    stats().addScalar("writes", &writes_, "write requests serviced");
    stats().addScalar("read_bytes", &read_bytes_, "bytes read");
    for (std::size_t i = 0; i < kNumTrafficSources; ++i) {
        stats().addScalar(
            std::string("write_bytes::") +
                trafficSourceName(static_cast<TrafficSource>(i)),
            &write_bytes_by_source_[i], "bytes written by source");
    }
    stats().addScalar("row_hits", &row_hits_, "row buffer hits");
    stats().addScalar("row_misses_clean", &row_misses_clean_,
                      "row misses with clean open row");
    stats().addScalar("row_misses_dirty", &row_misses_dirty_,
                      "row misses with dirty open row");
    stats().addScalar("write_drain_entries", &write_drain_entries_,
                      "times the device entered write-drain mode");
    stats().addHistogram("read_latency_ns", &read_latency_,
                         "read service latency");
}

unsigned
MemDevice::bankOf(Addr addr) const
{
    return static_cast<unsigned>(rowOf(addr) % params_.banks);
}

std::uint64_t
MemDevice::rowOf(Addr addr) const
{
    return addr / params_.row_size;
}

bool
MemDevice::canAccept(bool is_write) const
{
    if (is_write)
        return write_count_ < params_.write_queue_capacity;
    return read_count_ < params_.read_queue_capacity;
}

std::uint32_t
MemDevice::allocSlot()
{
    panic_if(free_head_ == kNullSlot, "slot slab exhausted");
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next;
    slots_[idx].next = kNullSlot;
    return idx;
}

void
MemDevice::freeSlot(std::uint32_t idx)
{
    Slot& sl = slots_[idx];
    sl.on_complete = nullptr;
    sl.in_service = false;
    sl.undo_index = kNullSlot;
    sl.prev = kNullSlot;
    sl.next = free_head_;
    free_head_ = idx;
}

void
MemDevice::linkTail(BankQueue& bq, std::uint32_t idx)
{
    Slot& sl = slots_[idx];
    sl.prev = bq.tail;
    sl.next = kNullSlot;
    if (bq.tail == kNullSlot)
        bq.head = idx;
    else
        slots_[bq.tail].next = idx;
    bq.tail = idx;
}

void
MemDevice::unlink(BankQueue& bq, std::uint32_t idx)
{
    Slot& sl = slots_[idx];
    if (sl.prev == kNullSlot)
        bq.head = sl.next;
    else
        slots_[sl.prev].next = sl.next;
    if (sl.next == kNullSlot)
        bq.tail = sl.prev;
    else
        slots_[sl.next].prev = sl.prev;
    sl.prev = kNullSlot;
    sl.next = kNullSlot;
}

std::uint32_t
MemDevice::scanForRow(std::uint32_t from, std::uint64_t row) const
{
    for (std::uint32_t i = from; i != kNullSlot; i = slots_[i].next) {
        if (slots_[i].row == row)
            return i;
    }
    return kNullSlot;
}

void
MemDevice::compactUndoLog()
{
    if (undo_log_.size() < 2u * params_.write_queue_capacity)
        return;
    std::size_t out = 0;
    for (std::size_t i = 0; i < undo_log_.size(); ++i) {
        if (undo_log_[i].slot == kNullSlot)
            continue;
        if (out != i) {
            undo_log_[out] = undo_log_[i];
            slots_[undo_log_[out].slot].undo_index =
                static_cast<std::uint32_t>(out);
        }
        ++out;
    }
    undo_log_.resize(out);
}

bool
MemDevice::enqueueRead(Addr addr, TrafficSource source,
                       std::function<void()> on_complete)
{
    panic_if(addr % kBlockSize != 0, "unaligned device request");
    panic_if(addr + kBlockSize > params_.capacity,
             "device request beyond capacity: addr=%llu cap=%zu",
             static_cast<unsigned long long>(addr), params_.capacity);
    if (read_count_ >= params_.read_queue_capacity)
        return false;

    const std::uint32_t idx = allocSlot();
    Slot& sl = slots_[idx];
    sl.addr = addr;
    sl.row = rowOf(addr);
    sl.enqueue_tick = curTick();
    sl.seq = next_seq_++;
    sl.on_complete = std::move(on_complete);
    sl.source = source;
    sl.is_write = false;
    sl.in_service = false;

    Bank& bank = banks_[bankOf(addr)];
    BankQueue& bq = bank.q[0];
    linkTail(bq, idx);
    if (bank.row_valid && bank.open_row == sl.row && bq.hit == kNullSlot)
        bq.hit = idx;
    ++read_count_;

    if (!schedule_event_.scheduled()) {
        // Defer scheduling to a zero-delay event so a burst of enqueues
        // in the same tick is scheduled as one batch.
        eventq_.schedule(schedule_event_, curTick());
    }
    return true;
}

bool
MemDevice::enqueueWrite(Addr addr, const std::uint8_t* data,
                        TrafficSource source,
                        std::function<void()> on_complete)
{
    panic_if(addr % kBlockSize != 0, "unaligned device request");
    panic_if(addr + kBlockSize > params_.capacity,
             "device request beyond capacity: addr=%llu cap=%zu",
             static_cast<unsigned long long>(addr), params_.capacity);
    if (write_count_ >= params_.write_queue_capacity)
        return false;

    const std::uint32_t idx = allocSlot();
    Slot& sl = slots_[idx];
    sl.addr = addr;
    sl.row = rowOf(addr);
    sl.enqueue_tick = curTick();
    sl.seq = next_seq_++;
    sl.on_complete = std::move(on_complete);
    sl.source = source;
    sl.is_write = true;
    sl.in_service = false;

    // Save undo bytes for crash rollback, then apply functionally.
    compactUndoLog();
    sl.undo_index = static_cast<std::uint32_t>(undo_log_.size());
    undo_log_.emplace_back();
    UndoEntry& ue = undo_log_.back();
    ue.addr = addr;
    ue.slot = idx;
    store_->read(addr, ue.old_data.data(), kBlockSize);
    store_->write(addr, data, kBlockSize);

    Bank& bank = banks_[bankOf(addr)];
    BankQueue& bq = bank.q[1];
    linkTail(bq, idx);
    if (bank.row_valid && bank.open_row == sl.row && bq.hit == kNullSlot)
        bq.hit = idx;
    ++write_count_;

    if (!schedule_event_.scheduled())
        eventq_.schedule(schedule_event_, curTick());
    return true;
}

bool
MemDevice::enqueue(DeviceRequest req)
{
    if (req.is_write) {
        return enqueueWrite(req.addr, req.data.data(), req.source,
                            std::move(req.on_complete));
    }
    return enqueueRead(req.addr, req.source, std::move(req.on_complete));
}

void
MemDevice::notifyWhenAccepting(bool is_write, std::function<void()> cb)
{
    if (canAccept(is_write)) {
        eventq_.scheduleIn(0, std::move(cb));
        return;
    }
    auto& cbs = is_write ? write_accept_cbs_ : read_accept_cbs_;
    cbs.push_back(std::move(cb));
}

bool
MemDevice::writesDrained() const
{
    return write_count_ == 0;
}

void
MemDevice::notifyWhenWritesDrained(std::function<void()> cb)
{
    if (writesDrained()) {
        eventq_.scheduleIn(0, std::move(cb));
        return;
    }
    drain_cbs_.push_back(std::move(cb));
}

void
MemDevice::crash()
{
    // Replay the undo log newest-first, skipping entries whose write was
    // serviced (durable); each applied pre-image restores the bytes
    // present when that write was enqueued.
    for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
        if (it->slot != kNullSlot)
            store_->write(it->addr, it->old_data.data(), kBlockSize);
    }
    quiesce();
}

void
MemDevice::quiesce()
{
    for (auto& bank : banks_) {
        bank.q[0] = BankQueue{};
        bank.q[1] = BankQueue{};
    }
    // Rebuild the free list over the whole slab, dropping any queued or
    // in-flight requests (and their completion closures).
    free_head_ = kNullSlot;
    for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size());
         i-- > 0;)
        freeSlot(i);
    read_count_ = 0;
    write_count_ = 0;
    in_flight_ = 0;
    undo_log_.clear();
    read_accept_cbs_.clear();
    write_accept_cbs_.clear();
    drain_cbs_.clear();
    // The caller abandons the event queue, so any pending scheduling or
    // completion events are gone; cancel the reusable events.
    eventq_.deschedule(schedule_event_);
    eventq_.deschedule(wakeup_event_);
    draining_writes_ = false;
}

std::uint64_t
MemDevice::writeBytes(TrafficSource s) const
{
    return static_cast<std::uint64_t>(
        write_bytes_by_source_[static_cast<std::size_t>(s)].value());
}

std::uint64_t
MemDevice::totalWriteBytes() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kNumTrafficSources; ++i)
        total += static_cast<std::uint64_t>(
            write_bytes_by_source_[i].value());
    return total;
}

std::uint64_t
MemDevice::totalReadBytes() const
{
    return static_cast<std::uint64_t>(read_bytes_.value());
}

std::uint32_t
MemDevice::pickNext(int dir)
{
    const Tick now = curTick();
    std::uint32_t best_hit = kNullSlot;
    std::uint32_t best_head = kNullSlot;
    for (Bank& bank : banks_) {
        if (bank.busy_until > now)
            continue;
        const BankQueue& bq = bank.q[dir];
        if (bq.head == kNullSlot)
            continue;
        // FR-FCFS: the oldest row-buffer hit wins outright.
        if (bank.row_valid && bq.hit != kNullSlot &&
            (best_hit == kNullSlot ||
             slots_[bq.hit].seq < slots_[best_hit].seq)) {
            best_hit = bq.hit;
        }
        if (best_head == kNullSlot ||
            slots_[bq.head].seq < slots_[best_head].seq) {
            best_head = bq.head;
        }
    }
    return best_hit != kNullSlot ? best_hit : best_head;
}

void
MemDevice::trySchedule()
{
    // Reads are latency-critical and win whenever the write backlog is
    // manageable; writes are drained in bursts once the queue crosses
    // the high watermark (or opportunistically when no reads wait).
    const bool was_draining = draining_writes_;
    draining_writes_ = write_count_ >= params_.write_drain_high ||
                       (draining_writes_ &&
                        write_count_ > params_.write_drain_low &&
                        read_count_ == 0);
    if (draining_writes_ && !was_draining)
        ++write_drain_entries_;

    bool progress = true;
    while (progress) {
        progress = false;
        const int primary = draining_writes_ ? 1 : 0;
        std::uint32_t idx = pickNext(primary);
        if (idx != kNullSlot) {
            startService(idx);
            progress = true;
            continue;
        }
        idx = pickNext(1 - primary);
        if (idx != kNullSlot) {
            startService(idx);
            progress = true;
        }
    }
    maybeScheduleWakeup();
}

void
MemDevice::startService(std::uint32_t idx)
{
    Slot& sl = slots_[idx];
    Bank& bank = banks_[bankOf(sl.addr)];
    const int dir = sl.is_write ? 1 : 0;
    BankQueue& bq = bank.q[dir];

    const bool row_hit = bank.row_valid && bank.open_row == sl.row;
    const std::uint32_t after = sl.next;
    unlink(bq, idx);
    sl.in_service = true;

    Tick access_latency;
    if (row_hit) {
        access_latency = params_.row_hit_latency;
        ++row_hits_;
        // This slot was the bank's oldest hit; the next-oldest can only
        // be among its successors.
        panic_if(bq.hit != idx, "row-hit candidate out of sync");
        bq.hit = scanForRow(after, sl.row);
    } else {
        if (bank.row_valid && bank.row_dirty) {
            access_latency = params_.row_miss_dirty_latency;
            ++row_misses_dirty_;
        } else {
            access_latency = params_.row_miss_clean_latency;
            ++row_misses_clean_;
        }
        // Opening a new row discards the old one; the cost of writing
        // back a dirty evicted row was paid in the access latency above.
        // Both directions' hit candidates follow the new open row.
        bank.open_row = sl.row;
        bank.q[0].hit = scanForRow(bank.q[0].head, sl.row);
        bank.q[1].hit = scanForRow(bank.q[1].head, sl.row);
    }
    bank.row_valid = true;
    bank.row_dirty = (row_hit && bank.row_dirty) || sl.is_write;

    const Tick now = curTick();
    const Tick access_done = now + access_latency;
    const Tick bus_slot = std::max(access_done, bus_free_);
    const Tick done = bus_slot + params_.burst_latency;
    bus_free_ = done;
    bank.busy_until = done;

    ++in_flight_;
    const std::uint64_t seq = sl.seq;
    eventq_.schedule(done, [this, idx, seq] { finishService(idx, seq); });
}

void
MemDevice::finishService(std::uint32_t idx, std::uint64_t seq)
{
    Slot& sl = slots_[idx];
    panic_if(!sl.in_service || sl.seq != seq,
             "completion for unknown request");
    --in_flight_;

    const bool is_write = sl.is_write;
    if (is_write) {
        ++writes_;
        write_bytes_by_source_[static_cast<std::size_t>(sl.source)] +=
            kBlockSize;
        // The write is durable; its pre-image must not be replayed.
        if (sl.undo_index != kNullSlot)
            undo_log_[sl.undo_index].slot = kNullSlot;
        --write_count_;
    } else {
        ++reads_;
        read_bytes_ += kBlockSize;
        read_latency_.sample(
            static_cast<double>(curTick() - sl.enqueue_tick) /
            kNanosecond);
        --read_count_;
    }

    auto cb = std::move(sl.on_complete);
    freeSlot(idx);
    if (cb)
        cb();

    fireAcceptCallbacks(is_write);
    if (is_write && write_count_ == 0) {
        undo_log_.clear();
        if (!drain_cbs_.empty()) {
            auto cbs = std::move(drain_cbs_);
            drain_cbs_.clear();
            for (auto& drain_cb : cbs)
                drain_cb();
        }
    }

    trySchedule();
}

void
MemDevice::fireAcceptCallbacks(bool is_write)
{
    if (!canAccept(is_write))
        return;
    auto& cbs = is_write ? write_accept_cbs_ : read_accept_cbs_;
    if (cbs.empty())
        return;
    auto pending = std::move(cbs);
    cbs.clear();
    for (auto& cb : pending)
        cb();
}

void
MemDevice::maybeScheduleWakeup()
{
    // Completions call trySchedule, so a pending completion is a
    // wakeup; the event is only needed when requests wait while no
    // completion is in flight (banks left busy across a quiesce()).
    if (in_flight_ > 0 || read_count_ + write_count_ == 0)
        return;
    const Tick now = curTick();
    Tick earliest = kMaxTick;
    for (const Bank& bank : banks_) {
        if (bank.q[0].head == kNullSlot && bank.q[1].head == kNullSlot)
            continue;
        if (bank.busy_until > now && bank.busy_until < earliest)
            earliest = bank.busy_until;
    }
    if (earliest == kMaxTick)
        return;
    if (wakeup_event_.scheduled()) {
        if (wakeup_event_.when() <= earliest)
            return;
        eventq_.deschedule(wakeup_event_);
    }
    eventq_.schedule(wakeup_event_, earliest);
}

} // namespace thynvm
