/**
 * @file
 * MemDevice implementation.
 */

#include "mem/device.hh"

#include <algorithm>

namespace thynvm {

const char*
trafficSourceName(TrafficSource s)
{
    switch (s) {
      case TrafficSource::DemandRead: return "demand_read";
      case TrafficSource::CpuWriteback: return "cpu_writeback";
      case TrafficSource::Checkpoint: return "checkpoint";
      case TrafficSource::Migration: return "migration";
      case TrafficSource::Recovery: return "recovery";
    }
    return "unknown";
}

DeviceParams
DeviceParams::dram(std::size_t capacity)
{
    DeviceParams p;
    p.capacity = capacity;
    p.row_hit_latency = 40 * kNanosecond;
    p.row_miss_clean_latency = 80 * kNanosecond;
    p.row_miss_dirty_latency = 80 * kNanosecond;
    return p;
}

DeviceParams
DeviceParams::nvm(std::size_t capacity)
{
    DeviceParams p;
    p.capacity = capacity;
    p.row_hit_latency = 40 * kNanosecond;
    p.row_miss_clean_latency = 128 * kNanosecond;
    p.row_miss_dirty_latency = 368 * kNanosecond;
    return p;
}

MemDevice::MemDevice(EventQueue& eq, std::string name,
                     const DeviceParams& params,
                     std::shared_ptr<BackingStore> store)
    : SimObject(eq, std::move(name)),
      params_(params),
      store_(store ? std::move(store)
                   : std::make_shared<BackingStore>(params.capacity)),
      banks_(params.banks),
      schedule_event_([this] { trySchedule(); })
{
    fatal_if(params_.banks == 0, "device must have at least one bank");
    fatal_if(params_.row_size == 0 || params_.row_size % kBlockSize != 0,
             "row size must be a nonzero multiple of the block size");
    fatal_if(store_->size() < params_.capacity,
             "backing store smaller than device capacity");
    fatal_if(params_.write_drain_low >= params_.write_drain_high ||
                 params_.write_drain_high > params_.write_queue_capacity,
             "invalid write drain watermarks");

    stats().addScalar("reads", &reads_, "read requests serviced");
    stats().addScalar("writes", &writes_, "write requests serviced");
    stats().addScalar("read_bytes", &read_bytes_, "bytes read");
    for (std::size_t i = 0; i < kNumTrafficSources; ++i) {
        stats().addScalar(
            std::string("write_bytes::") +
                trafficSourceName(static_cast<TrafficSource>(i)),
            &write_bytes_by_source_[i], "bytes written by source");
    }
    stats().addScalar("row_hits", &row_hits_, "row buffer hits");
    stats().addScalar("row_misses_clean", &row_misses_clean_,
                      "row misses with clean open row");
    stats().addScalar("row_misses_dirty", &row_misses_dirty_,
                      "row misses with dirty open row");
    stats().addScalar("write_drain_entries", &write_drain_entries_,
                      "times the device entered write-drain mode");
    stats().addHistogram("read_latency_ns", &read_latency_,
                         "read service latency");
}

unsigned
MemDevice::bankOf(Addr addr) const
{
    return static_cast<unsigned>(rowOf(addr) % params_.banks);
}

std::uint64_t
MemDevice::rowOf(Addr addr) const
{
    return addr / params_.row_size;
}

bool
MemDevice::canAccept(bool is_write) const
{
    if (is_write)
        return write_q_.size() < params_.write_queue_capacity;
    return read_q_.size() < params_.read_queue_capacity;
}

bool
MemDevice::enqueue(DeviceRequest req)
{
    panic_if(req.addr % kBlockSize != 0, "unaligned device request");
    panic_if(req.addr + kBlockSize > params_.capacity,
             "device request beyond capacity: addr=%llu cap=%zu",
             static_cast<unsigned long long>(req.addr), params_.capacity);
    if (!canAccept(req.is_write))
        return false;

    QueuedRequest qr;
    qr.enqueue_tick = curTick();
    qr.seq = next_seq_++;
    if (req.is_write) {
        // Save undo bytes for crash rollback, then apply functionally.
        store_->read(req.addr, qr.undo.data(), kBlockSize);
        store_->write(req.addr, req.data.data(), kBlockSize);
    }
    qr.req = std::move(req);

    auto& q = qr.req.is_write ? write_q_ : read_q_;
    q.push_back(std::move(qr));

    if (!schedule_event_.scheduled()) {
        // Defer scheduling to a zero-delay event so a burst of enqueues
        // in the same tick is scheduled as one batch.
        eventq_.schedule(schedule_event_, curTick());
    }
    return true;
}

void
MemDevice::notifyWhenAccepting(bool is_write, std::function<void()> cb)
{
    if (canAccept(is_write)) {
        eventq_.scheduleIn(0, std::move(cb));
        return;
    }
    auto& cbs = is_write ? write_accept_cbs_ : read_accept_cbs_;
    cbs.push_back(std::move(cb));
}

bool
MemDevice::writesDrained() const
{
    return write_q_.empty();
}

void
MemDevice::notifyWhenWritesDrained(std::function<void()> cb)
{
    if (writesDrained()) {
        eventq_.scheduleIn(0, std::move(cb));
        return;
    }
    drain_cbs_.push_back(std::move(cb));
}

void
MemDevice::crash()
{
    // Roll back unserviced writes newest-first so each undo restores the
    // bytes present when that write was enqueued.
    for (auto it = write_q_.rbegin(); it != write_q_.rend(); ++it)
        store_->write(it->req.addr, it->undo.data(), kBlockSize);
    quiesce();
}

void
MemDevice::quiesce()
{
    write_q_.clear();
    read_q_.clear();
    read_accept_cbs_.clear();
    write_accept_cbs_.clear();
    drain_cbs_.clear();
    // The caller abandons the event queue, so any pending scheduling or
    // completion events are gone; cancel the coalescing event.
    eventq_.deschedule(schedule_event_);
    draining_writes_ = false;
}

std::uint64_t
MemDevice::writeBytes(TrafficSource s) const
{
    return static_cast<std::uint64_t>(
        write_bytes_by_source_[static_cast<std::size_t>(s)].value());
}

std::uint64_t
MemDevice::totalWriteBytes() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kNumTrafficSources; ++i)
        total += static_cast<std::uint64_t>(
            write_bytes_by_source_[i].value());
    return total;
}

std::uint64_t
MemDevice::totalReadBytes() const
{
    return static_cast<std::uint64_t>(read_bytes_.value());
}

std::size_t
MemDevice::pickNext(std::deque<QueuedRequest>& q)
{
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::size_t oldest_ready = npos;
    const Tick now = curTick();
    for (std::size_t i = 0; i < q.size(); ++i) {
        auto& qr = q[i];
        if (qr.in_service)
            continue;
        const Bank& bank = banks_[bankOf(qr.req.addr)];
        if (bank.busy_until > now)
            continue;
        // FR-FCFS: the first (oldest) row-buffer hit wins outright.
        if (bank.row_valid && bank.open_row == rowOf(qr.req.addr))
            return i;
        if (oldest_ready == npos)
            oldest_ready = i;
    }
    return oldest_ready;
}

void
MemDevice::trySchedule()
{
    // Reads are latency-critical and win whenever the write backlog is
    // manageable; writes are drained in bursts once the queue crosses
    // the high watermark (or opportunistically when no reads wait).
    const bool was_draining = draining_writes_;
    draining_writes_ = write_q_.size() >= params_.write_drain_high ||
                       (draining_writes_ &&
                        write_q_.size() > params_.write_drain_low &&
                        read_q_.empty());
    if (draining_writes_ && !was_draining)
        ++write_drain_entries_;

    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    bool progress = true;
    while (progress) {
        progress = false;
        auto& primary = draining_writes_ ? write_q_ : read_q_;
        auto& secondary = draining_writes_ ? read_q_ : write_q_;
        std::size_t idx = pickNext(primary);
        if (idx != npos) {
            startService(primary, idx);
            progress = true;
            continue;
        }
        idx = pickNext(secondary);
        if (idx != npos) {
            startService(secondary, idx);
            progress = true;
        }
    }
}

void
MemDevice::startService(std::deque<QueuedRequest>& q, std::size_t idx)
{
    QueuedRequest& qr = q[idx];
    qr.in_service = true;

    Bank& bank = banks_[bankOf(qr.req.addr)];
    const std::uint64_t row = rowOf(qr.req.addr);

    const bool row_hit = bank.row_valid && bank.open_row == row;
    Tick access_latency;
    if (row_hit) {
        access_latency = params_.row_hit_latency;
        ++row_hits_;
    } else if (bank.row_valid && bank.row_dirty) {
        access_latency = params_.row_miss_dirty_latency;
        ++row_misses_dirty_;
    } else {
        access_latency = params_.row_miss_clean_latency;
        ++row_misses_clean_;
    }

    // Opening a new row discards the old one; the cost of writing back a
    // dirty evicted row was paid in the access latency above.
    bank.row_valid = true;
    bank.open_row = row;
    bank.row_dirty = (row_hit && bank.row_dirty) || qr.req.is_write;

    const Tick now = curTick();
    const Tick access_done = now + access_latency;
    const Tick bus_slot = std::max(access_done, bus_free_);
    const Tick done = bus_slot + params_.burst_latency;
    bus_free_ = done;
    bank.busy_until = done;

    const bool is_write = qr.req.is_write;
    const std::uint64_t seq = qr.seq;
    eventq_.schedule(done, [this, is_write, seq] {
        finishService(is_write, seq);
    });
}

void
MemDevice::finishService(bool is_write, std::uint64_t seq)
{
    auto& q = is_write ? write_q_ : read_q_;
    auto it = std::find_if(q.begin(), q.end(), [seq](const QueuedRequest& r) {
        return r.seq == seq;
    });
    panic_if(it == q.end(), "completion for unknown request");

    QueuedRequest qr = std::move(*it);
    q.erase(it);

    if (is_write) {
        ++writes_;
        write_bytes_by_source_[static_cast<std::size_t>(qr.req.source)] +=
            kBlockSize;
    } else {
        ++reads_;
        read_bytes_ += kBlockSize;
        // Deliver the current architectural contents.
        store_->read(qr.req.addr, qr.req.data.data(), kBlockSize);
        read_latency_.sample(
            static_cast<double>(curTick() - qr.enqueue_tick) /
            kNanosecond);
    }

    if (qr.req.on_complete)
        qr.req.on_complete();

    fireAcceptCallbacks(is_write);
    if (is_write && write_q_.empty() && !drain_cbs_.empty()) {
        auto cbs = std::move(drain_cbs_);
        drain_cbs_.clear();
        for (auto& cb : cbs)
            cb();
    }

    trySchedule();
}

void
MemDevice::fireAcceptCallbacks(bool is_write)
{
    if (!canAccept(is_write))
        return;
    auto& cbs = is_write ? write_accept_cbs_ : read_accept_cbs_;
    if (cbs.empty())
        return;
    auto pending = std::move(cbs);
    cbs.clear();
    for (auto& cb : pending)
        cb();
}

} // namespace thynvm
