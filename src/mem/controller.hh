/**
 * @file
 * Abstract interface of a persistent-memory controller.
 *
 * The cache hierarchy talks to a MemController at block granularity. Each
 * concrete controller (ThyNVM, journaling, shadow paging, ideal DRAM/NVM)
 * implements address translation, crash-consistency machinery, and
 * recovery behind this interface, so systems are interchangeable in the
 * harness and benchmarks.
 */

#ifndef THYNVM_MEM_CONTROLLER_HH
#define THYNVM_MEM_CONTROLLER_HH

#include <functional>
#include <vector>

#include "fuzz/crash_points.hh"
#include "mem/block_accessor.hh"
#include "mem/device.hh"
#include "mem/request.hh"
#include "sim/sim_object.hh"

namespace thynvm {

/**
 * Base class for all evaluated memory controllers.
 */
class MemController : public SimObject, public BlockAccessor
{
  public:
    /** Callback fired when an access completes. */
    using AccessCallback = std::function<void()>;
    /**
     * A flush client drains volatile CPU state (registers, store buffer,
     * dirty cache blocks) into the controller, then invokes the given
     * continuation. Registered by the System during wiring.
     */
    using FlushClient = std::function<void(std::function<void()>)>;

    MemController(EventQueue& eq, std::string name)
        : SimObject(eq, std::move(name))
    {
        stats().addScalar("epochs", &epochs_, "completed epochs");
        stats().addScalar("ckpt_stall_time", &ckpt_stall_time_,
                          "ticks execution was blocked by checkpointing");
        stats().addScalar("ckpt_busy_time", &ckpt_busy_time_,
                          "ticks a checkpoint phase was in progress");
        stats().addScalar("recoveries", &recoveries_,
                          "successful crash recoveries");
    }

    /** Size of the software-visible physical address space in bytes. */
    virtual std::size_t physCapacity() const = 0;

    /**
     * Timed block access from the cache hierarchy.
     *
     * Functional/timing split: for reads, @p rdata is filled with the
     * software-visible data synchronously at call time; @p done fires
     * when the *timed* access completes. For writes, @p wdata is
     * consumed (applied functionally) at call time and @p done fires at
     * posted-write acknowledgment.
     *
     * @param paddr block-aligned physical address.
     * @param is_write true for a dirty-block writeback, false for a fill.
     * @param wdata kBlockSize bytes of write data (writes only).
     * @param rdata kBlockSize byte buffer, filled at call time (reads).
     * @param source attribution for traffic statistics.
     * @param done completion callback as described above.
     */
    void accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata, TrafficSource source,
                     std::function<void()> done) override = 0;

    /**
     * Persist a CPU architectural-state blob as part of the running
     * checkpoint (called by the flush client). Controllers without
     * checkpointing may ignore it.
     */
    virtual void persistCpuState(const std::vector<std::uint8_t>& blob)
    {
        (void)blob;
    }

    /** CPU state recovered by the last successful recover() call. */
    virtual const std::vector<std::uint8_t>&
    recoveredCpuState() const
    {
        static const std::vector<std::uint8_t> empty;
        return empty;
    }

    /**
     * Read the current software-visible version of memory with no timing
     * effect. Used by tests, the consistency checker, and examples.
     */
    virtual void functionalRead(Addr paddr, void* buf,
                                std::size_t len) const = 0;

    /** BlockAccessor functional read, resolved via functionalRead(). */
    void
    functionalReadBlock(Addr paddr, std::uint8_t* buf) override
    {
        functionalRead(paddr, buf, kBlockSize);
    }

    /**
     * Install initial memory contents before simulation starts (e.g.,
     * the workload's heap image). Writes bypass timing and land in the
     * durable home location.
     */
    virtual void loadImage(Addr paddr, const void* buf,
                           std::size_t len) = 0;

    /** Begin operation (arm epoch timers, etc.). */
    virtual void start() {}

    /**
     * Power loss: discard all volatile state (translation tables, DRAM
     * contents, staged requests); unserviced NVM writes are rolled back
     * by the devices. The event queue is cleared by the harness.
     */
    virtual void crash() = 0;

    /**
     * Rebuild a consistent software-visible memory image from durable
     * NVM state after crash(). Timed recovery traffic is modeled.
     * @param done fires when the system is ready to resume execution.
     */
    virtual void recover(std::function<void()> done) = 0;

    /** Register the CPU-side flush client used during checkpointing. */
    void setFlushClient(FlushClient client) { flush_ = std::move(client); }

    /**
     * Attach a crash-point registry; every controller announces its
     * checkpoint-pipeline steps to it via crashPoint(). Detached (the
     * default) the instrumentation is a single null check.
     */
    void setCrashPoints(CrashPointRegistry* reg) { crash_points_ = reg; }
    /** The attached registry, if any. */
    CrashPointRegistry* crashPoints() const { return crash_points_; }

    /**
     * Shard affinity: a controller and the devices it drives exchange
     * same-tick calls (zero-copy enqueue, completion callbacks), so
     * they must always be stepped by the same kernel shard.
     */
    void
    setShard(unsigned shard) override
    {
        SimObject::setShard(shard);
        if (MemDevice* d = nvmDevice())
            d->setShard(shard);
        if (MemDevice* d = dramDevice())
            d->setShard(shard);
    }

    /** NVM device, if this controller has one (for traffic metrics). */
    virtual MemDevice* nvmDevice() { return nullptr; }
    /** DRAM device, if this controller has one. */
    virtual MemDevice* dramDevice() { return nullptr; }
    /** Handle to the NVM contents that survive a crash (may be null). */
    virtual std::shared_ptr<BackingStore> nvmStoreHandle()
    {
        return nullptr;
    }

    /** Ticks execution was blocked due to checkpointing. */
    Tick
    checkpointStallTime() const
    {
        return static_cast<Tick>(ckpt_stall_time_.value());
    }

    /** Number of completed epochs. */
    std::uint64_t
    completedEpochs() const
    {
        return static_cast<std::uint64_t>(epochs_.value());
    }

  protected:
    /** Announce a named checkpoint-pipeline step to the registry. */
    void
    crashPoint(const char* site)
    {
        if (crash_points_ != nullptr)
            crash_points_->hit(site, curTick());
    }

    FlushClient flush_;
    CrashPointRegistry* crash_points_ = nullptr;
    stats::Scalar epochs_;
    stats::Scalar ckpt_stall_time_;
    stats::Scalar ckpt_busy_time_;
    stats::Scalar recoveries_;
};

} // namespace thynvm

#endif // THYNVM_MEM_CONTROLLER_HH
