/**
 * @file
 * Abstract interface of a persistent-memory controller.
 *
 * The cache hierarchy talks to a MemController at block granularity. Each
 * concrete controller (ThyNVM, journaling, shadow paging, ideal DRAM/NVM)
 * implements address translation, crash-consistency machinery, and
 * recovery behind this interface, so systems are interchangeable in the
 * harness and benchmarks.
 */

#ifndef THYNVM_MEM_CONTROLLER_HH
#define THYNVM_MEM_CONTROLLER_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/crash_points.hh"
#include "mem/block_accessor.hh"
#include "mem/device.hh"
#include "mem/request.hh"
#include "sim/sim_object.hh"

namespace thynvm {

/**
 * Base class for all evaluated memory controllers.
 */
class MemController : public SimObject, public BlockAccessor
{
  public:
    /** Callback fired when an access completes. */
    using AccessCallback = std::function<void()>;
    /**
     * A flush client drains volatile CPU state (registers, store buffer,
     * dirty cache blocks) into the controller, then invokes the given
     * continuation. Registered by the System during wiring.
     */
    using FlushClient = std::function<void(std::function<void()>)>;

    MemController(EventQueue& eq, std::string name)
        : SimObject(eq, std::move(name))
    {
        stats().addScalar("epochs", &epochs_, "completed epochs");
        stats().addScalar("ckpt_stall_time", &ckpt_stall_time_,
                          "ticks execution was blocked by checkpointing");
        stats().addScalar("ckpt_busy_time", &ckpt_busy_time_,
                          "ticks a checkpoint phase was in progress");
        stats().addScalar("recoveries", &recoveries_,
                          "successful crash recoveries");
        stats().addScalar("app_write_bytes", &app_write_bytes_,
                          "application write bytes arriving at the "
                          "controller (cache writebacks, replays "
                          "excluded)");
        stats().addFormula(
            "write_amplification",
            [this] {
                const std::uint64_t media = mediaWriteBytes();
                const std::uint64_t app = appWriteBytes();
                return app > 0 ? static_cast<double>(media) /
                                     static_cast<double>(app)
                               : 0.0;
            },
            "media write bytes / application write bytes, cumulative");
        stats().addHistogram("epoch_wamp", &epoch_wamp_,
                             "per-epoch write amplification (media "
                             "delta / app delta at each commit)");
    }

    /** Size of the software-visible physical address space in bytes. */
    virtual std::size_t physCapacity() const = 0;

    /**
     * Timed block access from the cache hierarchy.
     *
     * Functional/timing split: for reads, @p rdata is filled with the
     * software-visible data synchronously at call time; @p done fires
     * when the *timed* access completes. For writes, @p wdata is
     * consumed (applied functionally) at call time and @p done fires at
     * posted-write acknowledgment.
     *
     * @param paddr block-aligned physical address.
     * @param is_write true for a dirty-block writeback, false for a fill.
     * @param wdata kBlockSize bytes of write data (writes only).
     * @param rdata kBlockSize byte buffer, filled at call time (reads).
     * @param source attribution for traffic statistics.
     * @param done completion callback as described above.
     */
    void accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata, TrafficSource source,
                     std::function<void()> done) override = 0;

    /**
     * Persist a CPU architectural-state blob as part of the running
     * checkpoint (called by the flush client). Controllers without
     * checkpointing may ignore it.
     */
    virtual void persistCpuState(const std::vector<std::uint8_t>& blob)
    {
        (void)blob;
    }

    /** CPU state recovered by the last successful recover() call. */
    virtual const std::vector<std::uint8_t>&
    recoveredCpuState() const
    {
        static const std::vector<std::uint8_t> empty;
        return empty;
    }

    /**
     * Read the current software-visible version of memory with no timing
     * effect. Used by tests, the consistency checker, and examples.
     */
    virtual void functionalRead(Addr paddr, void* buf,
                                std::size_t len) const = 0;

    /** BlockAccessor functional read, resolved via functionalRead(). */
    void
    functionalReadBlock(Addr paddr, std::uint8_t* buf) override
    {
        functionalRead(paddr, buf, kBlockSize);
    }

    /**
     * Install initial memory contents before simulation starts (e.g.,
     * the workload's heap image). Writes bypass timing and land in the
     * durable home location.
     */
    virtual void loadImage(Addr paddr, const void* buf,
                           std::size_t len) = 0;

    /**
     * Enumerate physical-address ranges that may hold nonzero data, as
     * fn(paddr, len). Contract: any physical byte NOT covered by a
     * reported range reads zero via functionalRead(). Ranges may
     * overlap, repeat, and be reported in any order — callers dedup
     * (e.g. into a page bitmap). Concrete controllers override this
     * with the union of their touched backing-store pages, staged port
     * writes, and live remap-table entries, making whole-image capture
     * and mirror rebuilds O(touched) instead of O(capacity); the
     * default conservatively reports the entire space.
     */
    virtual void
    forEachTouchedPhysRange(
        const std::function<void(Addr, std::size_t)>& fn) const
    {
        fn(0, physCapacity());
    }

    /** Begin operation (arm epoch timers, etc.). */
    virtual void start() {}

    /**
     * Power loss: discard all volatile state (translation tables, DRAM
     * contents, staged requests); unserviced NVM writes are rolled back
     * by the devices. The event queue is cleared by the harness.
     */
    virtual void crash() = 0;

    /**
     * Rebuild a consistent software-visible memory image from durable
     * NVM state after crash(). Timed recovery traffic is modeled.
     * @param done fires when the system is ready to resume execution.
     */
    virtual void recover(std::function<void()> done) = 0;

    /**
     * Like recover(), but restore the newest durable checkpoint whose
     * epoch number is <= @p max_epoch. A multi-channel machine recovers
     * every channel to the *minimum* epoch committed across channels so
     * the assembled image is one consistent cut; the two-phase commit
     * barrier bounds the spread to one epoch, and nothing a channel
     * writes before the second barrier destroys the previous epoch's
     * image, so the older checkpoint is always intact. @p max_epoch 0
     * recovers the pristine (pre-first-commit) state. Controllers
     * without epochs fall back to recover().
     */
    virtual void
    recoverTo(std::uint64_t max_epoch, std::function<void()> done)
    {
        (void)max_epoch;
        recover(std::move(done));
    }

    /**
     * Epoch number of the newest durably committed checkpoint, read
     * from the surviving NVM image with no timing effect (valid after
     * crash(), before recovery). 0 = nothing committed yet. The
     * channel-group coordinator probes every channel and takes the
     * minimum as the recovery target.
     */
    virtual std::uint64_t committedEpoch() const { return 0; }

    /**
     * Force an epoch boundary at the next safe point (no-op for
     * non-checkpointing controllers). The channel-group coordinator
     * uses this as the ccnvme-style epoch-advance nudge so every
     * channel joins the same numbered boundary.
     */
    virtual void requestEpochEnd() {}

    /**
     * Stop initiating new epoch boundaries (a finished workload is
     * being drained). An in-flight checkpoint still completes; only
     * timer re-arming is suppressed, so a halted channel's event queue
     * drains to empty and the sharded kernel can terminate.
     */
    virtual void halt() {}

    /** Register the CPU-side flush client used during checkpointing. */
    void setFlushClient(FlushClient client) { flush_ = std::move(client); }

    /**
     * A commit gate interposes on the two durability edges of a
     * checkpoint commit: phase 0 fires when the checkpoint image is
     * staged and durable (before the commit header is written), phase 1
     * when the header is durable (before the commit point is flipped /
     * applied destructively). The gate must eventually invoke the
     * resume continuation; the default (no gate) resumes inline, which
     * is byte-for-byte the single-channel pipeline. The channel-group
     * coordinator registers a gate that turns both edges into
     * cross-channel barriers.
     */
    using CommitGateFn =
        std::function<void(unsigned phase, std::function<void()> resume)>;
    void setCommitGate(CommitGateFn gate) { commit_gate_ = std::move(gate); }

    /**
     * Attach a crash-point registry; every controller announces its
     * checkpoint-pipeline steps to it via crashPoint(). Detached (the
     * default) the instrumentation is a single null check. Virtual so
     * composite controllers (the channel group) can propagate the
     * registry to their nested per-channel controllers.
     */
    virtual void setCrashPoints(CrashPointRegistry* reg)
    {
        crash_points_ = reg;
    }
    /** The attached registry, if any. */
    CrashPointRegistry* crashPoints() const { return crash_points_; }

    /**
     * Prefix every crash-site name this controller announces (e.g.
     * "ch2."). Per-channel prefixes keep each site single-shard, so
     * hit ordinals stay deterministic when channel shards run on
     * different worker threads.
     */
    void setCrashSitePrefix(std::string prefix)
    {
        site_prefix_ = std::move(prefix);
    }

    /**
     * Shard affinity: a controller and the devices it drives exchange
     * same-tick calls (zero-copy enqueue, completion callbacks), so
     * they must always be stepped by the same kernel shard.
     */
    void
    setShard(unsigned shard) override
    {
        SimObject::setShard(shard);
        if (MemDevice* d = nvmDevice())
            d->setShard(shard);
        if (MemDevice* d = dramDevice())
            d->setShard(shard);
    }

    /** NVM device, if this controller has one (for traffic metrics). */
    virtual MemDevice* nvmDevice() { return nullptr; }
    /** DRAM device, if this controller has one. */
    virtual MemDevice* dramDevice() { return nullptr; }
    /** Handle to the NVM contents that survive a crash (may be null). */
    virtual std::shared_ptr<BackingStore> nvmStoreHandle()
    {
        return nullptr;
    }

    /**
     * Dump stats of any nested components this controller owns beyond
     * its own devices (the channel group dumps every channel's
     * controller and devices here). Default: nothing.
     */
    virtual void dumpExtraStats(std::ostream& os) { (void)os; }

    /**
     * Traffic roll-ups for RunMetrics. The defaults read this
     * controller's own devices; the channel group overrides them to
     * sum across channels (its own nvmDevice()/dramDevice() are null).
     */
    virtual std::uint64_t
    nvmWriteBytes(TrafficSource source)
    {
        MemDevice* d = nvmDevice();
        return d != nullptr ? d->writeBytes(source) : 0;
    }
    virtual std::uint64_t
    nvmTotalWriteBytes()
    {
        MemDevice* d = nvmDevice();
        return d != nullptr ? d->totalWriteBytes() : 0;
    }
    virtual std::uint64_t
    dramTotalWriteBytes()
    {
        MemDevice* d = dramDevice();
        return d != nullptr ? d->totalWriteBytes() : 0;
    }

    /**
     * Application write bytes that have arrived at this controller:
     * every accessBlock() write from the hierarchy, excluding internal
     * replays of stalled accesses (which would double-count the same
     * program store). The denominator of write amplification.
     */
    std::uint64_t
    appWriteBytes() const
    {
        return static_cast<std::uint64_t>(app_write_bytes_.value());
    }

    /**
     * Media write bytes — the numerator of write amplification. NVM
     * writes when this system has an NVM device; Ideal DRAM (no NVM at
     * all) falls back to its DRAM device so its amplification is still
     * defined (and exactly 1.0: no consistency machinery).
     */
    std::uint64_t
    mediaWriteBytes()
    {
        const std::uint64_t nvm = nvmTotalWriteBytes();
        return nvm != 0 ? nvm : dramTotalWriteBytes();
    }

    /** Ticks execution was blocked due to checkpointing. */
    Tick
    checkpointStallTime() const
    {
        return static_cast<Tick>(ckpt_stall_time_.value());
    }

    /** Number of completed epochs. */
    std::uint64_t
    completedEpochs() const
    {
        return static_cast<std::uint64_t>(epochs_.value());
    }

  protected:
    /** Announce a named checkpoint-pipeline step to the registry. */
    void
    crashPoint(const char* site)
    {
        if (crash_points_ == nullptr)
            return;
        if (site_prefix_.empty())
            crash_points_->hit(site, curTick());
        else
            crash_points_->hit((site_prefix_ + site).c_str(), curTick());
    }

    /**
     * Pass a commit-durability edge through the registered gate (or
     * straight through when none is registered — the single-channel
     * pipeline, unchanged).
     */
    void
    commitGate(unsigned phase, std::function<void()> resume)
    {
        if (commit_gate_)
            commit_gate_(phase, std::move(resume));
        else
            resume();
    }

    /**
     * Count one application write block. Every concrete controller
     * calls this at the top of its accessBlock() write path; suppressed
     * while a stalled-access replay is in flight (the original arrival
     * already counted).
     */
    void
    noteAppWrite()
    {
        if (!replaying_app_)
            app_write_bytes_ += static_cast<double>(kBlockSize);
    }

    /**
     * Sample the per-epoch write-amplification histogram; called right
     * after each ++epochs_ on the controller's own shard. Epochs with
     * no application writes are skipped (an empty epoch's fixed
     * metadata cost would make the ratio meaningless).
     */
    void
    noteEpochCommitted()
    {
        const std::uint64_t media = mediaWriteBytes();
        const std::uint64_t app = appWriteBytes();
        if (app > last_epoch_app_ && media >= last_epoch_media_) {
            epoch_wamp_.sample(
                static_cast<double>(media - last_epoch_media_) /
                static_cast<double>(app - last_epoch_app_));
        }
        last_epoch_media_ = media;
        last_epoch_app_ = app;
    }

    FlushClient flush_;
    CommitGateFn commit_gate_;
    std::string site_prefix_;
    CrashPointRegistry* crash_points_ = nullptr;
    stats::Scalar epochs_;
    stats::Scalar ckpt_stall_time_;
    stats::Scalar ckpt_busy_time_;
    stats::Scalar recoveries_;
    stats::Scalar app_write_bytes_;
    stats::Histogram epoch_wamp_{16, 64.0};
    /** True while EpochController::replayStalled re-issues accesses. */
    bool replaying_app_ = false;
    std::uint64_t last_epoch_media_ = 0;
    std::uint64_t last_epoch_app_ = 0;
};

} // namespace thynvm

#endif // THYNVM_MEM_CONTROLLER_HH
