/**
 * @file
 * Functional byte storage backing a memory device.
 *
 * The store holds the *architectural* contents: writes are applied when a
 * request is enqueued at the device, so controller logic can always read
 * current data synchronously. Durability across a crash is handled by the
 * device, which records undo bytes for queued-but-unserviced writes and
 * rolls them back at crash time (see MemDevice::crash()).
 */

#ifndef THYNVM_MEM_BACKING_STORE_HH
#define THYNVM_MEM_BACKING_STORE_HH

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace thynvm {

/**
 * A flat byte array addressed by device-local addresses.
 *
 * A store is either a *root* (owns its bytes) or a *view* over a
 * contiguous sub-range of a parent store. Views are how a multi-channel
 * machine carves one crash-surviving NVM image into per-channel device
 * stores: each channel addresses its slice with channel-local addresses
 * while the root handle is what survives System::crash().
 */
class BackingStore
{
  public:
    /** Create a zero-initialized root store of @p capacity bytes. */
    explicit BackingStore(std::size_t capacity)
        : bytes_(capacity, 0), base_(bytes_.data()), size_(capacity)
    {}

    /**
     * Create a view over bytes [@p offset, @p offset + @p capacity) of
     * @p parent. The view shares the parent's storage (writes through
     * either are visible to both) and keeps the parent alive.
     */
    BackingStore(std::shared_ptr<BackingStore> parent, std::size_t offset,
                 std::size_t capacity)
        : parent_(std::move(parent)),
          base_(nullptr),
          size_(capacity)
    {
        panic_if(parent_ == nullptr, "backing-store view of null parent");
        panic_if(offset + capacity > parent_->size_ ||
                     offset + capacity < offset,
                 "backing-store view out of range: offset=%zu len=%zu "
                 "parent=%zu",
                 offset, capacity, parent_->size_);
        base_ = parent_->base_ + offset;
    }

    /** Capacity in bytes. */
    std::size_t size() const { return size_; }

    /** Read @p len bytes at @p addr into @p buf. */
    void
    read(Addr addr, void* buf, std::size_t len) const
    {
        checkRange(addr, len);
        std::memcpy(buf, base_ + addr, len);
    }

    /** Write @p len bytes from @p buf at @p addr. */
    void
    write(Addr addr, const void* buf, std::size_t len)
    {
        checkRange(addr, len);
        std::memcpy(base_ + addr, buf, len);
    }

    /** Fill @p len bytes at @p addr with @p value. */
    void
    fill(Addr addr, std::uint8_t value, std::size_t len)
    {
        checkRange(addr, len);
        std::memset(base_ + addr, value, len);
    }

    /** Direct pointer access for bulk comparison in tests. */
    const std::uint8_t* data() const { return base_; }

    /** Zero the store (views zero only their range). */
    void
    clear()
    {
        std::memset(base_, 0, size_);
    }

    /**
     * Deep copy of the current contents (views copy only their range,
     * into a fresh root store). Crash tests use clones to recover the
     * same surviving image several times independently (recovery may
     * legitimately write to the store, e.g. a journal replay, so
     * sharing one store would couple the attempts).
     */
    std::shared_ptr<BackingStore>
    clone() const
    {
        auto copy = std::make_shared<BackingStore>(size_);
        std::memcpy(copy->base_, base_, size_);
        return copy;
    }

  private:
    void
    checkRange(Addr addr, std::size_t len) const
    {
        panic_if(addr + len > size_ || addr + len < addr,
                 "backing store access out of range: addr=%llu len=%zu "
                 "capacity=%zu",
                 static_cast<unsigned long long>(addr), len, size_);
    }

    std::vector<std::uint8_t> bytes_; //!< root storage (empty in views)
    std::shared_ptr<BackingStore> parent_; //!< keep-alive (views only)
    std::uint8_t* base_;
    std::size_t size_;
};

} // namespace thynvm

#endif // THYNVM_MEM_BACKING_STORE_HH
