/**
 * @file
 * Functional byte storage backing a memory device.
 *
 * The store holds the *architectural* contents: writes are applied when a
 * request is enqueued at the device, so controller logic can always read
 * current data synchronously. Durability across a crash is handled by the
 * device, which records undo bytes for queued-but-unserviced writes and
 * rolls them back at crash time (see MemDevice::crash()).
 */

#ifndef THYNVM_MEM_BACKING_STORE_HH
#define THYNVM_MEM_BACKING_STORE_HH

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace thynvm {

/**
 * A flat byte array addressed by device-local addresses.
 */
class BackingStore
{
  public:
    /** Create a zero-initialized store of @p capacity bytes. */
    explicit BackingStore(std::size_t capacity) : bytes_(capacity, 0) {}

    /** Capacity in bytes. */
    std::size_t size() const { return bytes_.size(); }

    /** Read @p len bytes at @p addr into @p buf. */
    void
    read(Addr addr, void* buf, std::size_t len) const
    {
        checkRange(addr, len);
        std::memcpy(buf, bytes_.data() + addr, len);
    }

    /** Write @p len bytes from @p buf at @p addr. */
    void
    write(Addr addr, const void* buf, std::size_t len)
    {
        checkRange(addr, len);
        std::memcpy(bytes_.data() + addr, buf, len);
    }

    /** Fill @p len bytes at @p addr with @p value. */
    void
    fill(Addr addr, std::uint8_t value, std::size_t len)
    {
        checkRange(addr, len);
        std::memset(bytes_.data() + addr, value, len);
    }

    /** Direct pointer access for bulk comparison in tests. */
    const std::uint8_t* data() const { return bytes_.data(); }

    /** Zero the entire store (models loss of volatile contents). */
    void
    clear()
    {
        std::fill(bytes_.begin(), bytes_.end(), 0);
    }

    /**
     * Deep copy of the current contents. Crash tests use clones to
     * recover the same surviving image several times independently
     * (recovery may legitimately write to the store, e.g. a journal
     * replay, so sharing one store would couple the attempts).
     */
    std::shared_ptr<BackingStore>
    clone() const
    {
        auto copy = std::make_shared<BackingStore>(bytes_.size());
        copy->bytes_ = bytes_;
        return copy;
    }

  private:
    void
    checkRange(Addr addr, std::size_t len) const
    {
        panic_if(addr + len > bytes_.size() || addr + len < addr,
                 "backing store access out of range: addr=%llu len=%zu "
                 "capacity=%zu",
                 static_cast<unsigned long long>(addr), len, bytes_.size());
    }

    std::vector<std::uint8_t> bytes_;
};

} // namespace thynvm

#endif // THYNVM_MEM_BACKING_STORE_HH
