/**
 * @file
 * Functional byte storage backing a memory device.
 *
 * The store holds the *architectural* contents: writes are applied when a
 * request is enqueued at the device, so controller logic can always read
 * current data synchronously. Durability across a crash is handled by the
 * device, which records undo bytes for queued-but-unserviced writes and
 * rolls them back at crash time (see MemDevice::crash()).
 *
 * Storage is a sparse copy-on-write PagedBytes (4 KiB pages allocated on
 * first write, implicit zero page elsewhere), so a GB-scale machine only
 * pays host memory for pages it actually dirties, clone() is O(touched),
 * and recovery/oracle passes can enumerate the touched set instead of
 * scanning the whole capacity. THYNVM_DENSE_STORE swaps in the flat
 * fallback (see paged_bytes.hh).
 */

#ifndef THYNVM_MEM_BACKING_STORE_HH
#define THYNVM_MEM_BACKING_STORE_HH

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/types.hh"
#include "mem/paged_bytes.hh"

namespace thynvm {

/**
 * A flat byte array addressed by device-local addresses.
 *
 * A store is either a *root* (owns its pages) or a *view* over a
 * contiguous sub-range of a parent store. Views are how a multi-channel
 * machine carves one crash-surviving NVM image into per-channel device
 * stores: each channel addresses its slice with channel-local addresses
 * while the root handle is what survives System::crash(). Views resolve
 * to the ultimate root at construction (a view of a view composes
 * offsets), so every access is one indirection.
 */
class BackingStore
{
  public:
    /** Create a zero-initialized root store of @p capacity bytes. */
    explicit BackingStore(std::size_t capacity)
        : bytes_(capacity), size_(capacity)
    {}

    /**
     * Create a view over bytes [@p offset, @p offset + @p capacity) of
     * @p parent. The view shares the parent's storage (writes through
     * either are visible to both) and keeps the root alive.
     */
    BackingStore(std::shared_ptr<BackingStore> parent, std::size_t offset,
                 std::size_t capacity)
        : size_(capacity)
    {
        panic_if(parent == nullptr, "backing-store view of null parent");
        panic_if(offset + capacity > parent->size_ ||
                     offset + capacity < offset,
                 "backing-store view out of range: offset=%zu len=%zu "
                 "parent=%zu",
                 offset, capacity, parent->size_);
        offset_ = parent->offset_ + offset;
        root_ = parent->root_ ? parent->root_ : std::move(parent);
    }

    /** Capacity in bytes. */
    std::size_t size() const { return size_; }

    /** Read @p len bytes at @p addr into @p buf. */
    void
    read(Addr addr, void* buf, std::size_t len) const
    {
        checkRange(addr, len);
        target().read(offset_ + addr, buf, len);
    }

    /** Write @p len bytes from @p buf at @p addr. */
    void
    write(Addr addr, const void* buf, std::size_t len)
    {
        checkRange(addr, len);
        target().write(offset_ + addr, buf, len);
    }

    /** Fill @p len bytes at @p addr with @p value. */
    void
    fill(Addr addr, std::uint8_t value, std::size_t len)
    {
        checkRange(addr, len);
        target().fill(offset_ + addr, value, len);
    }

    /** Zero the store (views zero only their range). */
    void
    clear()
    {
        target().clearRange(offset_, size_);
    }

    /**
     * Copy of the current contents (views copy only their range, into
     * a fresh root store). Crash tests use clones to recover the same
     * surviving image several times independently (recovery may
     * legitimately write to the store, e.g. a journal replay, so
     * sharing one store would couple the attempts). A root clone is a
     * COW share — O(pages-table), paying only for pages that later
     * diverge; a view clone copies the view's touched pages.
     */
    std::shared_ptr<BackingStore>
    clone() const
    {
        auto copy = std::make_shared<BackingStore>(size_);
        if (root_ == nullptr && offset_ == 0) {
            copy->bytes_ = bytes_; // COW share
            return copy;
        }
        target().forEachTouchedRange(
            offset_, offset_ + size_,
            [&](Addr a, const std::uint8_t* data, std::size_t len) {
                copy->bytes_.write(a - offset_, data, len);
            });
        return copy;
    }

    /**
     * Enumerate touched bytes of this store (views: of their range,
     * with view-local addresses) as fn(addr, data, len), ascending.
     * Any byte not reported reads as zero. Requires quiescence.
     */
    template <typename Fn>
    void
    forEachTouchedRange(Fn&& fn) const
    {
        target().forEachTouchedRange(
            offset_, offset_ + size_,
            [&](Addr a, const std::uint8_t* data, std::size_t len) {
                fn(a - offset_, data, len);
            });
    }

    /** Materialized page count of the underlying root store. */
    std::size_t
    touchedPageCount() const
    {
        return target().touchedPageCount();
    }

  private:
    const PagedBytes&
    target() const
    {
        return root_ ? root_->bytes_ : bytes_;
    }

    PagedBytes&
    target()
    {
        return root_ ? root_->bytes_ : bytes_;
    }

    void
    checkRange(Addr addr, std::size_t len) const
    {
        panic_if(addr + len > size_ || addr + len < addr,
                 "backing store access out of range: addr=%llu len=%zu "
                 "capacity=%zu",
                 static_cast<unsigned long long>(addr), len, size_);
    }

    PagedBytes bytes_;                   //!< root storage (empty in views)
    std::shared_ptr<BackingStore> root_; //!< keep-alive (views only)
    std::size_t offset_ = 0;             //!< absolute offset into root
    std::size_t size_;
};

} // namespace thynvm

#endif // THYNVM_MEM_BACKING_STORE_HH
