/**
 * @file
 * A staging port in front of a MemDevice.
 *
 * Controllers can always send into a port; the port issues requests to
 * the device as queue space frees up, providing backpressure through
 * acceptance callbacks instead of rejections. Reads and writes are staged
 * in separate FIFOs so demand reads are not head-of-line blocked behind
 * checkpoint write bursts; this is safe because data is resolved
 * *functionally* at send time (see MemController::access contract) and
 * device-level requests model timing and durability only.
 *
 * Staged reads carry no payload at all; staged writes hold the one block
 * of write data until the device accepts it (at which point the data is
 * applied to the backing store and the port's copy dies). A per-address
 * index keeps functionalRead O(1) over the unbounded write FIFO.
 *
 * Durability ordering across writes (e.g., checkpoint data before the
 * commit record) is enforced at the protocol level by waiting on
 * notifyWhenWritesDurable() between dependent writes, mirroring the
 * paper's "flush the NVM write queue" step.
 */

#ifndef THYNVM_MEM_PORT_HH
#define THYNVM_MEM_PORT_HH

#include <cstring>
#include <deque>
#include <unordered_map>

#include "mem/device.hh"

namespace thynvm {

/**
 * Staging port with unbounded read/write FIFOs and in-order issue
 * within each class.
 */
class DevicePort
{
  public:
    /** @param dev the device this port feeds. */
    explicit DevicePort(MemDevice& dev) : dev_(dev) {}

    DevicePort(const DevicePort&) = delete;
    DevicePort& operator=(const DevicePort&) = delete;

    /** The device behind this port. */
    MemDevice& device() { return dev_; }
    const MemDevice& device() const { return dev_; }

    /**
     * Stage a read for issue to the device.
     * @param on_complete fires when the timed service ends.
     * @param on_accept fires when the device accepts the request into
     *        its queue.
     */
    void
    sendRead(Addr addr, TrafficSource source,
             std::function<void()> on_complete = {},
             std::function<void()> on_accept = {})
    {
        read_fifo_.push_back(ReadItem{addr, source, std::move(on_complete),
                                      std::move(on_accept)});
        tryIssueReads();
    }

    /**
     * Stage a write of one block (@p data, kBlockSize bytes; copied).
     * @param on_complete fires when the timed service ends.
     * @param on_accept fires when the device accepts the request (useful
     *        as a posted-write acknowledgment).
     */
    void
    sendWrite(Addr addr, const std::uint8_t* data, TrafficSource source,
              std::function<void()> on_complete = {},
              std::function<void()> on_accept = {})
    {
        write_fifo_.emplace_back();
        WriteItem& item = write_fifo_.back();
        item.addr = addr;
        item.source = source;
        item.on_complete = std::move(on_complete);
        item.on_accept = std::move(on_accept);
        std::memcpy(item.data.data(), data, kBlockSize);
        // Deque references stay valid across push_back/pop_front, so
        // the index can point straight at the staged payload.
        StagedWrite& sw = staged_writes_[addr];
        ++sw.count;
        sw.newest = item.data.data();
        tryIssueWrites();
    }

    /** Legacy request-struct interface; forwards to sendRead/sendWrite. */
    void
    send(DeviceRequest req, std::function<void()> on_accept = {})
    {
        if (req.is_write) {
            sendWrite(req.addr, req.data.data(), req.source,
                      std::move(req.on_complete), std::move(on_accept));
        } else {
            sendRead(req.addr, req.source, std::move(req.on_complete),
                     std::move(on_accept));
        }
    }

    /**
     * Functional read that observes staged writes still in the write
     * FIFO (newest match wins) before falling back to the backing
     * store. @p addr must be block aligned, @p len at most one block.
     */
    void
    functionalRead(Addr addr, void* buf, std::size_t len) const
    {
        panic_if(addr % kBlockSize != 0 || len > kBlockSize,
                 "port functional read must target a single block");
        auto it = staged_writes_.find(addr);
        if (it != staged_writes_.end()) {
            std::memcpy(buf, it->second.newest, len);
            return;
        }
        dev_.store().read(addr, buf, len);
    }

    /**
     * Enumerate the block addresses with a staged (not yet accepted)
     * write, one call per distinct address. Touched-range enumeration
     * uses this to cover data functionalRead() resolves from the FIFO
     * rather than the backing store.
     */
    template <typename Fn>
    void
    forEachStagedWriteAddr(Fn&& fn) const
    {
        for (const auto& [addr, sw] : staged_writes_)
            fn(addr);
    }

    /** Requests staged but not yet accepted by the device. */
    std::size_t
    pending() const
    {
        return read_fifo_.size() + write_fifo_.size();
    }

    /** Staged writes not yet accepted by the device. */
    std::size_t pendingWrites() const { return write_fifo_.size(); }

    /**
     * One-shot callback for when every write sent through this port so
     * far has been fully serviced by the device (i.e., is durable if
     * the device is nonvolatile). Conservative: writes sent after this
     * call may delay the notification.
     */
    void
    notifyWhenWritesDurable(std::function<void()> cb)
    {
        drain_waiters_.push_back(std::move(cb));
        checkDrainWaiters();
    }

    /**
     * Apply all staged writes functionally and drop the FIFOs without
     * loss. For idealized systems whose consistency is free by
     * assumption.
     */
    void
    quiesce()
    {
        for (auto& item : write_fifo_)
            dev_.store().write(item.addr, item.data.data(), kBlockSize);
        crash();
    }

    /** Drop all staged requests (power loss). */
    void
    crash()
    {
        read_fifo_.clear();
        write_fifo_.clear();
        staged_writes_.clear();
        drain_waiters_.clear();
        read_blocked_ = false;
        write_blocked_ = false;
        drain_check_armed_ = false;
    }

  private:
    struct ReadItem
    {
        Addr addr = 0;
        TrafficSource source = TrafficSource::DemandRead;
        std::function<void()> on_complete;
        std::function<void()> on_accept;
    };

    struct WriteItem
    {
        Addr addr = 0;
        TrafficSource source = TrafficSource::DemandRead;
        std::function<void()> on_complete;
        std::function<void()> on_accept;
        std::array<std::uint8_t, kBlockSize> data{};
    };

    void
    tryIssueReads()
    {
        if (read_blocked_)
            return;
        while (!read_fifo_.empty()) {
            if (!dev_.canAccept(false)) {
                read_blocked_ = true;
                dev_.notifyWhenAccepting(false, [this] {
                    read_blocked_ = false;
                    tryIssueReads();
                });
                return;
            }
            ReadItem item = std::move(read_fifo_.front());
            read_fifo_.pop_front();
            bool ok = dev_.enqueueRead(item.addr, item.source,
                                       std::move(item.on_complete));
            panic_if(!ok, "device rejected request after canAccept");
            if (item.on_accept)
                item.on_accept();
        }
    }

    void
    tryIssueWrites()
    {
        if (write_blocked_)
            return;
        while (!write_fifo_.empty()) {
            if (!dev_.canAccept(true)) {
                write_blocked_ = true;
                dev_.notifyWhenAccepting(true, [this] {
                    write_blocked_ = false;
                    tryIssueWrites();
                });
                return;
            }
            WriteItem item = std::move(write_fifo_.front());
            write_fifo_.pop_front();
            auto it = staged_writes_.find(item.addr);
            panic_if(it == staged_writes_.end(),
                     "staged write missing from index");
            // The FIFO pops oldest-first, so the newest staged write
            // for this address only leaves when it is the last one.
            if (--it->second.count == 0)
                staged_writes_.erase(it);
            bool ok = dev_.enqueueWrite(item.addr, item.data.data(),
                                        item.source,
                                        std::move(item.on_complete));
            panic_if(!ok, "device rejected request after canAccept");
            if (item.on_accept)
                item.on_accept();
        }
        checkDrainWaiters();
    }

    void
    checkDrainWaiters()
    {
        if (drain_waiters_.empty() || drain_check_armed_)
            return;
        if (!write_fifo_.empty())
            return; // tryIssueWrites() will re-check once staged
        drain_check_armed_ = true;
        dev_.notifyWhenWritesDrained([this] {
            drain_check_armed_ = false;
            if (write_fifo_.empty() && dev_.writesDrained()) {
                auto waiters = std::move(drain_waiters_);
                drain_waiters_.clear();
                for (auto& cb : waiters)
                    cb();
            } else {
                checkDrainWaiters();
            }
        });
    }

    /** Per-address view of the staged writes: how many are in the FIFO
     *  and where the newest one's payload lives. Keeps functionalRead
     *  O(1) instead of scanning the (unbounded) write FIFO. */
    struct StagedWrite
    {
        std::size_t count = 0;
        const std::uint8_t* newest = nullptr;
    };

    MemDevice& dev_;
    std::deque<ReadItem> read_fifo_;
    std::deque<WriteItem> write_fifo_;
    std::unordered_map<Addr, StagedWrite> staged_writes_;
    std::vector<std::function<void()>> drain_waiters_;
    bool read_blocked_ = false;
    bool write_blocked_ = false;
    bool drain_check_armed_ = false;
};

} // namespace thynvm

#endif // THYNVM_MEM_PORT_HH
