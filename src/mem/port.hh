/**
 * @file
 * A staging port in front of a MemDevice.
 *
 * Controllers can always send() into a port; the port issues requests to
 * the device as queue space frees up, providing backpressure through
 * acceptance callbacks instead of rejections. Reads and writes are staged
 * in separate FIFOs so demand reads are not head-of-line blocked behind
 * checkpoint write bursts; this is safe because data is resolved
 * *functionally* at send time (see MemController::access contract) and
 * device-level requests model timing and durability only.
 *
 * Durability ordering across writes (e.g., checkpoint data before the
 * commit record) is enforced at the protocol level by waiting on
 * notifyWhenWritesDurable() between dependent writes, mirroring the
 * paper's "flush the NVM write queue" step.
 */

#ifndef THYNVM_MEM_PORT_HH
#define THYNVM_MEM_PORT_HH

#include <cstring>
#include <deque>
#include <unordered_map>

#include "mem/device.hh"

namespace thynvm {

/**
 * Staging port with unbounded read/write FIFOs and in-order issue
 * within each class.
 */
class DevicePort
{
  public:
    /** @param dev the device this port feeds. */
    explicit DevicePort(MemDevice& dev) : dev_(dev) {}

    DevicePort(const DevicePort&) = delete;
    DevicePort& operator=(const DevicePort&) = delete;

    /** The device behind this port. */
    MemDevice& device() { return dev_; }
    const MemDevice& device() const { return dev_; }

    /**
     * Stage a request for issue to the device.
     * @param req the request; its on_complete fires at service end.
     * @param on_accept fires when the device accepts the request into
     *        its queue (useful as a posted-write acknowledgment).
     */
    void
    send(DeviceRequest req, std::function<void()> on_accept = {})
    {
        const bool is_write = req.is_write;
        auto& fifo = is_write ? write_fifo_ : read_fifo_;
        fifo.push_back(Item{std::move(req), std::move(on_accept)});
        if (is_write) {
            // Deque references stay valid across push_back/pop_front,
            // so the index can point straight at the staged request.
            StagedWrite& sw = staged_writes_[fifo.back().req.addr];
            ++sw.count;
            sw.newest = &fifo.back().req;
        }
        tryIssue(is_write);
    }

    /**
     * Functional read that observes staged writes still in the write
     * FIFO (newest match wins) before falling back to the backing
     * store. @p addr must be block aligned, @p len at most one block.
     */
    void
    functionalRead(Addr addr, void* buf, std::size_t len) const
    {
        panic_if(addr % kBlockSize != 0 || len > kBlockSize,
                 "port functional read must target a single block");
        auto it = staged_writes_.find(addr);
        if (it != staged_writes_.end()) {
            std::memcpy(buf, it->second.newest->data.data(), len);
            return;
        }
        dev_.store().read(addr, buf, len);
    }

    /** Requests staged but not yet accepted by the device. */
    std::size_t
    pending() const
    {
        return read_fifo_.size() + write_fifo_.size();
    }

    /** Staged writes not yet accepted by the device. */
    std::size_t pendingWrites() const { return write_fifo_.size(); }

    /**
     * One-shot callback for when every write sent through this port so
     * far has been fully serviced by the device (i.e., is durable if
     * the device is nonvolatile). Conservative: writes sent after this
     * call may delay the notification.
     */
    void
    notifyWhenWritesDurable(std::function<void()> cb)
    {
        drain_waiters_.push_back(std::move(cb));
        checkDrainWaiters();
    }

    /**
     * Apply all staged writes functionally and drop the FIFOs without
     * loss. For idealized systems whose consistency is free by
     * assumption.
     */
    void
    quiesce()
    {
        for (auto& item : write_fifo_) {
            dev_.store().write(item.req.addr, item.req.data.data(),
                               kBlockSize);
        }
        crash();
    }

    /** Drop all staged requests (power loss). */
    void
    crash()
    {
        read_fifo_.clear();
        write_fifo_.clear();
        staged_writes_.clear();
        drain_waiters_.clear();
        read_blocked_ = false;
        write_blocked_ = false;
        drain_check_armed_ = false;
    }

  private:
    struct Item
    {
        DeviceRequest req;
        std::function<void()> on_accept;
    };

    void
    tryIssue(bool is_write)
    {
        auto& fifo = is_write ? write_fifo_ : read_fifo_;
        bool& blocked = is_write ? write_blocked_ : read_blocked_;
        if (blocked)
            return;
        while (!fifo.empty()) {
            if (!dev_.canAccept(is_write)) {
                blocked = true;
                dev_.notifyWhenAccepting(is_write, [this, is_write] {
                    bool& b = is_write ? write_blocked_ : read_blocked_;
                    b = false;
                    tryIssue(is_write);
                });
                return;
            }
            Item item = std::move(fifo.front());
            fifo.pop_front();
            if (is_write) {
                auto it = staged_writes_.find(item.req.addr);
                panic_if(it == staged_writes_.end(),
                         "staged write missing from index");
                // The FIFO pops oldest-first, so the newest staged write
                // for this address only leaves when it is the last one.
                if (--it->second.count == 0)
                    staged_writes_.erase(it);
            }
            bool ok = dev_.enqueue(std::move(item.req));
            panic_if(!ok, "device rejected request after canAccept");
            if (item.on_accept)
                item.on_accept();
        }
        if (is_write)
            checkDrainWaiters();
    }

    void
    checkDrainWaiters()
    {
        if (drain_waiters_.empty() || drain_check_armed_)
            return;
        if (!write_fifo_.empty())
            return; // tryIssue(write) will re-check once staged
        drain_check_armed_ = true;
        dev_.notifyWhenWritesDrained([this] {
            drain_check_armed_ = false;
            if (write_fifo_.empty() && dev_.writesDrained()) {
                auto waiters = std::move(drain_waiters_);
                drain_waiters_.clear();
                for (auto& cb : waiters)
                    cb();
            } else {
                checkDrainWaiters();
            }
        });
    }

    /** Per-address view of the staged writes: how many are in the FIFO
     *  and where the newest one's data lives. Keeps functionalRead O(1)
     *  instead of scanning the (unbounded) write FIFO. */
    struct StagedWrite
    {
        std::size_t count = 0;
        const DeviceRequest* newest = nullptr;
    };

    MemDevice& dev_;
    std::deque<Item> read_fifo_;
    std::deque<Item> write_fifo_;
    std::unordered_map<Addr, StagedWrite> staged_writes_;
    std::vector<std::function<void()>> drain_waiters_;
    bool read_blocked_ = false;
    bool write_blocked_ = false;
    bool drain_check_armed_ = false;
};

} // namespace thynvm

#endif // THYNVM_MEM_PORT_HH
