/**
 * @file
 * ThyNvmController implementation.
 */

#include "core/thynvm_controller.hh"

#include <algorithm>
#include <cstring>
#include <memory>

namespace thynvm {

namespace {

/** Magic value identifying a valid backup-slot commit header. */
constexpr std::uint64_t kBackupMagic = 0x5468794e564d2121ull; // "ThyNVM!!"

/** Commit header stored in the first block of a backup slot. */
struct BackupHeader
{
    std::uint64_t magic;
    std::uint64_t epoch;
    std::uint64_t cpu_len;
    std::uint64_t n_overflow;
};

} // namespace

ThyNvmController::ThyNvmController(EventQueue& eq, std::string name,
                                   const ThyNvmConfig& cfg,
                                   std::shared_ptr<BackingStore> nvm_store)
    : MemController(eq, name),
      cfg_(cfg),
      layout_(cfg),
      dram_dev_(eq, name + ".dram", DeviceParams::dram(layout_.dramSize())),
      nvm_dev_(eq, name + ".nvm", DeviceParams::nvm(layout_.nvmSize()),
               std::move(nvm_store)),
      dram_port_(dram_dev_),
      nvm_port_(nvm_dev_),
      btt_(cfg.btt_entries),
      ptt_(cfg.ptt_entries),
      epoch_timer_([this] { requestEpochEnd(); }),
      boundary_event_([this] { tryBeginBoundary(); })
{
    fatal_if(cfg_.phys_size == 0 || cfg_.btt_entries == 0 ||
                 cfg_.ptt_entries == 0 || cfg_.overflow_entries == 0,
             "degenerate ThyNVM configuration");
    overflow_free_.reserve(cfg_.overflow_entries);
    for (std::size_t i = cfg_.overflow_entries; i-- > 0;)
        overflow_free_.push_back(i);
    overflow_slot_addr_.assign(cfg_.overflow_entries, kInvalidAddr);
    overflow_dirty_[0].assign(cfg_.overflow_entries, 0);
    overflow_dirty_[1].assign(cfg_.overflow_entries, 0);
    overflow_in_last_log_.assign(cfg_.overflow_entries, 0);
    resetImage(btt_image_, btt_.capacity());
    resetImage(ptt_image_, ptt_.capacity());

    stats().addScalar("loads", &loads_, "block loads serviced");
    stats().addScalar("stores", &stores_, "block stores serviced");
    stats().addScalar("remap_nvm_writes", &remap_nvm_writes_,
                      "working copies remapped directly in NVM");
    stats().addScalar("buffered_block_writes", &buffered_block_writes_,
                      "working copies staged in the DRAM block buffer");
    stats().addScalar("page_stores", &page_stores_,
                      "stores absorbed by DRAM page slots");
    stats().addScalar("diverted_stores", &diverted_stores_,
                      "stores diverted to overlays during page writeback");
    stats().addScalar("overlay_merges", &overlay_merges_,
                      "overlay blocks merged back into pages");
    stats().addScalar("drained_blocks", &drained_blocks_,
                      "DRAM-buffered blocks drained at checkpoint start");
    stats().addScalar("metadata_ckpt_bytes", &metadata_ckpt_bytes_,
                      "bytes of BTT/PTT/CPU state checkpointed");
    stats().addScalar("pages_written_back", &pages_written_back_,
                      "dirty pages checkpointed by page writeback");
    stats().addScalar("promotions", &promotions_,
                      "pages switched from block remapping to writeback");
    stats().addScalar("demotions", &demotions_,
                      "pages switched from writeback to block remapping");
    stats().addScalar("home_migrations", &home_migrations_,
                      "idle blocks migrated from Region A to Home");
    stats().addScalar("overflow_epochs", &overflow_epochs_,
                      "epochs ended early by table overflow");
    stats().addScalar("overflow_blocks", &overflow_blocks_,
                      "stores staged in the overflow buffer");
    stats().addScalar("stalled_stores", &stalled_store_count_,
                      "stores stalled waiting for table space");
    stats().addScalar("flush_stall_time", &flush_stall_time_,
                      "ticks the CPU was paused for volatile-state flush");
}

// ---------------------------------------------------------------------
// Public interface.
// ---------------------------------------------------------------------

void
ThyNvmController::start()
{
    panic_if(started_, "controller started twice");
    started_ = true;
    armEpochTimer();
}

void
ThyNvmController::armEpochTimer()
{
    if (halted_)
        return;
    if (epoch_timer_.scheduled())
        eventq_.deschedule(epoch_timer_);
    eventq_.schedule(epoch_timer_, curTick() + cfg_.epoch_length);
}

void
ThyNvmController::halt()
{
    halted_ = true;
    if (epoch_timer_.scheduled())
        eventq_.deschedule(epoch_timer_);
    if (!ckpt_in_progress_ && !boundary_in_progress_)
        boundary_requested_ = false;
}

void
ThyNvmController::accessBlock(Addr paddr, bool is_write,
                              const std::uint8_t* wdata,
                              std::uint8_t* rdata, TrafficSource source,
                              std::function<void()> done)
{
    (void)source;
    panic_if(paddr % kBlockSize != 0, "unaligned controller access");
    panic_if(paddr + kBlockSize > cfg_.phys_size,
             "physical address out of range");
    if (is_write) {
        noteAppWrite();
        handleStore(paddr, wdata, std::move(done));
    } else {
        handleLoad(paddr, rdata, std::move(done));
    }
}

void
ThyNvmController::loadImage(Addr paddr, const void* buf, std::size_t len)
{
    panic_if(paddr + len > cfg_.phys_size, "image beyond physical space");
    nvm_dev_.store().write(layout_.homeAddr(paddr), buf, len);
}

void
ThyNvmController::forEachTouchedPhysRange(
    const std::function<void(Addr, std::size_t)>& fn) const
{
    // The Home region maps physical addresses at identity (home_base_
    // is 0); everything above it — checkpoint regions A/B, table
    // images, headers, CPU areas — is only software-visible through a
    // live BTT/PTT/overflow mapping, so reporting those tags covers
    // it. DRAM working copies are likewise only visible via tables.
    nvm_dev_.store().forEachTouchedRange(
        [&](Addr a, const std::uint8_t*, std::size_t len) {
            if (a < cfg_.phys_size)
                fn(a, std::min(len, cfg_.phys_size - a));
        });
    nvm_port_.forEachStagedWriteAddr([&](Addr a) {
        if (a < cfg_.phys_size)
            fn(a, kBlockSize);
    });
    btt_.forEachLive([&](std::size_t, const BttEntry& e) {
        fn(e.block_paddr, kBlockSize);
    });
    ptt_.forEachLive([&](std::size_t, const PttEntry& e) {
        fn(e.page_paddr, kPageSize);
    });
    for (const auto& [block_paddr, slot] : overflow_map_)
        fn(block_paddr, kBlockSize);
}

void
ThyNvmController::functionalRead(Addr paddr, void* buf,
                                 std::size_t len) const
{
    panic_if(paddr + len > cfg_.phys_size,
             "functional read beyond physical space");
    auto* out = static_cast<std::uint8_t*>(buf);
    std::size_t remaining = len;
    Addr addr = paddr;
    while (remaining > 0) {
        const Addr block = blockAlign(addr);
        const std::size_t in_block = addr - block;
        const std::size_t chunk =
            std::min(remaining, kBlockSize - in_block);
        VisibleLoc loc = visibleLoc(block);
        std::uint8_t tmp[kBlockSize];
        if (loc.in_dram)
            dram_port_.functionalRead(loc.addr, tmp, kBlockSize);
        else
            nvm_port_.functionalRead(loc.addr, tmp, kBlockSize);
        std::memcpy(out, tmp + in_block, chunk);
        out += chunk;
        addr += chunk;
        remaining -= chunk;
    }
}

void
ThyNvmController::persistCpuState(const std::vector<std::uint8_t>& blob)
{
    fatal_if(blob.size() + 8 > cfg_.cpu_state_max,
             "CPU state blob exceeds reserved backup space");
    cpu_state_ = blob;
}

void
ThyNvmController::requestEpochEnd()
{
    if (!started_ || halted_)
        return;
    boundary_requested_ = true;
    // Defer: the request may originate mid-way through a store path,
    // and the boundary must only run between fully applied accesses.
    // A still-pending attempt (necessarily at this same tick, since
    // time cannot advance past a queued event) covers this request too.
    if (!boundary_event_.scheduled())
        eventq_.schedule(boundary_event_, curTick());
}

// ---------------------------------------------------------------------
// Address resolution.
// ---------------------------------------------------------------------

ThyNvmController::VisibleLoc
ThyNvmController::visibleLoc(Addr block_paddr) const
{
    const Addr page = pageAlign(block_paddr);
    const std::size_t pidx = ptt_.lookup(page);
    if (pidx != Ptt::npos) {
        // Overlay blocks (cooperation diversion) take priority over the
        // DRAM page copy; the overlay may live in the block buffer or,
        // under table pressure, in the overflow buffer.
        const std::size_t bidx = btt_.lookup(block_paddr);
        if (bidx != Btt::npos) {
            const BttEntry& be = btt_.at(bidx);
            if (be.overlay && be.wactive == WactiveLoc::DramBuf)
                return {true, layout_.dramBlockSlot(bidx)};
        }
        auto ov = overflow_map_.find(block_paddr);
        if (ov != overflow_map_.end())
            return {true, layout_.dramOverflowSlot(ov->second)};
        const Addr offset = block_paddr - page;
        return {true, layout_.dramPageSlot(pidx) + offset};
    }

    auto ov = overflow_map_.find(block_paddr);
    if (ov != overflow_map_.end())
        return {true, layout_.dramOverflowSlot(ov->second)};

    const std::size_t bidx = btt_.lookup(block_paddr);
    if (bidx != Btt::npos) {
        const BttEntry& e = btt_.at(bidx);
        panic_if(e.absorbed, "absorbed BTT entry without a live page");
        if (e.wactive == WactiveLoc::Nvm) {
            return {false,
                    layout_.blockSlot(e.wactive_slot, bidx, block_paddr)};
        }
        if (e.wactive == WactiveLoc::DramBuf)
            return {true, layout_.dramBlockSlot(bidx)};
        if (e.pending) {
            return {false,
                    layout_.blockSlot(e.pending_slot, bidx, block_paddr)};
        }
        return {false, layout_.blockSlot(e.committed, bidx, block_paddr)};
    }

    return {false, layout_.homeAddr(block_paddr)};
}

std::function<void()>
ThyNvmController::afterLookup(std::function<void()> done)
{
    if (!done)
        return done;
    return [this, done = std::move(done)]() mutable {
        // Fires at most once; moving the callback into the queue avoids
        // a std::function copy on the load/store hot path.
        eventq_.scheduleIn(cfg_.table_lookup_latency, std::move(done));
    };
}

// ---------------------------------------------------------------------
// Device traffic helpers.
// ---------------------------------------------------------------------

void
ThyNvmController::sendNvmWrite(Addr addr, const std::uint8_t* data,
                               TrafficSource src,
                               std::function<void()> on_complete)
{
    nvm_port_.sendWrite(addr, data, src, std::move(on_complete));
}

void
ThyNvmController::sendDramWrite(Addr addr, const std::uint8_t* data,
                                TrafficSource src,
                                std::function<void()> on_complete)
{
    dram_port_.sendWrite(addr, data, src, std::move(on_complete));
}

void
ThyNvmController::sendTimedRead(bool dram, Addr addr, TrafficSource src,
                                std::function<void()> on_complete)
{
    (dram ? dram_port_ : nvm_port_).sendRead(addr, src,
                                             std::move(on_complete));
}

// ---------------------------------------------------------------------
// Load path.
// ---------------------------------------------------------------------

void
ThyNvmController::handleLoad(Addr block_paddr, std::uint8_t* rdata,
                             std::function<void()> done)
{
    ++loads_;
    VisibleLoc loc = visibleLoc(block_paddr);
    auto& port = loc.in_dram ? dram_port_ : nvm_port_;
    port.functionalRead(loc.addr, rdata, kBlockSize);

    port.sendRead(loc.addr, TrafficSource::DemandRead,
                  afterLookup(std::move(done)));
}

// ---------------------------------------------------------------------
// Store path.
// ---------------------------------------------------------------------

void
ThyNvmController::handleStore(Addr block_paddr, const std::uint8_t* wdata,
                              std::function<void()> done)
{
    ++stores_;
    const Addr page = pageAlign(block_paddr);
    const std::size_t pidx = ptt_.lookup(page);
    if (pidx != Ptt::npos) {
        PttEntry& pe = ptt_.at(pidx);
        ++pe.store_count;
        if (pe.wb_in_flight || (pe.demoting && ckpt_in_progress_)) {
            // §3.4 cooperation: the page cannot be modified in DRAM
            // while its checkpoint copy is in flight; divert the store
            // to block remapping.
            ++diverted_stores_;
            storeToBlock(block_paddr, wdata, true, std::move(done));
            return;
        }
        if (pe.demoting) {
            // The page is hot again before its demotion took effect.
            pe.demoting = false;
        }
        storeToPage(pidx, block_paddr, wdata, std::move(done));
        return;
    }

    // Blocks spilled to the overflow buffer coalesce there until the
    // checkpoint engine migrates them into the BTT.
    if (overflow_map_.count(block_paddr) != 0) {
        overflowStore(block_paddr, wdata, std::move(done));
        return;
    }

    if (cfg_.mode == CheckpointMode::PageOnly) {
        if (ptt_.full()) {
            overflowStore(block_paddr, wdata, std::move(done));
            return;
        }
        promotePage(page);
        const std::size_t new_pidx = ptt_.lookup(page);
        panic_if(new_pidx == Ptt::npos, "promotion failed");
        ++ptt_.at(new_pidx).store_count;
        storeToPage(new_pidx, block_paddr, wdata, std::move(done));
        return;
    }

    storeToBlock(block_paddr, wdata, false, std::move(done));
}

void
ThyNvmController::storeToPage(std::size_t pidx, Addr block_paddr,
                              const std::uint8_t* wdata,
                              std::function<void()> done)
{
    PttEntry& pe = ptt_.at(pidx);
    panic_if(pe.wb_in_flight, "direct store to a page mid-writeback");
    pe.dirty = true;
    ++page_stores_;
    const Addr slot =
        layout_.dramPageSlot(pidx) + (block_paddr - pe.page_paddr);

    dram_port_.sendWrite(slot, wdata, TrafficSource::CpuWriteback, {},
                         afterLookup(std::move(done)));
}

void
ThyNvmController::storeToBlock(Addr block_paddr, const std::uint8_t* wdata,
                               bool overlay, std::function<void()> done)
{
    std::size_t bidx = btt_.lookup(block_paddr);
    if (bidx == Btt::npos) {
        if (btt_.full()) {
            // Sparse blocks beyond BTT capacity spill to the overflow
            // buffer; dense pages reach the PTT through the normal
            // store-counter promotion path, never through pressure
            // (unconditional promotion would turn sparse workloads
            // into whole-page checkpoint thrash).
            overflowStore(block_paddr, wdata, std::move(done));
            return;
        }
        bidx = btt_.allocate(block_paddr);
        BttEntry& fresh = btt_.at(bidx);
        fresh.committed = CkptRegion::B; // untracked data lives at home
        fresh.overlay = overlay;
        // Approaching capacity: request an epoch boundary early (§4.3)
        // so entries recycle before the flush needs them. The epoch
        // model self-regulates: each flush only writes blocks dirtied
        // since the previous clean-without-invalidate flush.
        if (btt_.live() * 8 >= btt_.capacity() * 7) {
            if (!boundary_requested_)
                ++overflow_epochs_;
            requestEpochEnd();
        }
    }

    BttEntry& e = btt_.at(bidx);
    ++e.store_count;
    if (!overlay)
        ++page_store_agg_[pageAlign(block_paddr)];
    // A store revives an entry scheduled for reclamation.
    e.free_at_commit = false;

    if (overlay) {
        panic_if(!e.overlay && e.wactive == WactiveLoc::Nvm,
                 "diverted store collides with an NVM working copy");
        e.overlay = true;
        e.wactive = WactiveLoc::DramBuf;
        sendDramWrite(layout_.dramBlockSlot(bidx), wdata,
                      TrafficSource::CpuWriteback);
        if (done)
            eventq_.scheduleIn(cfg_.table_lookup_latency, std::move(done));
        return;
    }

    panic_if(e.absorbed, "non-overlay store to an absorbed entry");

    if (e.wactive == WactiveLoc::Nvm) {
        // Coalesce into the existing NVM working copy.
        sendNvmWrite(layout_.blockSlot(e.wactive_slot, bidx, block_paddr),
                     wdata, TrafficSource::CpuWriteback);
    } else if (e.wactive == WactiveLoc::DramBuf) {
        sendDramWrite(layout_.dramBlockSlot(bidx), wdata,
                      TrafficSource::CpuWriteback);
    } else if (e.pending || e.migrating_home) {
        // Both NVM slots are protected while a checkpoint of this entry
        // is in flight: stage the working copy in the DRAM block buffer
        // (paper §4.1).
        e.wactive = WactiveLoc::DramBuf;
        ++buffered_block_writes_;
        sendDramWrite(layout_.dramBlockSlot(bidx), wdata,
                      TrafficSource::CpuWriteback);
    } else {
        // Fast path: remap the working copy directly in NVM, in the
        // region opposite the committed copy.
        e.wactive = WactiveLoc::Nvm;
        e.wactive_slot = otherRegion(e.committed);
        ++remap_nvm_writes_;
        sendNvmWrite(layout_.blockSlot(e.wactive_slot, bidx, block_paddr),
                     wdata, TrafficSource::CpuWriteback);
    }
    if (done)
        eventq_.scheduleIn(cfg_.table_lookup_latency, std::move(done));
}

void
ThyNvmController::stallStore(Addr block_paddr, const std::uint8_t* wdata,
                             std::function<void()> done)
{
    ++stalled_store_count_;
    StalledStore s;
    s.block_paddr = block_paddr;
    std::memcpy(s.data.data(), wdata, kBlockSize);
    s.done = std::move(done);
    s.stalled_at = curTick();
    stalled_stores_.push_back(std::move(s));
}

void
ThyNvmController::retryStalledStores()
{
    auto stalled = std::move(stalled_stores_);
    stalled_stores_.clear();
    for (auto& s : stalled) {
        // The whole wait for the commit was exposed to these stores.
        ckpt_stall_time_ += static_cast<double>(curTick() - s.stalled_at);
        handleStore(s.block_paddr, s.data.data(), std::move(s.done));
    }
}

void
ThyNvmController::overflowStore(Addr block_paddr, const std::uint8_t* wdata,
                                std::function<void()> done)
{
    auto it = overflow_map_.find(block_paddr);
    std::size_t slot;
    if (it != overflow_map_.end()) {
        slot = it->second;
    } else {
        if (!boundary_in_progress_ &&
            overflow_map_.size() >= cfg_.overflow_stall_watermark) {
            // Back-pressure: pace execution by checkpoint recycling,
            // keeping the remaining capacity free for the flush.
            stallStore(block_paddr, wdata, std::move(done));
            requestEpochEnd();
            return;
        }
        if (overflow_free_.empty()) {
            // The overflow buffer is a capacity backstop; exhausting
            // it means the configuration is far too small for the
            // workload's per-epoch write footprint.
            fatal_if(boundary_in_progress_,
                     "overflow buffer exhausted during the checkpoint "
                     "flush; configure larger tables");
            stallStore(block_paddr, wdata, std::move(done));
            requestEpochEnd();
            return;
        }
        slot = overflow_free_.back();
        overflow_free_.pop_back();
        overflow_map_.emplace(block_paddr, slot);
        overflow_slot_addr_[slot] = block_paddr;
    }
    ++overflow_blocks_;
    overflow_dirty_[0][slot] = 1;
    overflow_dirty_[1][slot] = 1;
    // Overflowed stores still feed the locality heuristic: dense pages
    // must reach the PTT so the buffer can drain.
    ++page_store_agg_[pageAlign(block_paddr)];
    sendDramWrite(layout_.dramOverflowSlot(slot), wdata,
                  TrafficSource::CpuWriteback);
    if (done)
        eventq_.scheduleIn(cfg_.table_lookup_latency, std::move(done));
}

void
ThyNvmController::retireOverflowEntries()
{
    // Entries in the last *committed* log can go home: until this
    // checkpoint commits, recovery resolves them from that log, so the
    // Home bytes are dead; afterwards Home holds the same data the log
    // held, and the new bitmap excludes them.
    auto it = overflow_map_.begin();
    while (it != overflow_map_.end()) {
        const Addr block_paddr = it->first;
        const std::size_t slot = it->second;
        if (!overflow_in_last_log_[slot]) {
            ++it;
            continue;
        }
        panic_if(ptt_.lookup(pageAlign(block_paddr)) != Ptt::npos,
                 "unmerged overlay overflow at checkpoint start");
        const Addr src = layout_.dramOverflowSlot(slot);
        std::uint8_t data[kBlockSize];
        dram_port_.functionalRead(src, data, kBlockSize);
        sendTimedRead(true, src, TrafficSource::Migration);
        sendNvmWrite(layout_.homeAddr(block_paddr), data,
                     TrafficSource::Migration);

        overflow_in_last_log_[slot] = 0;
        overflow_slot_addr_[slot] = kInvalidAddr;
        overflow_free_.push_back(slot);
        it = overflow_map_.erase(it);
    }
}

void
ThyNvmController::stageOverflowLog()
{
    // Journal the blocks still stuck in the overflow buffer so the
    // commit covers them. Captured synchronously: no next-epoch store
    // can interleave within this event. Logging is incremental: only
    // slots whose data changed since their last write into *this*
    // backup area are rewritten; the live-slot bitmap is always
    // refreshed and defines validity at recovery.
    const Addr slot_base = layout_.backupSlot(backup_toggle_);
    auto& dirty = overflow_dirty_[backup_toggle_];

    std::vector<std::uint8_t> bitmap(
        roundUp((cfg_.overflow_entries + 7) / 8, kBlockSize), 0);
    std::vector<bool> meta_block_dirty(
        (cfg_.overflow_entries + 7) / 8 + 1, false);

    std::fill(overflow_in_last_log_.begin(),
              overflow_in_last_log_.end(), 0);
    for (const auto& [block_paddr, slot] : overflow_map_) {
        bitmap[slot / 8] |=
            static_cast<std::uint8_t>(1u << (slot % 8));
        overflow_in_last_log_[slot] = 1;
        if (!dirty[slot])
            continue;
        dirty[slot] = 0;
        const Addr src = layout_.dramOverflowSlot(slot);
        std::uint8_t data[kBlockSize];
        dram_port_.functionalRead(src, data, kBlockSize);
        sendTimedRead(true, src, TrafficSource::Checkpoint);
        sendNvmWrite(slot_base + layout_.overflowDataOffset() +
                         slot * kBlockSize,
                     data, TrafficSource::Checkpoint);
        meta_block_dirty[slot / 8] = true;
    }

    // Rewrite the address-table blocks that cover re-logged slots.
    for (std::size_t mb = 0; mb < meta_block_dirty.size(); ++mb) {
        if (!meta_block_dirty[mb])
            continue;
        std::uint8_t block[kBlockSize] = {};
        for (std::size_t j = 0; j < 8; ++j) {
            const std::size_t slot = mb * 8 + j;
            const Addr a = slot < cfg_.overflow_entries
                               ? overflow_slot_addr_[slot]
                               : kInvalidAddr;
            std::memcpy(block + j * 8, &a, 8);
        }
        sendNvmWrite(slot_base + layout_.overflowMetaOffset() +
                         mb * kBlockSize,
                     block, TrafficSource::Checkpoint);
    }

    stageMetadataWrite(slot_base + layout_.overflowBitmapOffset(),
                       bitmap);
    overflow_logged_ = overflow_map_.size();
    crashPoint("ckpt.overflow_logged");
}

// ---------------------------------------------------------------------
// Epoch boundary.
// ---------------------------------------------------------------------

void
ThyNvmController::tryBeginBoundary()
{
    if (!started_ || !boundary_requested_ || boundary_in_progress_ ||
        ckpt_in_progress_) {
        return;
    }
    beginBoundary();
}

void
ThyNvmController::beginBoundary()
{
    boundary_in_progress_ = true;
    boundary_requested_ = false;
    crashPoint("boundary.begin");
    if (epoch_timer_.scheduled())
        eventq_.deschedule(epoch_timer_);
    stall_window_start_ = curTick();
    if (flush_)
        flush_([this] { afterFlush(); });
    else
        afterFlush();
}

void
ThyNvmController::afterFlush()
{
    crashPoint("epoch.flush_done");
    schemeSwitchDecisions();
    ++epoch_;
    armEpochTimer();

    if (!cfg_.stop_the_world) {
        const Tick stalled = curTick() - stall_window_start_;
        ckpt_stall_time_ += static_cast<double>(stalled);
        flush_stall_time_ += static_cast<double>(stalled);
        if (resume_client_)
            resume_client_();
    }

    boundary_in_progress_ = false;
    startCheckpoint();
}

void
ThyNvmController::schemeSwitchDecisions()
{
    if (cfg_.mode == CheckpointMode::Dual) {
        markDemotions();
        // Promote pages whose block-remapped store count crossed the
        // threshold this epoch.
        for (const auto& [page, count] : page_store_agg_) {
            if (count < cfg_.promote_threshold)
                continue;
            if (ptt_.full())
                break;
            if (ptt_.lookup(page) != Ptt::npos)
                continue;
            promotePage(page);
        }
    } else if (cfg_.mode == CheckpointMode::PageOnly) {
        markDemotions();
    }
    // BlockOnly performs no switching.

    // Page hotness decays instead of resetting: epochs often end early
    // on table overflow (§4.3), and a hard reset would make the
    // promotion threshold — calibrated for full-length epochs — nearly
    // unreachable under exactly the workloads that shorten epochs.
    for (auto it = page_store_agg_.begin();
         it != page_store_agg_.end();) {
        it->second /= 2;
        if (it->second == 0)
            it = page_store_agg_.erase(it);
        else
            ++it;
    }
    btt_.forEachLive(
        [](std::size_t, BttEntry& e) { e.store_count = 0; });
    ptt_.forEachLive(
        [](std::size_t, PttEntry& e) { e.store_count = 0; });
}

void
ThyNvmController::markDemotions()
{
    // Pages written sparsely this epoch switch back to block remapping
    // (low spatial locality, paper §3.4). Idle pages keep their DRAM
    // residency — they cost nothing and preserve locality — unless the
    // PTT itself is under pressure, in which case clean idle pages are
    // evicted to make room for new promotions.
    std::size_t demotable = 0;
    ptt_.forEachLive([this, &demotable](std::size_t, PttEntry& e) {
        if (e.demoting || e.pending || !e.ever_committed)
            return;
        if (e.store_count > 0 && e.store_count < cfg_.demote_threshold) {
            // A dirty page can only leave once its image ends at Home:
            // if this epoch's writeback targets Region A, the demotion
            // waits for the next alternation.
            if (e.dirty && otherRegion(e.committed) != CkptRegion::B)
                return;
            e.demoting = true;
            ++demotions_;
        } else if (e.store_count == 0 && !e.dirty) {
            ++demotable;
        }
    });

    const std::size_t watermark = ptt_.capacity() * 7 / 8;
    if (ptt_.live() <= watermark || demotable == 0)
        return;
    std::size_t excess = ptt_.live() - watermark;
    ptt_.forEachLive([this, &excess](std::size_t, PttEntry& e) {
        if (excess == 0 || e.demoting || e.dirty || !e.ever_committed ||
            e.pending || e.store_count != 0) {
            return;
        }
        e.demoting = true;
        ++demotions_;
        --excess;
    });
}

void
ThyNvmController::promotePage(Addr page_paddr)
{
    const std::size_t pidx = ptt_.allocate(page_paddr);
    panic_if(pidx == Ptt::npos, "promotePage with a full PTT");
    PttEntry& pe = ptt_.at(pidx);
    pe.dirty = true; // force the first checkpoint of the page
    pe.ever_committed = false;
    ++promotions_;

    // Gather all blocks of the page into the DRAM page slot. The copies
    // are staged as Migration traffic; their latency is hidden by the
    // execution phase (§3.4).
    for (std::size_t blk = 0; blk < kBlocksPerPage; ++blk) {
        const Addr block_paddr = page_paddr + blk * kBlockSize;
        // Resolve the visible copy *before* absorbing the BTT entry.
        const std::size_t bidx = btt_.lookup(block_paddr);
        bool from_dram = false;
        Addr src_addr = layout_.homeAddr(block_paddr);
        auto ov = overflow_map_.find(block_paddr);
        if (ov != overflow_map_.end()) {
            panic_if(bidx != Btt::npos,
                     "block tracked by both BTT and overflow buffer");
            from_dram = true;
            src_addr = layout_.dramOverflowSlot(ov->second);
        } else if (bidx != Btt::npos) {
            const BttEntry& be = btt_.at(bidx);
            panic_if(be.overlay,
                     "overlay entry for a page not in the PTT");
            if (be.wactive == WactiveLoc::Nvm) {
                src_addr =
                    layout_.blockSlot(be.wactive_slot, bidx, block_paddr);
            } else if (be.wactive == WactiveLoc::DramBuf) {
                from_dram = true;
                src_addr = layout_.dramBlockSlot(bidx);
            } else if (be.pending) {
                src_addr =
                    layout_.blockSlot(be.pending_slot, bidx, block_paddr);
            } else {
                src_addr =
                    layout_.blockSlot(be.committed, bidx, block_paddr);
            }
        }

        std::uint8_t data[kBlockSize];
        if (from_dram)
            dram_port_.functionalRead(src_addr, data, kBlockSize);
        else
            nvm_port_.functionalRead(src_addr, data, kBlockSize);

        sendTimedRead(from_dram, src_addr, TrafficSource::Migration);
        sendDramWrite(layout_.dramPageSlot(pidx) + blk * kBlockSize, data,
                      TrafficSource::Migration);

        if (ov != overflow_map_.end()) {
            // The page image absorbed the overflow copy. The durable
            // overflow log of the last commit stays valid until the
            // page's first checkpoint commits.
            overflow_slot_addr_[ov->second] = kInvalidAddr;
            overflow_free_.push_back(ov->second);
            overflow_map_.erase(ov);
        }
        if (bidx != Btt::npos) {
            BttEntry& be = btt_.at(bidx);
            // The page image now carries the working copy; the entry
            // only remains to describe the *committed* version until
            // the page's first checkpoint commits.
            be.wactive = WactiveLoc::None;
            be.absorbed = true;
            be.free_at_commit = false;
            be.migrating_home = false;
            pe.absorbed_btt.push_back(bidx);
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint phases.
// ---------------------------------------------------------------------

void
ThyNvmController::startCheckpoint()
{
    panic_if(ckpt_in_progress_, "overlapping checkpoints");
    ckpt_in_progress_ = true;
    ckpt_start_tick_ = curTick();
    crashPoint("ckpt.start");

    retireOverflowEntries();
    drainBlockBuffers();
    reclaimIdleBttEntries();
    stageOverflowLog();
    persistBtt();
    startPageWritebacks();
}

void
ThyNvmController::drainBlockBuffers()
{
    btt_.forEachLive([this](std::size_t bidx, BttEntry& e) {
        if (e.overlay || e.absorbed)
            return;
        if (e.wactive == WactiveLoc::DramBuf) {
            // Write the staged working copy to its NVM slot; the data
            // snapshot is captured now, freeing the buffer slot for the
            // new epoch immediately.
            const CkptRegion target = otherRegion(e.committed);
            const Addr src = layout_.dramBlockSlot(bidx);
            std::uint8_t data[kBlockSize];
            dram_port_.functionalRead(src, data, kBlockSize);
            sendTimedRead(true, src, TrafficSource::Checkpoint);
            sendNvmWrite(layout_.blockSlot(target, bidx, e.block_paddr),
                         data, TrafficSource::Checkpoint);
            e.pending = true;
            e.pending_slot = target;
            e.wactive = WactiveLoc::None;
            ++drained_blocks_;
        } else if (e.wactive == WactiveLoc::Nvm) {
            // Block remapping: the working copy is already in NVM; it
            // becomes the checkpoint by persisting metadata only.
            e.pending = true;
            e.pending_slot = e.wactive_slot;
            e.wactive = WactiveLoc::None;
        }
        if (e.pending)
            crashPoint("ckpt.block_drained");
    });
}

void
ThyNvmController::reclaimIdleBttEntries()
{
    const bool gc =
        static_cast<double>(btt_.live()) /
            static_cast<double>(btt_.capacity()) >
        cfg_.btt_gc_watermark;
    std::vector<std::size_t> release_now;
    btt_.forEachLive([this, gc, &release_now](std::size_t bidx,
                                              BttEntry& e) {
        if (e.pending || e.wactive != WactiveLoc::None || e.overlay ||
            e.absorbed || e.free_at_commit || e.migrating_home) {
            return;
        }
        if (e.committed == CkptRegion::B) {
            // Data already lives at home, which is also what the last
            // durable metadata image resolves to once the entry is
            // gone; release immediately so the freed entry can absorb
            // overflow blocks in this very checkpoint.
            release_now.push_back(bidx);
        } else if (gc) {
            // Migrate the committed copy home so the entry can be
            // reclaimed; staged as Migration traffic.
            e.migrating_home = true;
            e.free_at_commit = true;
            ++home_migrations_;
            const Addr src =
                layout_.blockSlot(CkptRegion::A, bidx, e.block_paddr);
            std::uint8_t data[kBlockSize];
            nvm_port_.functionalRead(src, data, kBlockSize);
            sendTimedRead(false, src, TrafficSource::Migration);
            sendNvmWrite(layout_.homeAddr(e.block_paddr), data,
                         TrafficSource::Migration);
        }
    });
    for (std::size_t bidx : release_now)
        releaseBtt(bidx);
}

namespace {

/** Write @p rec into slot @p idx of a serialized table image. */
inline void
writeRec(std::vector<std::uint8_t>& image, std::size_t idx,
         const SerializedEntry& rec)
{
    std::memcpy(image.data() + idx * sizeof(rec), &rec, sizeof(rec));
}

} // namespace

void
ThyNvmController::resetImage(std::vector<std::uint8_t>& image,
                             std::size_t capacity)
{
    image.assign(capacity * AddressLayout::kEntryBytes, 0);
    SerializedEntry rec{};
    rec.tag = kInvalidAddr;
    for (std::size_t i = 0; i < capacity; ++i)
        writeRec(image, i, rec);
}

void
ThyNvmController::releaseBtt(std::size_t idx)
{
    btt_.release(idx);
    btt_released_.push_back(idx);
}

void
ThyNvmController::releasePtt(std::size_t idx)
{
    ptt_.release(idx);
    ptt_released_.push_back(idx);
}

const std::vector<std::uint8_t>&
ThyNvmController::bttImage()
{
    SerializedEntry invalid{};
    invalid.tag = kInvalidAddr;
    // Released slots first: a slot freed and reallocated since the last
    // image update is in both lists, and the live record must win.
    for (std::size_t idx : btt_released_)
        writeRec(btt_image_, idx, invalid);
    btt_released_.clear();

    btt_.forEachLive([this, &invalid](std::size_t i, BttEntry& e) {
        SerializedEntry rec = invalid;
        if (!e.overlay && !e.free_at_commit && !e.migrating_home) {
            bool skip = false;
            if (e.absorbed) {
                // Skip iff the owning page commits in this checkpoint;
                // the page takes over the durable mapping then.
                const std::size_t pidx =
                    ptt_.lookup(pageAlign(e.block_paddr));
                panic_if(pidx == Ptt::npos,
                         "absorbed entry without live page");
                const PttEntry& pe = ptt_.at(pidx);
                skip = pe.dirty || pe.pending;
            }
            if (!skip) {
                rec.tag = e.block_paddr;
                rec.region = static_cast<std::uint8_t>(
                    e.pending ? e.pending_slot : e.committed);
            }
        }
        writeRec(btt_image_, i, rec);
    });
    return btt_image_;
}

const std::vector<std::uint8_t>&
ThyNvmController::pttImage()
{
    SerializedEntry invalid{};
    invalid.tag = kInvalidAddr;
    for (std::size_t idx : ptt_released_)
        writeRec(ptt_image_, idx, invalid);
    ptt_released_.clear();

    ptt_.forEachLive([this, &invalid](std::size_t i, PttEntry& e) {
        SerializedEntry rec = invalid;
        if (!e.demoting && (e.pending || e.ever_committed)) {
            rec.tag = e.page_paddr;
            rec.region = static_cast<std::uint8_t>(
                e.pending ? e.pending_slot : e.committed);
        }
        writeRec(ptt_image_, i, rec);
    });
    return ptt_image_;
}

void
ThyNvmController::stageMetadataWrite(Addr nvm_addr,
                                     const std::vector<std::uint8_t>& bytes)
{
    panic_if(nvm_addr % kBlockSize != 0, "unaligned metadata write");
    metadata_ckpt_bytes_ += static_cast<double>(bytes.size());
    for (std::size_t off = 0; off < bytes.size(); off += kBlockSize) {
        std::uint8_t block[kBlockSize] = {};
        const std::size_t chunk =
            std::min(kBlockSize, bytes.size() - off);
        std::memcpy(block, bytes.data() + off, chunk);
        crashPoint("ckpt.meta_block");
        sendNvmWrite(nvm_addr + off, block, TrafficSource::Checkpoint);
    }
}

void
ThyNvmController::persistBtt()
{
    crashPoint("ckpt.persist_btt");
    const Addr dst =
        layout_.backupSlot(backup_toggle_) + layout_.bttAreaOffset();
    const std::vector<std::uint8_t>& img = bttImage();
    if (cfg_.debug_drop_btt_entry < btt_.capacity()) {
        // Fault injection (fuzzer self-test): persist the image as if
        // this entry's record never reached NVM. Recovery then resolves
        // the block to stale Home data — a silent consistency bug of
        // exactly the kind the oracle must catch.
        std::vector<std::uint8_t> broken = img;
        SerializedEntry invalid{};
        invalid.tag = kInvalidAddr;
        std::memcpy(broken.data() +
                        cfg_.debug_drop_btt_entry * sizeof(invalid),
                    &invalid, sizeof(invalid));
        stageMetadataWrite(dst, broken);
        return;
    }
    stageMetadataWrite(dst, img);
}

void
ThyNvmController::startPageWritebacks()
{
    wb_queue_.clear();
    wb_reads_left_.clear();
    wb_active_pages_ = 0;

    std::vector<std::size_t> dirty;
    ptt_.forEachLive([&dirty](std::size_t pidx, PttEntry& e) {
        if (e.dirty)
            dirty.push_back(pidx);
    });
    // Deterministic order regardless of hash-map iteration.
    std::sort(dirty.begin(), dirty.end());
    for (std::size_t pidx : dirty) {
        PttEntry& e = ptt_.at(pidx);
        e.pending = true;
        e.pending_slot = e.ever_committed ? otherRegion(e.committed)
                                          : CkptRegion::A;
        e.dirty = false;
        e.wb_in_flight = true;
        wb_queue_.push_back(pidx);
    }
    pumpPageWriteback();
}

void
ThyNvmController::pumpPageWriteback()
{
    while (wb_active_pages_ < cfg_.page_wb_parallelism &&
           !wb_queue_.empty()) {
        const std::size_t pidx = wb_queue_.front();
        wb_queue_.pop_front();
        ++wb_active_pages_;
        ++pages_written_back_;
        PttEntry& e = ptt_.at(pidx);
        wb_reads_left_[pidx] = kBlocksPerPage;
        const Addr page_paddr = e.page_paddr;
        for (std::size_t blk = 0; blk < kBlocksPerPage; ++blk) {
            const Addr src = layout_.dramPageSlot(pidx) + blk * kBlockSize;
            sendTimedRead(true, src, TrafficSource::Checkpoint,
                          [this, pidx, page_paddr, blk] {
                              pageBlockReadDone(pidx, page_paddr, blk);
                          });
        }
    }

    if (wb_active_pages_ == 0 && wb_queue_.empty()) {
        stageDemotionCopies();
        persistPttAndCpu();
    }
}

void
ThyNvmController::pageBlockReadDone(std::size_t pidx, Addr page_paddr,
                                    std::size_t blk)
{
    PttEntry& e = ptt_.at(pidx);
    panic_if(e.page_paddr != page_paddr, "page writeback raced a demotion");
    auto it = wb_reads_left_.find(pidx);
    panic_if(it == wb_reads_left_.end(), "stray page writeback read");
    // Capture the (frozen) page data and stage the NVM checkpoint write.
    const Addr src = layout_.dramPageSlot(pidx) + blk * kBlockSize;
    std::uint8_t data[kBlockSize];
    dram_port_.functionalRead(src, data, kBlockSize);
    const Addr dst =
        layout_.pageSlot(e.pending_slot, pidx, page_paddr) +
        blk * kBlockSize;
    sendNvmWrite(dst, data, TrafficSource::Checkpoint);

    if (--it->second == 0) {
        wb_reads_left_.erase(it);
        finishPageWriteback(pidx);
    }
}

void
ThyNvmController::finishPageWriteback(std::size_t pidx)
{
    crashPoint("ckpt.page_written");
    PttEntry& e = ptt_.at(pidx);
    e.wb_in_flight = false;
    mergeOverlays(pidx, e.page_paddr);
    --wb_active_pages_;
    pumpPageWriteback();
}

void
ThyNvmController::mergeOverlays(std::size_t pidx, Addr page_paddr)
{
    PttEntry& pe = ptt_.at(pidx);
    for (std::size_t blk = 0; blk < kBlocksPerPage; ++blk) {
        const Addr block_paddr = page_paddr + blk * kBlockSize;

        // Overlays staged in the block buffer.
        const std::size_t bidx = btt_.lookup(block_paddr);
        if (bidx != Btt::npos) {
            BttEntry& be = btt_.at(bidx);
            if (be.overlay && be.wactive == WactiveLoc::DramBuf) {
                const Addr src = layout_.dramBlockSlot(bidx);
                std::uint8_t data[kBlockSize];
                dram_port_.functionalRead(src, data, kBlockSize);
                sendTimedRead(true, src, TrafficSource::Migration);
                sendDramWrite(layout_.dramPageSlot(pidx) +
                                  blk * kBlockSize,
                              data, TrafficSource::Migration);
                pe.dirty = true;
                ++overlay_merges_;
                be.wactive = WactiveLoc::None;
                be.overlay = false;
                if (!be.absorbed)
                    releaseBtt(bidx);
            }
        }

        // Overlays that spilled to the overflow buffer.
        auto ov = overflow_map_.find(block_paddr);
        if (ov != overflow_map_.end()) {
            const Addr src = layout_.dramOverflowSlot(ov->second);
            std::uint8_t data[kBlockSize];
            dram_port_.functionalRead(src, data, kBlockSize);
            sendTimedRead(true, src, TrafficSource::Migration);
            sendDramWrite(layout_.dramPageSlot(pidx) + blk * kBlockSize,
                          data, TrafficSource::Migration);
            pe.dirty = true;
            ++overlay_merges_;
            overflow_slot_addr_[ov->second] = kInvalidAddr;
            overflow_free_.push_back(ov->second);
            overflow_map_.erase(ov);
        }
    }
}

void
ThyNvmController::stageDemotionCopies()
{
    ptt_.forEachLive([this](std::size_t pidx, PttEntry& e) {
        if (!e.demoting)
            return;
        if (e.pending) {
            // Dirtied in its final epoch: the regular page writeback
            // delivers the image to Home; no extra copy needed.
            panic_if(e.pending_slot != CkptRegion::B,
                     "demoting page checkpointing away from Home");
            return;
        }
        if (e.committed != CkptRegion::A)
            return;
        // Copy the committed image from Region A back to Home so the
        // page can leave the PTT at commit.
        for (std::size_t blk = 0; blk < kBlocksPerPage; ++blk) {
            const Addr src =
                layout_.ckptAPageSlot(pidx) + blk * kBlockSize;
            std::uint8_t data[kBlockSize];
            nvm_port_.functionalRead(src, data, kBlockSize);
            sendTimedRead(false, src, TrafficSource::Migration);
            sendNvmWrite(layout_.homeAddr(e.page_paddr) + blk * kBlockSize,
                         data, TrafficSource::Migration);
        }
    });
}

void
ThyNvmController::persistPttAndCpu()
{
    crashPoint("ckpt.persist_ptt");
    const Addr slot = layout_.backupSlot(backup_toggle_);
    stageMetadataWrite(slot + layout_.pttAreaOffset(), pttImage());

    // CPU architectural state: [u64 length][blob].
    std::vector<std::uint8_t> cpu(8 + cpu_state_.size());
    const std::uint64_t len = cpu_state_.size();
    std::memcpy(cpu.data(), &len, 8);
    std::memcpy(cpu.data() + 8, cpu_state_.data(), cpu_state_.size());
    stageMetadataWrite(slot + layout_.cpuAreaOffset(), cpu);

    // Step 5: wait for every NVM write staged so far to become durable,
    // then write the atomic commit header (paper Figure 6b). On a
    // multi-channel machine the image-staged edge is a cross-channel
    // barrier (commit gate phase 0).
    nvm_port_.notifyWhenWritesDurable(
        [this] { commitGate(0, [this] { writeCommitHeader(); }); });
}

void
ThyNvmController::writeCommitHeader()
{
    crashPoint("ckpt.pre_commit_header");
    BackupHeader hdr{};
    hdr.magic = kBackupMagic;
    hdr.epoch = epoch_ - 1; // the epoch this checkpoint captured
    hdr.cpu_len = cpu_state_.size();
    hdr.n_overflow = overflow_logged_;
    std::uint8_t block[kBlockSize] = {};
    std::memcpy(block, &hdr, sizeof(hdr));
    sendNvmWrite(layout_.backupSlot(backup_toggle_), block,
                 TrafficSource::Checkpoint);
    // Header-durable edge: cross-channel barrier (commit gate phase 1)
    // before the destructive flip to the new recovery image.
    nvm_port_.notifyWhenWritesDurable(
        [this] { commitGate(1, [this] { commitCheckpoint(); }); });
}

void
ThyNvmController::commitCheckpoint()
{
    crashPoint("ckpt.committed");
    // Flip block versions.
    std::vector<std::size_t> btt_release;
    btt_.forEachLive([&btt_release](std::size_t bidx, BttEntry& e) {
        if (e.pending) {
            e.committed = e.pending_slot;
            e.pending = false;
        }
        if (e.migrating_home) {
            // The durable metadata now maps this block to Home.
            e.committed = CkptRegion::B;
            e.migrating_home = false;
        }
        if (e.free_at_commit)
            btt_release.push_back(bidx);
    });
    for (std::size_t bidx : btt_release)
        releaseBtt(bidx);

    // Flip page versions; finalize demotions and absorbed entries.
    std::vector<std::size_t> ptt_release;
    ptt_.forEachLive([this, &ptt_release](std::size_t pidx, PttEntry& e) {
        if (e.pending) {
            e.committed = e.pending_slot;
            e.pending = false;
            e.ever_committed = true;
            for (std::size_t bidx : e.absorbed_btt) {
                BttEntry& be = btt_.at(bidx);
                panic_if(!be.absorbed, "absorbed list corrupt");
                // Any diverted store must have been merged back when
                // the page's writeback completed, before this commit.
                panic_if(be.overlay, "unmerged overlay at commit");
                releaseBtt(bidx);
            }
            e.absorbed_btt.clear();
        }
        if (e.demoting)
            ptt_release.push_back(pidx);
    });
    for (std::size_t pidx : ptt_release) {
        PttEntry& e = ptt_.at(pidx);
        const Addr page_paddr = e.page_paddr;
        // Convert any overlay entries of this page into plain
        // block-remapping entries: the block's durable home is now the
        // Home region, and the overlay data becomes the working copy.
        for (std::size_t blk = 0; blk < kBlocksPerPage; ++blk) {
            const std::size_t bidx =
                btt_.lookup(page_paddr + blk * kBlockSize);
            if (bidx == Btt::npos)
                continue;
            BttEntry& be = btt_.at(bidx);
            if (!be.overlay)
                continue;
            be.overlay = false;
            be.committed = CkptRegion::B;
            panic_if(be.wactive != WactiveLoc::DramBuf,
                     "overlay without buffered data");
        }
        releasePtt(pidx);
    }

    ++epochs_;
    noteEpochCommitted();
    ckpt_busy_time_ += static_cast<double>(curTick() - ckpt_start_tick_);
    ckpt_in_progress_ = false;
    backup_toggle_ ^= 1u;

    if (cfg_.stop_the_world) {
        const Tick stalled = curTick() - stall_window_start_;
        ckpt_stall_time_ += static_cast<double>(stalled);
        if (resume_client_)
            resume_client_();
    }

    retryStalledStores();
    tryBeginBoundary();
}

// ---------------------------------------------------------------------
// Crash and recovery.
// ---------------------------------------------------------------------

void
ThyNvmController::crash()
{
    // All volatile state is lost: DRAM contents, staged requests,
    // translation tables, checkpoint-engine state. The devices roll
    // back NVM writes that were not yet serviced.
    dram_port_.crash();
    nvm_port_.crash();
    dram_dev_.crash();
    nvm_dev_.crash();
    dram_dev_.store().clear();

    btt_.clear();
    ptt_.clear();
    resetImage(btt_image_, btt_.capacity());
    resetImage(ptt_image_, ptt_.capacity());
    btt_released_.clear();
    ptt_released_.clear();
    overflow_map_.clear();
    overflow_free_.clear();
    for (std::size_t i = cfg_.overflow_entries; i-- > 0;)
        overflow_free_.push_back(i);
    overflow_slot_addr_.assign(cfg_.overflow_entries, kInvalidAddr);
    overflow_dirty_[0].assign(cfg_.overflow_entries, 0);
    overflow_dirty_[1].assign(cfg_.overflow_entries, 0);
    overflow_in_last_log_.assign(cfg_.overflow_entries, 0);
    overflow_logged_ = 0;
    page_store_agg_.clear();
    wb_queue_.clear();
    wb_reads_left_.clear();
    wb_active_pages_ = 0;
    stalled_stores_.clear();
    cpu_state_.clear();

    ckpt_in_progress_ = false;
    boundary_requested_ = false;
    boundary_in_progress_ = false;
    started_ = false;
    halted_ = false;
    if (epoch_timer_.scheduled())
        eventq_.deschedule(epoch_timer_);
    if (boundary_event_.scheduled())
        eventq_.deschedule(boundary_event_);
}

void
ThyNvmController::recover(std::function<void()> done)
{
    // 1. Find the latest committed backup slot.
    int best_slot = -1;
    std::uint64_t best_epoch = 0;
    std::uint64_t cpu_len = 0;
    std::uint64_t n_overflow = 0;
    for (unsigned k = 0; k < 2; ++k) {
        BackupHeader hdr{};
        nvm_dev_.store().read(layout_.backupSlot(k), &hdr, sizeof(hdr));
        if (hdr.magic == kBackupMagic &&
            (best_slot < 0 || hdr.epoch > best_epoch)) {
            best_slot = static_cast<int>(k);
            best_epoch = hdr.epoch;
            cpu_len = hdr.cpu_len;
            n_overflow = hdr.n_overflow;
        }
    }

    auto outstanding = std::make_shared<std::uint64_t>(1);
    auto fire = std::make_shared<std::function<void()>>(std::move(done));
    auto dec = [this, outstanding, fire] {
        if (--*outstanding == 0) {
            ++recoveries_;
            auto cb = std::move(*fire);
            *fire = nullptr;
            if (cb)
                cb();
        }
    };
    auto track = [outstanding] { ++*outstanding; };

    if (best_slot < 0) {
        // No checkpoint was ever committed: pristine state, all data at
        // home. Nothing to rebuild.
        recovered_cpu_state_.clear();
        epoch_ = 1;
        backup_toggle_ = 0;
        eventq_.scheduleIn(0, dec);
        return;
    }

    const Addr slot = layout_.backupSlot(static_cast<unsigned>(best_slot));
    track();
    sendTimedRead(false, slot, TrafficSource::Recovery, dec);

    // 2. Reload the BTT.
    const Addr btt_off = layout_.bttAreaOffset();
    std::vector<std::uint8_t> btt_img(btt_.capacity() *
                                      AddressLayout::kEntryBytes);
    nvm_dev_.store().read(slot + btt_off, btt_img.data(), btt_img.size());
    for (std::size_t i = 0; i < btt_.capacity(); ++i) {
        SerializedEntry rec{};
        std::memcpy(&rec, btt_img.data() + i * sizeof(rec), sizeof(rec));
        if (rec.tag == kInvalidAddr)
            continue;
        const std::size_t idx = btt_.allocateAt(i, rec.tag);
        panic_if(idx != i, "BTT recovery index mismatch");
        btt_.at(i).committed = static_cast<CkptRegion>(rec.region);
    }
    for (Addr a = 0; a < btt_img.size(); a += kBlockSize) {
        track();
        sendTimedRead(false, slot + btt_off + a, TrafficSource::Recovery,
                      dec);
    }

    // 3. Reload the PTT and restore page images into DRAM.
    const Addr ptt_off = layout_.pttAreaOffset();
    std::vector<std::uint8_t> ptt_img(ptt_.capacity() *
                                      AddressLayout::kEntryBytes);
    nvm_dev_.store().read(slot + ptt_off, ptt_img.data(), ptt_img.size());
    for (std::size_t i = 0; i < ptt_.capacity(); ++i) {
        SerializedEntry rec{};
        std::memcpy(&rec, ptt_img.data() + i * sizeof(rec), sizeof(rec));
        if (rec.tag == kInvalidAddr)
            continue;
        const std::size_t idx = ptt_.allocateAt(i, rec.tag);
        panic_if(idx != i, "PTT recovery index mismatch");
        PttEntry& e = ptt_.at(i);
        e.committed = static_cast<CkptRegion>(rec.region);
        e.ever_committed = true;
        // Copy the committed page image into the DRAM working slot.
        for (std::size_t blk = 0; blk < kBlocksPerPage; ++blk) {
            const Addr src = layout_.pageSlot(e.committed, i, rec.tag) +
                             blk * kBlockSize;
            std::uint8_t data[kBlockSize];
            nvm_dev_.store().read(src, data, kBlockSize);
            track();
            sendTimedRead(false, src, TrafficSource::Recovery, dec);
            track();
            sendDramWrite(layout_.dramPageSlot(i) + blk * kBlockSize,
                          data, TrafficSource::Recovery, dec);
        }
    }
    for (Addr a = 0; a < ptt_img.size(); a += kBlockSize) {
        track();
        sendTimedRead(false, slot + ptt_off + a, TrafficSource::Recovery,
                      dec);
    }

    // 4. Reload the CPU architectural state.
    const Addr cpu_off = layout_.cpuAreaOffset();
    std::uint64_t stored_len = 0;
    nvm_dev_.store().read(slot + cpu_off, &stored_len, 8);
    panic_if(stored_len != cpu_len, "CPU state length mismatch");
    recovered_cpu_state_.resize(cpu_len);
    nvm_dev_.store().read(slot + cpu_off + 8, recovered_cpu_state_.data(),
                          cpu_len);
    for (Addr a = 0; a < roundUp(8 + cpu_len, kBlockSize);
         a += kBlockSize) {
        track();
        sendTimedRead(false, slot + cpu_off + a, TrafficSource::Recovery,
                      dec);
    }

    // 5. Rebuild the overflow buffer from the committed live-slot
    // bitmap and log. Live slots keep their indices; the freshly
    // chosen backup area holds their current data, so only the other
    // area needs rewriting on the next log.
    panic_if(n_overflow > cfg_.overflow_entries,
             "corrupt overflow log length");
    std::vector<std::uint8_t> bitmap(
        roundUp((cfg_.overflow_entries + 7) / 8, kBlockSize), 0);
    nvm_dev_.store().read(slot + layout_.overflowBitmapOffset(),
                          bitmap.data(), bitmap.size());
    for (Addr a = 0; a < bitmap.size(); a += kBlockSize) {
        track();
        sendTimedRead(false, slot + layout_.overflowBitmapOffset() + a,
                      TrafficSource::Recovery, dec);
    }
    overflow_free_.clear();
    std::uint64_t live = 0;
    for (std::size_t ovslot = cfg_.overflow_entries; ovslot-- > 0;) {
        if ((bitmap[ovslot / 8] & (1u << (ovslot % 8))) == 0) {
            overflow_free_.push_back(ovslot);
            continue;
        }
        ++live;
        Addr block_paddr = kInvalidAddr;
        nvm_dev_.store().read(slot + layout_.overflowMetaOffset() +
                                  ovslot * 8,
                              &block_paddr, 8);
        panic_if(block_paddr == kInvalidAddr,
                 "live overflow slot without an address");
        std::uint8_t data[kBlockSize];
        const Addr src = slot + layout_.overflowDataOffset() +
                         ovslot * kBlockSize;
        nvm_dev_.store().read(src, data, kBlockSize);
        track();
        sendTimedRead(false, src, TrafficSource::Recovery, dec);

        overflow_map_.emplace(block_paddr, ovslot);
        overflow_slot_addr_[ovslot] = block_paddr;
        overflow_in_last_log_[ovslot] = 1;
        overflow_dirty_[static_cast<unsigned>(best_slot)][ovslot] = 0;
        overflow_dirty_[static_cast<unsigned>(best_slot) ^ 1u][ovslot] =
            1;
        track();
        sendDramWrite(layout_.dramOverflowSlot(ovslot), data,
                      TrafficSource::Recovery, dec);
    }
    panic_if(live != n_overflow, "overflow bitmap/count mismatch");

    epoch_ = best_epoch + 1;
    backup_toggle_ = static_cast<unsigned>(best_slot) ^ 1u;
    eventq_.scheduleIn(0, dec); // balance the initial count of one
}

std::uint64_t
ThyNvmController::committedEpoch() const
{
    std::uint64_t best = 0;
    for (unsigned k = 0; k < 2; ++k) {
        BackupHeader hdr{};
        nvm_dev_.store().read(layout_.backupSlot(k), &hdr, sizeof(hdr));
        if (hdr.magic == kBackupMagic && hdr.epoch > best)
            best = hdr.epoch;
    }
    return best;
}

void
ThyNvmController::recoverTo(std::uint64_t max_epoch,
                            std::function<void()> done)
{
    for (unsigned k = 0; k < 2; ++k) {
        BackupHeader hdr{};
        nvm_dev_.store().read(layout_.backupSlot(k), &hdr, sizeof(hdr));
        if (hdr.magic != kBackupMagic || hdr.epoch <= max_epoch)
            continue;
        panic_if(hdr.epoch > max_epoch + 1,
                 "committed epoch beyond the recovery target + 1: the "
                 "cross-channel commit barrier should bound the spread");
        // This slot committed past the group minimum. The phase-1
        // barrier guarantees the checkpoint never flipped, so the other
        // slot still holds the target image intact. Invalidate the
        // stale header durably (functional store write so it cannot be
        // rolled back by a crash mid-recovery) and model the timed
        // write; otherwise a crash while the epoch is re-executed and
        // re-staged into this slot could resurrect the stale header
        // over a half-rewritten image.
        std::uint8_t zero_blk[kBlockSize] = {};
        nvm_dev_.store().write(layout_.backupSlot(k), zero_blk,
                               kBlockSize);
        sendNvmWrite(layout_.backupSlot(k), zero_blk,
                     TrafficSource::Recovery);
    }
    recover(std::move(done));
}

} // namespace thynvm
