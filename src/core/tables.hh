/**
 * @file
 * The Block Translation Table (BTT) and Page Translation Table (PTT).
 *
 * Each entry tracks one physical block/page that is "subject to
 * checkpointing" (updated in one of the last epochs, paper §4.1). The
 * implementation keeps richer per-entry state than the compressed
 * hardware encoding of Figure 5, but the information content matches:
 * version presence, visible location, checkpoint region of the last
 * committed copy, and the per-epoch store counter used for scheme
 * switching.
 *
 * Entry index doubles as slot index in the corresponding memory regions
 * (paper §4.2): BTT entry i owns Checkpoint-Region-A block slot i and
 * DRAM block-buffer slot i; PTT entry i owns Region-A page slot i and
 * DRAM page slot i.
 */

#ifndef THYNVM_CORE_TABLES_HH
#define THYNVM_CORE_TABLES_HH

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "core/layout.hh"

namespace thynvm {

/** Where the active working copy of a block currently lives. */
enum class WactiveLoc : std::uint8_t
{
    None,    //!< no working copy; last checkpoint is the visible version
    Nvm,     //!< remapped in-place in NVM (block remapping fast path)
    DramBuf, //!< staged in the DRAM block buffer (previous checkpoint
             //!< incomplete, or page-writeback cooperation diversion)
};

/**
 * BTT entry: one tracked cache block.
 */
struct BttEntry
{
    /** Block-aligned physical address; kInvalidAddr marks a free entry. */
    Addr block_paddr = kInvalidAddr;
    /** NVM region holding the last *committed* checkpoint copy. */
    CkptRegion committed = CkptRegion::B;
    /** A version from the last epoch is being committed right now. */
    bool pending = false;
    /** Region of the in-flight checkpoint copy (valid when pending). */
    CkptRegion pending_slot = CkptRegion::A;
    /** Working-copy location for the active epoch. */
    WactiveLoc wactive = WactiveLoc::None;
    /** Region of the NVM working copy (valid when wactive == Nvm). */
    CkptRegion wactive_slot = CkptRegion::A;
    /**
     * Page-overlay entry: holds a store diverted from a page whose
     * writeback is in flight (§3.4 cooperation). Never serialized; data
     * lives only in the DRAM block buffer until merged into the page.
     */
    bool overlay = false;
    /** Entry is reclaimed when the current checkpoint commits. */
    bool free_at_commit = false;
    /** A-to-Home migration of the committed copy is scheduled. */
    bool migrating_home = false;
    /** Entry data was absorbed into a promoted page. */
    bool absorbed = false;
    /** Stores to this block in the current epoch. */
    std::uint32_t store_count = 0;
};

/**
 * PTT entry: one tracked page, cached in the DRAM working region.
 */
struct PttEntry
{
    /** Page-aligned physical address; kInvalidAddr marks a free entry. */
    Addr page_paddr = kInvalidAddr;
    /** NVM region holding the last committed checkpoint of the page. */
    CkptRegion committed = CkptRegion::B;
    /**
     * False until the page's first checkpoint commits; before that the
     * recovery image of its data is still described by the BTT/Home.
     */
    bool ever_committed = false;
    /** A checkpoint copy of this page is being committed right now. */
    bool pending = false;
    /** Region of the in-flight checkpoint copy (valid when pending). */
    CkptRegion pending_slot = CkptRegion::A;
    /** DRAM working copy differs from the last committed image. */
    bool dirty = false;
    /** Checkpoint DMA is reading the DRAM page; stores are diverted. */
    bool wb_in_flight = false;
    /** Page leaves the PTT when the current checkpoint commits. */
    bool demoting = false;
    /** Stores to this page in the current epoch. */
    std::uint32_t store_count = 0;
    /** BTT entries absorbed at promotion, freed at first commit. */
    std::vector<std::size_t> absorbed_btt;
};

/**
 * Fixed-capacity translation table with address lookup and a free list.
 *
 * The free list is an intrusive doubly-linked stack over per-entry
 * next/prev indices, so allocate() and release() stay LIFO while
 * allocateAt() — recovery re-allocating entries at their original
 * indices — unlinks an arbitrary slot in O(1) instead of scanning.
 */
template <typename EntryT>
class TranslationTable
{
  public:
    explicit TranslationTable(std::size_t capacity)
        : entries_(capacity),
          free_next_(capacity, npos),
          free_prev_(capacity, npos),
          in_free_(capacity, 0)
    {
        // A table runs steady-state near capacity; pre-sizing the
        // address map avoids rehash churn as entries cycle.
        map_.reserve(capacity);
        resetFreeList();
    }

    /** Table capacity in entries. */
    std::size_t capacity() const { return entries_.size(); }
    /** Number of live entries. */
    std::size_t live() const { return map_.size(); }
    /** True if no free entry remains. */
    bool full() const { return free_count_ == 0; }

    /** Index of the entry tagged @p paddr, or npos. */
    std::size_t
    lookup(Addr paddr) const
    {
        auto it = map_.find(paddr);
        return it == map_.end() ? npos : it->second;
    }

    /**
     * Allocate the specific entry index @p idx for @p paddr. Used by
     * crash recovery, where slot addressing requires entries to return
     * to their original indices. The slot must be free.
     */
    std::size_t
    allocateAt(std::size_t idx, Addr paddr)
    {
        panic_if(map_.count(paddr) != 0, "duplicate table entry");
        EntryT& e = at(idx);
        panic_if(tagOf(e) != kInvalidAddr, "allocateAt on occupied slot");
        panic_if(!in_free_[idx], "slot missing from free list");
        removeFree(idx);
        e = EntryT{};
        tagOf(e) = paddr;
        map_.emplace(paddr, idx);
        return idx;
    }

    /** Allocate an entry for @p paddr. Returns npos if full. */
    std::size_t
    allocate(Addr paddr)
    {
        panic_if(map_.count(paddr) != 0, "duplicate table entry");
        if (free_count_ == 0)
            return npos;
        std::size_t idx = popFree();
        entries_[idx] = EntryT{};
        tagOf(entries_[idx]) = paddr;
        map_.emplace(paddr, idx);
        return idx;
    }

    /** Free entry @p idx. */
    void
    release(std::size_t idx)
    {
        EntryT& e = at(idx);
        panic_if(tagOf(e) == kInvalidAddr, "freeing a free entry");
        map_.erase(tagOf(e));
        e = EntryT{};
        pushFree(idx);
    }

    /** Entry at @p idx (must be a valid index). */
    EntryT&
    at(std::size_t idx)
    {
        panic_if(idx >= entries_.size(), "table index out of range");
        return entries_[idx];
    }

    const EntryT&
    at(std::size_t idx) const
    {
        panic_if(idx >= entries_.size(), "table index out of range");
        return entries_[idx];
    }

    /**
     * Invoke @p fn(index, entry) for every live entry, in ascending
     * index order. The order is load-bearing: checkpoint scheduling and
     * migration scans consume it, so it must not depend on hash-map
     * internals (bucket layout varies with the standard library and
     * with reserve()); index order keeps committed goldens portable.
     */
    template <typename Fn>
    void
    forEachLive(Fn&& fn)
    {
        for (std::size_t idx = 0; idx < entries_.size(); ++idx) {
            if (tagOf(entries_[idx]) != kInvalidAddr)
                fn(idx, entries_[idx]);
        }
    }

    /** Const overload for stats and touched-set enumeration paths. */
    template <typename Fn>
    void
    forEachLive(Fn&& fn) const
    {
        for (std::size_t idx = 0; idx < entries_.size(); ++idx) {
            if (tagOf(entries_[idx]) != kInvalidAddr)
                fn(idx, entries_[idx]);
        }
    }

    /** Drop all entries (volatile table lost at power failure). */
    void
    clear()
    {
        // Free entries are already EntryT{} (release() and the
        // allocators reset them), so only live entries need clearing —
        // O(live) instead of O(capacity).
        for (const auto& [paddr, idx] : map_)
            entries_[idx] = EntryT{};
        map_.clear();
        resetFreeList();
    }

    /** Invalid index sentinel. */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  private:
    static Addr& tagOf(BttEntry& e) { return e.block_paddr; }
    static Addr& tagOf(PttEntry& e) { return e.page_paddr; }
    static Addr tagOf(const BttEntry& e) { return e.block_paddr; }
    static Addr tagOf(const PttEntry& e) { return e.page_paddr; }

    void
    pushFree(std::size_t idx)
    {
        free_prev_[idx] = npos;
        free_next_[idx] = free_head_;
        if (free_head_ != npos)
            free_prev_[free_head_] = idx;
        free_head_ = idx;
        in_free_[idx] = 1;
        ++free_count_;
    }

    std::size_t
    popFree()
    {
        const std::size_t idx = free_head_;
        free_head_ = free_next_[idx];
        if (free_head_ != npos)
            free_prev_[free_head_] = npos;
        in_free_[idx] = 0;
        --free_count_;
        return idx;
    }

    void
    removeFree(std::size_t idx)
    {
        if (free_prev_[idx] == npos)
            free_head_ = free_next_[idx];
        else
            free_next_[free_prev_[idx]] = free_next_[idx];
        if (free_next_[idx] != npos)
            free_prev_[free_next_[idx]] = free_prev_[idx];
        in_free_[idx] = 0;
        --free_count_;
    }

    /**
     * Rebuild the free stack with ascending pop order (0, 1, 2, ...),
     * matching the allocation order simulations have always seen.
     */
    void
    resetFreeList()
    {
        free_head_ = npos;
        free_count_ = 0;
        for (std::size_t i = entries_.size(); i-- > 0;)
            pushFree(i);
    }

    std::vector<EntryT> entries_;
    std::unordered_map<Addr, std::size_t> map_;
    std::vector<std::size_t> free_next_;
    std::vector<std::size_t> free_prev_;
    std::vector<std::uint8_t> in_free_;
    std::size_t free_head_ = npos;
    std::size_t free_count_ = 0;
};

using Btt = TranslationTable<BttEntry>;
using Ptt = TranslationTable<PttEntry>;

/**
 * Fixed 16-byte on-NVM encoding of a committed table entry: the tag
 * address and the checkpoint region of the committed copy. Only
 * committed mappings are persisted; working-copy locations are volatile
 * and never needed for recovery.
 */
struct SerializedEntry
{
    std::uint64_t tag;
    std::uint8_t region;
    std::uint8_t pad[7];
};
static_assert(sizeof(SerializedEntry) == AddressLayout::kEntryBytes);

} // namespace thynvm

#endif // THYNVM_CORE_TABLES_HH
