/**
 * @file
 * ThyNVM hardware address-space layout (paper §4.1, Figure 4).
 *
 * The memory controller's hardware address space is larger than the
 * software-visible physical space. NVM holds the Home region (which
 * doubles as Checkpoint Region B), Checkpoint Region A, and the
 * BTT/PTT/CPU backup region; DRAM holds the Working Data region (page
 * slots) plus a small block-buffer region used when block-remapped
 * writes must be staged while the previous checkpoint is incomplete.
 *
 * The offset of a table entry equals the offset of its slot within the
 * corresponding region (paper §4.2), so slot addresses are pure index
 * arithmetic.
 */

#ifndef THYNVM_CORE_LAYOUT_HH
#define THYNVM_CORE_LAYOUT_HH

#include "common/logging.hh"
#include "core/config.hh"

namespace thynvm {

/** Which NVM checkpoint region a slot lives in. */
enum class CkptRegion : std::uint8_t
{
    A = 0, //!< dedicated checkpoint region
    B = 1, //!< the Home region doubling as a checkpoint region
};

/** The region opposite @p r. */
constexpr CkptRegion
otherRegion(CkptRegion r)
{
    return r == CkptRegion::A ? CkptRegion::B : CkptRegion::A;
}

/**
 * Address calculator for the ThyNVM hardware address space.
 */
class AddressLayout
{
  public:
    explicit AddressLayout(const ThyNvmConfig& cfg) : cfg_(cfg)
    {
        fatal_if(cfg.phys_size % kPageSize != 0,
                 "physical size must be page aligned");
        home_base_ = 0;
        ckpt_a_pages_base_ = cfg.phys_size;
        ckpt_a_blocks_base_ =
            ckpt_a_pages_base_ + cfg.ptt_entries * kPageSize;
        backup_base_ = ckpt_a_blocks_base_ + cfg.btt_entries * kBlockSize;
        btt_area_off_ = kBlockSize; // header occupies the first block
        ptt_area_off_ = btt_area_off_ +
                        roundUp(cfg.btt_entries * kEntryBytes, kBlockSize);
        cpu_area_off_ = ptt_area_off_ +
                        roundUp(cfg.ptt_entries * kEntryBytes, kBlockSize);
        ovf_bitmap_off_ = cpu_area_off_ +
                          roundUp(cfg.cpu_state_max, kBlockSize);
        ovf_meta_off_ = ovf_bitmap_off_ +
                        roundUp((cfg.overflow_entries + 7) / 8,
                                kBlockSize);
        ovf_data_off_ = ovf_meta_off_ +
                        roundUp(cfg.overflow_entries * 8, kBlockSize);
        backup_slot_size_ =
            ovf_data_off_ + cfg.overflow_entries * kBlockSize;
        nvm_size_ = backup_base_ + 2 * backup_slot_size_;

        dram_pages_base_ = 0;
        dram_blocks_base_ = cfg.ptt_entries * kPageSize;
        dram_overflow_base_ =
            dram_blocks_base_ + cfg.btt_entries * kBlockSize;
        dram_size_ = dram_overflow_base_ +
                     cfg.overflow_entries * kBlockSize;
    }

    /** Serialized bytes per BTT/PTT entry in the backup region. */
    static constexpr std::size_t kEntryBytes = 16;

    /** Total NVM device capacity required. */
    std::size_t nvmSize() const { return nvm_size_; }
    /** Total DRAM device capacity required. */
    std::size_t dramSize() const { return dram_size_; }

    /** Home-region NVM address of physical address @p paddr. */
    Addr
    homeAddr(Addr paddr) const
    {
        panic_if(paddr >= cfg_.phys_size, "paddr out of range");
        return home_base_ + paddr;
    }

    /** NVM address of the Region A page slot for PTT entry @p idx. */
    Addr
    ckptAPageSlot(std::size_t idx) const
    {
        panic_if(idx >= cfg_.ptt_entries, "ptt index out of range");
        return ckpt_a_pages_base_ + idx * kPageSize;
    }

    /** NVM address of the Region A block slot for BTT entry @p idx. */
    Addr
    ckptABlockSlot(std::size_t idx) const
    {
        panic_if(idx >= cfg_.btt_entries, "btt index out of range");
        return ckpt_a_blocks_base_ + idx * kBlockSize;
    }

    /** DRAM address of the Working-region page slot @p idx. */
    Addr
    dramPageSlot(std::size_t idx) const
    {
        panic_if(idx >= cfg_.ptt_entries, "ptt index out of range");
        return dram_pages_base_ + idx * kPageSize;
    }

    /** DRAM address of the block-buffer slot for BTT entry @p idx. */
    Addr
    dramBlockSlot(std::size_t idx) const
    {
        panic_if(idx >= cfg_.btt_entries, "btt index out of range");
        return dram_blocks_base_ + idx * kBlockSize;
    }

    /** NVM base address of backup slot @p k (0 or 1). */
    Addr
    backupSlot(unsigned k) const
    {
        panic_if(k > 1, "backup slot index out of range");
        return backup_base_ + k * backup_slot_size_;
    }

    /** Size of one backup slot in bytes (block-aligned). */
    std::size_t backupSlotSize() const { return backup_slot_size_; }

    /** Block-aligned offset of the BTT image within a backup slot. */
    Addr bttAreaOffset() const { return btt_area_off_; }
    /** Block-aligned offset of the PTT image within a backup slot. */
    Addr pttAreaOffset() const { return ptt_area_off_; }
    /** Block-aligned offset of the CPU state within a backup slot. */
    Addr cpuAreaOffset() const { return cpu_area_off_; }
    /** Offset of the overflow live-slot bitmap within a backup slot. */
    Addr overflowBitmapOffset() const { return ovf_bitmap_off_; }
    /** Offset of the overflow-log address table within a backup slot. */
    Addr overflowMetaOffset() const { return ovf_meta_off_; }
    /** Offset of the overflow-log data blocks within a backup slot. */
    Addr overflowDataOffset() const { return ovf_data_off_; }

    /** DRAM address of overflow-buffer slot @p idx. */
    Addr
    dramOverflowSlot(std::size_t idx) const
    {
        panic_if(idx >= cfg_.overflow_entries,
                 "overflow index out of range");
        return dram_overflow_base_ + idx * kBlockSize;
    }

    /**
     * NVM block-slot address for BTT entry @p idx in region @p r;
     * region B is the block's home location.
     */
    Addr
    blockSlot(CkptRegion r, std::size_t idx, Addr paddr) const
    {
        return r == CkptRegion::A ? ckptABlockSlot(idx)
                                  : homeAddr(blockAlign(paddr));
    }

    /**
     * NVM page-slot address for PTT entry @p idx in region @p r;
     * region B is the page's home location.
     */
    Addr
    pageSlot(CkptRegion r, std::size_t idx, Addr page_paddr) const
    {
        panic_if(page_paddr % kPageSize != 0, "unaligned page address");
        return r == CkptRegion::A ? ckptAPageSlot(idx)
                                  : homeAddr(page_paddr);
    }

  private:
    ThyNvmConfig cfg_;
    Addr home_base_;
    Addr ckpt_a_pages_base_;
    Addr ckpt_a_blocks_base_;
    Addr backup_base_;
    Addr btt_area_off_;
    Addr ptt_area_off_;
    Addr cpu_area_off_;
    Addr ovf_bitmap_off_;
    Addr ovf_meta_off_;
    Addr ovf_data_off_;
    std::size_t backup_slot_size_;
    std::size_t nvm_size_;
    Addr dram_pages_base_;
    Addr dram_blocks_base_;
    Addr dram_overflow_base_;
    std::size_t dram_size_;
};

} // namespace thynvm

#endif // THYNVM_CORE_LAYOUT_HH
