/**
 * @file
 * The ThyNVM memory controller: software-transparent crash consistency
 * via dual-scheme checkpointing (paper §3-§4).
 *
 * Overview of the implemented protocol (see DESIGN.md §3):
 *  - Epochs end on a timer or on table overflow. The CPU is paused only
 *    for the volatile-state flush; execution of the next epoch overlaps
 *    the checkpoint phase (Figure 3b), except in stop-the-world mode.
 *  - Sparse updates use block remapping: the working copy is written
 *    directly to the NVM checkpoint region opposite the committed copy,
 *    so checkpointing them persists metadata only. When both NVM slots
 *    are protected (a checkpoint is in flight for the entry), writes are
 *    staged in the DRAM block buffer and drained at the next checkpoint.
 *  - Dense updates use page writeback: pages are cached in the DRAM
 *    working region and dirty pages are DMA-copied to the alternate NVM
 *    page slot during checkpointing. Stores hitting a page whose DMA is
 *    in flight are diverted to BTT overlay entries (§3.4 cooperation)
 *    and merged back once the page copy completes.
 *  - Scheme switching is decided at epoch boundaries from per-epoch
 *    store counters with the paper's thresholds (22 up / 16 down).
 *  - A checkpoint commits by persisting the tables and CPU state into
 *    one of two backup slots and then, after the NVM write queue fully
 *    drains, writing a header block that atomically designates the new
 *    recovery image.
 *
 * Central safety invariant: no write ever targets an NVM location that
 * the latest durable metadata designates as part of the recovery image.
 */

#ifndef THYNVM_CORE_THYNVM_CONTROLLER_HH
#define THYNVM_CORE_THYNVM_CONTROLLER_HH

#include <deque>
#include <optional>

#include "core/config.hh"
#include "core/tables.hh"
#include "mem/controller.hh"
#include "mem/port.hh"

namespace thynvm {

/**
 * Hybrid DRAM+NVM persistent-memory controller with transparent
 * checkpointing.
 */
class ThyNvmController : public MemController
{
  public:
    /**
     * @param eq event queue.
     * @param name instance name.
     * @param cfg controller configuration.
     * @param nvm_store optional surviving NVM contents (crash recovery
     *        reconstructs a controller around the old store).
     */
    ThyNvmController(EventQueue& eq, std::string name,
                     const ThyNvmConfig& cfg,
                     std::shared_ptr<BackingStore> nvm_store = nullptr);

    // MemController interface.
    std::size_t physCapacity() const override { return cfg_.phys_size; }
    void accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata, TrafficSource source,
                     std::function<void()> done) override;

    /**
     * Never fast: loads read the visible copy through a device port and
     * stores mutate BTT/PTT state and stage timed NVM/DRAM traffic (or
     * stall on table overflow) — the issue tick is always
     * timing-visible.
     */
    Tick
    tryAccessFast(Addr, bool, const std::uint8_t*, std::uint8_t*,
                  TrafficSource) final
    {
        return kNoFastPath;
    }
    void functionalRead(Addr paddr, void* buf,
                        std::size_t len) const override;
    void forEachTouchedPhysRange(
        const std::function<void(Addr, std::size_t)>& fn) const override;
    void loadImage(Addr paddr, const void* buf, std::size_t len) override;
    void start() override;
    void crash() override;
    void recover(std::function<void()> done) override;
    void recoverTo(std::uint64_t max_epoch,
                   std::function<void()> done) override;
    std::uint64_t committedEpoch() const override;
    void halt() override;
    void persistCpuState(const std::vector<std::uint8_t>& blob) override;
    const std::vector<std::uint8_t>& recoveredCpuState() const override
    {
        return recovered_cpu_state_;
    }

    /** Register the callback that resumes the paused CPU after flush. */
    void setResumeClient(std::function<void()> cb)
    {
        resume_client_ = std::move(cb);
    }

    MemDevice* nvmDevice() override { return &nvm_dev_; }
    MemDevice* dramDevice() override { return &dram_dev_; }
    std::shared_ptr<BackingStore> nvmStoreHandle() override
    {
        return nvm_dev_.storeHandle();
    }

    /** Controller configuration. */
    const ThyNvmConfig& config() const { return cfg_; }
    /** DRAM device (working data region + block buffer). */
    MemDevice& dram() { return dram_dev_; }
    /** NVM device (home, checkpoint regions, backup region). */
    MemDevice& nvm() { return nvm_dev_; }
    /** Address-space layout calculator. */
    const AddressLayout& layout() const { return layout_; }
    /** Identifier of the currently executing epoch. */
    std::uint64_t currentEpoch() const { return epoch_; }
    /** True while a checkpoint phase is in progress. */
    bool checkpointInProgress() const { return ckpt_in_progress_; }
    /** Live BTT entries. */
    std::size_t bttLive() const { return btt_.live(); }
    /** Live PTT entries. */
    std::size_t pttLive() const { return ptt_.live(); }

    /**
     * Request an early epoch boundary (explicit persistence interface,
     * paper §6; also used on table overflow).
     */
    void requestEpochEnd() override;

  private:
    // ------------------------------------------------------------------
    // Load/store paths.
    // ------------------------------------------------------------------
    void handleStore(Addr block_paddr, const std::uint8_t* wdata,
                     std::function<void()> done);
    void handleLoad(Addr block_paddr, std::uint8_t* rdata,
                    std::function<void()> done);
    /** Store into a PTT-managed page's DRAM working copy. */
    void storeToPage(std::size_t pidx, Addr block_paddr,
                     const std::uint8_t* wdata, std::function<void()> done);
    /**
     * Store via the BTT (block remapping). @p overlay diverts the store
     * to the DRAM block buffer on behalf of a checkpointing page.
     */
    void storeToBlock(Addr block_paddr, const std::uint8_t* wdata,
                      bool overlay, std::function<void()> done);
    /** Stall a store until table space frees at the next commit. */
    void stallStore(Addr block_paddr, const std::uint8_t* wdata,
                    std::function<void()> done);
    void retryStalledStores();

    /**
     * Stage a store in the DRAM overflow buffer when neither table can
     * track its block. Overflow blocks are checkpointed journal-style
     * into the backup slot and drained into the BTT as entries free up.
     */
    void overflowStore(Addr block_paddr, const std::uint8_t* wdata,
                       std::function<void()> done);
    /**
     * Retire overflow blocks that appear in the last *committed*
     * overflow log by writing their data to the Home region. Safe
     * before this checkpoint commits: recovery would use the old log
     * copy, which overrides Home. Bounds the buffer at roughly one
     * epoch's sparse write footprint.
     */
    void retireOverflowEntries();
    /** Capture and stage this checkpoint's overflow log. */
    void stageOverflowLog();

    /** Resolved location of the software-visible copy of a block. */
    struct VisibleLoc
    {
        bool in_dram;
        Addr addr;
    };
    VisibleLoc visibleLoc(Addr block_paddr) const;

    /** Wrap a completion callback with the table lookup latency. */
    std::function<void()> afterLookup(std::function<void()> done);

    // ------------------------------------------------------------------
    // Epoch and checkpoint machinery.
    // ------------------------------------------------------------------
    void armEpochTimer();
    void tryBeginBoundary();
    void beginBoundary();
    void afterFlush();
    void schemeSwitchDecisions();
    void promotePage(Addr page_paddr);
    void markDemotions();
    void startCheckpoint();
    /** Step 1: drain DRAM-buffered block working copies into NVM. */
    void drainBlockBuffers();
    /** Mark idle entries for reclamation; stage A-to-Home migrations. */
    void reclaimIdleBttEntries();
    /** Step 2: persist the BTT into the open backup slot. */
    void persistBtt();
    /** Step 3: DMA dirty pages from DRAM to their NVM slots. */
    void startPageWritebacks();
    void pumpPageWriteback();
    void pageBlockReadDone(std::size_t pidx, Addr page_paddr,
                           std::size_t blk);
    void finishPageWriteback(std::size_t pidx);
    /** Stage demotion copies (Region A to Home) for demoting pages. */
    void stageDemotionCopies();
    /** Step 4: persist the PTT and the CPU state blob. */
    void persistPttAndCpu();
    /** Step 5: after full NVM drain, write the atomic commit header. */
    void writeCommitHeader();
    void commitCheckpoint();
    /** Merge overlay entries of @p page_paddr back into the DRAM page. */
    void mergeOverlays(std::size_t pidx, Addr page_paddr);

    /**
     * Bring the persistent full-capacity table images up to date and
     * return them. Slots released since the last call are re-invalidated
     * and every live entry's record is recomputed (a record can change
     * without its entry changing — an absorbed block's record depends on
     * the owning page's state), so each call costs O(live + released)
     * instead of O(capacity). The returned image is byte-identical to a
     * full serialization.
     */
    const std::vector<std::uint8_t>& bttImage();
    const std::vector<std::uint8_t>& pttImage();
    /** Reset @p image to all-invalid records for @p capacity slots. */
    static void resetImage(std::vector<std::uint8_t>& image,
                           std::size_t capacity);
    /** Release a table entry, recording the slot for re-invalidation. */
    void releaseBtt(std::size_t idx);
    void releasePtt(std::size_t idx);
    /** Stage @p bytes as block writes at @p nvm_addr (Checkpoint). */
    void stageMetadataWrite(Addr nvm_addr,
                            const std::vector<std::uint8_t>& bytes);

    // Convenience wrappers for staged device traffic.
    void sendNvmWrite(Addr addr, const std::uint8_t* data,
                      TrafficSource src,
                      std::function<void()> on_complete = {});
    void sendDramWrite(Addr addr, const std::uint8_t* data,
                       TrafficSource src,
                       std::function<void()> on_complete = {});
    void sendTimedRead(bool dram, Addr addr, TrafficSource src,
                       std::function<void()> on_complete = {});

    // ------------------------------------------------------------------
    // Members.
    // ------------------------------------------------------------------
    ThyNvmConfig cfg_;
    AddressLayout layout_;
    MemDevice dram_dev_;
    MemDevice nvm_dev_;
    DevicePort dram_port_;
    DevicePort nvm_port_;
    Btt btt_;
    Ptt ptt_;

    /** Persistent serialized table images (see bttImage()/pttImage()). */
    std::vector<std::uint8_t> btt_image_;
    std::vector<std::uint8_t> ptt_image_;
    /** Slots released since the image was last brought up to date. */
    std::vector<std::size_t> btt_released_;
    std::vector<std::size_t> ptt_released_;

    /** Per-epoch BTT-path store counts aggregated by page. */
    std::unordered_map<Addr, std::uint32_t> page_store_agg_;

    std::uint64_t epoch_ = 1;
    bool started_ = false;
    bool halted_ = false;
    bool ckpt_in_progress_ = false;
    bool boundary_requested_ = false;
    bool boundary_in_progress_ = false;
    unsigned backup_toggle_ = 0;
    Tick ckpt_start_tick_ = 0;
    Tick stall_window_start_ = 0;
    Event epoch_timer_;
    /** Deferred boundary attempt; coalesces repeated requestEpochEnd(). */
    Event boundary_event_;

    std::function<void()> resume_client_;
    std::vector<std::uint8_t> cpu_state_;
    std::vector<std::uint8_t> recovered_cpu_state_;

    // Page writeback engine state.
    std::deque<std::size_t> wb_queue_;
    unsigned wb_active_pages_ = 0;
    std::unordered_map<std::size_t, unsigned> wb_reads_left_;

    /** Overflow buffer: block physical address -> DRAM slot index. */
    std::unordered_map<Addr, std::size_t> overflow_map_;
    std::vector<std::size_t> overflow_free_;
    /** Reverse mapping, slot index -> block physical address. */
    std::vector<Addr> overflow_slot_addr_;
    /**
     * Incremental logging state: per backup area, whether a slot's
     * data changed since it was last logged into that area. Avoids
     * rewriting unchanged overflow entries every checkpoint.
     */
    std::vector<std::uint8_t> overflow_dirty_[2];
    /** Slots that are members of the last committed overflow log. */
    std::vector<std::uint8_t> overflow_in_last_log_;
    /** Live entries at the time of the current staged log. */
    std::uint64_t overflow_logged_ = 0;

    // Stores stalled on table overflow.
    struct StalledStore
    {
        Addr block_paddr;
        std::array<std::uint8_t, kBlockSize> data;
        std::function<void()> done;
        Tick stalled_at;
    };
    std::deque<StalledStore> stalled_stores_;

    // Statistics.
    stats::Scalar loads_;
    stats::Scalar stores_;
    stats::Scalar remap_nvm_writes_;
    stats::Scalar buffered_block_writes_;
    stats::Scalar page_stores_;
    stats::Scalar diverted_stores_;
    stats::Scalar overlay_merges_;
    stats::Scalar drained_blocks_;
    stats::Scalar metadata_ckpt_bytes_;
    stats::Scalar pages_written_back_;
    stats::Scalar promotions_;
    stats::Scalar demotions_;
    stats::Scalar home_migrations_;
    stats::Scalar overflow_epochs_;
    stats::Scalar overflow_blocks_;
    stats::Scalar stalled_store_count_;
    stats::Scalar flush_stall_time_;
};

} // namespace thynvm

#endif // THYNVM_CORE_THYNVM_CONTROLLER_HH
