/**
 * @file
 * Configuration of the ThyNVM memory controller.
 *
 * Defaults reproduce the paper's evaluation setup (Table 2 and §5.1):
 * 16 MB DRAM working region, 2048 BTT / 4096 PTT entries, 10 ms epochs,
 * scheme-switch thresholds 22 (block to page) and 16 (page to block).
 */

#ifndef THYNVM_CORE_CONFIG_HH
#define THYNVM_CORE_CONFIG_HH

#include <cstddef>

#include "common/types.hh"

namespace thynvm {

/**
 * Checkpointing-scheme selection, for the granularity ablation
 * (DESIGN.md §5 item 2 / Table 1 of the paper).
 */
enum class CheckpointMode
{
    Dual,      //!< adaptive block remapping + page writeback (ThyNVM)
    BlockOnly, //!< uniform cache-block granularity (no page scheme)
    PageOnly,  //!< uniform page granularity (promote on first store)
};

/**
 * Static parameters of a ThyNVM controller instance.
 */
struct ThyNvmConfig
{
    /** Software-visible physical address space in bytes. */
    std::size_t phys_size = 32u << 20;
    /** Number of block translation table entries. */
    std::size_t btt_entries = 2048;
    /** Number of page translation table entries (= DRAM pages). */
    std::size_t ptt_entries = 4096;
    /** Epoch length (execution-phase timer). */
    Tick epoch_length = 10 * kMillisecond;
    /** Stores per page per epoch at/above which a page is promoted. */
    unsigned promote_threshold = 22;
    /** Stores per page per epoch below which a page is demoted. */
    unsigned demote_threshold = 16;
    /** BTT/PTT lookup latency (Table 2: 3 ns). */
    Tick table_lookup_latency = 3 * kNanosecond;
    /** Scheme selection mode (Dual = full ThyNVM). */
    CheckpointMode mode = CheckpointMode::Dual;
    /**
     * When true, execution stalls for the whole checkpoint phase
     * instead of overlapping with the next epoch (Figure 3a ablation).
     */
    bool stop_the_world = false;
    /**
     * BTT occupancy fraction above which idle entries whose committed
     * copy sits in Checkpoint Region A are migrated back to the Home
     * region during checkpointing (frees entries at commit).
     */
    double btt_gc_watermark = 0.75;
    /** Maximum pages concurrently being written back (DMA depth). */
    unsigned page_wb_parallelism = 4;
    /** Reserved bytes for the CPU architectural-state blob. */
    std::size_t cpu_state_max = 16384;
    /**
     * Capacity of the overflow buffer: sparse blocks that fit neither
     * table (e.g., during an epoch-boundary cache flush that dirties
     * more distinct blocks than the BTT can track) are staged in DRAM
     * and checkpointed journal-style with the commit. Implementation
     * extension over the paper, which leaves table overflow at "end
     * the epoch early" (§4.3); see DESIGN.md.
     */
    std::size_t overflow_entries = 49152;
    /**
     * Execution-time stores stall (and force an epoch boundary) once
     * this many overflow entries are live, reserving the remaining
     * capacity for the epoch-boundary cache flush. This is the paper's
     * overflow back-pressure (§4.3): execution is paced by checkpoint
     * recycling when the write footprint outruns the tables.
     */
    std::size_t overflow_stall_watermark = 8192;

    /**
     * Fault injection for fuzzer self-tests: if set to a valid BTT
     * index, persistBtt() stages that entry's serialized record as
     * invalid (as if its persist were skipped), so recovery silently
     * resolves the block to stale Home data. The default (npos) is a
     * correct controller. Never set outside tests.
     */
    std::size_t debug_drop_btt_entry = static_cast<std::size_t>(-1);

    /** DRAM working-region bytes (pages + block buffer + overflow). */
    std::size_t
    dramSize() const
    {
        return ptt_entries * kPageSize +
               (btt_entries + overflow_entries) * kBlockSize;
    }
};

} // namespace thynvm

#endif // THYNVM_CORE_CONFIG_HH
