/**
 * @file
 * Joint deterministic simulation of several Systems on the sharded
 * event kernel (sim/shard.hh, DESIGN.md §8).
 *
 * The unit of shard affinity is the memory channel: every component
 * that exchanges same-tick calls (CPU + caches + controller front-end
 * on the core shard; each channel's controller + devices on its own
 * shard) steps together. A single-channel System is one shard; a
 * multi-channel System registers one core shard plus one shard per
 * channel, linked with the cross-channel device latency as lookahead
 * (harness/channel_group.hh). A SystemGroup co-schedules all shards
 * across host worker threads with checkpoint-epoch boundaries as
 * global barriers, and guarantees that every System executes exactly
 * the event sequence of its one-worker kernel run — dumpStats()
 * output and final ticks are byte-identical for any thread count.
 *
 * This is the host-parallelism substrate for the fuzz campaign, the
 * benchmark grids, and the THYNVM_SIM_THREADS escape hatch — which,
 * combined with the channels knob, parallelizes a *single* run.
 */

#ifndef THYNVM_HARNESS_SHARD_GROUP_HH
#define THYNVM_HARNESS_SHARD_GROUP_HH

#include <cstdint>
#include <vector>

#include "harness/system.hh"
#include "sim/shard.hh"

namespace thynvm {

/**
 * A set of Systems stepped together on the sharded kernel.
 */
class SystemGroup
{
  public:
    SystemGroup() = default;
    SystemGroup(const SystemGroup&) = delete;
    SystemGroup& operator=(const SystemGroup&) = delete;

    /**
     * Add a system (not owned; must outlive the group). Shard ids are
     * assigned at run() time, when each system registers its core
     * shard and any per-channel shards with the kernel.
     * @return the system's index in the group.
     */
    unsigned add(System& sys);

    /**
     * Run every system until it finishes, its queue drains, or
     * @p limit is reached (same per-system semantics as System::run
     * with an absolute limit). Windows are aligned to the smallest
     * configured epoch length so checkpoint-epoch boundaries are
     * global barriers.
     *
     * @param threads worker count; 1 is the serial reference
     *        schedule, and any count produces byte-identical
     *        per-system stats.
     * @param limit absolute tick bound per system (kMaxTick: none).
     * @param pool optional shared ThreadPool for the workers.
     * @return the latest tick reached by any system.
     */
    Tick run(unsigned threads, Tick limit = kMaxTick,
             ThreadPool* pool = nullptr);

    /** Number of systems added. */
    unsigned size() const
    {
        return static_cast<unsigned>(systems_.size());
    }

    /** Windows executed by the last run(). */
    std::uint64_t windowsExecuted() const { return windows_; }

    /** Cross-shard messages delivered by the last run(). */
    std::uint64_t messagesDelivered() const { return messages_; }

  private:
    std::vector<System*> systems_;
    std::uint64_t windows_ = 0;
    std::uint64_t messages_ = 0;
};

} // namespace thynvm

#endif // THYNVM_HARNESS_SHARD_GROUP_HH
