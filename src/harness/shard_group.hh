/**
 * @file
 * Joint deterministic simulation of several Systems on the sharded
 * event kernel (sim/shard.hh, DESIGN.md §8).
 *
 * Each System occupies one shard: the machine is a single memory
 * channel today, and every component of a channel (CPU, caches,
 * controller, devices) exchanges same-tick calls, so the channel is
 * the unit of shard affinity. A SystemGroup co-schedules N such
 * shards across host worker threads with checkpoint-epoch boundaries
 * as global barriers, and guarantees that every System executes
 * exactly the event sequence of its solo serial run — dumpStats()
 * output and final ticks are byte-identical for any thread count.
 *
 * This is the host-parallelism substrate for the fuzz campaign, the
 * benchmark grids, and the THYNVM_SIM_THREADS escape hatch; when the
 * multi-channel topology lands, channels of one machine become
 * multiple shards of one System here, linked with the minimum
 * cross-channel device latency as lookahead.
 */

#ifndef THYNVM_HARNESS_SHARD_GROUP_HH
#define THYNVM_HARNESS_SHARD_GROUP_HH

#include <cstdint>
#include <vector>

#include "harness/system.hh"
#include "sim/shard.hh"

namespace thynvm {

/**
 * A set of Systems stepped together on the sharded kernel.
 */
class SystemGroup
{
  public:
    SystemGroup() = default;
    SystemGroup(const SystemGroup&) = delete;
    SystemGroup& operator=(const SystemGroup&) = delete;

    /**
     * Add a system (not owned; must outlive the group). Tags every
     * component of the system with its shard id.
     * @return the shard id.
     */
    unsigned add(System& sys);

    /**
     * Run every system until it finishes, its queue drains, or
     * @p limit is reached (same per-system semantics as System::run
     * with an absolute limit). Windows are aligned to the smallest
     * configured epoch length so checkpoint-epoch boundaries are
     * global barriers.
     *
     * @param threads worker count; 1 is the serial reference
     *        schedule, and any count produces byte-identical
     *        per-system stats.
     * @param limit absolute tick bound per system (kMaxTick: none).
     * @param pool optional shared ThreadPool for the workers.
     * @return the latest tick reached by any system.
     */
    Tick run(unsigned threads, Tick limit = kMaxTick,
             ThreadPool* pool = nullptr);

    /** Number of systems added. */
    unsigned size() const
    {
        return static_cast<unsigned>(systems_.size());
    }

    /** Windows executed by the last run(). */
    std::uint64_t windowsExecuted() const { return windows_; }

  private:
    std::vector<System*> systems_;
    std::uint64_t windows_ = 0;
};

} // namespace thynvm

#endif // THYNVM_HARNESS_SHARD_GROUP_HH
