/**
 * @file
 * Multi-channel group implementation: per-channel controller
 * construction, the functional mirror, the cross-channel epoch
 * coordinator, and kernel shard wiring.
 */

#include "harness/channel_group.hh"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "baselines/icl.hh"
#include "baselines/ideal.hh"
#include "baselines/incremental.hh"
#include "baselines/journal.hh"
#include "baselines/shadow.hh"
#include "core/layout.hh"
#include "core/thynvm_controller.hh"
#include "sim/shard.hh"

namespace thynvm {

namespace {

/**
 * Mailbox bound for core<->channel links: one kernel window can carry
 * a whole cache-flush wave of writebacks (every dirty block of a 2 MB
 * L3 plus the upper levels), so size from the cache capacity with
 * ample slack rather than the kernel default.
 */
constexpr std::size_t kLinkCapacity = std::size_t{1} << 16;

/**
 * Global ThyNVM table sizes scaled down to one channel's share. Each
 * channel serves 1/C of the physical space, so it gets 1/C of the
 * translation-table, overflow, and back-pressure budget (rounded up).
 */
ThyNvmConfig
scaledThyNvm(const ChannelGroup::Config& cfg, std::size_t ch_phys)
{
    const unsigned c = cfg.channels;
    ThyNvmConfig tc = cfg.thynvm;
    tc.phys_size = ch_phys;
    tc.epoch_length = cfg.epoch_length;
    tc.btt_entries = (cfg.thynvm.btt_entries + c - 1) / c;
    tc.ptt_entries = (cfg.thynvm.ptt_entries + c - 1) / c;
    tc.overflow_entries = (cfg.thynvm.overflow_entries + c - 1) / c;
    tc.overflow_stall_watermark =
        (cfg.thynvm.overflow_stall_watermark + c - 1) / c;
    return tc;
}

JournalConfig
scaledJournal(const ChannelGroup::Config& cfg, std::size_t ch_phys)
{
    const unsigned c = cfg.channels;
    JournalConfig jc;
    jc.phys_size = ch_phys;
    jc.epoch_length = cfg.epoch_length;
    jc.table_entries =
        (cfg.thynvm.btt_entries + cfg.thynvm.ptt_entries + c - 1) / c;
    // The headroom above the soft trigger is deliberately *not*
    // divided: the coordinated flush barrier adds cross-channel skew
    // between a channel's boundary request and the actual flush, and
    // the headroom is what absorbs writes arriving in that window.
    return jc;
}

ShadowConfig
scaledShadow(const ChannelGroup::Config& cfg, std::size_t ch_phys)
{
    ShadowConfig sc;
    sc.phys_size = ch_phys;
    sc.epoch_length = cfg.epoch_length;
    sc.dram_size = scaledThyNvm(cfg, ch_phys).dramSize();
    return sc;
}

IclConfig
scaledIcl(const ChannelGroup::Config& cfg, std::size_t ch_phys)
{
    IclConfig ic;
    ic.phys_size = ch_phys;
    ic.epoch_length = cfg.epoch_length;
    return ic;
}

IncrementalConfig
scaledIncremental(const ChannelGroup::Config& cfg, std::size_t ch_phys)
{
    const unsigned c = cfg.channels;
    IncrementalConfig nc;
    nc.phys_size = ch_phys;
    nc.epoch_length = cfg.epoch_length;
    nc.table_entries =
        (cfg.thynvm.btt_entries + cfg.thynvm.ptt_entries + c - 1) / c;
    // Headroom undivided, same rationale as the journal above.
    return nc;
}

/** Durable NVM bytes one channel of the configured kind needs. */
std::size_t
sliceSize(const ChannelGroup::Config& cfg, std::size_t ch_phys)
{
    switch (cfg.kind) {
      case SystemKind::IdealDram:
      case SystemKind::IdealNvm:
        return IdealController::nvmCapacity(ch_phys);
      case SystemKind::Journal:
        return JournalController::nvmCapacity(scaledJournal(cfg, ch_phys));
      case SystemKind::Shadow:
        return ShadowController::nvmCapacity(scaledShadow(cfg, ch_phys));
      case SystemKind::ThyNvm:
        return AddressLayout(scaledThyNvm(cfg, ch_phys)).nvmSize();
      case SystemKind::Icl:
        return IclController::nvmCapacity(scaledIcl(cfg, ch_phys));
      case SystemKind::Incremental:
        return IncrementalController::nvmCapacity(
            scaledIncremental(cfg, ch_phys));
    }
    return 0;
}

} // namespace

ChannelGroup::ChannelGroup(EventQueue& eq, std::string name,
                           const Config& cfg,
                           std::shared_ptr<BackingStore> nvm_store)
    : MemController(eq, std::move(name)), cfg_(cfg), il_(cfg.channels)
{
    fatal_if(cfg_.channels < 2,
             "a channel group needs at least 2 channels (got %u); "
             "single-channel systems use the controller directly",
             cfg_.channels);
    const std::size_t ch_phys = il_.localCapacity(cfg_.phys_size);
    fatal_if(ch_phys % kPageSize != 0,
             "per-channel space %zu not page-aligned; phys_size must be "
             "a multiple of %u channels x %zu bytes",
             ch_phys, cfg_.channels, kPageSize);

    // One root store backs the whole group; each channel owns a view
    // slice, so crash()/reboot hand around a single surviving handle
    // exactly like the single-channel case.
    const std::size_t slice = sliceSize(cfg_, ch_phys);
    const std::size_t total = slice * cfg_.channels;
    if (nvm_store == nullptr) {
        root_store_ = std::make_shared<BackingStore>(total);
    } else {
        fatal_if(nvm_store->size() != total,
                 "surviving NVM image is %zu bytes, topology needs %zu",
                 nvm_store->size(), total);
        root_store_ = std::move(nvm_store);
    }

    mirror_ = PagedBytes(cfg_.phys_size);

    chs_.reserve(cfg_.channels);
    for (unsigned i = 0; i < cfg_.channels; ++i) {
        auto ch = std::make_unique<Channel>();
        ch->eq = std::make_unique<EventQueue>();
        auto view = std::make_shared<BackingStore>(root_store_, i * slice,
                                                   slice);
        ch->ctrl = buildChannel(*ch->eq, i, ch_phys, std::move(view));
        chs_.push_back(std::move(ch));
    }

    // Wire the coordinator adapters (checkpointing kinds only; the
    // ideal controllers never initiate boundaries).
    if (cfg_.kind != SystemKind::IdealDram &&
        cfg_.kind != SystemKind::IdealNvm) {
        for (unsigned i = 0; i < cfg_.channels; ++i) {
            MemController& ctrl = *chs_[i]->ctrl;
            ctrl.setFlushClient([this, i](std::function<void()> run) {
                Channel& ch = *chs_[i];
                panic_if(static_cast<bool>(ch.flush_run),
                         "channel flush requested twice without release");
                ch.flush_run = std::move(run);
                const std::uint64_t seq = ++ch.boundary_seq;
                postToCore(i, [this, seq] { flushRequested(seq); });
            });
            ctrl.setCommitGate(
                [this, i](unsigned phase, std::function<void()> resume) {
                    Channel& ch = *chs_[i];
                    panic_if(static_cast<bool>(ch.gate_resume),
                             "channel commit gate entered twice");
                    ch.gate_resume = std::move(resume);
                    postToCore(i, [this, phase] { gateArrived(phase); });
                });
        }
    }
}

ChannelGroup::~ChannelGroup() = default;

std::unique_ptr<MemController>
ChannelGroup::buildChannel(EventQueue& eq, unsigned i, std::size_t ch_phys,
                           std::shared_ptr<BackingStore> slice)
{
    const std::string cname = name() + ".ch" + std::to_string(i);
    // Per-channel crash-site prefixes keep every site single-shard so
    // hit ordinals stay deterministic under parallel stepping.
    const std::string prefix = "ch" + std::to_string(i) + ".";
    auto resume = [this, i] { postToCore(i, [this] { resumeArrived(); }); };

    std::unique_ptr<MemController> ctrl;
    switch (cfg_.kind) {
      case SystemKind::IdealDram:
        ctrl = std::make_unique<IdealController>(eq, cname, ch_phys, true,
                                                 std::move(slice));
        break;
      case SystemKind::IdealNvm:
        ctrl = std::make_unique<IdealController>(eq, cname, ch_phys, false,
                                                 std::move(slice));
        break;
      case SystemKind::Journal: {
        auto c = std::make_unique<JournalController>(
            eq, cname, scaledJournal(cfg_, ch_phys), std::move(slice));
        c->setResumeClient(resume);
        ctrl = std::move(c);
        break;
      }
      case SystemKind::Shadow: {
        auto c = std::make_unique<ShadowController>(
            eq, cname, scaledShadow(cfg_, ch_phys), std::move(slice));
        c->setResumeClient(resume);
        ctrl = std::move(c);
        break;
      }
      case SystemKind::ThyNvm: {
        auto c = std::make_unique<ThyNvmController>(
            eq, cname, scaledThyNvm(cfg_, ch_phys), std::move(slice));
        c->setResumeClient(resume);
        ctrl = std::move(c);
        break;
      }
      case SystemKind::Icl: {
        auto c = std::make_unique<IclController>(
            eq, cname, scaledIcl(cfg_, ch_phys), std::move(slice));
        c->setResumeClient(resume);
        ctrl = std::move(c);
        break;
      }
      case SystemKind::Incremental: {
        auto c = std::make_unique<IncrementalController>(
            eq, cname, scaledIncremental(cfg_, ch_phys),
            std::move(slice));
        c->setResumeClient(resume);
        ctrl = std::move(c);
        break;
      }
    }
    ctrl->setCrashSitePrefix(prefix);
    return ctrl;
}

// ----------------------------------------------------------------------
// Cross-shard message helpers.
// ----------------------------------------------------------------------

void
ChannelGroup::postToChannel(unsigned i, std::function<void()> fn)
{
    panic_if(kernel_ == nullptr,
             "cross-channel message with no kernel attached");
    // The delivery tick is a pure function of simulated state: the
    // kernel's admission check is against the target's window, which
    // EOT planning keeps at or below any tick this shard can send at,
    // and posting retreats this shard's own bound (sim/shard.hh).
    const Tick when = curTick() + kChannelLookahead;
    kernel_->post(core_shard_, chs_[i]->shard, when, std::move(fn));
}

void
ChannelGroup::postToCore(unsigned i, std::function<void()> fn)
{
    panic_if(kernel_ == nullptr,
             "cross-channel message with no kernel attached");
    const Tick when = chs_[i]->eq->now() + kChannelLookahead;
    kernel_->post(chs_[i]->shard, core_shard_, when, std::move(fn));
}

// ----------------------------------------------------------------------
// MemController interface.
// ----------------------------------------------------------------------

void
ChannelGroup::accessBlock(Addr paddr, bool is_write,
                          const std::uint8_t* wdata, std::uint8_t* rdata,
                          TrafficSource source, std::function<void()> done)
{
    panic_if(paddr % kBlockSize != 0, "unaligned channel-group access");
    panic_if(paddr + kBlockSize > cfg_.phys_size,
             "physical address out of range");
    const unsigned ch = il_.channelOf(paddr);
    const Addr local = il_.localAddr(paddr);
    auto reply = std::make_shared<std::function<void()>>(std::move(done));

    if (is_write) {
        // Functional: apply to the mirror at call time (the accessBlock
        // contract). Timed: ship the data by value across the
        // interconnect; the channel controller applies it to its own
        // state and acknowledges.
        mirror_.write(paddr, wdata, kBlockSize);
        // Group-level write-amplification denominator. (The per-epoch
        // histogram stays unsampled at group level: the media counters
        // live on the channel shards and may not be quiescent at the
        // commit barrier; each channel samples its own on its shard.)
        noteAppWrite();
        auto data = std::make_shared<std::array<std::uint8_t, kBlockSize>>();
        std::memcpy(data->data(), wdata, kBlockSize);
        postToChannel(ch, [this, ch, local, source, data, reply] {
            chs_[ch]->ctrl->accessBlock(
                local, true, data->data(), nullptr, source,
                [this, ch, reply] {
                    postToCore(ch, [reply] {
                        if (*reply)
                            (*reply)();
                    });
                });
        });
    } else {
        // Functional fill from the mirror, synchronously; the timed
        // read runs channel-side into a scratch buffer purely for its
        // latency and traffic accounting.
        mirror_.read(paddr, rdata, kBlockSize);
        postToChannel(ch, [this, ch, local, source, reply] {
            auto rbuf =
                std::make_shared<std::array<std::uint8_t, kBlockSize>>();
            chs_[ch]->ctrl->accessBlock(
                local, false, nullptr, rbuf->data(), source,
                [this, ch, rbuf, reply] {
                    postToCore(ch, [reply] {
                        if (*reply)
                            (*reply)();
                    });
                });
        });
    }
}

void
ChannelGroup::persistCpuState(const std::vector<std::uint8_t>& blob)
{
    // Called by the flush client at the coordinated boundary; the
    // coordinator ships it to channel 0 with the flush release.
    cpu_blob_ = blob;
}

void
ChannelGroup::functionalRead(Addr paddr, void* buf, std::size_t len) const
{
    panic_if(paddr + len > cfg_.phys_size,
             "functional read beyond physical space");
    mirror_.read(paddr, buf, len);
}

void
ChannelGroup::forEachTouchedPhysRange(
    const std::function<void(Addr, std::size_t)>& fn) const
{
    // functionalRead resolves purely from the core-side mirror, so the
    // mirror's touched pages are exactly the group's touched set.
    mirror_.forEachTouchedRange(
        0, cfg_.phys_size,
        [&](Addr a, const std::uint8_t*, std::size_t len) { fn(a, len); });
}

void
ChannelGroup::loadImage(Addr paddr, const void* buf, std::size_t len)
{
    panic_if(paddr + len > cfg_.phys_size, "image beyond physical space");
    mirror_.write(paddr, buf, len);
    // Forward block-granular chunks to the owning channels' durable
    // home locations (zero-time, pre-simulation — direct calls).
    const auto* p = static_cast<const std::uint8_t*>(buf);
    Addr a = paddr;
    std::size_t remaining = len;
    while (remaining > 0) {
        const Addr block = blockAlign(a);
        const std::size_t in_block = a - block;
        const std::size_t chunk =
            std::min(remaining, kBlockSize - in_block);
        chs_[il_.channelOf(a)]->ctrl->loadImage(il_.localAddr(a), p, chunk);
        p += chunk;
        a += chunk;
        remaining -= chunk;
    }
}

void
ChannelGroup::start()
{
    halt_posted_ = false;
    for (auto& ch : chs_)
        ch->ctrl->start();
}

void
ChannelGroup::crash()
{
    for (auto& ch : chs_) {
        ch->ctrl->crash();
        ch->eq->clear();
        ch->flush_run = nullptr;
        ch->gate_resume = nullptr;
        ch->boundary_seq = 0;
    }
    flush_arrived_ = 0;
    flush_seq_ = 0;
    gate_arrived_ = 0;
    gate_phase_ = -1;
    resume_arrived_ = 0;
    halt_posted_ = false;
    cpu_blob_.clear();
}

std::uint64_t
ChannelGroup::committedEpoch() const
{
    std::uint64_t mn = kMaxTick;
    for (const auto& ch : chs_)
        mn = std::min(mn, ch->ctrl->committedEpoch());
    return mn;
}

void
ChannelGroup::recover(std::function<void()> done)
{
    // Probe the durable commit state of every channel. The two-phase
    // commit barrier bounds the spread to one epoch; more means the
    // protocol was violated.
    std::uint64_t mn = kMaxTick, mx = 0;
    for (const auto& ch : chs_) {
        const std::uint64_t e = ch->ctrl->committedEpoch();
        mn = std::min(mn, e);
        mx = std::max(mx, e);
    }
    panic_if(mx > mn + 1,
             "committed-epoch spread across channels is %llu..%llu; the "
             "commit barrier bounds it to one",
             static_cast<unsigned long long>(mn),
             static_cast<unsigned long long>(mx));

    // Recover every channel to the minimum committed epoch — one
    // consistent cut — pumping each channel's queue so its timed
    // recovery traffic executes.
    for (auto& ch : chs_) {
        bool ok = false;
        ch->ctrl->recoverTo(mn, [&ok] { ok = true; });
        ch->eq->runUntil([&ok] { return ok; });
    }
    recovered_cpu_ = chs_[0]->ctrl->recoveredCpuState();

    // Rebuild the core-side functional mirror from the recovered
    // channel images. Clear it first (a second crash in the same life
    // could otherwise leave stale pre-crash data where the recovered
    // image is zero), then pull only the ranges each channel reports
    // as touched: every unreported local byte functionally reads zero,
    // which the cleared mirror already holds — O(touched) instead of
    // O(capacity).
    mirror_.clear();
    const std::size_t ch_phys = il_.localCapacity(cfg_.phys_size);
    const std::size_t ch_pages = (ch_phys + kPageSize - 1) / kPageSize;
    std::vector<std::uint8_t> touched(ch_pages, 0);
    for (unsigned ci = 0; ci < cfg_.channels; ++ci) {
        std::fill(touched.begin(), touched.end(), 0);
        chs_[ci]->ctrl->forEachTouchedPhysRange(
            [&](Addr a, std::size_t len) {
                if (a >= ch_phys)
                    return;
                len = std::min(len, ch_phys - a);
                for (std::size_t pg = a / kPageSize;
                     pg * kPageSize < a + len; ++pg)
                    touched[pg] = 1;
            });
        for (std::size_t pg = 0; pg < ch_pages; ++pg) {
            if (!touched[pg])
                continue;
            const Addr page_end =
                std::min<Addr>((pg + 1) * kPageSize, ch_phys);
            for (Addr local = pg * kPageSize; local < page_end;
                 local += kBlockSize) {
                std::uint8_t blk[kBlockSize];
                chs_[ci]->ctrl->functionalRead(local, blk, kBlockSize);
                mirror_.write(il_.globalAddr(ci, local), blk, kBlockSize);
            }
        }
    }

    // Align every clock to the slowest channel (recovery is a reboot:
    // the machine comes back at one instant) and land the completion
    // on the core queue at that tick.
    Tick t = curTick();
    for (auto& ch : chs_)
        t = std::max(t, ch->eq->now());
    for (auto& ch : chs_)
        ch->eq->run(t);
    ++recoveries_;
    eventq_.schedule(t, std::move(done));
}

void
ChannelGroup::requestEpochEnd()
{
    for (unsigned i = 0; i < cfg_.channels; ++i) {
        if (kernel_ != nullptr)
            postToChannel(i,
                          [this, i] { chs_[i]->ctrl->requestEpochEnd(); });
        else
            chs_[i]->ctrl->requestEpochEnd();
    }
}

void
ChannelGroup::setCrashPoints(CrashPointRegistry* reg)
{
    MemController::setCrashPoints(reg);
    for (auto& ch : chs_)
        ch->ctrl->setCrashPoints(reg);
}

void
ChannelGroup::dumpExtraStats(std::ostream& os)
{
    for (auto& ch : chs_) {
        ch->ctrl->stats().dump(os);
        if (MemDevice* d = ch->ctrl->nvmDevice())
            d->stats().dump(os);
        if (MemDevice* d = ch->ctrl->dramDevice())
            d->stats().dump(os);
    }
}

std::uint64_t
ChannelGroup::nvmWriteBytes(TrafficSource source)
{
    std::uint64_t sum = 0;
    for (auto& ch : chs_)
        sum += ch->ctrl->nvmWriteBytes(source);
    return sum;
}

std::uint64_t
ChannelGroup::nvmTotalWriteBytes()
{
    std::uint64_t sum = 0;
    for (auto& ch : chs_)
        sum += ch->ctrl->nvmTotalWriteBytes();
    return sum;
}

std::uint64_t
ChannelGroup::dramTotalWriteBytes()
{
    std::uint64_t sum = 0;
    for (auto& ch : chs_)
        sum += ch->ctrl->dramTotalWriteBytes();
    return sum;
}

// ----------------------------------------------------------------------
// Kernel wiring.
// ----------------------------------------------------------------------

void
ChannelGroup::registerShards(ShardedKernel& kernel, unsigned core_shard,
                             Tick limit, Tick cut)
{
    kernel_ = &kernel;
    core_shard_ = core_shard;
    halt_posted_ = false;
    for (auto& chp : chs_) {
        Channel* ch = chp.get();
        EventQueue* eq = ch->eq.get();
        ch->shard = kernel.addShard(
            ch->ctrl->name(), *eq, [eq, limit, cut](ShardWindow win) {
                while (!eq->empty() && eq->nextTick() < win.end() &&
                       eq->nextTick() <= cut && eq->now() < limit)
                    eq->step();
                return !eq->empty() && eq->nextTick() <= cut &&
                       eq->now() < limit;
            });
        ch->ctrl->setShard(ch->shard);
        kernel.link(core_shard, ch->shard, kChannelLookahead,
                    kLinkCapacity);
        kernel.link(ch->shard, core_shard, kChannelLookahead,
                    kLinkCapacity);
    }
}

void
ChannelGroup::postHalt()
{
    if (halt_posted_ || kernel_ == nullptr)
        return;
    halt_posted_ = true;
    for (unsigned i = 0; i < cfg_.channels; ++i)
        postToChannel(i, [this, i] { chs_[i]->ctrl->halt(); });
}

// ----------------------------------------------------------------------
// Cross-channel epoch coordinator (core side).
// ----------------------------------------------------------------------

void
ChannelGroup::flushRequested(std::uint64_t seq)
{
    // ccnvme idiom: every channel tracks its own epoch sequence
    // number; a coordinated boundary only forms when all channels
    // present the same next number.
    panic_if(seq != flush_seq_ + 1,
             "channel epoch sequence skew: got %llu at group boundary "
             "%llu",
             static_cast<unsigned long long>(seq),
             static_cast<unsigned long long>(flush_seq_ + 1));
    ++flush_arrived_;
    if (flush_arrived_ < cfg_.channels)
        return;
    flush_arrived_ = 0;
    ++flush_seq_;
    stall_start_ = curTick();
    crashPoint("group.flush_begin");
    panic_if(!flush_, "channel group has no flush client");
    // Drain the CPU and caches once for the whole group; every
    // channel's writebacks are fully serviced (reply-confirmed) before
    // the releases below are posted, so each channel's checkpoint
    // snapshot sees exactly the flushed state — same ordering as the
    // single-channel pipeline.
    flush_([this] {
        auto blob =
            std::make_shared<std::vector<std::uint8_t>>(cpu_blob_);
        // Same-link FIFO: the blob lands on channel 0 before its flush
        // release, so the checkpoint includes it.
        postToChannel(0, [this, blob] {
            chs_[0]->ctrl->persistCpuState(*blob);
        });
        for (unsigned i = 0; i < cfg_.channels; ++i) {
            postToChannel(i, [this, i] {
                auto run = std::move(chs_[i]->flush_run);
                chs_[i]->flush_run = nullptr;
                panic_if(!run, "flush release with no deferred "
                               "continuation");
                run();
            });
        }
    });
}

void
ChannelGroup::gateArrived(unsigned phase)
{
    if (gate_phase_ < 0)
        gate_phase_ = static_cast<int>(phase);
    panic_if(static_cast<int>(phase) != gate_phase_,
             "commit-gate phase mismatch across channels: %u vs %d",
             phase, gate_phase_);
    ++gate_arrived_;
    if (gate_arrived_ < cfg_.channels)
        return;
    gate_arrived_ = 0;
    const int ph = gate_phase_;
    gate_phase_ = -1;
    // Phase 0: every channel's checkpoint image is staged and durable;
    // only now may any channel write its commit header. Phase 1: every
    // header is durable; only now may any channel flip/apply
    // destructively — and the group epoch is committed.
    crashPoint(ph == 0 ? "group.all_staged" : "group.all_committed");
    if (ph == 1)
        ++epochs_;
    for (unsigned i = 0; i < cfg_.channels; ++i) {
        postToChannel(i, [this, i] {
            auto resume = std::move(chs_[i]->gate_resume);
            chs_[i]->gate_resume = nullptr;
            panic_if(!resume, "commit-gate release with no deferred "
                              "continuation");
            resume();
        });
    }
}

void
ChannelGroup::resumeArrived()
{
    ++resume_arrived_;
    if (resume_arrived_ < cfg_.channels)
        return;
    resume_arrived_ = 0;
    const Tick stalled = curTick() - stall_start_;
    ckpt_stall_time_ += static_cast<double>(stalled);
    ckpt_busy_time_ += static_cast<double>(stalled);
    if (resume_client_)
        resume_client_();
}

} // namespace thynvm
