/**
 * @file
 * Full-system assembly: CPU + cache hierarchy + one of the seven
 * evaluated memory controllers, wired per Table 2 of the paper.
 *
 * The System also orchestrates power failures: crash() discards all
 * volatile state and hands back the surviving NVM contents; a new
 * System built around those contents calls recoverAndResume() to roll
 * back to the last checkpoint and continue execution, exactly like a
 * machine rebooting after power loss.
 */

#ifndef THYNVM_HARNESS_SYSTEM_HH
#define THYNVM_HARNESS_SYSTEM_HH

#include <cstdint>
#include <iosfwd>
#include <memory>

#include "baselines/icl.hh"
#include "baselines/ideal.hh"
#include "baselines/incremental.hh"
#include "baselines/journal.hh"
#include "baselines/shadow.hh"
#include "cache/cache.hh"
#include "core/thynvm_controller.hh"
#include "cpu/cpu.hh"
#include "harness/channel_group.hh"
#include "harness/system_kind.hh"
#include "sim/shard.hh"

namespace thynvm {

/**
 * Configuration of a full system instance.
 */
struct SystemConfig
{
    SystemKind kind = SystemKind::ThyNvm;
    /** Software-visible physical address space. */
    std::size_t phys_size = 32u << 20;
    /** Epoch length for checkpointing systems. */
    Tick epoch_length = 10 * kMillisecond;
    /** Include the 3-level cache hierarchy (Table 2). */
    bool use_caches = true;

    /**
     * Worker threads for the sharded event kernel when this system is
     * run standalone: 0 defers to the THYNVM_SIM_THREADS environment
     * variable (unset = serial), 1 forces the serial stepping loop,
     * >1 steps the system's shards on a worker pool in conservative
     * windows (sim/shard.hh). Any value produces byte-identical stats;
     * this is the escape hatch back to serial if it ever does not.
     */
    unsigned sim_threads = 0;

    /**
     * Memory-channel count: 0 defers to the THYNVM_CHANNELS
     * environment variable (unset = 1), 1 is the classic
     * single-controller topology, >1 (a power of two) interleaves the
     * physical space over that many channels at cache-block
     * granularity, each channel an independent controller + device set
     * on its own kernel shard (harness/channel_group.hh). Combined
     * with sim_threads / THYNVM_SIM_THREADS > 1 this parallelizes a
     * *single* System run; stats stay byte-identical at every thread
     * count for a fixed channel count.
     */
    unsigned channels = 0;

    /** ThyNVM-specific knobs (phys_size/epoch_length are copied in). */
    ThyNvmConfig thynvm;

    /**
     * Optional crash-point registry (not owned; must outlive the
     * System). The controller announces its checkpoint-pipeline steps
     * to it so a fuzz driver can enumerate and arm crash sites.
     */
    CrashPointRegistry* crash_points = nullptr;

    TraceCpu::Params cpu;
    Cache::Params l1{32 * 1024, 8, 4 * 333};
    Cache::Params l2{256 * 1024, 8, 12 * 333};
    Cache::Params l3{2 * 1024 * 1024, 16, 28 * 333};
};

/**
 * Aggregated end-of-run measurements used by the benchmarks.
 */
struct RunMetrics
{
    Tick exec_time = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    std::uint64_t nvm_wr_cpu = 0;
    std::uint64_t nvm_wr_ckpt = 0;
    std::uint64_t nvm_wr_migration = 0;
    std::uint64_t nvm_wr_total = 0;
    /** DRAM write bytes (the "write bandwidth" metric for Ideal DRAM). */
    std::uint64_t dram_wr_total = 0;
    double ckpt_time_frac = 0.0;
    std::uint64_t epochs = 0;
    /** Application write bytes that reached the controller. */
    std::uint64_t app_wr_bytes = 0;
    /** Media write bytes / application write bytes (cumulative). */
    double write_amp = 0.0;
};

/**
 * One simulated machine.
 */
class System
{
  public:
    /**
     * @param cfg configuration.
     * @param workload generator driven by the CPU (not owned).
     * @param nvm_store surviving NVM contents for a post-crash reboot,
     *        or nullptr for a pristine machine.
     */
    System(const SystemConfig& cfg, Workload& workload,
           std::shared_ptr<BackingStore> nvm_store = nullptr);

    /** Initialize the workload image and begin execution at tick 0. */
    void start();

    /**
     * Post-crash boot: run timed recovery, restore the CPU and
     * workload from the recovered architectural state, and resume.
     */
    void recoverAndResume();

    /**
     * Advance simulation until the workload finishes or @p duration
     * ticks elapse. @return current tick.
     *
     * With an effective sim-thread count above one (sim_threads /
     * THYNVM_SIM_THREADS), the run is executed on the sharded kernel
     * via a single-system SystemGroup; event order and stats are
     * byte-identical to the serial loop.
     */
    Tick run(Tick duration = kMaxTick);

    /**
     * Step this system inside one kernel window: execute events with
     * tick strictly below the live bound @p win (re-read per event —
     * posting retreats it), stopping early when the workload finishes,
     * the queue drains, or @p limit is passed — exactly the serial
     * run() loop, bounded by the window.
     * @return true if the system can still make progress.
     */
    bool stepWindow(ShardWindow win, Tick limit);

    /**
     * Tag every component of this system with a kernel shard id. The
     * whole single-channel machine is one shard: all its components
     * exchange same-tick calls.
     */
    void setShard(unsigned shard);

    /**
     * Register this system's shards with @p kernel: the core shard
     * (CPU + caches + controller front-end) plus, on a multi-channel
     * topology, one shard per channel linked to the core with the
     * cross-channel lookahead. @return the core shard id.
     */
    unsigned registerShards(ShardedKernel& kernel, Tick limit);

    /** Forget the kernel after a sharded run. */
    void detachKernel();

    /**
     * Deterministically execute exactly the events with tick <= @p cut
     * (the fuzzer's crash-cut replay). Multi-channel topologies run a
     * bounded kernel; the executed prefix is identical to a full run
     * truncated at @p cut.
     */
    void runTo(Tick cut);

    /** Effective channel count of this topology (>= 1). */
    unsigned channels() const { return channels_; }

    /** Effective sharded-kernel worker count for standalone runs. */
    unsigned simThreads() const;

    /** Kernel windows executed by the last sharded run() (0 when the
     *  run used the plain serial loop). */
    std::uint64_t kernelWindows() const { return kernel_windows_; }
    /** Cross-shard messages delivered by the last sharded run(). */
    std::uint64_t kernelMessages() const { return kernel_messages_; }

    /** True once the workload finished. */
    bool finished() const { return cpu_->finished(); }

    /**
     * Power failure: all volatile state is lost. Returns the surviving
     * NVM contents for rebuilding a System. This System must not be
     * used afterwards (except for inspection of stats).
     */
    std::shared_ptr<BackingStore> crash();

    /** Zero-time read of current architectural memory (via caches). */
    FunctionalView functionalView();

    /**
     * Ascending page-aligned addresses of every physical page that may
     * hold nonzero data through functionalView(): the controller's
     * touched set (backing-store pages, staged writes, live remap
     * entries) plus dirty cache lines. Pages not listed read zero, so
     * whole-image capture is O(touched) instead of O(capacity).
     */
    std::vector<Addr> touchedPhysPages() const;

    /**
     * Dump every stat in the system — CPU, caches, controller, devices —
     * plus the current tick, in a fixed order. Equivalence and
     * determinism tests compare these dumps as strings. The executed
     * event count is deliberately excluded: it is host instrumentation,
     * and the hit fast path exists precisely to shrink it without
     * changing anything this dump contains.
     */
    void dumpStats(std::ostream& os);

    /** Collected measurements since start. */
    RunMetrics metrics() const;

    EventQueue& eventq() { return eq_; }
    TraceCpu& cpu() { return *cpu_; }
    MemController& controller() { return *controller_; }
    Workload& workload() { return workload_; }
    const SystemConfig& config() const { return cfg_; }

  private:
    void buildAboveController();
    void wireFlushClient();
    void flushCaches(std::function<void()> done);

    SystemConfig cfg_;
    Workload& workload_;
    EventQueue eq_;
    std::unique_ptr<MemController> controller_;
    /** Non-null when channels_ > 1; owned via controller_. */
    ChannelGroup* group_ = nullptr;
    unsigned channels_ = 1;
    std::unique_ptr<Cache> l3_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<TraceCpu> cpu_;
    Tick start_tick_ = 0;
    std::uint64_t kernel_windows_ = 0;
    std::uint64_t kernel_messages_ = 0;
};

} // namespace thynvm

#endif // THYNVM_HARNESS_SYSTEM_HH
