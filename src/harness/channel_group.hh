/**
 * @file
 * Multi-channel memory topology: one MemController + device set per
 * channel behind a cache-block-granularity address interleaver, with a
 * cross-channel epoch coordinator.
 *
 * The group presents the MemController interface to the cache
 * hierarchy, so the rest of the System is unchanged. Internally it owns
 * C channels, each with its *own* event queue: a channel is a kernel
 * shard of its own, so THYNVM_SIM_THREADS > 1 parallelizes a *single*
 * System run. Channels exchange messages with the core shard (CPU +
 * caches + group) over sharded-kernel links whose lookahead is the
 * device minimum access latency — the modeled channel-interconnect hop.
 *
 * Functional/timing split across the interconnect: the group keeps a
 * core-side functional mirror of the software-visible memory so reads
 * fill synchronously (the accessBlock contract) while the timed access
 * travels to the channel and back. Writes apply to the mirror at call
 * time and ship their data by value with the timed message.
 *
 * Epoch checkpointing is a cross-controller protocol (ccnvme-style
 * per-channel epoch sequence numbers with a two-phase commit barrier):
 *
 *  1. Flush barrier: each channel's epoch timer requests a boundary;
 *     the coordinator waits for all C requests (asserting every
 *     channel presents the same next sequence number), then pauses the
 *     CPU, flushes the caches, persists the CPU blob on channel 0, and
 *     releases every channel's flush continuation at one core tick.
 *  2. Commit barrier: each channel passes its two commit-durability
 *     edges (image staged / header durable) through the group commit
 *     gate; the coordinator fans in phase 0 from all channels before
 *     any channel writes its commit header ("group.all_staged"), and
 *     phase 1 before any channel flips/applies destructively
 *     ("group.all_committed"). This bounds the committed-epoch spread
 *     across channels to at most one at every crash point, which is
 *     what makes min-epoch recovery a consistent cut.
 *
 * Recovery probes every channel's durably committed epoch, panics if
 * the spread exceeds one (the barrier guarantees it cannot), recovers
 * every channel to the minimum, rebuilds the functional mirror, and
 * aligns all clocks to the slowest channel.
 */

#ifndef THYNVM_HARNESS_CHANNEL_GROUP_HH
#define THYNVM_HARNESS_CHANNEL_GROUP_HH

#include <array>
#include <memory>
#include <vector>

#include "core/config.hh"
#include "harness/system_kind.hh"
#include "mem/controller.hh"
#include "mem/interleave.hh"
#include "mem/paged_bytes.hh"

namespace thynvm {

class ShardedKernel;

/**
 * A set of per-channel memory controllers behind one MemController
 * interface, with a cross-channel epoch coordinator.
 */
class ChannelGroup : public MemController
{
  public:
    /**
     * Cross-channel lookahead: the channel-interconnect hop, modeled as
     * the device minimum access latency (a 40 ns row hit). Every
     * core<->channel message takes one hop each direction; it floors
     * the earliest-output-time windows the sharded kernel runs at.
     */
    static constexpr Tick kChannelLookahead = 40 * kNanosecond;

    struct Config
    {
        SystemKind kind = SystemKind::ThyNvm;
        /** Channel count; must be a power of two >= 2. */
        unsigned channels = 2;
        /** Global software-visible physical address space. */
        std::size_t phys_size = 0;
        Tick epoch_length = 0;
        /** Global table sizes; divided over the channels. */
        ThyNvmConfig thynvm;
    };

    /**
     * @param eq the core shard's event queue (the group itself lives on
     *        the core shard; channels own their queues).
     * @param nvm_store surviving NVM contents of the whole group for a
     *        post-crash reboot, or nullptr for a pristine machine. The
     *        group hands each channel a view slice of one root store, so
     *        a single handle survives crashes exactly like the
     *        single-channel case.
     */
    ChannelGroup(EventQueue& eq, std::string name, const Config& cfg,
                 std::shared_ptr<BackingStore> nvm_store);
    ~ChannelGroup() override;

    // ------------------------------------------------------------------
    // MemController interface (the cache hierarchy's view).
    // ------------------------------------------------------------------
    std::size_t physCapacity() const override { return cfg_.phys_size; }
    void accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata, TrafficSource source,
                     std::function<void()> done) override;
    void persistCpuState(const std::vector<std::uint8_t>& blob) override;
    const std::vector<std::uint8_t>& recoveredCpuState() const override
    {
        return recovered_cpu_;
    }
    void functionalRead(Addr paddr, void* buf,
                        std::size_t len) const override;
    void forEachTouchedPhysRange(
        const std::function<void(Addr, std::size_t)>& fn) const override;
    void loadImage(Addr paddr, const void* buf, std::size_t len) override;
    void start() override;
    void crash() override;
    void recover(std::function<void()> done) override;
    std::uint64_t committedEpoch() const override;
    void requestEpochEnd() override;
    std::shared_ptr<BackingStore> nvmStoreHandle() override
    {
        return root_store_;
    }
    void setCrashPoints(CrashPointRegistry* reg) override;
    void dumpExtraStats(std::ostream& os) override;
    std::uint64_t nvmWriteBytes(TrafficSource source) override;
    std::uint64_t nvmTotalWriteBytes() override;
    std::uint64_t dramTotalWriteBytes() override;

    /** CPU-resume hook fired when a coordinated boundary completes. */
    void setResumeClient(std::function<void()> cb)
    {
        resume_client_ = std::move(cb);
    }

    // ------------------------------------------------------------------
    // Kernel wiring (called by the System).
    // ------------------------------------------------------------------

    /**
     * Register every channel as a kernel shard, linked bidirectionally
     * to @p core_shard with kChannelLookahead. Channel shards step
     * until @p limit; @p cut additionally bounds the executed events to
     * ticks <= cut (used by the fuzzer's deterministic crash cut).
     */
    void registerShards(ShardedKernel& kernel, unsigned core_shard,
                        Tick limit, Tick cut = kMaxTick);

    /** Forget the kernel after a run; messages fall back to panic. */
    void detachKernel() { kernel_ = nullptr; }

    /**
     * Post a halt to every channel (idempotent): stop re-arming epoch
     * timers so the channel queues drain and the kernel terminates.
     * Must be called while the kernel is stepping the core shard.
     */
    void postHalt();

    unsigned channelCount() const { return cfg_.channels; }
    MemController& channelController(unsigned i)
    {
        return *chs_[i]->ctrl;
    }
    EventQueue& channelEventq(unsigned i) { return *chs_[i]->eq; }
    const ChannelInterleaver& interleaver() const { return il_; }

  private:
    struct Channel
    {
        std::unique_ptr<EventQueue> eq;
        std::unique_ptr<MemController> ctrl;
        /** Kernel shard id of this channel (valid while attached). */
        unsigned shard = 0;
        /** Deferred boundary-flush continuation (channel side). */
        std::function<void()> flush_run;
        /** Deferred commit-gate continuation (channel side). */
        std::function<void()> gate_resume;
        /** Per-channel epoch sequence number (ccnvme idiom). */
        std::uint64_t boundary_seq = 0;
    };

    std::unique_ptr<MemController>
    buildChannel(EventQueue& eq, unsigned i, std::size_t ch_phys,
                 std::shared_ptr<BackingStore> slice);
    /** Per-channel NVM slice size for the configured kind. */
    std::size_t channelNvmSize(std::size_t ch_phys) const;
    /** Global config scaled down to one channel's share. */
    ThyNvmConfig channelThyNvmConfig(std::size_t ch_phys) const;

    // Cross-shard message helpers; the delivery tick (sender's now +
    // kChannelLookahead) always clears the target's admission window
    // because EOT planning floors every window by exactly this bound.
    void postToChannel(unsigned i, std::function<void()> fn);
    void postToCore(unsigned i, std::function<void()> fn);

    // Coordinator fan-ins (core side).
    void flushRequested(std::uint64_t seq);
    void gateArrived(unsigned phase);
    void resumeArrived();

    Config cfg_;
    ChannelInterleaver il_;
    std::shared_ptr<BackingStore> root_store_;
    std::vector<std::unique_ptr<Channel>> chs_;
    /** Core-side functional mirror of software-visible memory. */
    PagedBytes mirror_;

    ShardedKernel* kernel_ = nullptr;
    unsigned core_shard_ = 0;
    bool halt_posted_ = false;

    // Coordinator state (core side only).
    unsigned flush_arrived_ = 0;
    std::uint64_t flush_seq_ = 0;
    unsigned gate_arrived_ = 0;
    int gate_phase_ = -1;
    unsigned resume_arrived_ = 0;
    Tick stall_start_ = 0;
    std::function<void()> resume_client_;
    std::vector<std::uint8_t> cpu_blob_;
    std::vector<std::uint8_t> recovered_cpu_;
};

} // namespace thynvm

#endif // THYNVM_HARNESS_CHANNEL_GROUP_HH
