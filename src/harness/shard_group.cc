/**
 * @file
 * SystemGroup implementation.
 */

#include "harness/shard_group.hh"

#include <algorithm>

namespace thynvm {

unsigned
SystemGroup::add(System& sys)
{
    const unsigned id = static_cast<unsigned>(systems_.size());
    systems_.push_back(&sys);
    return id;
}

Tick
SystemGroup::run(unsigned threads, Tick limit, ThreadPool* pool)
{
    if (systems_.empty())
        return 0;

    // The kernel references the systems directly; build it per run so
    // a group can be re-run (e.g., after adding more systems). Each
    // system registers its core shard plus, on multi-channel
    // topologies, one linked shard per channel.
    ShardedKernel kernel;
    for (System* sys : systems_)
        sys->registerShards(kernel, limit);

    // Checkpoint-epoch boundaries are global barriers: align windows
    // to the smallest epoch so no shard starts epoch k+1 before every
    // shard has finished epoch k.
    Tick period = kMaxTick;
    for (const System* sys : systems_)
        period = std::min(period, sys->config().epoch_length);
    if (period != 0 && period != kMaxTick)
        kernel.setBarrierPeriod(period);

    const Tick last = kernel.run(threads, pool);
    windows_ = kernel.windowsExecuted();
    messages_ = kernel.messagesDelivered();
    for (System* sys : systems_)
        sys->detachKernel();
    return last;
}

} // namespace thynvm
