/**
 * @file
 * The evaluated system kinds — the paper's five (§5.1) plus the two
 * post-paper fine-grained checkpointing backends — split out of
 * system.hh so the multi-channel group — which the System embeds — can
 * name them without a circular include.
 */

#ifndef THYNVM_HARNESS_SYSTEM_KIND_HH
#define THYNVM_HARNESS_SYSTEM_KIND_HH

namespace thynvm {

/**
 * Which evaluated system to build: the paper's five (§5.1) plus two
 * fine-grained checkpointing backends (in-cache-line logging à la
 * Cohen et al., and libcrpm-style incremental dirty-range
 * checkpointing).
 */
enum class SystemKind
{
    IdealDram,
    IdealNvm,
    Journal,
    Shadow,
    ThyNvm,
    Icl,
    Incremental,
};

/**
 * Every SystemKind, for exhaustive test/tool iteration. New kinds must
 * be appended here (the unit suite cross-checks the count against the
 * enum via the -Werror switch coverage in systemKindName()).
 */
constexpr SystemKind kAllSystemKinds[] = {
    SystemKind::IdealDram, SystemKind::IdealNvm,  SystemKind::Journal,
    SystemKind::Shadow,    SystemKind::ThyNvm,    SystemKind::Icl,
    SystemKind::Incremental,
};

/** Human-readable system name as used in the paper's figures. */
const char* systemKindName(SystemKind kind);

/** True for kinds with epochs/checkpoints (everything but the ideals). */
constexpr bool
isCheckpointingKind(SystemKind kind)
{
    return kind != SystemKind::IdealDram && kind != SystemKind::IdealNvm;
}

} // namespace thynvm

#endif // THYNVM_HARNESS_SYSTEM_KIND_HH
