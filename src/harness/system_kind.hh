/**
 * @file
 * The five evaluated system kinds (paper §5.1), split out of system.hh
 * so the multi-channel group — which the System embeds — can name them
 * without a circular include.
 */

#ifndef THYNVM_HARNESS_SYSTEM_KIND_HH
#define THYNVM_HARNESS_SYSTEM_KIND_HH

namespace thynvm {

/** Which of the paper's five evaluated systems to build (§5.1). */
enum class SystemKind
{
    IdealDram,
    IdealNvm,
    Journal,
    Shadow,
    ThyNvm,
};

/** Human-readable system name as used in the paper's figures. */
const char* systemKindName(SystemKind kind);

} // namespace thynvm

#endif // THYNVM_HARNESS_SYSTEM_KIND_HH
