/**
 * @file
 * System implementation.
 */

#include "harness/system.hh"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "common/parallel.hh"
#include "harness/shard_group.hh"

namespace thynvm {

const char*
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::IdealDram: return "Ideal DRAM";
      case SystemKind::IdealNvm: return "Ideal NVM";
      case SystemKind::Journal: return "Journal";
      case SystemKind::Shadow: return "Shadow";
      case SystemKind::ThyNvm: return "ThyNVM";
      case SystemKind::Icl: return "ICL";
      case SystemKind::Incremental: return "Incremental";
    }
    return "unknown";
}

System::System(const SystemConfig& cfg, Workload& workload,
               std::shared_ptr<BackingStore> nvm_store)
    : cfg_(cfg), workload_(workload)
{
    channels_ = cfg_.channels != 0 ? cfg_.channels : channelsFromEnv();
    if (channels_ == 0)
        channels_ = 1;
    if (channels_ > 1) {
        ChannelGroup::Config gc;
        gc.kind = cfg_.kind;
        gc.channels = channels_;
        gc.phys_size = cfg_.phys_size;
        gc.epoch_length = cfg_.epoch_length;
        gc.thynvm = cfg_.thynvm;
        auto grp = std::make_unique<ChannelGroup>(eq_, "sys.ctrl", gc,
                                                  std::move(nvm_store));
        grp->setResumeClient([this] { cpu_->resume(); });
        group_ = grp.get();
        controller_ = std::move(grp);
        buildAboveController();
        return;
    }
    switch (cfg_.kind) {
      case SystemKind::IdealDram:
        controller_ = std::make_unique<IdealController>(
            eq_, "sys.ctrl", cfg_.phys_size, true, std::move(nvm_store));
        break;
      case SystemKind::IdealNvm:
        controller_ = std::make_unique<IdealController>(
            eq_, "sys.ctrl", cfg_.phys_size, false, std::move(nvm_store));
        break;
      case SystemKind::Journal: {
        JournalConfig jc;
        jc.phys_size = cfg_.phys_size;
        jc.epoch_length = cfg_.epoch_length;
        jc.table_entries =
            cfg_.thynvm.btt_entries + cfg_.thynvm.ptt_entries;
        auto ctrl = std::make_unique<JournalController>(
            eq_, "sys.ctrl", jc, std::move(nvm_store));
        ctrl->setResumeClient([this] { cpu_->resume(); });
        controller_ = std::move(ctrl);
        break;
      }
      case SystemKind::Shadow: {
        ShadowConfig sc;
        sc.phys_size = cfg_.phys_size;
        sc.epoch_length = cfg_.epoch_length;
        sc.dram_size = cfg_.thynvm.dramSize();
        auto ctrl = std::make_unique<ShadowController>(
            eq_, "sys.ctrl", sc, std::move(nvm_store));
        ctrl->setResumeClient([this] { cpu_->resume(); });
        controller_ = std::move(ctrl);
        break;
      }
      case SystemKind::ThyNvm: {
        ThyNvmConfig tc = cfg_.thynvm;
        tc.phys_size = cfg_.phys_size;
        tc.epoch_length = cfg_.epoch_length;
        auto ctrl = std::make_unique<ThyNvmController>(
            eq_, "sys.ctrl", tc, std::move(nvm_store));
        ctrl->setResumeClient([this] { cpu_->resume(); });
        controller_ = std::move(ctrl);
        break;
      }
      case SystemKind::Icl: {
        IclConfig ic;
        ic.phys_size = cfg_.phys_size;
        ic.epoch_length = cfg_.epoch_length;
        auto ctrl = std::make_unique<IclController>(
            eq_, "sys.ctrl", ic, std::move(nvm_store));
        ctrl->setResumeClient([this] { cpu_->resume(); });
        controller_ = std::move(ctrl);
        break;
      }
      case SystemKind::Incremental: {
        IncrementalConfig nc;
        nc.phys_size = cfg_.phys_size;
        nc.epoch_length = cfg_.epoch_length;
        nc.table_entries =
            cfg_.thynvm.btt_entries + cfg_.thynvm.ptt_entries;
        auto ctrl = std::make_unique<IncrementalController>(
            eq_, "sys.ctrl", nc, std::move(nvm_store));
        ctrl->setResumeClient([this] { cpu_->resume(); });
        controller_ = std::move(ctrl);
        break;
      }
    }

    buildAboveController();
}

void
System::buildAboveController()
{
    controller_->setCrashPoints(cfg_.crash_points);

    BlockAccessor* below = controller_.get();
    if (cfg_.use_caches) {
        l3_ = std::make_unique<Cache>(eq_, "sys.l3", cfg_.l3, *below);
        l2_ = std::make_unique<Cache>(eq_, "sys.l2", cfg_.l2, *l3_);
        l1_ = std::make_unique<Cache>(eq_, "sys.l1", cfg_.l1, *l2_);
        below = l1_.get();
    }
    cpu_ = std::make_unique<TraceCpu>(eq_, "sys.cpu", cfg_.cpu, *below,
                                      workload_);
    wireFlushClient();
}

void
System::wireFlushClient()
{
    controller_->setFlushClient([this](std::function<void()> done) {
        cpu_->pause([this, done = std::move(done)]() mutable {
            flushCaches([this, done = std::move(done)]() mutable {
                controller_->persistCpuState(cpu_->archState());
                done();
            });
        });
    });
}

void
System::flushCaches(std::function<void()> done)
{
    if (!cfg_.use_caches) {
        eq_.scheduleIn(0, std::move(done));
        return;
    }
    // Flush levels top-down so dirty data trickles into the controller.
    l1_->flushDirty([this, done = std::move(done)]() mutable {
        l2_->flushDirty([this, done = std::move(done)]() mutable {
            l3_->flushDirty(std::move(done));
        });
    });
}

FunctionalView
System::functionalView()
{
    BlockAccessor* top =
        cfg_.use_caches ? static_cast<BlockAccessor*>(l1_.get())
                        : static_cast<BlockAccessor*>(controller_.get());
    return [top](Addr addr, void* buf, std::size_t len) {
        auto* out = static_cast<std::uint8_t*>(buf);
        std::size_t remaining = len;
        Addr a = addr;
        while (remaining > 0) {
            const Addr block = blockAlign(a);
            const std::size_t in_block = a - block;
            const std::size_t chunk =
                std::min(remaining, kBlockSize - in_block);
            std::uint8_t tmp[kBlockSize];
            top->functionalReadBlock(block, tmp);
            std::memcpy(out, tmp + in_block, chunk);
            out += chunk;
            a += chunk;
            remaining -= chunk;
        }
    };
}

std::vector<Addr>
System::touchedPhysPages() const
{
    const std::size_t phys = cfg_.phys_size;
    const std::size_t npages = (phys + kPageSize - 1) / kPageSize;
    std::vector<std::uint8_t> bits(npages, 0);
    const auto mark = [&](Addr a, std::size_t len) {
        if (a >= phys)
            return;
        len = std::min(len, phys - a);
        for (std::size_t pg = a / kPageSize; pg * kPageSize < a + len;
             ++pg)
            bits[pg] = 1;
    };
    controller_->forEachTouchedPhysRange(mark);
    // The functional view overlays cache contents; dirty lines may
    // hold data the controller has never seen (clean lines mirror it).
    for (const Cache* c : {l1_.get(), l2_.get(), l3_.get()}) {
        if (c != nullptr)
            c->forEachDirtyBlock([&](Addr a) { mark(a, kBlockSize); });
    }
    std::vector<Addr> pages;
    for (std::size_t pg = 0; pg < npages; ++pg) {
        if (bits[pg])
            pages.push_back(pg * kPageSize);
    }
    return pages;
}

void
System::start()
{
    workload_.setFunctionalView(functionalView());
    workload_.init(*controller_);
    start_tick_ = eq_.now();
    controller_->start();
    cpu_->start();
}

void
System::recoverAndResume()
{
    workload_.setFunctionalView(functionalView());
    bool recovered = false;
    controller_->recover([&recovered] { recovered = true; });
    eq_.runUntil([&recovered] { return recovered; });

    const auto& blob = controller_->recoveredCpuState();
    if (!blob.empty())
        cpu_->restoreArchState(blob);
    start_tick_ = eq_.now();
    controller_->start();
    cpu_->start();
}

Tick
System::run(Tick duration)
{
    const Tick limit =
        duration == kMaxTick ? kMaxTick : eq_.now() + duration;
    const unsigned threads = simThreads();
    // A multi-channel topology always runs on the sharded kernel (its
    // channel queues are shards), even with one worker thread — the
    // kernel's one-worker schedule is the serial reference.
    if (threads > 1 || group_ != nullptr) {
        SystemGroup group;
        group.add(*this);
        group.run(threads, limit);
        kernel_windows_ = group.windowsExecuted();
        kernel_messages_ = group.messagesDelivered();
        return eq_.now();
    }
    while (!cpu_->finished() && eq_.now() < limit && !eq_.empty())
        eq_.step();
    return eq_.now();
}

unsigned
System::registerShards(ShardedKernel& kernel, Tick limit)
{
    const unsigned core = kernel.addShard(
        controller_->name(), eq_, [this, limit](ShardWindow win) {
            const bool more = stepWindow(win, limit);
            // A finished workload halts the channels so their epoch
            // timers stop re-arming and the kernel can terminate.
            if (group_ != nullptr && cpu_->finished())
                group_->postHalt();
            return more;
        });
    setShard(core);
    if (group_ != nullptr)
        group_->registerShards(kernel, core, limit);
    return core;
}

void
System::detachKernel()
{
    if (group_ != nullptr)
        group_->detachKernel();
}

void
System::runTo(Tick cut)
{
    if (group_ == nullptr) {
        while (!eq_.empty() && eq_.nextTick() <= cut)
            eq_.step();
        return;
    }
    // Bounded kernel run: every shard executes exactly the events with
    // tick <= cut that a full run would execute — the deterministic
    // prefix. The step conditions (including the finished-workload
    // halt) mirror registerShards() exactly, so the window schedule
    // and every message-delivery tick agree with the full run up to
    // the cut.
    ShardedKernel kernel;
    const unsigned core = kernel.addShard(
        controller_->name(), eq_, [this, cut](ShardWindow win) {
            while (!cpu_->finished() && !eq_.empty() &&
                   eq_.nextTick() < win.end() && eq_.nextTick() <= cut)
                eq_.step();
            if (cpu_->finished())
                group_->postHalt();
            return !cpu_->finished() && !eq_.empty() &&
                   eq_.nextTick() <= cut;
        });
    setShard(core);
    group_->registerShards(kernel, core, kMaxTick, cut);
    kernel.setBarrierPeriod(cfg_.epoch_length);
    kernel.run(simThreads());
    detachKernel();
}

bool
System::stepWindow(ShardWindow win, Tick limit)
{
    // win.end() is re-read every iteration: posting retreats the live
    // bound mid-window (sim/shard.hh).
    while (!cpu_->finished() && eq_.now() < limit && !eq_.empty() &&
           eq_.nextTick() < win.end())
        eq_.step();
    return !cpu_->finished() && eq_.now() < limit && !eq_.empty();
}

void
System::setShard(unsigned shard)
{
    cpu_->setShard(shard);
    if (cfg_.use_caches) {
        l1_->setShard(shard);
        l2_->setShard(shard);
        l3_->setShard(shard);
    }
    controller_->setShard(shard); // propagates to its devices
}

unsigned
System::simThreads() const
{
    const unsigned threads = cfg_.sim_threads != 0 ? cfg_.sim_threads
                                                   : simThreadsFromEnv();
    return threads == 0 ? 1 : threads;
}

std::shared_ptr<BackingStore>
System::crash()
{
    auto nvm = controller_->nvmStoreHandle();
    controller_->crash();
    if (cfg_.use_caches) {
        l1_->invalidateAll();
        l2_->invalidateAll();
        l3_->invalidateAll();
    }
    eq_.clear();
    return nvm;
}

void
System::dumpStats(std::ostream& os)
{
    os << "tick=" << eq_.now() << "\n";
    cpu_->stats().dump(os);
    if (cfg_.use_caches) {
        l1_->stats().dump(os);
        l2_->stats().dump(os);
        l3_->stats().dump(os);
    }
    controller_->stats().dump(os);
    if (MemDevice* d = controller_->nvmDevice())
        d->stats().dump(os);
    if (MemDevice* d = controller_->dramDevice())
        d->stats().dump(os);
    // Multi-channel topologies dump every channel's controller and
    // devices here; single-channel dumps are unchanged (no-op).
    controller_->dumpExtraStats(os);
}

RunMetrics
System::metrics() const
{
    RunMetrics m;
    m.exec_time = eq_.now() - start_tick_;
    m.instructions = cpu_->instructions();
    const double cycles = static_cast<double>(m.exec_time) /
                          static_cast<double>(cfg_.cpu.cycle_period);
    m.ipc = cycles > 0 ? static_cast<double>(m.instructions) / cycles
                       : 0.0;

    // NVM traffic: for Ideal DRAM there is no NVM device; Figure 10
    // then reports DRAM write bandwidth instead. The virtuals sum
    // across channels on a multi-channel topology.
    auto* ctrl = const_cast<MemController*>(controller_.get());
    m.nvm_wr_cpu = ctrl->nvmWriteBytes(TrafficSource::CpuWriteback) +
                   ctrl->nvmWriteBytes(TrafficSource::DemandRead);
    m.nvm_wr_ckpt = ctrl->nvmWriteBytes(TrafficSource::Checkpoint);
    m.nvm_wr_migration = ctrl->nvmWriteBytes(TrafficSource::Migration);
    m.nvm_wr_total = ctrl->nvmTotalWriteBytes();
    m.dram_wr_total = ctrl->dramTotalWriteBytes();

    m.ckpt_time_frac =
        m.exec_time > 0
            ? static_cast<double>(ctrl->checkpointStallTime()) /
                  static_cast<double>(m.exec_time)
            : 0.0;
    m.epochs = ctrl->completedEpochs();
    m.app_wr_bytes = ctrl->appWriteBytes();
    m.write_amp =
        m.app_wr_bytes > 0
            ? static_cast<double>(ctrl->mediaWriteBytes()) /
                  static_cast<double>(m.app_wr_bytes)
            : 0.0;
    return m;
}

} // namespace thynvm
