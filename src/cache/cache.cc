/**
 * @file
 * Cache level implementation.
 */

#include "cache/cache.hh"

#include <memory>

#include "common/logging.hh"

namespace thynvm {

Cache::Cache(EventQueue& eq, std::string name, const Params& params,
             BlockAccessor& next)
    : SimObject(eq, std::move(name)), params_(params), next_(next)
{
    fatal_if(params_.size % (params_.assoc * kBlockSize) != 0,
             "cache size must be a multiple of assoc * block size");
    num_sets_ = params_.size / (params_.assoc * kBlockSize);
    fatal_if(!isPowerOfTwo(num_sets_), "cache must have 2^n sets");
    lines_.resize(num_sets_ * params_.assoc);

    stats().addScalar("hits", &hits_, "block accesses that hit");
    stats().addScalar("misses", &misses_, "block accesses that missed");
    stats().addScalar("writebacks", &writebacks_,
                      "dirty victim writebacks");
    stats().addScalar("flush_writebacks", &flush_writebacks_,
                      "dirty blocks cleaned by checkpoint flushes");
    stats().addFormula(
        "miss_rate",
        [this] {
            double total = hits_.value() + misses_.value();
            return total > 0 ? misses_.value() / total : 0.0;
        },
        "fraction of accesses that missed");
}

std::size_t
Cache::setIndex(Addr paddr) const
{
    return static_cast<std::size_t>(blockIndex(paddr)) & (num_sets_ - 1);
}

Cache::Line*
Cache::lookup(Addr paddr)
{
    const std::size_t base = setIndex(paddr) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line& line = lines_[base + w];
        if (line.valid && line.tag == paddr)
            return &line;
    }
    return nullptr;
}

Cache::Line&
Cache::victimFor(Addr paddr)
{
    const std::size_t base = setIndex(paddr) * params_.assoc;
    Line* victim = &lines_[base];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line& line = lines_[base + w];
        if (!line.valid)
            return line;
        if (line.lru < victim->lru)
            victim = &line;
    }
    return *victim;
}

void
Cache::applyAccess(Line& line, bool is_write, const std::uint8_t* wdata,
                   std::uint8_t* rdata)
{
    line.lru = ++lru_clock_;
    if (is_write) {
        std::memcpy(line.data.data(), wdata, kBlockSize);
        if (!line.dirty) {
            line.dirty = true;
            ++dirty_lines_;
        }
    } else {
        std::memcpy(rdata, line.data.data(), kBlockSize);
    }
}

void
Cache::accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                   std::uint8_t* rdata, TrafficSource source,
                   std::function<void()> done)
{
    panic_if(paddr % kBlockSize != 0, "unaligned cache access");

    Line* line = lookup(paddr);
    if (line != nullptr) {
        ++hits_;
        applyAccess(*line, is_write, wdata, rdata);
        if (done)
            eventq_.scheduleIn(params_.hit_latency, std::move(done));
        return;
    }

    ++misses_;

    // Evict the victim, writing dirty data down synchronously (timing of
    // the writeback proceeds independently of the demand access).
    Line& victim = victimFor(paddr);
    if (victim.valid && victim.dirty) {
        ++writebacks_;
        --dirty_lines_;
        next_.accessBlock(victim.tag, true, victim.data.data(), nullptr,
                          TrafficSource::CpuWriteback, nullptr);
    }

    // Fill from the next level (write-allocate). Data arrives
    // functionally at call time; install it, then apply this access.
    victim.valid = true;
    victim.tag = paddr;
    victim.dirty = false;
    victim.lru = ++lru_clock_;

    // Apply the access functionally after the fill lands in the line.
    // The fill's rdata target is the line itself.
    auto chain = [this, done = std::move(done)]() mutable {
        if (done)
            eventq_.scheduleIn(params_.hit_latency, std::move(done));
    };
    next_.accessBlock(paddr, false, nullptr, victim.data.data(),
                      source, std::move(chain));

    if (is_write) {
        std::memcpy(victim.data.data(), wdata, kBlockSize);
        victim.dirty = true;
        ++dirty_lines_;
    } else {
        std::memcpy(rdata, victim.data.data(), kBlockSize);
    }
}

Tick
Cache::tryAccessFast(Addr paddr, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata, TrafficSource source)
{
    panic_if(paddr % kBlockSize != 0, "unaligned cache access");

    Line* line = lookup(paddr);
    if (line != nullptr) {
        ++hits_;
        applyAccess(*line, is_write, wdata, rdata);
        return params_.hit_latency;
    }

    // A miss stays fast only when it is pure cache-to-cache traffic: a
    // clean (or invalid) victim and a fill that resolves fast below. The
    // victim is probed *before* any mutation, and the fill target is the
    // victim line itself, which a refusing level leaves untouched — so
    // bailing out here is free of side effects and the caller can replay
    // the access on the event path.
    Line& victim = victimFor(paddr);
    if (victim.valid && victim.dirty)
        return kNoFastPath;
    const Tick fill_latency = next_.tryAccessFast(
        paddr, false, nullptr, victim.data.data(), source);
    if (fill_latency == kNoFastPath)
        return kNoFastPath;

    ++misses_;
    victim.valid = true;
    victim.tag = paddr;
    victim.dirty = false;
    victim.lru = ++lru_clock_;
    if (is_write) {
        std::memcpy(victim.data.data(), wdata, kBlockSize);
        victim.dirty = true;
        ++dirty_lines_;
    } else {
        std::memcpy(rdata, victim.data.data(), kBlockSize);
    }
    // Same charge as the event path: the fill completes below, then this
    // level's own access time elapses before the requester continues.
    return fill_latency + params_.hit_latency;
}

void
Cache::flushDirty(std::function<void()> done)
{
    panic_if(flush_outstanding_ != 0 || flush_done_,
             "overlapping cache flushes");

    // Checkpoint flushes on an already-clean cache are common in
    // page-dominated phases; skip the line scan entirely.
    if (dirty_lines_ == 0) {
        if (done)
            eventq_.scheduleIn(0, std::move(done));
        return;
    }

    // Issue a clean-without-invalidate writeback for every dirty block.
    // All writebacks are issued in one pass; the member counter fires
    // the continuation once the next level has acknowledged each.
    flush_done_ = std::move(done);
    flush_all_issued_ = false;

    for (auto& line : lines_) {
        if (!line.valid || !line.dirty)
            continue;
        line.dirty = false;
        --dirty_lines_;
        ++flush_writebacks_;
        ++flush_outstanding_;
        next_.accessBlock(line.tag, true, line.data.data(), nullptr,
                          TrafficSource::CpuWriteback,
                          [this] { flushAck(); });
        if (dirty_lines_ == 0)
            break;
    }

    flush_all_issued_ = true;
    if (flush_outstanding_ == 0 && flush_done_) {
        auto cb = std::move(flush_done_);
        flush_done_ = nullptr;
        eventq_.scheduleIn(0, std::move(cb));
    }
}

void
Cache::flushAck()
{
    panic_if(flush_outstanding_ == 0, "flush ack underflow");
    --flush_outstanding_;
    if (flush_all_issued_ && flush_outstanding_ == 0 && flush_done_) {
        auto cb = std::move(flush_done_);
        flush_done_ = nullptr;
        cb();
    }
}

void
Cache::invalidateAll()
{
    for (auto& line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
    dirty_lines_ = 0;
    // Power loss also abandons any in-flight flush: the acknowledgment
    // events died with the queue, so the fan-in state must not survive
    // into the next life of this cache.
    flush_outstanding_ = 0;
    flush_all_issued_ = false;
    flush_done_ = nullptr;
}

} // namespace thynvm
