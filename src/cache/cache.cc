/**
 * @file
 * Cache level implementation.
 */

#include "cache/cache.hh"

#include <memory>

#include "common/logging.hh"

namespace thynvm {

Cache::Cache(EventQueue& eq, std::string name, const Params& params,
             BlockAccessor& next)
    : SimObject(eq, std::move(name)), params_(params), next_(next)
{
    fatal_if(params_.size % (params_.assoc * kBlockSize) != 0,
             "cache size must be a multiple of assoc * block size");
    num_sets_ = params_.size / (params_.assoc * kBlockSize);
    fatal_if(!isPowerOfTwo(num_sets_), "cache must have 2^n sets");
    lines_.resize(num_sets_ * params_.assoc);

    stats().addScalar("hits", &hits_, "block accesses that hit");
    stats().addScalar("misses", &misses_, "block accesses that missed");
    stats().addScalar("writebacks", &writebacks_,
                      "dirty victim writebacks");
    stats().addScalar("flush_writebacks", &flush_writebacks_,
                      "dirty blocks cleaned by checkpoint flushes");
    stats().addFormula(
        "miss_rate",
        [this] {
            double total = hits_.value() + misses_.value();
            return total > 0 ? misses_.value() / total : 0.0;
        },
        "fraction of accesses that missed");
}

std::size_t
Cache::setIndex(Addr paddr) const
{
    return static_cast<std::size_t>(blockIndex(paddr)) & (num_sets_ - 1);
}

Cache::Line*
Cache::lookup(Addr paddr)
{
    const std::size_t base = setIndex(paddr) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line& line = lines_[base + w];
        if (line.valid && line.tag == paddr)
            return &line;
    }
    return nullptr;
}

Cache::Line&
Cache::victimFor(Addr paddr)
{
    const std::size_t base = setIndex(paddr) * params_.assoc;
    Line* victim = &lines_[base];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line& line = lines_[base + w];
        if (!line.valid)
            return line;
        if (line.lru < victim->lru)
            victim = &line;
    }
    return *victim;
}

void
Cache::accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                   std::uint8_t* rdata, TrafficSource source,
                   std::function<void()> done)
{
    panic_if(paddr % kBlockSize != 0, "unaligned cache access");

    Line* line = lookup(paddr);
    if (line != nullptr) {
        ++hits_;
        line->lru = ++lru_clock_;
        if (is_write) {
            std::memcpy(line->data.data(), wdata, kBlockSize);
            if (!line->dirty) {
                line->dirty = true;
                ++dirty_lines_;
            }
        } else {
            std::memcpy(rdata, line->data.data(), kBlockSize);
        }
        if (done)
            eventq_.scheduleIn(params_.hit_latency, std::move(done));
        return;
    }

    ++misses_;

    // Evict the victim, writing dirty data down synchronously (timing of
    // the writeback proceeds independently of the demand access).
    Line& victim = victimFor(paddr);
    if (victim.valid && victim.dirty) {
        ++writebacks_;
        --dirty_lines_;
        next_.accessBlock(victim.tag, true, victim.data.data(), nullptr,
                          TrafficSource::CpuWriteback, nullptr);
    }

    // Fill from the next level (write-allocate). Data arrives
    // functionally at call time; install it, then apply this access.
    victim.valid = true;
    victim.tag = paddr;
    victim.dirty = false;
    victim.lru = ++lru_clock_;

    // Apply the access functionally after the fill lands in the line.
    // The fill's rdata target is the line itself.
    auto chain = [this, done = std::move(done)]() mutable {
        if (done)
            eventq_.scheduleIn(params_.hit_latency, std::move(done));
    };
    next_.accessBlock(paddr, false, nullptr, victim.data.data(),
                      source, std::move(chain));

    if (is_write) {
        std::memcpy(victim.data.data(), wdata, kBlockSize);
        victim.dirty = true;
        ++dirty_lines_;
    } else {
        std::memcpy(rdata, victim.data.data(), kBlockSize);
    }
}

void
Cache::flushDirty(std::function<void()> done)
{
    // Checkpoint flushes on an already-clean cache are common in
    // page-dominated phases; skip the line scan entirely.
    if (dirty_lines_ == 0) {
        if (done)
            eventq_.scheduleIn(0, std::move(done));
        return;
    }

    // Issue a clean-without-invalidate writeback for every dirty block.
    // All writebacks are issued in one pass; a shared counter fires the
    // continuation once the next level has acknowledged each of them.
    auto outstanding = std::make_shared<std::size_t>(0);
    auto all_issued = std::make_shared<bool>(false);
    auto fire = std::make_shared<std::function<void()>>(std::move(done));

    auto on_ack = [outstanding, all_issued, fire] {
        panic_if(*outstanding == 0, "flush ack underflow");
        --*outstanding;
        if (*all_issued && *outstanding == 0 && *fire) {
            auto cb = std::move(*fire);
            *fire = nullptr;
            cb();
        }
    };

    for (auto& line : lines_) {
        if (!line.valid || !line.dirty)
            continue;
        line.dirty = false;
        --dirty_lines_;
        ++flush_writebacks_;
        ++*outstanding;
        next_.accessBlock(line.tag, true, line.data.data(), nullptr,
                          TrafficSource::CpuWriteback, on_ack);
        if (dirty_lines_ == 0)
            break;
    }

    *all_issued = true;
    if (*outstanding == 0 && *fire) {
        auto cb = std::move(*fire);
        *fire = nullptr;
        eventq_.scheduleIn(0, std::move(cb));
    }
}

void
Cache::invalidateAll()
{
    for (auto& line : lines_) {
        line.valid = false;
        line.dirty = false;
    }
    dirty_lines_ = 0;
}

} // namespace thynvm
