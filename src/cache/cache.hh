/**
 * @file
 * A set-associative writeback cache level.
 *
 * Matches the paper's Table 2 hierarchy when configured by the system
 * builder (L1 32 KB/8-way, L2 256 KB/8-way, L3 2 MB/16-way, 64 B blocks,
 * LRU). Functional semantics follow the BlockAccessor contract: data
 * moves synchronously at call time, callbacks model timing, so the
 * hierarchy is always functionally coherent.
 *
 * Checkpointing support: flushDirty() cleans every dirty block by
 * writing it to the next level *without invalidating* it, mirroring the
 * CLWB-style flush the paper uses (§4.4).
 */

#ifndef THYNVM_CACHE_CACHE_HH
#define THYNVM_CACHE_CACHE_HH

#include <array>
#include <cstring>
#include <vector>

#include "mem/block_accessor.hh"
#include "sim/sim_object.hh"

namespace thynvm {

/**
 * One level of a writeback, write-allocate cache hierarchy.
 */
class Cache : public SimObject, public BlockAccessor
{
  public:
    /** Static cache geometry and timing. */
    struct Params
    {
        std::size_t size = 32 * 1024;  //!< capacity in bytes
        unsigned assoc = 8;            //!< associativity
        Tick hit_latency = kNanosecond; //!< tag+data access time
    };

    /**
     * @param eq event queue.
     * @param name instance name.
     * @param params geometry and timing.
     * @param next next level (another Cache or a MemController).
     */
    Cache(EventQueue& eq, std::string name, const Params& params,
          BlockAccessor& next);

    /** See BlockAccessor. @p paddr must be block aligned. */
    void accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata, TrafficSource source,
                     std::function<void()> done) override;

    /**
     * Synchronous fast path (see BlockAccessor): answers on a hit, or on
     * a miss whose victim is clean and whose fill resolves fast in the
     * level below. Dirty-victim misses refuse — the writeback must be
     * staged as timed device traffic on the event path.
     */
    Tick tryAccessFast(Addr paddr, bool is_write, const std::uint8_t* wdata,
                       std::uint8_t* rdata, TrafficSource source) override;

    /** Functional read observing this level's lines first. */
    void
    functionalReadBlock(Addr paddr, std::uint8_t* buf) override
    {
        if (const Line* line = lookup(paddr)) {
            std::memcpy(buf, line->data.data(), kBlockSize);
            return;
        }
        next_.functionalReadBlock(paddr, buf);
    }

    /**
     * Write every dirty block back to the next level and mark it clean,
     * keeping the data valid (flush without invalidate). @p done fires
     * when all writebacks have been acknowledged by the next level.
     */
    void flushDirty(std::function<void()> done);

    /** Drop all contents without writeback (power loss). */
    void invalidateAll();

    /** Number of dirty blocks currently held. O(1). */
    std::size_t dirtyBlockCount() const { return dirty_lines_; }

    /**
     * Enumerate the block addresses of all valid dirty lines as
     * fn(paddr). The functional view overlays cache contents on the
     * controller image, so touched-range enumeration must include
     * dirty blocks (clean lines mirror the controller and need no
     * report).
     */
    template <typename Fn>
    void
    forEachDirtyBlock(Fn&& fn) const
    {
        for (const Line& line : lines_) {
            if (line.valid && line.dirty)
                fn(line.tag);
        }
    }

    /** Cache geometry. */
    const Params& params() const { return params_; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
        std::array<std::uint8_t, kBlockSize> data{};
    };

    std::size_t setIndex(Addr paddr) const;
    Line* lookup(Addr paddr);
    /** Choose a victim line in the set containing @p paddr. */
    Line& victimFor(Addr paddr);
    /** Apply a hit access to @p line (LRU bump, data copy, dirty). */
    void applyAccess(Line& line, bool is_write, const std::uint8_t* wdata,
                     std::uint8_t* rdata);
    /** One flush writeback acknowledged by the next level. */
    void flushAck();

    Params params_;
    BlockAccessor& next_;
    std::size_t num_sets_;
    std::vector<Line> lines_;
    std::uint64_t lru_clock_ = 0;
    /** Running count of valid dirty lines; keeps flushes on clean
     *  caches and dirtyBlockCount() O(1). */
    std::size_t dirty_lines_ = 0;

    /** In-flight flushDirty() fan-in; at most one flush runs at a time. */
    std::size_t flush_outstanding_ = 0;
    bool flush_all_issued_ = false;
    std::function<void()> flush_done_;

    stats::Scalar hits_;
    stats::Scalar misses_;
    stats::Scalar writebacks_;
    stats::Scalar flush_writebacks_;
};

} // namespace thynvm

#endif // THYNVM_CACHE_CACHE_HH
