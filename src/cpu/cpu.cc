/**
 * @file
 * TraceCpu implementation.
 */

#include "cpu/cpu.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace thynvm {

namespace {

bool
fastPathDisabledByEnv()
{
    const char* v = std::getenv("THYNVM_NO_FAST_PATH");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

} // namespace

TraceCpu::TraceCpu(EventQueue& eq, std::string name, const Params& params,
                   BlockAccessor& mem, Workload& workload)
    : SimObject(eq, std::move(name)),
      params_(params),
      mem_(mem),
      workload_(workload),
      step_event_([this] { step(); }),
      op_complete_event_([this] { opComplete(); }),
      piece_event_([this] { issueNextPiece(); })
{
    op_buf_.resize(params_.max_op_bytes);
    fast_path_enabled_ = params_.use_fast_path && !fastPathDisabledByEnv();
    stats().addScalar("instructions", &instructions_,
                      "instructions retired");
    stats().addScalar("loads", &loads_, "load operations executed");
    stats().addScalar("stores", &stores_, "store operations executed");
    stats().addScalar("mem_stall_time", &mem_stall_time_,
                      "ticks stalled on memory");
    stats().addScalar("paused_time", &paused_time_,
                      "ticks paused for checkpoint flushes");
}

void
TraceCpu::start()
{
    panic_if(started_, "CPU started twice");
    started_ = true;
    eventq_.schedule(step_event_, curTick());
}

void
TraceCpu::step()
{
    if (paused_) {
        // Park; resume() will restart the pipeline.
        busy_ = false;
        return;
    }
    if (finished_)
        return;

    if (!workload_.next(cur_op_)) {
        finished_ = true;
        busy_ = false;
        if (on_finished_)
            on_finished_();
        return;
    }

    switch (cur_op_.kind) {
      case WorkOp::Kind::Compute: {
        busy_ = true;
        instructions_ += static_cast<double>(cur_op_.count);
        eventq_.schedule(op_complete_event_,
                         curTick() + cur_op_.count * params_.cycle_period);
        return;
      }
      case WorkOp::Kind::Load:
      case WorkOp::Kind::Store: {
        panic_if(cur_op_.size == 0 || cur_op_.size > params_.max_op_bytes,
                 "memory op size %u out of range", cur_op_.size);
        panic_if(cur_op_.kind == WorkOp::Kind::Store &&
                     cur_op_.data == nullptr,
                 "store op without payload");
        busy_ = true;
        op_offset_ = 0;
        op_issue_tick_ = curTick();
        if (cur_op_.kind == WorkOp::Kind::Load)
            ++loads_;
        else
            ++stores_;
        issueNextPiece();
        return;
      }
    }
    panic("unhandled op kind");
}

bool
TraceCpu::chargeFastLatency()
{
    if (fast_lat_ == 0)
        return false;
    const Tick owed = fast_lat_;
    fast_lat_ = 0;
    eventq_.schedule(piece_event_, curTick() + owed);
    return true;
}

void
TraceCpu::issueNextPiece()
{
    // Consume pieces inline while they resolve fast in the hierarchy,
    // accumulating their latency into fast_lat_. Nothing else can touch
    // the caches mid-op (the core is blocking and pause() only lands at
    // op boundaries), so a fast piece has no externally visible timing:
    // charging the summed latency through one piece_event_ leaves every
    // stat and completion tick identical to the per-piece event path.
    while (op_offset_ < cur_op_.size) {
        const Addr byte_addr = cur_op_.addr + op_offset_;
        const Addr block_addr = blockAlign(byte_addr);
        const std::uint32_t in_block =
            static_cast<std::uint32_t>(byte_addr - block_addr);
        const std::uint32_t chunk = std::min<std::uint32_t>(
            cur_op_.size - op_offset_,
            static_cast<std::uint32_t>(kBlockSize) - in_block);

        // Once a checkpoint pause is pending, the op's completion will
        // run the flush machinery, whose same-tick event ordering must
        // match the event path exactly — finish the op on that path.
        if (!fast_path_enabled_ || paused_) {
            if (chargeFastLatency())
                return;
            issuePieceSlow(block_addr, in_block, chunk);
            return;
        }

        Tick piece_lat = kNoFastPath;
        if (cur_op_.kind == WorkOp::Kind::Load) {
            // Full-block pieces read straight into the op buffer; a
            // refusing hierarchy leaves the target untouched either way.
            const bool whole = in_block == 0 && chunk == kBlockSize;
            std::uint8_t* dst = whole ? op_buf_.data() + op_offset_
                                      : block_buf_.data();
            piece_lat = mem_.tryAccessFast(block_addr, false, nullptr,
                                           dst, TrafficSource::DemandRead);
            if (piece_lat != kNoFastPath && !whole) {
                std::memcpy(op_buf_.data() + op_offset_,
                            block_buf_.data() + in_block, chunk);
            }
        } else if (chunk == kBlockSize) {
            piece_lat = mem_.tryAccessFast(block_addr, true,
                                           cur_op_.data + op_offset_,
                                           nullptr,
                                           TrafficSource::CpuWriteback);
        } else {
            // Partial store: fast only when the write-allocate fill is.
            // The fill installs the block at this level's L1, so the
            // merge write then hits unconditionally.
            const Tick read_lat = mem_.tryAccessFast(
                block_addr, false, nullptr, block_buf_.data(),
                TrafficSource::DemandRead);
            if (read_lat != kNoFastPath) {
                rmw_buf_ = block_buf_;
                std::memcpy(rmw_buf_.data() + in_block,
                            cur_op_.data + op_offset_, chunk);
                const Tick write_lat = mem_.tryAccessFast(
                    block_addr, true, rmw_buf_.data(), nullptr,
                    TrafficSource::CpuWriteback);
                panic_if(write_lat == kNoFastPath,
                         "merge store refused after its fill");
                piece_lat = read_lat + write_lat;
            }
        }

        if (piece_lat == kNoFastPath) {
            // The piece needs the event path. First replay any latency
            // owed for fast pieces, so this piece is issued at exactly
            // the tick the event path would have reached it (its device
            // enqueue tick is timing-visible). The re-entry re-probes
            // deterministically: cache state cannot change mid-op.
            if (chargeFastLatency())
                return;
            issuePieceSlow(block_addr, in_block, chunk);
            return;
        }

        fast_lat_ += piece_lat;
        op_offset_ += chunk;
    }

    // Memory op complete; charge any latency still owed first.
    if (chargeFastLatency())
        return;
    if (cur_op_.kind == WorkOp::Kind::Load)
        workload_.deliver(op_buf_.data(), cur_op_.size);
    instructions_ += 1.0;
    mem_stall_time_ +=
        static_cast<double>(curTick() - op_issue_tick_);
    opComplete();
}

void
TraceCpu::issuePieceSlow(Addr block_addr, std::uint32_t in_block,
                         std::uint32_t chunk)
{
    if (cur_op_.kind == WorkOp::Kind::Load) {
        // Read the block; data lands functionally at call time.
        mem_.accessBlock(block_addr, false, nullptr, block_buf_.data(),
                         TrafficSource::DemandRead,
                         [this] { issueNextPiece(); });
        std::memcpy(op_buf_.data() + op_offset_,
                    block_buf_.data() + in_block, chunk);
        op_offset_ += chunk;
        return;
    }

    // Store: full-block pieces write directly; partial pieces perform a
    // read-modify-write (the write-allocate fill).
    if (chunk == kBlockSize) {
        mem_.accessBlock(block_addr, true, cur_op_.data + op_offset_,
                         nullptr, TrafficSource::CpuWriteback,
                         [this] { issueNextPiece(); });
        op_offset_ += chunk;
        return;
    }

    // The merged block is built now, from fill data that arrives
    // functionally at call time; the callback only replays it, so its
    // correctness no longer depends on block_buf_ surviving until the
    // fill's timing completes.
    mem_.accessBlock(block_addr, false, nullptr, block_buf_.data(),
                     TrafficSource::DemandRead, [this, block_addr] {
                         // Timing of the merge write chains after the
                         // fill.
                         mem_.accessBlock(block_addr, true,
                                          rmw_buf_.data(), nullptr,
                                          TrafficSource::CpuWriteback,
                                          [this] { issueNextPiece(); });
                     });
    rmw_buf_ = block_buf_;
    std::memcpy(rmw_buf_.data() + in_block, cur_op_.data + op_offset_,
                chunk);
    op_offset_ += chunk;
}

void
TraceCpu::opComplete()
{
    busy_ = false;
    if (paused_) {
        if (pause_cb_) {
            auto cb = std::move(pause_cb_);
            pause_cb_ = nullptr;
            pause_start_ = curTick();
            cb();
        }
        return;
    }
    eventq_.schedule(step_event_, curTick() + params_.cycle_period);
}

void
TraceCpu::pause(std::function<void()> on_paused)
{
    panic_if(paused_, "nested CPU pause");
    paused_ = true;
    if (busy_) {
        pause_cb_ = std::move(on_paused);
    } else {
        pause_start_ = curTick();
        eventq_.scheduleIn(0, std::move(on_paused));
    }
}

void
TraceCpu::resume()
{
    panic_if(!paused_, "resume without pause");
    paused_ = false;
    paused_time_ += static_cast<double>(curTick() - pause_start_);
    if (!busy_ && !finished_) {
        // A step parked by pause() may still be queued; replace it so
        // exactly one step fires, a full cycle after the resume.
        eventq_.deschedule(step_event_);
        eventq_.schedule(step_event_, curTick() + params_.cycle_period);
    }
}

std::vector<std::uint8_t>
TraceCpu::archState() const
{
    std::vector<std::uint8_t> wl = workload_.snapshot();
    std::vector<std::uint8_t> blob(16 + wl.size());
    const std::uint64_t insts = instructions();
    const std::uint64_t wl_size = wl.size();
    std::memcpy(blob.data(), &insts, 8);
    std::memcpy(blob.data() + 8, &wl_size, 8);
    std::memcpy(blob.data() + 16, wl.data(), wl.size());
    return blob;
}

void
TraceCpu::restoreArchState(const std::vector<std::uint8_t>& blob)
{
    panic_if(blob.size() < 16, "short CPU state blob");
    std::uint64_t insts = 0;
    std::uint64_t wl_size = 0;
    std::memcpy(&insts, blob.data(), 8);
    std::memcpy(&wl_size, blob.data() + 8, 8);
    panic_if(blob.size() != 16 + wl_size, "corrupt CPU state blob");
    instructions_ = static_cast<double>(insts);
    workload_.restore(std::vector<std::uint8_t>(blob.begin() + 16,
                                                blob.end()));
    finished_ = false;
    busy_ = false;
    paused_ = false;
    fast_lat_ = 0;
}

} // namespace thynvm
