/**
 * @file
 * In-order blocking CPU model.
 *
 * Matches the paper's processor configuration: a 3 GHz in-order core.
 * Non-memory instructions retire at one per cycle; memory operations
 * block until the cache hierarchy completes them. The core can be paused
 * for checkpoint flushes and snapshots/restores its architectural state
 * (which includes the workload generator state) across crashes.
 */

#ifndef THYNVM_CPU_CPU_HH
#define THYNVM_CPU_CPU_HH

#include <vector>

#include "cpu/workload.hh"
#include "mem/block_accessor.hh"
#include "sim/sim_object.hh"

namespace thynvm {

/**
 * A trace/generator-driven in-order core.
 */
class TraceCpu : public SimObject
{
  public:
    /** CPU configuration. */
    struct Params
    {
        /** Cycle time; 333 ps approximates 3 GHz. */
        Tick cycle_period = 333;
        /** Largest single memory operation the core will split. */
        std::uint32_t max_op_bytes = 8192;
        /**
         * Consume cache-hit pieces through tryAccessFast(), charging the
         * accumulated latency with one event per op. Timing and stats
         * are identical either way (enforced by the equivalence tests);
         * the env var THYNVM_NO_FAST_PATH=1 also forces the event path.
         */
        bool use_fast_path = true;
    };

    TraceCpu(EventQueue& eq, std::string name, const Params& params,
             BlockAccessor& mem, Workload& workload);

    /** Begin executing the workload. */
    void start();

    /** True once the workload's op stream is exhausted. */
    bool finished() const { return finished_; }

    /** Instructions retired so far. */
    std::uint64_t instructions() const
    {
        return static_cast<std::uint64_t>(instructions_.value());
    }

    /** Total ticks spent waiting on memory operations. */
    Tick memStallTime() const
    {
        return static_cast<Tick>(mem_stall_time_.value());
    }

    /**
     * Pause the core at the next instruction boundary (used by the
     * checkpoint flush). @p on_paused fires once the core is idle.
     */
    void pause(std::function<void()> on_paused);

    /** Resume after pause(). */
    void resume();

    /** Ticks the core has spent paused for checkpoint flushes. */
    Tick pausedTime() const
    {
        return static_cast<Tick>(paused_time_.value());
    }

    /**
     * Architectural state blob: registers are abstracted as the retired
     * instruction count plus the workload generator snapshot.
     */
    std::vector<std::uint8_t> archState() const;

    /** Restore state saved by archState() (post-recovery resume). */
    void restoreArchState(const std::vector<std::uint8_t>& blob);

    /** Register a callback fired when the workload finishes. */
    void setFinishedCallback(std::function<void()> cb)
    {
        on_finished_ = std::move(cb);
    }

  private:
    /** Fetch and begin the next operation. */
    void step();
    /** Finish the current op and continue (or honor a pending pause). */
    void opComplete();
    /** Issue the next block-granularity piece of the current memory op. */
    void issueNextPiece();
    /** Issue one piece on the event path (fast path refused/disabled). */
    void issuePieceSlow(Addr block_addr, std::uint32_t in_block,
                        std::uint32_t chunk);
    /**
     * Charge latency accumulated by fast pieces: re-enter
     * issueNextPiece() once it has elapsed. Exactly one event fires per
     * uninterrupted run of fast pieces, at the tick the event path
     * would have reached the same point.
     */
    bool chargeFastLatency();

    Params params_;
    BlockAccessor& mem_;
    Workload& workload_;

    /** Reusable pipeline events: the callbacks never change, so the
     *  per-cycle step/complete chain schedules with zero setup cost. */
    Event step_event_;
    Event op_complete_event_;
    /** Resumes issueNextPiece() after accumulated fast-path latency. */
    Event piece_event_;

    bool started_ = false;
    bool finished_ = false;
    bool busy_ = false;   //!< an op is in flight
    bool paused_ = false;
    std::function<void()> pause_cb_;
    std::function<void()> on_finished_;
    Tick pause_start_ = 0;

    // Current memory op state.
    WorkOp cur_op_;
    std::uint32_t op_offset_ = 0;
    Tick op_issue_tick_ = 0;
    std::vector<std::uint8_t> op_buf_;
    std::array<std::uint8_t, kBlockSize> block_buf_{};
    /** Merged block of an in-flight partial-store read-modify-write.
     *  Built at issue time so no callback ever reads block_buf_ late. */
    std::array<std::uint8_t, kBlockSize> rmw_buf_{};
    /** Latency owed for fast pieces not yet charged via piece_event_. */
    Tick fast_lat_ = 0;
    /** Params::use_fast_path combined with the env override. */
    bool fast_path_enabled_ = true;

    stats::Scalar instructions_;
    stats::Scalar loads_;
    stats::Scalar stores_;
    stats::Scalar mem_stall_time_;
    stats::Scalar paused_time_;
};

} // namespace thynvm

#endif // THYNVM_CPU_CPU_HH
