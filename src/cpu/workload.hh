/**
 * @file
 * Interface between the CPU model and workload generators.
 *
 * A Workload produces a stream of operations (compute bursts, loads,
 * stores). Loads return data to the workload, so data-dependent
 * workloads (e.g., the key-value stores that live entirely in simulated
 * memory) are expressible. Workload-internal generator state (RNG,
 * counters) is part of the CPU architectural state for checkpointing:
 * snapshot()/restore() let a recovered system resume from the epoch
 * boundary exactly as the paper's model requires.
 */

#ifndef THYNVM_CPU_WORKLOAD_HH
#define THYNVM_CPU_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace thynvm {

class MemController;

/**
 * Zero-time byte-range read of the current architectural memory state
 * (through the cache hierarchy). Wired by the System.
 */
using FunctionalView =
    std::function<void(Addr addr, void* buf, std::size_t len)>;

/**
 * One operation produced by a workload.
 */
struct WorkOp
{
    enum class Kind : std::uint8_t
    {
        Compute, //!< @c count instructions of non-memory work
        Load,    //!< read @c size bytes at @c addr
        Store,   //!< write @c size bytes at @c addr from @c data
    };

    Kind kind = Kind::Compute;
    /** Instruction count for Compute ops. */
    std::uint64_t count = 1;
    /** Physical byte address for Load/Store. */
    Addr addr = 0;
    /** Access size in bytes for Load/Store (may span blocks). */
    std::uint32_t size = 0;
    /** Store payload; must stay valid until the op completes. */
    const std::uint8_t* data = nullptr;
};

/**
 * A generator of CPU operations.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /**
     * Called once before execution begins; typically installs the
     * workload's initial heap image via MemController::loadImage().
     */
    virtual void init(MemController& mem) { (void)mem; }

    /**
     * Produce the next operation into @p op.
     * @return false when the workload has finished.
     */
    virtual bool next(WorkOp& op) = 0;

    /** Deliver the bytes read by the most recent Load op. */
    virtual void deliver(const std::uint8_t* data, std::size_t len)
    {
        (void)data;
        (void)len;
    }

    /**
     * Serialize generator state (RNG, counters) for CPU-state
     * checkpointing. Data living in simulated memory is *not* included;
     * the memory system checkpoints it.
     */
    virtual std::vector<std::uint8_t> snapshot() const { return {}; }

    /** Restore generator state saved by snapshot(). */
    virtual void restore(const std::vector<std::uint8_t>& blob)
    {
        (void)blob;
    }

    /**
     * Install the functional memory view (set by the System before
     * execution). Data-dependent workloads use it to plan operations.
     * Virtual so wrapper workloads (e.g. the fuzzer's recording
     * wrapper) can forward the view to the workload they decorate.
     */
    virtual void setFunctionalView(FunctionalView view)
    {
        fview_ = std::move(view);
    }

  protected:
    FunctionalView fview_;
};

} // namespace thynvm

#endif // THYNVM_CPU_WORKLOAD_HH
