/**
 * @file
 * Crash-point instrumentation for the crash fuzzer.
 *
 * Controllers announce each named step of their checkpoint pipeline to
 * an attached CrashPointRegistry (MemController::crashPoint()). The
 * registry counts hits per site, so a fuzz driver can (a) enumerate
 * every reachable crash site of a workload by running it once with an
 * unarmed registry, and (b) arm a precise crash plan — "the Nth hit of
 * site S, plus D ticks" — and replay the identical run to it.
 *
 * Crash plans are expressed in (site, hit ordinal, tick delta) rather
 * than executed-event counts on purpose: event counts differ between
 * the synchronous hit fast path and the event path, while site hit
 * ordinals and ticks are part of simulated behavior and therefore
 * identical in both modes (the fast-path equivalence contract). This
 * is what lets crash/recovery shapes run under the equivalence suite.
 *
 * The registry is deliberately passive: firing never crashes anything
 * by itself. The driver polls fired(), drains every event up to
 * crashTick(), and then calls System::crash(), so the power failure
 * always lands on a tick boundary.
 *
 * Header-only and dependency-free (below the mem layer) so that
 * MemController can include it; the fuzz driver library proper lives
 * in fuzzer.hh/.cc above the harness layer.
 */

#ifndef THYNVM_FUZZ_CRASH_POINTS_HH
#define THYNVM_FUZZ_CRASH_POINTS_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/types.hh"

namespace thynvm {

/**
 * Counts crash-site announcements and fires an armed crash plan.
 */
class CrashPointRegistry
{
  public:
    /** Per-site hit statistics from one run. */
    struct SiteStats
    {
        std::uint64_t hits = 0;
        Tick first_tick = 0;
        Tick last_tick = 0;
    };

    /**
     * Arm a crash plan: fire at the @p hit_no -th hit (1-based) of
     * @p site; the crash tick is that hit's tick plus @p delta.
     */
    void
    arm(std::string site, std::uint64_t hit_no, Tick delta)
    {
        armed_site_ = std::move(site);
        armed_hit_ = hit_no;
        delta_ = delta;
        armed_ = true;
        fired_ = false;
        fired_tick_ = 0;
    }

    /**
     * Announce one hit of @p site at tick @p now (controllers only).
     *
     * Thread-safe: with a multi-channel System on the sharded kernel,
     * channel shards announce their (channel-prefixed) sites from
     * different worker threads. Site names are single-shard — each
     * channel prefixes its own — so per-site hit ordinals stay
     * deterministic; the lock only protects the shared map. Drivers
     * read fired()/sites() after the kernel run has joined.
     */
    void
    hit(const char* site, Tick now)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        SiteStats& s = sites_[site];
        if (s.hits == 0)
            s.first_tick = now;
        ++s.hits;
        s.last_tick = now;
        if (armed_ && !fired_ && s.hits == armed_hit_ &&
            armed_site_ == site) {
            fired_ = true;
            fired_tick_ = now;
        }
    }

    /** True once the armed plan's hit has occurred. */
    bool fired() const { return fired_; }
    /** Tick of the firing hit (valid once fired()). */
    Tick firedTick() const { return fired_tick_; }
    /** Tick at which the driver should crash (valid once fired()). */
    Tick crashTick() const { return fired_tick_ + delta_; }

    /** All sites hit so far, with counts and tick ranges. */
    const std::map<std::string, SiteStats>& sites() const
    {
        return sites_;
    }

    /** Forget all counts and any armed plan (fresh enumeration run). */
    void
    reset()
    {
        sites_.clear();
        armed_ = false;
        fired_ = false;
        fired_tick_ = 0;
    }

  private:
    std::mutex mutex_;
    std::map<std::string, SiteStats> sites_;
    std::string armed_site_;
    std::uint64_t armed_hit_ = 0;
    Tick delta_ = 0;
    bool armed_ = false;
    bool fired_ = false;
    Tick fired_tick_ = 0;
};

} // namespace thynvm

#endif // THYNVM_FUZZ_CRASH_POINTS_HH
