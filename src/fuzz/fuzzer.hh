/**
 * @file
 * Crash-point fuzzer with a differential recovery oracle.
 *
 * Each fuzz case runs a seeded workload on one of the evaluated systems
 * until an armed crash site fires, pulls the plug, reboots a fresh
 * System on the surviving NVM image, and checks recovery against a
 * golden epoch model recomputed in plain C++ from the recorded store
 * trace:
 *
 *   A. The recovered memory image must equal the golden image of the
 *      restored epoch boundary (base image + all stores with op index
 *      below the restored op count).
 *   B. The restored op count must be a snapshot the CPU actually took
 *      at an epoch boundary, and at least as recent as the last commit
 *      observed before the crash (no lost or stale checkpoints).
 *   C. Execution resumed from the recovered state must run to
 *      completion, and the final image must equal the golden prefix
 *      plus every store recorded after recovery.
 *
 * Every failing case prints a one-line repro string that replays the
 * identical crash deterministically (see formatRepro()).
 */

#ifndef THYNVM_FUZZ_FUZZER_HH
#define THYNVM_FUZZ_FUZZER_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fuzz/crash_points.hh"
#include "harness/system.hh"
#include "workloads/micro.hh"

namespace thynvm {
namespace fuzz {

/** One store op captured from the workload stream. */
struct StoreRecord
{
    /** Index of the op in the workload's op stream (0-based). */
    std::uint64_t op_index;
    Addr addr;
    std::uint32_t size;
    std::vector<std::uint8_t> data;
};

/**
 * Decorator that records the store trace and op counts of the workload
 * it wraps, and embeds the op count in the snapshot blob so the oracle
 * can tell exactly which epoch boundary a recovery restored.
 */
class RecordingWorkload : public Workload
{
  public:
    explicit RecordingWorkload(Workload& inner) : inner_(inner) {}

    void init(MemController& mem) override { inner_.init(mem); }

    bool
    next(WorkOp& op) override
    {
        if (!inner_.next(op))
            return false;
        if (op.kind == WorkOp::Kind::Store) {
            StoreRecord rec;
            rec.op_index = ops_;
            rec.addr = op.addr;
            rec.size = op.size;
            rec.data.assign(op.data, op.data + op.size);
            stores_.push_back(std::move(rec));
        }
        ++ops_;
        return true;
    }

    void deliver(const std::uint8_t* data, std::size_t len) override
    {
        inner_.deliver(data, len);
    }

    /** Snapshot blob: [u64 op count][inner blob]. */
    std::vector<std::uint8_t> snapshot() const override;
    void restore(const std::vector<std::uint8_t>& blob) override;

    void setFunctionalView(FunctionalView view) override
    {
        inner_.setFunctionalView(std::move(view));
    }

    /** Ops produced so far (counts restored ops after a restore()). */
    std::uint64_t opCount() const { return ops_; }
    /** Stores recorded in this life, in issue order. */
    const std::vector<StoreRecord>& stores() const { return stores_; }
    /** Op counts captured by each snapshot() call, in order. */
    const std::vector<std::uint64_t>& snapshotCounts() const
    {
        return snapshot_counts_;
    }
    /** True once restore() ran. */
    bool wasRestored() const { return was_restored_; }
    /** Op count embedded in the restored blob. */
    std::uint64_t restoredCount() const { return restored_; }

  private:
    Workload& inner_;
    std::uint64_t ops_ = 0;
    std::uint64_t restored_ = 0;
    bool was_restored_ = false;
    std::vector<StoreRecord> stores_;
    mutable std::vector<std::uint64_t> snapshot_counts_;
};

/** Apply all stores with op_index < @p op_limit to @p image. */
void applyStores(std::vector<std::uint8_t>& image,
                 const std::vector<StoreRecord>& stores,
                 std::uint64_t op_limit);

/**
 * One fuzz case: everything needed to replay a crash deterministically.
 */
struct FuzzCase
{
    std::uint64_t seed = 1;
    /** Workload pattern: "rand", "stream", or "slide". */
    std::string workload = "rand";
    SystemKind system = SystemKind::ThyNvm;
    /** Crash plan: the @c hit -th announcement of @c site, + @c delta. */
    std::string site;
    std::uint64_t hit = 1;
    Tick delta = 0;
    /** Run with the synchronous hit fast path enabled. */
    bool fast_path = true;
    /**
     * Memory-channel count: 0 defers to THYNVM_CHANNELS (unset = 1),
     * matching SystemConfig. Only emitted into repro strings when
     * non-zero, so pre-existing repro lists are unchanged.
     */
    unsigned channels = 0;
};

/** One-line repro string, e.g.
 *  "seed=7:wl=rand:sys=thynvm:site=ckpt.persist_btt:hit=2:delta=0:fp=on"
 */
std::string formatRepro(const FuzzCase& c);
/** Parse formatRepro() output. @return false on malformed input. */
bool parseRepro(const std::string& repro, FuzzCase& out);

/** Short system name used in repro strings ("thynvm", "journal", ...). */
const char* systemToken(SystemKind kind);

/**
 * Simulation sizing shared by every case of a campaign. Small enough
 * that a single case (run + crash + recover + rerun) stays in the
 * millisecond range of host time.
 */
struct FuzzerConfig
{
    std::size_t phys_size = 1u << 20;
    std::size_t array_bytes = 256u << 10;
    std::uint64_t total_accesses = 6000;
    /**
     * Short epochs so even cache-friendly patterns cross several
     * boundaries (the sliding window runs almost entirely out of L1).
     */
    Tick epoch_length = 40 * kMicrosecond;
    std::size_t btt_entries = 256;
    std::size_t ptt_entries = 512;
    std::size_t overflow_entries = 8192;
    std::size_t overflow_stall_watermark = 2048;
    /** Sim-time cap for one life (first run or resumed run). */
    Tick run_limit = 100 * kMillisecond;
    /** Fault injection passthrough (fuzzer self-test; npos = off). */
    std::size_t debug_drop_btt_entry = static_cast<std::size_t>(-1);
};

/** MicroWorkload parameters for a case (seed + pattern). */
MicroWorkload::Params microParams(const FuzzerConfig& fc,
                                  std::uint64_t seed,
                                  const std::string& workload);

/** SystemConfig for a case (no registry attached). */
SystemConfig makeSystemConfig(const FuzzerConfig& fc, SystemKind kind,
                              bool fast_path, unsigned channels = 0);

enum class CaseStatus
{
    Ok,         //!< crash reached, recovery passed all oracle checks
    NotReached, //!< the armed crash plan never fired
    Violation,  //!< an oracle check failed
};

struct CaseResult
{
    CaseStatus status = CaseStatus::Ok;
    /** Human-readable description of the violation (empty if Ok). */
    std::string detail;
    /** Repro string for this case. */
    std::string repro;
    Tick crash_tick = 0;
    std::uint64_t commits_before = 0;
    std::uint64_t restored_ops = 0;
    /** Memory image right after recovery (empty if NotReached). */
    std::vector<std::uint8_t> recovered_image;
    /** Memory image after resumed execution finished. */
    std::vector<std::uint8_t> final_image;
};

/** Run one crash case end to end against the oracle. */
CaseResult runCrashCase(const FuzzerConfig& fc, const FuzzCase& c);

/**
 * Enumerate every crash site a profile run reaches (no crash), with
 * hit counts. The same seeded run replayed with an armed plan hits the
 * identical sequence.
 */
std::map<std::string, std::uint64_t>
enumerateSites(const FuzzerConfig& fc, std::uint64_t seed,
               const std::string& workload, SystemKind kind,
               bool fast_path, unsigned channels = 0);

/** Which cases a campaign covers. */
struct CampaignOptions
{
    std::vector<std::uint64_t> seeds = {1};
    std::vector<std::string> workloads = {"rand", "slide"};
    std::vector<SystemKind> systems = {SystemKind::ThyNvm,
                                       SystemKind::Journal,
                                       SystemKind::Shadow,
                                       SystemKind::Icl,
                                       SystemKind::Incremental};
    /** Run every case with fast path on and off. */
    bool both_fast_path_modes = false;
    /** Crash at the first and last hit of each site (else last only). */
    bool first_and_last_hit = true;
    /** Extra tick offsets past the firing hit. */
    std::vector<Tick> deltas = {0};
    /**
     * Memory-channel count for every case (0 = THYNVM_CHANNELS env;
     * see FuzzCase::channels). Multi-channel campaigns exercise the
     * cross-channel coordinator's crash-ordering windows — the
     * group.* barrier sites and every per-channel chN.* site.
     */
    unsigned channels = 0;
};

struct CampaignResult
{
    std::uint64_t cases = 0;
    std::uint64_t not_reached = 0;
    std::vector<CaseResult> violations;
    /** Distinct crash-site names reached, per system token. */
    std::map<std::string, std::set<std::string>> sites_by_system;
    /**
     * Repro string of every planned case, in plan order. The plan is a
     * pure function of the options, so this list is invariant across
     * host thread counts — pinned by crash_repro_test.
     */
    std::vector<std::string> repros;
};

/**
 * Run a full campaign: enumerate sites per (seed, workload, system,
 * mode), then crash at each planned (site, hit, delta). Violations are
 * printed to @p log (if non-null) in plan order, one repro string per
 * line.
 *
 * @param threads fan cases across this many host workers (each case
 *        owns its Systems outright). The campaign result — counts,
 *        violation list, site map, repro strings, log stream — is
 *        byte-identical for any thread count.
 */
CampaignResult runCampaign(const FuzzerConfig& fc,
                           const CampaignOptions& opts, std::ostream* log,
                           unsigned threads = 1);

} // namespace fuzz
} // namespace thynvm

#endif // THYNVM_FUZZ_FUZZER_HH
