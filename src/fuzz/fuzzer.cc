/**
 * @file
 * Crash fuzzer implementation.
 */

#include "fuzz/fuzzer.hh"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <sstream>

#include "common/parallel.hh"

namespace thynvm {
namespace fuzz {

// ---------------------------------------------------------------------
// RecordingWorkload.
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
RecordingWorkload::snapshot() const
{
    const std::vector<std::uint8_t> inner = inner_.snapshot();
    std::vector<std::uint8_t> blob(8 + inner.size());
    std::memcpy(blob.data(), &ops_, 8);
    std::memcpy(blob.data() + 8, inner.data(), inner.size());
    snapshot_counts_.push_back(ops_);
    return blob;
}

void
RecordingWorkload::restore(const std::vector<std::uint8_t>& blob)
{
    panic_if(blob.size() < 8, "recording snapshot too short");
    std::memcpy(&restored_, blob.data(), 8);
    inner_.restore(std::vector<std::uint8_t>(blob.begin() + 8,
                                             blob.end()));
    ops_ = restored_;
    was_restored_ = true;
}

void
applyStores(std::vector<std::uint8_t>& image,
            const std::vector<StoreRecord>& stores,
            std::uint64_t op_limit)
{
    for (const StoreRecord& s : stores) {
        if (s.op_index >= op_limit)
            break;
        panic_if(s.addr + s.size > image.size(),
                 "golden store out of range");
        std::memcpy(image.data() + s.addr, s.data.data(), s.size);
    }
}

// ---------------------------------------------------------------------
// Repro strings.
// ---------------------------------------------------------------------

const char*
systemToken(SystemKind kind)
{
    switch (kind) {
      case SystemKind::IdealDram: return "ideal-dram";
      case SystemKind::IdealNvm: return "ideal-nvm";
      case SystemKind::Journal: return "journal";
      case SystemKind::Shadow: return "shadow";
      case SystemKind::ThyNvm: return "thynvm";
      case SystemKind::Icl: return "icl";
      case SystemKind::Incremental: return "incremental";
    }
    return "unknown";
}

namespace {

bool
systemFromToken(const std::string& tok, SystemKind& out)
{
    for (SystemKind k : kAllSystemKinds) {
        if (tok == systemToken(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

} // namespace

std::string
formatRepro(const FuzzCase& c)
{
    std::ostringstream os;
    os << "seed=" << c.seed << ":wl=" << c.workload
       << ":sys=" << systemToken(c.system) << ":site=" << c.site
       << ":hit=" << c.hit << ":delta=" << c.delta
       << ":fp=" << (c.fast_path ? "on" : "off");
    // Only multi-channel cases carry the topology; the default (0,
    // env-deferred) keeps pre-existing repro lists byte-identical.
    if (c.channels != 0)
        os << ":ch=" << c.channels;
    return os.str();
}

bool
parseRepro(const std::string& repro, FuzzCase& out)
{
    FuzzCase c;
    bool have_seed = false, have_site = false;
    std::size_t pos = 0;
    while (pos <= repro.size()) {
        const std::size_t end = repro.find(':', pos);
        const std::string field =
            repro.substr(pos, end == std::string::npos ? std::string::npos
                                                       : end - pos);
        pos = end == std::string::npos ? repro.size() + 1 : end + 1;
        if (field.empty())
            continue;
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string key = field.substr(0, eq);
        const std::string val = field.substr(eq + 1);
        try {
            if (key == "seed") {
                c.seed = std::stoull(val);
                have_seed = true;
            } else if (key == "wl") {
                c.workload = val;
            } else if (key == "sys") {
                if (!systemFromToken(val, c.system))
                    return false;
            } else if (key == "site") {
                c.site = val;
                have_site = true;
            } else if (key == "hit") {
                c.hit = std::stoull(val);
            } else if (key == "delta") {
                c.delta = std::stoull(val);
            } else if (key == "fp") {
                if (val != "on" && val != "off")
                    return false;
                c.fast_path = (val == "on");
            } else if (key == "ch") {
                c.channels = static_cast<unsigned>(std::stoul(val));
            } else {
                return false;
            }
        } catch (...) {
            return false;
        }
    }
    if (!have_seed || !have_site)
        return false;
    out = c;
    return true;
}

// ---------------------------------------------------------------------
// Case setup.
// ---------------------------------------------------------------------

MicroWorkload::Params
microParams(const FuzzerConfig& fc, std::uint64_t seed,
            const std::string& workload)
{
    MicroWorkload::Params p;
    p.seed = seed;
    p.base = 0;
    p.array_bytes = fc.array_bytes;
    p.total_accesses = fc.total_accesses;
    if (workload == "stream") {
        p.pattern = MicroWorkload::Pattern::Streaming;
    } else if (workload == "slide") {
        // A tight window with many accesses per slide concentrates
        // stores so pages cross the promotion threshold, exercising the
        // page-writeback pipeline (and its crash sites).
        p.pattern = MicroWorkload::Pattern::Sliding;
        p.window_bytes = 8 * 1024;
        p.accesses_per_window = 256;
    } else {
        panic_if(workload != "rand", "unknown workload token '%s'",
                 workload.c_str());
        p.pattern = MicroWorkload::Pattern::Random;
    }
    return p;
}

SystemConfig
makeSystemConfig(const FuzzerConfig& fc, SystemKind kind, bool fast_path,
                 unsigned channels)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.channels = channels;
    cfg.phys_size = fc.phys_size;
    cfg.epoch_length = fc.epoch_length;
    cfg.thynvm.btt_entries = fc.btt_entries;
    cfg.thynvm.ptt_entries = fc.ptt_entries;
    cfg.thynvm.overflow_entries = fc.overflow_entries;
    cfg.thynvm.overflow_stall_watermark = fc.overflow_stall_watermark;
    cfg.thynvm.debug_drop_btt_entry = fc.debug_drop_btt_entry;
    cfg.cpu.use_fast_path = fast_path;
    // Small caches keep the epoch-boundary flush (and thus each case)
    // short without changing any crash-consistency behavior.
    cfg.l1 = Cache::Params{16 * 1024, 4, 4 * 333};
    cfg.l2 = Cache::Params{64 * 1024, 8, 12 * 333};
    cfg.l3 = Cache::Params{256 * 1024, 8, 28 * 333};
    return cfg;
}

// ---------------------------------------------------------------------
// One crash case.
// ---------------------------------------------------------------------

namespace {

/**
 * Read the full physical image through the system's functional view.
 * Only touched pages are pulled (untouched pages read zero by the
 * touched-set contract, and the buffer starts zeroed), so capture cost
 * scales with the workload footprint, not the machine size.
 */
std::vector<std::uint8_t>
captureImage(System& sys, std::size_t phys_size)
{
    std::vector<std::uint8_t> img(phys_size, 0);
    FunctionalView view = sys.functionalView();
    for (Addr page : sys.touchedPhysPages()) {
        const std::size_t len =
            std::min<std::size_t>(kPageSize, phys_size - page);
        view(page, img.data() + page, len);
    }
    return img;
}

/** First differing offset of two equal-sized images, or npos. */
std::size_t
firstMismatch(const std::vector<std::uint8_t>& a,
              const std::vector<std::uint8_t>& b)
{
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i])
            return i;
    }
    return static_cast<std::size_t>(-1);
}

} // namespace

CaseResult
runCrashCase(const FuzzerConfig& fc, const FuzzCase& c)
{
    CaseResult res;
    res.repro = formatRepro(c);

    const unsigned env_ch = channelsFromEnv();
    const unsigned eff_channels =
        c.channels != 0 ? c.channels : (env_ch != 0 ? env_ch : 1);

    // Life 1: run the seeded workload into the armed crash plan.
    MicroWorkload inner1(microParams(fc, c.seed, c.workload));
    RecordingWorkload wl1(inner1);
    SystemConfig cfg = makeSystemConfig(fc, c.system, c.fast_path,
                                        c.channels);
    CrashPointRegistry reg;
    reg.arm(c.site, c.hit, c.delta);
    cfg.crash_points = &reg;
    System sys(cfg, wl1);
    std::vector<std::uint8_t> base;
    std::shared_ptr<BackingStore> nvm;

    if (eff_channels == 1) {
        sys.start();
        base = captureImage(sys, fc.phys_size);
        EventQueue& eq = sys.eventq();
        while (!sys.finished() && !reg.fired() && !eq.empty() &&
               eq.now() < fc.run_limit) {
            eq.step();
        }
        if (!reg.fired()) {
            res.status = CaseStatus::NotReached;
            return res;
        }
        // Land the power failure on a tick boundary: drain every event
        // at or before the planned crash tick, then pull the plug.
        while (!eq.empty() && eq.nextTick() <= reg.crashTick())
            eq.step();
        res.crash_tick = eq.now();
        res.commits_before = sys.controller().completedEpochs();
        nvm = sys.crash();
    } else {
        // A multi-channel run executes on the sharded kernel, which
        // cannot be single-stepped against a fired() poll. Instead:
        // profile an identical armed run to completion to learn the
        // crash tick, then replay a fresh machine (the oracle's life 1)
        // deterministically up to exactly that tick.
        Tick cut;
        {
            CrashPointRegistry preg;
            preg.arm(c.site, c.hit, c.delta);
            MicroWorkload pinner(microParams(fc, c.seed, c.workload));
            RecordingWorkload pwl(pinner);
            SystemConfig pcfg = makeSystemConfig(fc, c.system,
                                                 c.fast_path, c.channels);
            pcfg.crash_points = &preg;
            System psys(pcfg, pwl);
            psys.start();
            psys.run(fc.run_limit);
            if (!preg.fired() || preg.crashTick() >= fc.run_limit) {
                res.status = CaseStatus::NotReached;
                return res;
            }
            cut = preg.crashTick();
        }
        sys.start();
        base = captureImage(sys, fc.phys_size);
        sys.runTo(cut);
        res.crash_tick = sys.eventq().now();
        res.commits_before = sys.controller().completedEpochs();
        nvm = sys.crash();
    }

    // Life 2: reboot on the surviving NVM image and recover.
    MicroWorkload inner2(microParams(fc, c.seed, c.workload));
    RecordingWorkload wl2(inner2);
    SystemConfig cfg2 = makeSystemConfig(fc, c.system, c.fast_path,
                                         c.channels);
    System sys2(cfg2, wl2, std::move(nvm));
    sys2.recoverAndResume();

    const std::uint64_t restored =
        wl2.wasRestored() ? wl2.restoredCount() : 0;
    res.restored_ops = restored;

    // Check B: the restored op count must be a snapshot actually taken
    // at an epoch boundary, no older than the last commit seen before
    // the crash. (A commit whose header became durable right at the
    // crash tick may be ahead of the completed-epochs counter, so
    // membership in the snapshot list is the ground truth.)
    const std::vector<std::uint64_t>& snaps = wl1.snapshotCounts();
    bool ok_b;
    if (restored == 0) {
        ok_b = res.commits_before == 0;
    } else {
        ok_b = std::find(snaps.begin(), snaps.end(), restored) !=
               snaps.end();
        if (ok_b && res.commits_before > 0) {
            panic_if(res.commits_before > snaps.size(),
                     "more commits than snapshots");
            ok_b = restored >= snaps[res.commits_before - 1];
        }
    }
    if (!ok_b) {
        std::ostringstream os;
        os << "restored op count " << restored
           << " is not a committed epoch boundary (commits before crash: "
           << res.commits_before << ")";
        res.status = CaseStatus::Violation;
        res.detail = os.str();
        return res;
    }

    // Check A: recovered image == golden image of the restored epoch.
    std::vector<std::uint8_t> golden = base;
    applyStores(golden, wl1.stores(), restored);
    res.recovered_image = captureImage(sys2, fc.phys_size);
    if (res.recovered_image != golden) {
        const std::size_t off = firstMismatch(res.recovered_image, golden);
        std::ostringstream os;
        os << "recovered image diverges from the golden epoch image at "
           << "offset 0x" << std::hex << off << std::dec
           << " (restored ops " << restored << ")";
        res.status = CaseStatus::Violation;
        res.detail = os.str();
        return res;
    }

    // Check C: resume and run to completion; the final image must be
    // the golden prefix plus everything stored after recovery.
    sys2.run(fc.run_limit);
    if (!sys2.finished()) {
        res.status = CaseStatus::Violation;
        res.detail = "resumed execution did not complete within the "
                     "run limit";
        return res;
    }
    applyStores(golden, wl2.stores(), ~0ull);
    res.final_image = captureImage(sys2, fc.phys_size);
    if (res.final_image != golden) {
        const std::size_t off = firstMismatch(res.final_image, golden);
        std::ostringstream os;
        os << "final image after resume diverges from the golden image "
           << "at offset 0x" << std::hex << off << std::dec;
        res.status = CaseStatus::Violation;
        res.detail = os.str();
        return res;
    }

    return res;
}

// ---------------------------------------------------------------------
// Site enumeration and campaigns.
// ---------------------------------------------------------------------

std::map<std::string, std::uint64_t>
enumerateSites(const FuzzerConfig& fc, std::uint64_t seed,
               const std::string& workload, SystemKind kind,
               bool fast_path, unsigned channels)
{
    CrashPointRegistry reg; // unarmed: counts only
    MicroWorkload inner(microParams(fc, seed, workload));
    RecordingWorkload wl(inner);
    SystemConfig cfg = makeSystemConfig(fc, kind, fast_path, channels);
    cfg.crash_points = &reg;
    System sys(cfg, wl);
    sys.start();
    sys.run(fc.run_limit);

    std::map<std::string, std::uint64_t> out;
    for (const auto& [site, stats] : reg.sites())
        out.emplace(site, stats.hits);
    return out;
}

CampaignResult
runCampaign(const FuzzerConfig& fc, const CampaignOptions& opts,
            std::ostream* log, unsigned threads)
{
    CampaignResult result;
    std::vector<bool> fp_modes;
    fp_modes.push_back(true);
    if (opts.both_fast_path_modes)
        fp_modes.push_back(false);

    // Phase 1: the (seed, workload, system, mode) combos, in the
    // nested order the serial campaign has always used.
    struct Combo
    {
        std::uint64_t seed;
        std::string workload;
        SystemKind kind;
        bool fp;
    };
    std::vector<Combo> combos;
    for (std::uint64_t seed : opts.seeds) {
        for (const std::string& workload : opts.workloads) {
            for (SystemKind kind : opts.systems) {
                for (bool fp : fp_modes)
                    combos.push_back(Combo{seed, workload, kind, fp});
            }
        }
    }

    // Phase 2: profile runs enumerate each combo's crash sites. Every
    // run owns its System outright, so combos fan across threads; the
    // per-combo result is deterministic, so the fan-out is too.
    std::vector<std::map<std::string, std::uint64_t>> sites(
        combos.size());
    parallelFor(
        combos.size(),
        [&](std::size_t i) {
            const Combo& co = combos[i];
            sites[i] = enumerateSites(fc, co.seed, co.workload, co.kind,
                                      co.fp, opts.channels);
        },
        threads);

    // Phase 3: flatten the crash plan, again in the serial order. The
    // plan — and with it every repro string — is a pure function of
    // the options, independent of the thread count.
    std::vector<FuzzCase> plan;
    for (std::size_t i = 0; i < combos.size(); ++i) {
        const Combo& co = combos[i];
        auto& reached = result.sites_by_system[systemToken(co.kind)];
        for (const auto& [site, hits] : sites[i]) {
            reached.insert(site);
            std::vector<std::uint64_t> hit_plan = {hits};
            if (opts.first_and_last_hit && hits > 1)
                hit_plan.push_back(1);
            for (std::uint64_t hit : hit_plan) {
                for (Tick delta : opts.deltas) {
                    FuzzCase c;
                    c.seed = co.seed;
                    c.workload = co.workload;
                    c.system = co.kind;
                    c.site = site;
                    c.hit = hit;
                    c.delta = delta;
                    c.fast_path = co.fp;
                    c.channels = opts.channels;
                    plan.push_back(std::move(c));
                }
            }
        }
    }

    // Phase 4: run the crash cases, fanned across threads.
    std::vector<CaseResult> case_results(plan.size());
    parallelFor(
        plan.size(),
        [&](std::size_t i) { case_results[i] = runCrashCase(fc, plan[i]); },
        threads);

    // Phase 5: aggregate in plan order, so the summary, the violation
    // list, and the log stream are identical for any thread count.
    for (CaseResult& r : case_results) {
        ++result.cases;
        result.repros.push_back(r.repro);
        if (r.status == CaseStatus::NotReached) {
            ++result.not_reached;
        } else if (r.status == CaseStatus::Violation) {
            if (log) {
                *log << "VIOLATION " << r.repro << "\n  " << r.detail
                     << "\n";
            }
            // Images are only needed by callers replaying a single case.
            r.recovered_image.clear();
            r.final_image.clear();
            result.violations.push_back(std::move(r));
        }
    }
    return result;
}

} // namespace fuzz
} // namespace thynvm
