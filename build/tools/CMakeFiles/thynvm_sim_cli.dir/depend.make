# Empty dependencies file for thynvm_sim_cli.
# This may be replaced when dependencies are built.
