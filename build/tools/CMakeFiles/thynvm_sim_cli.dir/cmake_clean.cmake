file(REMOVE_RECURSE
  "CMakeFiles/thynvm_sim_cli.dir/thynvm_sim.cc.o"
  "CMakeFiles/thynvm_sim_cli.dir/thynvm_sim.cc.o.d"
  "thynvm_sim"
  "thynvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thynvm_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
