file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_kv_throughput.dir/bench_fig9_kv_throughput.cc.o"
  "CMakeFiles/bench_fig9_kv_throughput.dir/bench_fig9_kv_throughput.cc.o.d"
  "bench_fig9_kv_throughput"
  "bench_fig9_kv_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_kv_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
