
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_overlap.cc" "bench/CMakeFiles/bench_ablation_overlap.dir/bench_ablation_overlap.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_overlap.dir/bench_ablation_overlap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/thynvm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/thynvm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/thynvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/thynvm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/thynvm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/thynvm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/thynvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/thynvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
