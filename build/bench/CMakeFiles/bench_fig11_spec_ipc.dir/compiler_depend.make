# Empty compiler generated dependencies file for bench_fig11_spec_ipc.
# This may be replaced when dependencies are built.
