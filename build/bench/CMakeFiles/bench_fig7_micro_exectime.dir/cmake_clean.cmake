file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_micro_exectime.dir/bench_fig7_micro_exectime.cc.o"
  "CMakeFiles/bench_fig7_micro_exectime.dir/bench_fig7_micro_exectime.cc.o.d"
  "bench_fig7_micro_exectime"
  "bench_fig7_micro_exectime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_micro_exectime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
