file(REMOVE_RECURSE
  "libthynvm_core.a"
)
