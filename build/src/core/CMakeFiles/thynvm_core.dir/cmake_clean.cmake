file(REMOVE_RECURSE
  "CMakeFiles/thynvm_core.dir/thynvm_controller.cc.o"
  "CMakeFiles/thynvm_core.dir/thynvm_controller.cc.o.d"
  "libthynvm_core.a"
  "libthynvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thynvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
