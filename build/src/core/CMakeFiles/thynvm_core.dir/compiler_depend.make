# Empty compiler generated dependencies file for thynvm_core.
# This may be replaced when dependencies are built.
