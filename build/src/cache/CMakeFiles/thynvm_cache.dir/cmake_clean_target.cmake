file(REMOVE_RECURSE
  "libthynvm_cache.a"
)
