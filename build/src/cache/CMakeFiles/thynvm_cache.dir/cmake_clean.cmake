file(REMOVE_RECURSE
  "CMakeFiles/thynvm_cache.dir/cache.cc.o"
  "CMakeFiles/thynvm_cache.dir/cache.cc.o.d"
  "libthynvm_cache.a"
  "libthynvm_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thynvm_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
