# Empty compiler generated dependencies file for thynvm_cache.
# This may be replaced when dependencies are built.
