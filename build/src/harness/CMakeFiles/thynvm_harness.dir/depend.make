# Empty dependencies file for thynvm_harness.
# This may be replaced when dependencies are built.
