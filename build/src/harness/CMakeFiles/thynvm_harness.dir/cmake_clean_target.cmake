file(REMOVE_RECURSE
  "libthynvm_harness.a"
)
