file(REMOVE_RECURSE
  "CMakeFiles/thynvm_harness.dir/system.cc.o"
  "CMakeFiles/thynvm_harness.dir/system.cc.o.d"
  "libthynvm_harness.a"
  "libthynvm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thynvm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
