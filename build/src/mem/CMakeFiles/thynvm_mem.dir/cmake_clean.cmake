file(REMOVE_RECURSE
  "CMakeFiles/thynvm_mem.dir/device.cc.o"
  "CMakeFiles/thynvm_mem.dir/device.cc.o.d"
  "libthynvm_mem.a"
  "libthynvm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thynvm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
