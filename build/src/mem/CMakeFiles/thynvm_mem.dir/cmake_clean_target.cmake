file(REMOVE_RECURSE
  "libthynvm_mem.a"
)
