# Empty dependencies file for thynvm_mem.
# This may be replaced when dependencies are built.
