file(REMOVE_RECURSE
  "CMakeFiles/thynvm_workloads.dir/hashtable.cc.o"
  "CMakeFiles/thynvm_workloads.dir/hashtable.cc.o.d"
  "CMakeFiles/thynvm_workloads.dir/kvstore.cc.o"
  "CMakeFiles/thynvm_workloads.dir/kvstore.cc.o.d"
  "CMakeFiles/thynvm_workloads.dir/rbtree.cc.o"
  "CMakeFiles/thynvm_workloads.dir/rbtree.cc.o.d"
  "CMakeFiles/thynvm_workloads.dir/simheap.cc.o"
  "CMakeFiles/thynvm_workloads.dir/simheap.cc.o.d"
  "CMakeFiles/thynvm_workloads.dir/spec.cc.o"
  "CMakeFiles/thynvm_workloads.dir/spec.cc.o.d"
  "CMakeFiles/thynvm_workloads.dir/trace.cc.o"
  "CMakeFiles/thynvm_workloads.dir/trace.cc.o.d"
  "libthynvm_workloads.a"
  "libthynvm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thynvm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
