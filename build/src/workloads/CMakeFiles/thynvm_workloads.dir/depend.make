# Empty dependencies file for thynvm_workloads.
# This may be replaced when dependencies are built.
