file(REMOVE_RECURSE
  "libthynvm_workloads.a"
)
