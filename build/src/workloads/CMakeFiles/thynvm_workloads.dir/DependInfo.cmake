
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/hashtable.cc" "src/workloads/CMakeFiles/thynvm_workloads.dir/hashtable.cc.o" "gcc" "src/workloads/CMakeFiles/thynvm_workloads.dir/hashtable.cc.o.d"
  "/root/repo/src/workloads/kvstore.cc" "src/workloads/CMakeFiles/thynvm_workloads.dir/kvstore.cc.o" "gcc" "src/workloads/CMakeFiles/thynvm_workloads.dir/kvstore.cc.o.d"
  "/root/repo/src/workloads/rbtree.cc" "src/workloads/CMakeFiles/thynvm_workloads.dir/rbtree.cc.o" "gcc" "src/workloads/CMakeFiles/thynvm_workloads.dir/rbtree.cc.o.d"
  "/root/repo/src/workloads/simheap.cc" "src/workloads/CMakeFiles/thynvm_workloads.dir/simheap.cc.o" "gcc" "src/workloads/CMakeFiles/thynvm_workloads.dir/simheap.cc.o.d"
  "/root/repo/src/workloads/spec.cc" "src/workloads/CMakeFiles/thynvm_workloads.dir/spec.cc.o" "gcc" "src/workloads/CMakeFiles/thynvm_workloads.dir/spec.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/thynvm_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/thynvm_workloads.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/thynvm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/thynvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/thynvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
