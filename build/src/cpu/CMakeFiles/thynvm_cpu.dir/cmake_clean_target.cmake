file(REMOVE_RECURSE
  "libthynvm_cpu.a"
)
