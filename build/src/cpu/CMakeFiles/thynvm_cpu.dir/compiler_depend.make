# Empty compiler generated dependencies file for thynvm_cpu.
# This may be replaced when dependencies are built.
