file(REMOVE_RECURSE
  "CMakeFiles/thynvm_cpu.dir/cpu.cc.o"
  "CMakeFiles/thynvm_cpu.dir/cpu.cc.o.d"
  "libthynvm_cpu.a"
  "libthynvm_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thynvm_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
