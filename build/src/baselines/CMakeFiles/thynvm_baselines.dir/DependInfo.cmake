
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/journal.cc" "src/baselines/CMakeFiles/thynvm_baselines.dir/journal.cc.o" "gcc" "src/baselines/CMakeFiles/thynvm_baselines.dir/journal.cc.o.d"
  "/root/repo/src/baselines/shadow.cc" "src/baselines/CMakeFiles/thynvm_baselines.dir/shadow.cc.o" "gcc" "src/baselines/CMakeFiles/thynvm_baselines.dir/shadow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/thynvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/thynvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
