file(REMOVE_RECURSE
  "CMakeFiles/thynvm_baselines.dir/journal.cc.o"
  "CMakeFiles/thynvm_baselines.dir/journal.cc.o.d"
  "CMakeFiles/thynvm_baselines.dir/shadow.cc.o"
  "CMakeFiles/thynvm_baselines.dir/shadow.cc.o.d"
  "libthynvm_baselines.a"
  "libthynvm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thynvm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
