file(REMOVE_RECURSE
  "libthynvm_baselines.a"
)
