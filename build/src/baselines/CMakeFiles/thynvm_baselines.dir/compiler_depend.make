# Empty compiler generated dependencies file for thynvm_baselines.
# This may be replaced when dependencies are built.
