# Empty dependencies file for thynvm_common.
# This may be replaced when dependencies are built.
