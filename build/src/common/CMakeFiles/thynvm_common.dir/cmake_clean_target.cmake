file(REMOVE_RECURSE
  "libthynvm_common.a"
)
