file(REMOVE_RECURSE
  "CMakeFiles/thynvm_common.dir/logging.cc.o"
  "CMakeFiles/thynvm_common.dir/logging.cc.o.d"
  "CMakeFiles/thynvm_common.dir/stats.cc.o"
  "CMakeFiles/thynvm_common.dir/stats.cc.o.d"
  "libthynvm_common.a"
  "libthynvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thynvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
