# Empty dependencies file for thynvm_tests.
# This may be replaced when dependencies are built.
