
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/cache_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/cache_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/cache_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/config_sweep_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/config_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/config_sweep_test.cpp.o.d"
  "/root/repo/tests/cpu_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/cpu_test.cpp.o.d"
  "/root/repo/tests/crash_property_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/crash_property_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/crash_property_test.cpp.o.d"
  "/root/repo/tests/device_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/device_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/device_test.cpp.o.d"
  "/root/repo/tests/eventq_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/eventq_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/eventq_test.cpp.o.d"
  "/root/repo/tests/harness_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/harness_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/harness_test.cpp.o.d"
  "/root/repo/tests/protocol_model_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/protocol_model_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/protocol_model_test.cpp.o.d"
  "/root/repo/tests/system_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/system_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/system_test.cpp.o.d"
  "/root/repo/tests/tables_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/tables_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/tables_test.cpp.o.d"
  "/root/repo/tests/thynvm_controller_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/thynvm_controller_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/thynvm_controller_test.cpp.o.d"
  "/root/repo/tests/thynvm_overflow_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/thynvm_overflow_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/thynvm_overflow_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/thynvm_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/thynvm_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/thynvm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/thynvm_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/thynvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/thynvm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/thynvm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/thynvm_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/thynvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/thynvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
