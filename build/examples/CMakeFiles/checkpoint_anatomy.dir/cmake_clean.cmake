file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_anatomy.dir/checkpoint_anatomy.cpp.o"
  "CMakeFiles/checkpoint_anatomy.dir/checkpoint_anatomy.cpp.o.d"
  "checkpoint_anatomy"
  "checkpoint_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
