# Empty compiler generated dependencies file for checkpoint_anatomy.
# This may be replaced when dependencies are built.
