/**
 * @file
 * Device-model throughput tracker: how many device requests per host
 * second can the MemDevice scheduler sustain?
 *
 * Drives a single MemDevice directly (no CPU, caches, or controller)
 * with a deterministic mixed read/write stream that keeps both queues
 * saturated, across a sweep of write-queue depths and bank counts. The
 * generator models the access mix the controllers produce: 70% writes,
 * 60% row-locality (sequential blocks within the open row), the rest
 * random rows across banks.
 *
 * Results are written to BENCH_devspeed.json together with the pre-PR
 * (deque-scan scheduler) numbers measured on the same host, so the
 * speedup of the slab/per-bank-queue scheduler is tracked from PR to
 * PR; EXPERIMENTS.md records the history. Like bench_simspeed, this
 * binary is single-threaded by design.
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "mem/device.hh"

namespace {

using namespace thynvm;

struct Cell
{
    unsigned banks;
    unsigned write_queue;
    /** Pre-PR requests/sec on the reference host (0 = not measured). */
    double baseline_rps;
};

/**
 * Pre-PR baselines: measured at the parent commit (deque-based
 * FR-FCFS with O(n) completion lookup) on the CI reference host with
 * the same request stream. Kept as data so the JSON always reports
 * the before/after pair this PR's acceptance criterion refers to.
 */
const std::vector<Cell>&
cells()
{
    static const std::vector<Cell> kCells = {
        // Write-queue depth sweep at 8 banks.
        {8, 8, 1662330.0},
        {8, 16, 1353490.0},
        {8, 64, 638302.0},
        {8, 256, 203640.0},
        // Bank-count sweep at the paper's depth-64 write queue.
        {1, 64, 871428.0},
        {4, 64, 669263.0},
        {16, 64, 667365.0},
        {32, 64, 647761.0},
    };
    return kCells;
}

struct CellResult
{
    Cell cell{};
    std::uint64_t requests = 0;
    double host_seconds = 0.0;
    double requests_per_sec = 0.0;
    double events_per_sec = 0.0;
};

CellResult
runCell(const Cell& cell, std::uint64_t total)
{
    using Clock = std::chrono::steady_clock;

    DeviceParams p = DeviceParams::nvm(16u << 20);
    p.banks = cell.banks;
    p.write_queue_capacity = cell.write_queue;
    p.read_queue_capacity = std::max(4u, cell.write_queue / 2);
    p.write_drain_high = std::max(2u, 3 * cell.write_queue / 4);
    p.write_drain_low = cell.write_queue / 4;

    EventQueue eq;
    MemDevice dev(eq, "dev", p);
    Rng rng(0x5eedu + cell.banks * 1000 + cell.write_queue);

    const std::uint64_t num_rows = p.capacity / p.row_size;
    const std::uint64_t blocks_per_row = p.row_size / kBlockSize;
    std::uint64_t row = 0;
    std::uint64_t col = 0;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    bool have_pending = false;
    bool pend_write = false;
    Addr pend_addr = 0;

    std::array<std::uint8_t, kBlockSize> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7 + 3);

    std::function<void()> pump = [&] {
        while (issued < total) {
            if (!have_pending) {
                if (rng.chance(0.6)) {
                    col = (col + 1) % blocks_per_row; // row-hit streak
                } else {
                    row = rng.below(num_rows);
                    col = rng.below(blocks_per_row);
                }
                pend_addr = row * p.row_size + col * kBlockSize;
                pend_write = rng.chance(0.7);
                have_pending = true;
            }
            if (!dev.canAccept(pend_write)) {
                dev.notifyWhenAccepting(pend_write, pump);
                return;
            }
            const bool ok =
                pend_write
                    ? dev.enqueueWrite(pend_addr, payload.data(),
                                       TrafficSource::CpuWriteback,
                                       [&completed] { ++completed; })
                    : dev.enqueueRead(pend_addr,
                                      TrafficSource::DemandRead,
                                      [&completed] { ++completed; });
            panic_if(!ok, "device rejected request after canAccept");
            have_pending = false;
            ++issued;
        }
    };

    const auto t0 = Clock::now();
    pump();
    eq.run();
    const double host =
        std::chrono::duration<double>(Clock::now() - t0).count();
    fatal_if(completed != total, "devspeed run lost completions");

    CellResult r;
    r.cell = cell;
    r.requests = total;
    r.host_seconds = host;
    r.requests_per_sec =
        host > 0.0 ? static_cast<double>(total) / host : 0.0;
    r.events_per_sec =
        host > 0.0 ? static_cast<double>(eq.eventsExecuted()) / host : 0.0;
    return r;
}

} // namespace

int
main()
{
    constexpr std::uint64_t kRequests = 300000;

    std::printf("Device-model throughput: %llu mixed requests per cell, "
                "single host thread\n",
                static_cast<unsigned long long>(kRequests));
    std::printf("%-6s %-8s %12s %10s %14s %14s %10s\n", "banks", "wqueue",
                "requests/s", "host_s", "events/s", "baseline_r/s",
                "speedup");

    std::vector<CellResult> results;
    for (const Cell& cell : cells()) {
        CellResult r = runCell(cell, kRequests);
        const double speedup = cell.baseline_rps > 0.0
                                   ? r.requests_per_sec / cell.baseline_rps
                                   : 0.0;
        std::printf("%-6u %-8u %12.0f %10.3f %14.0f %14.0f %9.2fx\n",
                    cell.banks, cell.write_queue, r.requests_per_sec,
                    r.host_seconds, r.events_per_sec, cell.baseline_rps,
                    speedup);
        results.push_back(r);
    }

    FILE* f = std::fopen("BENCH_devspeed.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_devspeed.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"devspeed\",\n");
    std::fprintf(f, "  \"host_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"requests_per_cell\": %llu,\n",
                 static_cast<unsigned long long>(kRequests));
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CellResult& r = results[i];
        const double speedup =
            r.cell.baseline_rps > 0.0
                ? r.requests_per_sec / r.cell.baseline_rps
                : 0.0;
        std::fprintf(f,
                     "    {\"banks\": %u, \"write_queue\": %u, "
                     "\"requests_per_sec\": %.0f, \"host_seconds\": %.3f, "
                     "\"events_per_sec\": %.0f, "
                     "\"baseline_requests_per_sec\": %.0f, "
                     "\"speedup_vs_baseline\": %.2f}%s\n",
                     r.cell.banks, r.cell.write_queue, r.requests_per_sec,
                     r.host_seconds, r.events_per_sec, r.cell.baseline_rps,
                     speedup, i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_devspeed.json\n");
    return 0;
}
