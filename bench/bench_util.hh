/**
 * @file
 * Shared helpers for the benchmark binaries that regenerate the
 * paper's tables and figures (DESIGN.md §4).
 *
 * Scaling note: epochs use the paper's 10 ms limit; workload lengths
 * are scaled down so each run simulates tens of milliseconds (a few
 * timer epochs plus the overflow-paced early epochs that dominate for
 * memory-intensive patterns, exactly as in §4.3 of the paper). The
 * relative behaviour (who wins, by what factor, where the crossovers
 * fall) is what EXPERIMENTS.md records against the paper's numbers.
 */

#ifndef THYNVM_BENCH_BENCH_UTIL_HH
#define THYNVM_BENCH_BENCH_UTIL_HH

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>

#include "common/parallel.hh"
#include "harness/system.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

namespace thynvm {
namespace bench {

/** Evaluation-scale system configuration (Table 2, scaled epochs). */
inline SystemConfig
paperSystem(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.phys_size = 32u << 20;
    cfg.epoch_length = 10 * kMillisecond; // paper Table 2
    cfg.thynvm.btt_entries = 2048;
    cfg.thynvm.ptt_entries = 4096; // 16 MB DRAM working region
    return cfg;
}

/** All five evaluated systems in the paper's presentation order. */
inline const std::vector<SystemKind>&
allSystems()
{
    static const std::vector<SystemKind> kinds = {
        SystemKind::IdealDram, SystemKind::Journal, SystemKind::Shadow,
        SystemKind::ThyNvm, SystemKind::IdealNvm,
    };
    return kinds;
}

/**
 * Per-pattern micro-benchmark scale. The paper only says "a large
 * array"; the scales here are chosen so each pattern exercises the
 * regime the paper describes while staying tractable on one host core:
 *  - Random: array larger than every system's DRAM, so nothing can
 *    cache the working set (this is what makes shadow paging
 *    pathological);
 *  - Streaming: array within the PTT's reach and >= 2 passes, so
 *    sequential writes can be absorbed in DRAM after the first sweep;
 *  - Sliding: large array, window well inside DRAM.
 */
struct MicroScale
{
    std::size_t array_bytes;
    std::uint64_t accesses;
};

inline MicroScale
microScale(MicroWorkload::Pattern pattern)
{
    switch (pattern) {
      case MicroWorkload::Pattern::Random:
        return {24u << 20, 150000};
      case MicroWorkload::Pattern::Streaming:
        return {8u << 20, 300000};
      case MicroWorkload::Pattern::Sliding:
        return {24u << 20, 250000};
    }
    return {16u << 20, 150000};
}

/** Run a micro-benchmark pattern to completion on @p cfg. */
inline RunMetrics
runMicro(const SystemConfig& cfg, MicroWorkload::Pattern pattern,
         std::uint64_t accesses = 0, std::uint64_t seed = 1)
{
    const MicroScale scale = microScale(pattern);
    MicroWorkload::Params mp;
    mp.pattern = pattern;
    mp.base = 0;
    mp.array_bytes = scale.array_bytes;
    mp.access_size = 64;
    mp.read_fraction = 0.5;
    mp.total_accesses = accesses != 0 ? accesses : scale.accesses;
    mp.seed = seed;
    MicroWorkload wl(mp);
    System sys(cfg, wl);
    sys.start();
    sys.run(60 * kSecond);
    fatal_if(!sys.finished(), "micro benchmark did not complete");
    return sys.metrics();
}

/** Result of a key-value-store run. */
struct KvResult
{
    RunMetrics m;
    double ktps = 0.0;          //!< transactions per second / 1000
    double write_bw_mbps = 0.0; //!< NVM (or DRAM for Ideal DRAM) MB/s
};

/** Run the transactional KV workload to completion on @p cfg. */
inline KvResult
runKv(const SystemConfig& cfg, KvWorkload::Structure structure,
      std::uint32_t value_size, std::uint64_t txns,
      std::uint64_t seed = 7)
{
    KvWorkload::Params p;
    p.structure = structure;
    p.phys_size = cfg.phys_size;
    p.value_size = value_size;
    // Size the store so its live footprint (~12 MB) dwarfs the cache
    // hierarchy and spans several epochs' worth of working set; the
    // per-node overhead is ~96 B on top of the value.
    p.key_space = std::max<std::uint64_t>(
        4096, (12u << 20) / (value_size + 96));
    p.initial_keys = p.key_space / 2;
    p.hash_buckets = std::max<std::uint64_t>(1024, p.key_space / 4);
    // The paper's transaction rate (~250 KTPS at 3 GHz) implies a
    // compute-dominated transaction (~10k cycles); reproduce that
    // regime so memory-system differences appear as in Figure 9.
    p.compute_per_txn = 6000;
    p.total_txns = txns;
    p.seed = seed;
    KvWorkload wl(p);
    System sys(cfg, wl);
    sys.start();
    sys.run(120 * kSecond);
    fatal_if(!sys.finished(), "kv benchmark did not complete");

    KvResult r;
    r.m = sys.metrics();
    const double seconds =
        static_cast<double>(r.m.exec_time) / kSecond;
    r.ktps = static_cast<double>(txns) / seconds / 1000.0;
    const std::uint64_t bytes = cfg.kind == SystemKind::IdealDram
                                    ? r.m.dram_wr_total
                                    : r.m.nvm_wr_total;
    r.write_bw_mbps =
        static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
    return r;
}

/** Run one SPEC profile for a fixed instruction budget. */
inline RunMetrics
runSpec(const SystemConfig& cfg, const SpecProfile& profile,
        std::uint64_t instructions, std::uint64_t seed = 3)
{
    SpecWorkload wl(profile, 0, instructions, seed);
    System sys(cfg, wl);
    sys.start();
    sys.run(120 * kSecond);
    fatal_if(!sys.finished(), "spec benchmark did not complete");
    return sys.metrics();
}

/** Megabytes helper. */
inline double
mb(std::uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/**
 * Peak resident set size of this process in bytes (getrusage
 * ru_maxrss; kilobytes on Linux). The value is a process-lifetime
 * high-water mark, so per-cell readings are monotone: order cells
 * smallest-footprint first and the reading taken after each cell is
 * that cell's effective peak.
 */
inline std::uint64_t
peakRssBytes()
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

/** Print a separator + heading for the human-readable result block. */
inline void
heading(const char* title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title);
}

// ---------------------------------------------------------------------
// Parallel sweep driver.
//
// Every (system, workload) cell builds its own System with a private
// EventQueue, so independent cells can run on different host threads
// with no shared mutable state. Results land in a vector indexed by
// registration order and progress lines are printed strictly in that
// order, so the output (and the result set) is identical for any
// thread count, including 1.
// ---------------------------------------------------------------------

/**
 * Worker-thread count for benchmark sweeps: the THYNVM_BENCH_THREADS
 * environment variable if set (>= 1), else the host's hardware
 * concurrency.
 */
inline unsigned
benchThreads()
{
    if (const char* env = std::getenv("THYNVM_BENCH_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return hardwareThreads();
}

/** One independent run in a benchmark sweep. */
template <typename R>
struct GridCell
{
    std::string label;
    std::function<R()> run;
};

/**
 * Execute every cell, fanning across @p threads workers (0 = use
 * benchThreads()). Returns the results in registration order; per-cell
 * progress lines stream to stdout in that same order regardless of
 * completion order. The first exception raised by any cell is
 * rethrown once every cell has finished.
 */
template <typename R>
std::vector<R>
runGrid(const char* title, const std::vector<GridCell<R>>& cells,
        unsigned threads = 0)
{
    using Clock = std::chrono::steady_clock;
    const unsigned nthreads = threads != 0 ? threads : benchThreads();

    std::vector<R> results(cells.size());
    std::vector<double> host_sec(cells.size(), 0.0);
    std::vector<std::exception_ptr> errors(cells.size());
    std::vector<char> cell_done(cells.size(), 0);
    std::mutex mutex;
    std::condition_variable cv;

    std::printf("-- %s: %zu runs on %u thread%s\n", title, cells.size(),
                nthreads, nthreads == 1 ? "" : "s");
    std::fflush(stdout);

    auto runCell = [&](std::size_t i) {
        const auto t0 = Clock::now();
        try {
            results[i] = cells[i].run();
        } catch (...) {
            errors[i] = std::current_exception();
        }
        host_sec[i] =
            std::chrono::duration<double>(Clock::now() - t0).count();
        {
            std::lock_guard<std::mutex> lock(mutex);
            cell_done[i] = 1;
        }
        cv.notify_all();
    };
    auto printCell = [&](std::size_t i) {
        std::printf("   [%2zu/%zu] %-40s %8.2fs host%s\n", i + 1,
                    cells.size(), cells[i].label.c_str(), host_sec[i],
                    errors[i] ? "  FAILED" : "");
        std::fflush(stdout);
    };

    if (nthreads <= 1 || cells.size() <= 1) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            runCell(i);
            printCell(i);
        }
    } else {
        ThreadPool pool(static_cast<unsigned>(
            std::min<std::size_t>(nthreads, cells.size())));
        for (std::size_t i = 0; i < cells.size(); ++i)
            pool.submit([&runCell, i] { runCell(i); });
        // Stream progress in presentation order as cells finish.
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return cell_done[i] != 0; });
            lock.unlock();
            printCell(i);
        }
    }

    for (auto& e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

} // namespace bench
} // namespace thynvm

#endif // THYNVM_BENCH_BENCH_UTIL_HH
