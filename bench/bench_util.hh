/**
 * @file
 * Shared helpers for the benchmark binaries that regenerate the
 * paper's tables and figures (DESIGN.md §4).
 *
 * Scaling note: epochs use the paper's 10 ms limit; workload lengths
 * are scaled down so each run simulates tens of milliseconds (a few
 * timer epochs plus the overflow-paced early epochs that dominate for
 * memory-intensive patterns, exactly as in §4.3 of the paper). The
 * relative behaviour (who wins, by what factor, where the crossovers
 * fall) is what EXPERIMENTS.md records against the paper's numbers.
 */

#ifndef THYNVM_BENCH_BENCH_UTIL_HH
#define THYNVM_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <string>

#include "harness/system.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

namespace thynvm {
namespace bench {

/** Evaluation-scale system configuration (Table 2, scaled epochs). */
inline SystemConfig
paperSystem(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.phys_size = 32u << 20;
    cfg.epoch_length = 10 * kMillisecond; // paper Table 2
    cfg.thynvm.btt_entries = 2048;
    cfg.thynvm.ptt_entries = 4096; // 16 MB DRAM working region
    return cfg;
}

/** All five evaluated systems in the paper's presentation order. */
inline const std::vector<SystemKind>&
allSystems()
{
    static const std::vector<SystemKind> kinds = {
        SystemKind::IdealDram, SystemKind::Journal, SystemKind::Shadow,
        SystemKind::ThyNvm, SystemKind::IdealNvm,
    };
    return kinds;
}

/**
 * Per-pattern micro-benchmark scale. The paper only says "a large
 * array"; the scales here are chosen so each pattern exercises the
 * regime the paper describes while staying tractable on one host core:
 *  - Random: array larger than every system's DRAM, so nothing can
 *    cache the working set (this is what makes shadow paging
 *    pathological);
 *  - Streaming: array within the PTT's reach and >= 2 passes, so
 *    sequential writes can be absorbed in DRAM after the first sweep;
 *  - Sliding: large array, window well inside DRAM.
 */
struct MicroScale
{
    std::size_t array_bytes;
    std::uint64_t accesses;
};

inline MicroScale
microScale(MicroWorkload::Pattern pattern)
{
    switch (pattern) {
      case MicroWorkload::Pattern::Random:
        return {24u << 20, 150000};
      case MicroWorkload::Pattern::Streaming:
        return {8u << 20, 300000};
      case MicroWorkload::Pattern::Sliding:
        return {24u << 20, 250000};
    }
    return {16u << 20, 150000};
}

/** Run a micro-benchmark pattern to completion on @p cfg. */
inline RunMetrics
runMicro(const SystemConfig& cfg, MicroWorkload::Pattern pattern,
         std::uint64_t accesses = 0, std::uint64_t seed = 1)
{
    const MicroScale scale = microScale(pattern);
    MicroWorkload::Params mp;
    mp.pattern = pattern;
    mp.base = 0;
    mp.array_bytes = scale.array_bytes;
    mp.access_size = 64;
    mp.read_fraction = 0.5;
    mp.total_accesses = accesses != 0 ? accesses : scale.accesses;
    mp.seed = seed;
    MicroWorkload wl(mp);
    System sys(cfg, wl);
    sys.start();
    sys.run(60 * kSecond);
    fatal_if(!sys.finished(), "micro benchmark did not complete");
    return sys.metrics();
}

/** Result of a key-value-store run. */
struct KvResult
{
    RunMetrics m;
    double ktps = 0.0;          //!< transactions per second / 1000
    double write_bw_mbps = 0.0; //!< NVM (or DRAM for Ideal DRAM) MB/s
};

/** Run the transactional KV workload to completion on @p cfg. */
inline KvResult
runKv(const SystemConfig& cfg, KvWorkload::Structure structure,
      std::uint32_t value_size, std::uint64_t txns,
      std::uint64_t seed = 7)
{
    KvWorkload::Params p;
    p.structure = structure;
    p.phys_size = cfg.phys_size;
    p.value_size = value_size;
    // Size the store so its live footprint (~12 MB) dwarfs the cache
    // hierarchy and spans several epochs' worth of working set; the
    // per-node overhead is ~96 B on top of the value.
    p.key_space = std::max<std::uint64_t>(
        4096, (12u << 20) / (value_size + 96));
    p.initial_keys = p.key_space / 2;
    p.hash_buckets = std::max<std::uint64_t>(1024, p.key_space / 4);
    // The paper's transaction rate (~250 KTPS at 3 GHz) implies a
    // compute-dominated transaction (~10k cycles); reproduce that
    // regime so memory-system differences appear as in Figure 9.
    p.compute_per_txn = 6000;
    p.total_txns = txns;
    p.seed = seed;
    KvWorkload wl(p);
    System sys(cfg, wl);
    sys.start();
    sys.run(120 * kSecond);
    fatal_if(!sys.finished(), "kv benchmark did not complete");

    KvResult r;
    r.m = sys.metrics();
    const double seconds =
        static_cast<double>(r.m.exec_time) / kSecond;
    r.ktps = static_cast<double>(txns) / seconds / 1000.0;
    const std::uint64_t bytes = cfg.kind == SystemKind::IdealDram
                                    ? r.m.dram_wr_total
                                    : r.m.nvm_wr_total;
    r.write_bw_mbps =
        static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
    return r;
}

/** Run one SPEC profile for a fixed instruction budget. */
inline RunMetrics
runSpec(const SystemConfig& cfg, const SpecProfile& profile,
        std::uint64_t instructions, std::uint64_t seed = 3)
{
    SpecWorkload wl(profile, 0, instructions, seed);
    System sys(cfg, wl);
    sys.start();
    sys.run(120 * kSecond);
    fatal_if(!sys.finished(), "spec benchmark did not complete");
    return sys.metrics();
}

/** Megabytes helper. */
inline double
mb(std::uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/** Print a separator + heading for the human-readable result block. */
inline void
heading(const char* title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n",
                title);
}

} // namespace bench
} // namespace thynvm

#endif // THYNVM_BENCH_BENCH_UTIL_HH
