/**
 * @file
 * Table 1: the tradeoff space between checkpointing granularity and
 * metadata overhead / stall time, realized as uniform-granularity
 * ablations of the ThyNVM controller versus the dual scheme.
 *
 *  - BlockOnly = small granularity, working copy remapped in NVM
 *    (quadrant 3: large metadata, short checkpoint latency).
 *  - PageOnly  = large granularity, working copy cached in DRAM
 *    (quadrant 2: small metadata, long checkpoint latency).
 *  - Dual      = ThyNVM, adapting per-page (best of both).
 *
 * Metadata SRAM cost is computed from the table geometry; the paper's
 * headline claims are that the dual scheme cuts stall time versus
 * uniform page granularity while needing a fraction of the uniform
 * block scheme's metadata.
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

struct ModeSpec
{
    const char* name;
    CheckpointMode mode;
    std::size_t btt;
    std::size_t ptt;
};

/**
 * Uniform-block gets a BTT sized to cover the same footprint the dual
 * scheme covers with its PTT (the paper's hardware-overhead
 * comparison); uniform-page gets a PTT covering the whole space.
 */
const std::vector<ModeSpec> kModes = {
    {"BlockOnly", CheckpointMode::BlockOnly, 2048 + 4096 * 64, 1},
    {"PageOnly", CheckpointMode::PageOnly, 2048, 8192},
    {"Dual", CheckpointMode::Dual, 2048, 4096},
};

const std::vector<MicroWorkload::Pattern> kPatterns = {
    MicroWorkload::Pattern::Random,
    MicroWorkload::Pattern::Sliding,
};

/** Per-entry SRAM bits (Figure 5: tag + ~11 bits of state). */
double
metadataKiB(const ModeSpec& m)
{
    const double btt_bits = 42 + 11;
    const double ptt_bits = 36 + 11;
    return (m.btt * btt_bits + m.ptt * ptt_bits) / 8.0 / 1024.0;
}

void
printSummary(const std::vector<RunMetrics>& results)
{
    heading("Table 1: granularity/location tradeoff "
            "(uniform schemes vs dual)");
    std::printf("%-10s %13s %12s %12s %12s %12s\n", "scheme",
                "metadata_KiB", "rand_ms", "rand_stall%", "slide_ms",
                "slide_stall%");
    for (std::size_t s = 0; s < kModes.size(); ++s) {
        const auto& r0 = results[s * kPatterns.size() + 0];
        const auto& r1 = results[s * kPatterns.size() + 1];
        std::printf("%-10s %13.1f %12.2f %12.3f %12.2f %12.3f\n",
                    kModes[s].name, metadataKiB(kModes[s]),
                    static_cast<double>(r0.exec_time) / kMillisecond,
                    r0.ckpt_time_frac * 100.0,
                    static_cast<double>(r1.exec_time) / kMillisecond,
                    r1.ckpt_time_frac * 100.0);
    }
    std::printf("\n(paper: dual scheme needs ~26%% of uniform-block "
                "metadata and cuts stall\n time by up to 86%% vs "
                "uniform-page checkpointing)\n");
}

} // namespace

int
main()
{
    std::vector<GridCell<RunMetrics>> cells;
    for (const auto& spec : kModes) {
        for (auto pattern : kPatterns) {
            auto cfg = paperSystem(SystemKind::ThyNvm);
            cfg.thynvm.mode = spec.mode;
            cfg.thynvm.btt_entries = spec.btt;
            cfg.thynvm.ptt_entries = spec.ptt;
            cells.push_back(GridCell<RunMetrics>{
                std::string(spec.name) + "/" +
                    (pattern == MicroWorkload::Pattern::Random
                         ? "Random"
                         : "Sliding"),
                [cfg, pattern] { return runMicro(cfg, pattern); }});
        }
    }
    const auto results = runGrid("table1 tradeoff", cells);
    printSummary(results);
    return 0;
}
