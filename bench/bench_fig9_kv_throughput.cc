/**
 * @file
 * Figure 9: transaction throughput (KTPS) of the two key-value stores
 * (hash table, red-black tree) as the request size sweeps from 16 B to
 * 4 KB, on the five evaluated systems.
 *
 * Expected shape (paper §5.3): ThyNVM beats Journal and Shadow across
 * sizes and tracks the ideal systems closely (~95% of Ideal DRAM).
 *
 * A final GB-scale section runs the hash store at production size
 * (4 GiB phys, one million preloaded keys, Zipf-skewed requests) on
 * ThyNVM only — the scale the ROADMAP's serving scenario targets,
 * feasible because the backing store is sparse. It reports KTPS plus
 * peak host RSS against the dense-store extrapolation.
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

const std::vector<std::uint32_t> kSizes = {16, 64, 256, 1024, 4096};

std::uint64_t
txnsFor(std::uint32_t value_size)
{
    // Each run must span several 10 ms epochs so checkpointing
    // behaviour (not just cache behaviour) is measured.
    if (value_size <= 256)
        return 15000;
    if (value_size <= 1024)
        return 10000;
    return 6000;
}

void
printSummary(const std::vector<KvResult>& results)
{
    const std::size_t nsys = allSystems().size();
    heading("Figure 9: key-value store transaction throughput (KTPS)");
    for (int st = 0; st < 2; ++st) {
        std::printf("\n(%c) %s based key-value store\n",
                    'a' + st, st == 0 ? "hash table" : "red-black tree");
        std::printf("%-10s", "req_size");
        for (auto kind : allSystems())
            std::printf("%14s", systemKindName(kind));
        std::printf("\n");
        for (std::size_t z = 0; z < kSizes.size(); ++z) {
            std::printf("%-10u", kSizes[z]);
            for (std::size_t s = 0; s < nsys; ++s) {
                const std::size_t i =
                    (static_cast<std::size_t>(st) * kSizes.size() + z) *
                        nsys +
                    s;
                std::printf("%14.1f", results[i].ktps);
            }
            std::printf("\n");
        }
    }
    std::printf("\n(paper: ThyNVM ~8.8%%/4.3%% above Journal, "
                "~29.9%%/43.1%% above Shadow,\n ~95%% of Ideal DRAM for "
                "hash/rbtree respectively)\n");
}

} // namespace

int
main()
{
    const std::vector<KvWorkload::Structure> structures = {
        KvWorkload::Structure::HashTable, KvWorkload::Structure::RbTree};

    std::vector<GridCell<KvResult>> cells;
    for (std::size_t st = 0; st < structures.size(); ++st) {
        for (auto size : kSizes) {
            for (auto kind : allSystems()) {
                const auto structure = structures[st];
                cells.push_back(GridCell<KvResult>{
                    std::string(st == 0 ? "hash" : "rbtree") + "/" +
                        std::to_string(size) + "B/" +
                        systemKindName(kind),
                    [structure, size, kind] {
                        return runKv(paperSystem(kind), structure, size,
                                     txnsFor(size));
                    }});
            }
        }
    }
    const auto results = runGrid("fig9 kv throughput", cells);
    printSummary(results);

    // GB-scale section: the ROADMAP's million-key serving scenario.
    // Runs last (and alone) so the monotone ru_maxrss reading is
    // attributable to this cell.
    heading("GB-scale: hash KV, 4 GiB phys, 1M keys, zipf 0.99");
    SystemConfig cfg = paperSystem(SystemKind::ThyNvm);
    cfg.phys_size = 4ull << 30;
    KvWorkload::Params p;
    p.structure = KvWorkload::Structure::HashTable;
    p.phys_size = cfg.phys_size;
    p.value_size = 256;
    p.initial_keys = 1000000;
    p.key_space = 2 * p.initial_keys;
    p.hash_buckets = 32768; // largest SimHeap size class (256 KB array)
    p.zipf_theta = 0.99;
    p.compute_per_txn = 6000; // same regime as the figure cells
    p.total_txns = 2000;
    KvWorkload wl(p);
    System sys(cfg, wl);
    sys.start();
    sys.run(120 * kSecond);
    fatal_if(!sys.finished(), "GB-scale kv run did not complete");
    const RunMetrics m = sys.metrics();
    const double seconds = static_cast<double>(m.exec_time) / kSecond;
    const std::uint64_t rss = peakRssBytes();
    const std::uint64_t dense = 2ull * cfg.phys_size;
    std::printf("%-10s %12s %12s %14s %14s\n", "txns", "ktps",
                "rss_mb", "dense_mb", "reduction");
    std::printf("%-10llu %12.1f %12.1f %14.1f %13.1fx\n",
                static_cast<unsigned long long>(p.total_txns),
                static_cast<double>(p.total_txns) / seconds / 1000.0,
                mb(rss), mb(dense),
                static_cast<double>(dense) / static_cast<double>(rss));
    return 0;
}
