/**
 * @file
 * Figure 9: transaction throughput (KTPS) of the two key-value stores
 * (hash table, red-black tree) as the request size sweeps from 16 B to
 * 4 KB, on the five evaluated systems.
 *
 * Expected shape (paper §5.3): ThyNVM beats Journal and Shadow across
 * sizes and tracks the ideal systems closely (~95% of Ideal DRAM).
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

const std::vector<std::uint32_t> kSizes = {16, 64, 256, 1024, 4096};

std::uint64_t
txnsFor(std::uint32_t value_size)
{
    // Each run must span several 10 ms epochs so checkpointing
    // behaviour (not just cache behaviour) is measured.
    if (value_size <= 256)
        return 15000;
    if (value_size <= 1024)
        return 10000;
    return 6000;
}

void
printSummary(const std::vector<KvResult>& results)
{
    const std::size_t nsys = allSystems().size();
    heading("Figure 9: key-value store transaction throughput (KTPS)");
    for (int st = 0; st < 2; ++st) {
        std::printf("\n(%c) %s based key-value store\n",
                    'a' + st, st == 0 ? "hash table" : "red-black tree");
        std::printf("%-10s", "req_size");
        for (auto kind : allSystems())
            std::printf("%14s", systemKindName(kind));
        std::printf("\n");
        for (std::size_t z = 0; z < kSizes.size(); ++z) {
            std::printf("%-10u", kSizes[z]);
            for (std::size_t s = 0; s < nsys; ++s) {
                const std::size_t i =
                    (static_cast<std::size_t>(st) * kSizes.size() + z) *
                        nsys +
                    s;
                std::printf("%14.1f", results[i].ktps);
            }
            std::printf("\n");
        }
    }
    std::printf("\n(paper: ThyNVM ~8.8%%/4.3%% above Journal, "
                "~29.9%%/43.1%% above Shadow,\n ~95%% of Ideal DRAM for "
                "hash/rbtree respectively)\n");
}

} // namespace

int
main()
{
    const std::vector<KvWorkload::Structure> structures = {
        KvWorkload::Structure::HashTable, KvWorkload::Structure::RbTree};

    std::vector<GridCell<KvResult>> cells;
    for (std::size_t st = 0; st < structures.size(); ++st) {
        for (auto size : kSizes) {
            for (auto kind : allSystems()) {
                const auto structure = structures[st];
                cells.push_back(GridCell<KvResult>{
                    std::string(st == 0 ? "hash" : "rbtree") + "/" +
                        std::to_string(size) + "B/" +
                        systemKindName(kind),
                    [structure, size, kind] {
                        return runKv(paperSystem(kind), structure, size,
                                     txnsFor(size));
                    }});
            }
        }
    }
    const auto results = runGrid("fig9 kv throughput", cells);
    printSummary(results);
    return 0;
}
