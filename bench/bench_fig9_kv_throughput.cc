/**
 * @file
 * Figure 9: transaction throughput (KTPS) of the two key-value stores
 * (hash table, red-black tree) as the request size sweeps from 16 B to
 * 4 KB, on the five evaluated systems.
 *
 * Expected shape (paper §5.3): ThyNVM beats Journal and Shadow across
 * sizes and tracks the ideal systems closely (~95% of Ideal DRAM).
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

const std::vector<std::uint32_t> kSizes = {16, 64, 256, 1024, 4096};

std::uint64_t
txnsFor(std::uint32_t value_size)
{
    // Each run must span several 10 ms epochs so checkpointing
    // behaviour (not just cache behaviour) is measured.
    if (value_size <= 256)
        return 15000;
    if (value_size <= 1024)
        return 10000;
    return 6000;
}

std::map<std::tuple<int, int, int>, KvResult> g_results;

void
BM_Fig9(benchmark::State& state)
{
    const auto structure =
        state.range(0) == 0 ? KvWorkload::Structure::HashTable
                            : KvWorkload::Structure::RbTree;
    const auto size = kSizes[static_cast<std::size_t>(state.range(1))];
    const auto kind = allSystems()[static_cast<std::size_t>(
        state.range(2))];
    KvResult r;
    for (auto _ : state)
        r = runKv(paperSystem(kind), structure, size, txnsFor(size));
    g_results[{static_cast<int>(state.range(0)),
               static_cast<int>(state.range(1)),
               static_cast<int>(state.range(2))}] = r;
    state.counters["ktps"] = r.ktps;
    state.counters["write_bw_mbps"] = r.write_bw_mbps;
    state.SetLabel(std::string(state.range(0) == 0 ? "hash" : "rbtree") +
                   "/" + std::to_string(size) + "B/" +
                   systemKindName(kind));
}

BENCHMARK(BM_Fig9)
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printSummary()
{
    heading("Figure 9: key-value store transaction throughput (KTPS)");
    for (int st = 0; st < 2; ++st) {
        std::printf("\n(%c) %s based key-value store\n",
                    'a' + st, st == 0 ? "hash table" : "red-black tree");
        std::printf("%-10s", "req_size");
        for (auto kind : allSystems())
            std::printf("%14s", systemKindName(kind));
        std::printf("\n");
        for (std::size_t z = 0; z < kSizes.size(); ++z) {
            std::printf("%-10u", kSizes[z]);
            for (std::size_t s = 0; s < allSystems().size(); ++s) {
                std::printf("%14.1f",
                            g_results
                                .at({st, static_cast<int>(z),
                                     static_cast<int>(s)})
                                .ktps);
            }
            std::printf("\n");
        }
    }
    std::printf("\n(paper: ThyNVM ~8.8%%/4.3%% above Journal, "
                "~29.9%%/43.1%% above Shadow,\n ~95%% of Ideal DRAM for "
                "hash/rbtree respectively)\n");
}

} // namespace

int
main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    printSummary();
    return 0;
}
