/**
 * @file
 * Table 2: the simulated system configuration. No simulation runs;
 * this binary prints the configuration the other benchmarks use so the
 * evaluation setup is auditable against the paper.
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

void
constructAllSystems()
{
    // Sanity: every evaluated system can be constructed at evaluation
    // scale (this also exercises the address-space layout math).
    for (auto kind : allSystems()) {
        MicroWorkload::Params mp;
        mp.total_accesses = 1;
        MicroWorkload wl(mp);
        System sys(paperSystem(kind), wl);
        static_cast<void>(sys);
    }
}

void
printSummary()
{
    const SystemConfig cfg = paperSystem(SystemKind::ThyNvm);
    const ThyNvmConfig tc = [&] {
        ThyNvmConfig t = cfg.thynvm;
        t.phys_size = cfg.phys_size;
        t.epoch_length = cfg.epoch_length;
        return t;
    }();
    const AddressLayout lay(tc);
    const auto dram = DeviceParams::dram(1);
    const auto nvm = DeviceParams::nvm(1);

    heading("Table 2: system configuration and parameters");
    std::printf("Processor   : 3 GHz, in-order (cycle period %u ps)\n",
                static_cast<unsigned>(cfg.cpu.cycle_period));
    std::printf("L1 cache    : %zu KB, %u-way, 64 B blocks, %u cycles\n",
                cfg.l1.size / 1024, cfg.l1.assoc,
                static_cast<unsigned>(cfg.l1.hit_latency / 333));
    std::printf("L2 cache    : %zu KB, %u-way, 64 B blocks, %u cycles\n",
                cfg.l2.size / 1024, cfg.l2.assoc,
                static_cast<unsigned>(cfg.l2.hit_latency / 333));
    std::printf("L3 cache    : %zu KB, %u-way, 64 B blocks, %u cycles\n",
                cfg.l3.size / 1024, cfg.l3.assoc,
                static_cast<unsigned>(cfg.l3.hit_latency / 333));
    std::printf("DRAM timing : %llu ns row hit, %llu ns row miss\n",
                static_cast<unsigned long long>(dram.row_hit_latency /
                                                kNanosecond),
                static_cast<unsigned long long>(
                    dram.row_miss_clean_latency / kNanosecond));
    std::printf("NVM timing  : %llu ns row hit, %llu/%llu ns "
                "clean/dirty miss\n",
                static_cast<unsigned long long>(nvm.row_hit_latency /
                                                kNanosecond),
                static_cast<unsigned long long>(
                    nvm.row_miss_clean_latency / kNanosecond),
                static_cast<unsigned long long>(
                    nvm.row_miss_dirty_latency / kNanosecond));
    std::printf("BTT/PTT     : %zu / %zu entries, %llu ns lookup\n",
                tc.btt_entries, tc.ptt_entries,
                static_cast<unsigned long long>(
                    tc.table_lookup_latency / kNanosecond));
    std::printf("DRAM region : %zu MB (pages) + block/overflow "
                "buffers = %zu MB total\n",
                tc.ptt_entries * kPageSize >> 20,
                lay.dramSize() >> 20);
    std::printf("NVM size    : %zu MB (home + ckpt region A + "
                "backup slots)\n",
                lay.nvmSize() >> 20);
    std::printf("Epoch       : %llu ms (plus overflow-forced early "
                "epochs)\n",
                static_cast<unsigned long long>(tc.epoch_length /
                                                kMillisecond));
    std::printf("Thresholds  : promote at %u, demote below %u "
                "stores/page/epoch\n",
                tc.promote_threshold, tc.demote_threshold);
}

} // namespace

int
main()
{
    constructAllSystems();
    printSummary();
    return 0;
}
