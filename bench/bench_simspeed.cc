/**
 * @file
 * Simulator-throughput tracker: how fast does the host execute the
 * discrete-event kernel itself?
 *
 * Two sections:
 *
 *  1. Per-cell serial baseline — replays the Figure 7 micro-benchmark
 *     cells one at a time on one host thread and reports kernel events
 *     per host second and host seconds per simulated millisecond.
 *
 *  2. Sharded-kernel thread sweep (--threads t1,t2,...; default
 *     1,2,4,8) — runs the same cell set as one SystemGroup whose
 *     shards are stepped by N worker threads, and cross-checks that
 *     every cell finishes with the identical final tick and event
 *     count as its solo serial run (the determinism contract of
 *     DESIGN.md §8), while measuring wall-clock scaling.
 *
 *  3. Channel sweep — ONE System (Random/ThyNVM) at 1/2/4 memory
 *     channels, each stepped by 1/2/4 worker threads. Multi-channel
 *     splits a single run into per-channel kernel shards, so this is
 *     the intra-System parallel-speedup axis; every (channels,
 *     threads) cell is cross-checked against the one-worker run of
 *     the identical topology (same final tick, same total event
 *     count across the core and every channel queue).
 *
 * Results are written as machine-readable JSON to BENCH_simspeed.json
 * (in the working directory) so the performance trajectory of the
 * simulation substrate is tracked from PR to PR; EXPERIMENTS.md records
 * the history.
 *
 * This binary deliberately ignores THYNVM_BENCH_THREADS: host-side
 * fan-out would perturb the per-run timing it exists to measure. The
 * only parallelism here is the sharded kernel under test.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "harness/shard_group.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

using Clock = std::chrono::steady_clock;

const char*
patternName(MicroWorkload::Pattern p)
{
    switch (p) {
      case MicroWorkload::Pattern::Random: return "Random";
      case MicroWorkload::Pattern::Streaming: return "Streaming";
      case MicroWorkload::Pattern::Sliding: return "Sliding";
    }
    return "?";
}

struct SpeedResult
{
    std::string label;
    std::uint64_t events = 0;
    double host_seconds = 0.0;
    double sim_ms = 0.0;
    double events_per_sec = 0.0;
    double host_sec_per_sim_ms = 0.0;
    Tick final_tick = 0;
    /** Process peak RSS after the cell (monotone across cells). */
    std::uint64_t peak_rss_bytes = 0;
};

MicroWorkload::Params
cellParams(MicroWorkload::Pattern pattern)
{
    const MicroScale scale = microScale(pattern);
    MicroWorkload::Params mp;
    mp.pattern = pattern;
    mp.base = 0;
    mp.array_bytes = scale.array_bytes;
    mp.access_size = 64;
    mp.read_fraction = 0.5;
    mp.total_accesses = scale.accesses;
    mp.seed = 1;
    return mp;
}

SpeedResult
measure(SystemKind kind, MicroWorkload::Pattern pattern)
{
    const SystemConfig cfg = paperSystem(kind);
    MicroWorkload wl(cellParams(pattern));
    System sys(cfg, wl);

    const auto t0 = Clock::now();
    sys.start();
    const Tick end = sys.run(60 * kSecond);
    const double host =
        std::chrono::duration<double>(Clock::now() - t0).count();
    fatal_if(!sys.finished(), "simspeed run did not complete");

    SpeedResult r;
    r.label = std::string(patternName(pattern)) + "/" +
              systemKindName(kind);
    r.events = sys.eventq().eventsExecuted();
    r.host_seconds = host;
    r.sim_ms = static_cast<double>(sys.metrics().exec_time) /
               static_cast<double>(kMillisecond);
    r.events_per_sec =
        host > 0.0 ? static_cast<double>(r.events) / host : 0.0;
    r.host_sec_per_sim_ms = r.sim_ms > 0.0 ? host / r.sim_ms : 0.0;
    r.final_tick = end;
    r.peak_rss_bytes = peakRssBytes();
    return r;
}

/** One sweep point: the full cell set as a sharded group. */
struct SweepResult
{
    unsigned threads = 0;
    std::uint64_t events = 0;
    double host_seconds = 0.0;
    double events_per_sec = 0.0;
    double speedup = 1.0;
    std::uint64_t windows = 0;
};

SweepResult
measureGroup(unsigned threads,
             const std::vector<SpeedResult>& serial_cells)
{
    const std::vector<MicroWorkload::Pattern> patterns = {
        MicroWorkload::Pattern::Random,
        MicroWorkload::Pattern::Streaming,
        MicroWorkload::Pattern::Sliding,
    };

    std::vector<std::unique_ptr<MicroWorkload>> wls;
    std::vector<std::unique_ptr<System>> systems;
    SystemGroup group;
    for (auto pattern : patterns) {
        for (auto kind : allSystems()) {
            wls.push_back(
                std::make_unique<MicroWorkload>(cellParams(pattern)));
            systems.push_back(std::make_unique<System>(
                paperSystem(kind), *wls.back()));
        }
    }

    const auto t0 = Clock::now();
    for (auto& sys : systems) {
        sys->start();
        group.add(*sys);
    }
    group.run(threads, 60 * kSecond);
    const double host =
        std::chrono::duration<double>(Clock::now() - t0).count();

    SweepResult r;
    r.threads = threads;
    r.host_seconds = host;
    r.windows = group.windowsExecuted();
    for (std::size_t i = 0; i < systems.size(); ++i) {
        fatal_if(!systems[i]->finished(),
                 "sharded cell did not complete");
        const std::uint64_t ev = systems[i]->eventq().eventsExecuted();
        // Determinism contract: every shard replays exactly the serial
        // event sequence, whatever the worker count.
        fatal_if(ev != serial_cells[i].events,
                 "sharded run diverged from serial: cell %s events "
                 "%llu != %llu",
                 serial_cells[i].label.c_str(),
                 static_cast<unsigned long long>(ev),
                 static_cast<unsigned long long>(
                     serial_cells[i].events));
        r.events += ev;
    }
    r.events_per_sec =
        host > 0.0 ? static_cast<double>(r.events) / host : 0.0;
    return r;
}

/** One channel-sweep cell: a single System, C channels, N workers. */
struct ChannelCell
{
    unsigned channels = 1;
    unsigned threads = 1;
    std::uint64_t events = 0;
    double host_seconds = 0.0;
    double events_per_sec = 0.0;
    double speedup = 1.0; //!< vs. one worker at the same channel count
    Tick final_tick = 0;
    /** Kernel windows / cross-shard messages (0 for the serial loop). */
    std::uint64_t windows = 0;
    std::uint64_t messages = 0;
};

/** Events executed across the core queue and every channel queue. */
std::uint64_t
totalEvents(System& sys)
{
    std::uint64_t ev = sys.eventq().eventsExecuted();
    if (sys.channels() > 1) {
        auto& grp = static_cast<ChannelGroup&>(sys.controller());
        for (unsigned i = 0; i < grp.channelCount(); ++i)
            ev += grp.channelEventq(i).eventsExecuted();
    }
    return ev;
}

ChannelCell
measureChannelCell(unsigned channels, unsigned threads)
{
    SystemConfig cfg = paperSystem(SystemKind::ThyNvm);
    cfg.channels = channels;
    cfg.sim_threads = threads;
    MicroWorkload wl(cellParams(MicroWorkload::Pattern::Random));
    System sys(cfg, wl);

    const auto t0 = Clock::now();
    sys.start();
    const Tick end = sys.run(60 * kSecond);
    const double host =
        std::chrono::duration<double>(Clock::now() - t0).count();
    fatal_if(!sys.finished(), "channel-sweep run did not complete");

    ChannelCell r;
    r.channels = channels;
    r.threads = threads;
    r.events = totalEvents(sys);
    r.host_seconds = host;
    r.events_per_sec =
        host > 0.0 ? static_cast<double>(r.events) / host : 0.0;
    r.final_tick = end;
    r.windows = sys.kernelWindows();
    r.messages = sys.kernelMessages();
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<unsigned> sweep_threads = {1, 2, 4, 8};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            sweep_threads.clear();
            for (const char* p = argv[++i]; *p != '\0';) {
                char* end = nullptr;
                sweep_threads.push_back(static_cast<unsigned>(
                    std::strtoul(p, &end, 10)));
                p = (*end == ',') ? end + 1 : end;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--threads t1,t2,...]\n", argv[0]);
            return 2;
        }
    }

    const std::vector<MicroWorkload::Pattern> patterns = {
        MicroWorkload::Pattern::Random,
        MicroWorkload::Pattern::Streaming,
        MicroWorkload::Pattern::Sliding,
    };

    heading("Simulator speed: fig7 micro cells, single host thread");
    std::printf("%-24s %14s %10s %14s %16s\n", "cell", "events",
                "host_s", "events/s", "host_s/sim_ms");

    std::vector<SpeedResult> results;
    std::uint64_t total_events = 0;
    double total_host = 0.0;
    double total_sim_ms = 0.0;
    for (auto pattern : patterns) {
        for (auto kind : allSystems()) {
            SpeedResult r = measure(kind, pattern);
            std::printf("%-24s %14llu %10.2f %14.0f %16.4f\n",
                        r.label.c_str(),
                        static_cast<unsigned long long>(r.events),
                        r.host_seconds, r.events_per_sec,
                        r.host_sec_per_sim_ms);
            total_events += r.events;
            total_host += r.host_seconds;
            total_sim_ms += r.sim_ms;
            results.push_back(std::move(r));
        }
    }

    const double agg_eps =
        total_host > 0.0 ? static_cast<double>(total_events) / total_host
                         : 0.0;
    const double agg_spms =
        total_sim_ms > 0.0 ? total_host / total_sim_ms : 0.0;
    std::printf("%-24s %14llu %10.2f %14.0f %16.4f\n", "TOTAL",
                static_cast<unsigned long long>(total_events), total_host,
                agg_eps, agg_spms);

    const unsigned host_threads = std::thread::hardware_concurrency();
    heading("Sharded kernel: same cells as one group, worker sweep");
    std::printf("host hardware threads: %u\n\n", host_threads);
    std::printf("%-8s %14s %10s %14s %10s %10s\n", "threads", "events",
                "host_s", "events/s", "speedup", "windows");

    std::vector<SweepResult> sweep;
    for (unsigned threads : sweep_threads) {
        SweepResult s = measureGroup(threads, results);
        if (!sweep.empty() && sweep.front().host_seconds > 0.0)
            s.speedup = sweep.front().host_seconds / s.host_seconds;
        std::printf("%-8u %14llu %10.2f %14.0f %9.2fx %10llu\n",
                    s.threads,
                    static_cast<unsigned long long>(s.events),
                    s.host_seconds, s.events_per_sec, s.speedup,
                    static_cast<unsigned long long>(s.windows));
        sweep.push_back(s);
    }

    heading("Channel sweep: one Random/ThyNVM System, "
            "channels x workers");
    std::printf("%-10s %-8s %14s %10s %14s %10s %12s %10s\n", "channels",
                "threads", "events", "host_s", "events/s", "speedup",
                "windows", "messages");

    std::vector<ChannelCell> channel_sweep;
    for (unsigned channels : {1u, 2u, 4u}) {
        ChannelCell ref; // the one-worker cell at this channel count
        for (unsigned threads : {1u, 2u, 4u}) {
            ChannelCell c = measureChannelCell(channels, threads);
            if (threads == 1) {
                ref = c;
            } else {
                // Determinism cross-check: the sharded run replays the
                // one-worker schedule of the identical topology.
                fatal_if(c.events != ref.events,
                         "channel sweep diverged: channels=%u "
                         "threads=%u events %llu != %llu",
                         channels, threads,
                         static_cast<unsigned long long>(c.events),
                         static_cast<unsigned long long>(ref.events));
                fatal_if(c.final_tick != ref.final_tick,
                         "channel sweep diverged: channels=%u "
                         "threads=%u final tick %llu != %llu",
                         channels, threads,
                         static_cast<unsigned long long>(c.final_tick),
                         static_cast<unsigned long long>(
                             ref.final_tick));
                if (ref.host_seconds > 0.0)
                    c.speedup = ref.host_seconds / c.host_seconds;
            }
            std::printf("%-10u %-8u %14llu %10.2f %14.0f %9.2fx %12llu "
                        "%10llu\n",
                        c.channels, c.threads,
                        static_cast<unsigned long long>(c.events),
                        c.host_seconds, c.events_per_sec, c.speedup,
                        static_cast<unsigned long long>(c.windows),
                        static_cast<unsigned long long>(c.messages));
            channel_sweep.push_back(c);
        }
    }

    FILE* f = std::fopen("BENCH_simspeed.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_simspeed.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"simspeed\",\n");
    std::fprintf(f, "  \"workload\": \"fig7_micro\",\n");
    std::fprintf(f, "  \"host_threads\": %u,\n", host_threads);
    std::fprintf(f, "  \"total\": {\"events\": %llu, \"host_seconds\": "
                    "%.3f, \"events_per_sec\": %.0f, "
                    "\"host_sec_per_sim_ms\": %.5f},\n",
                 static_cast<unsigned long long>(total_events),
                 total_host, agg_eps, agg_spms);
    std::fprintf(f, "  \"thread_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const SweepResult& s = sweep[i];
        std::fprintf(f,
                     "    {\"threads\": %u, \"events\": %llu, "
                     "\"host_seconds\": %.3f, \"events_per_sec\": "
                     "%.0f, \"speedup\": %.3f, \"windows\": %llu}%s\n",
                     s.threads,
                     static_cast<unsigned long long>(s.events),
                     s.host_seconds, s.events_per_sec, s.speedup,
                     static_cast<unsigned long long>(s.windows),
                     i + 1 == sweep.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"channel_sweep\": [\n");
    for (std::size_t i = 0; i < channel_sweep.size(); ++i) {
        const ChannelCell& c = channel_sweep[i];
        std::fprintf(f,
                     "    {\"channels\": %u, \"threads\": %u, "
                     "\"events\": %llu, \"host_seconds\": %.3f, "
                     "\"events_per_sec\": %.0f, \"speedup\": %.3f, "
                     "\"final_tick\": %llu, \"windows\": %llu, "
                     "\"messages\": %llu}%s\n",
                     c.channels, c.threads,
                     static_cast<unsigned long long>(c.events),
                     c.host_seconds, c.events_per_sec, c.speedup,
                     static_cast<unsigned long long>(c.final_tick),
                     static_cast<unsigned long long>(c.windows),
                     static_cast<unsigned long long>(c.messages),
                     i + 1 == channel_sweep.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SpeedResult& r = results[i];
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"events\": %llu, "
                     "\"host_seconds\": %.3f, \"sim_ms\": %.3f, "
                     "\"events_per_sec\": %.0f, "
                     "\"host_sec_per_sim_ms\": %.5f, "
                     "\"peak_rss_bytes\": %llu}%s\n",
                     r.label.c_str(),
                     static_cast<unsigned long long>(r.events),
                     r.host_seconds, r.sim_ms, r.events_per_sec,
                     r.host_sec_per_sim_ms,
                     static_cast<unsigned long long>(r.peak_rss_bytes),
                     i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_simspeed.json\n");
    return 0;
}
