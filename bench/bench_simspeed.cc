/**
 * @file
 * Simulator-throughput tracker: how fast does the host execute the
 * discrete-event kernel itself?
 *
 * Replays the Figure 7 micro-benchmark cells single-threaded and
 * reports, per cell and in aggregate, kernel events per host second
 * and host seconds per simulated millisecond. Results are written as
 * machine-readable JSON to BENCH_simspeed.json (in the working
 * directory) so the performance trajectory of the simulation substrate
 * is tracked from PR to PR; EXPERIMENTS.md records the history.
 *
 * This binary deliberately ignores THYNVM_BENCH_THREADS: host-side
 * parallelism would perturb the per-run timing it exists to measure.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

const char*
patternName(MicroWorkload::Pattern p)
{
    switch (p) {
      case MicroWorkload::Pattern::Random: return "Random";
      case MicroWorkload::Pattern::Streaming: return "Streaming";
      case MicroWorkload::Pattern::Sliding: return "Sliding";
    }
    return "?";
}

struct SpeedResult
{
    std::string label;
    std::uint64_t events = 0;
    double host_seconds = 0.0;
    double sim_ms = 0.0;
    double events_per_sec = 0.0;
    double host_sec_per_sim_ms = 0.0;
};

SpeedResult
measure(SystemKind kind, MicroWorkload::Pattern pattern)
{
    using Clock = std::chrono::steady_clock;

    const SystemConfig cfg = paperSystem(kind);
    const MicroScale scale = microScale(pattern);
    MicroWorkload::Params mp;
    mp.pattern = pattern;
    mp.base = 0;
    mp.array_bytes = scale.array_bytes;
    mp.access_size = 64;
    mp.read_fraction = 0.5;
    mp.total_accesses = scale.accesses;
    mp.seed = 1;
    MicroWorkload wl(mp);
    System sys(cfg, wl);

    const auto t0 = Clock::now();
    sys.start();
    sys.run(60 * kSecond);
    const double host =
        std::chrono::duration<double>(Clock::now() - t0).count();
    fatal_if(!sys.finished(), "simspeed run did not complete");

    SpeedResult r;
    r.label = std::string(patternName(pattern)) + "/" +
              systemKindName(kind);
    r.events = sys.eventq().eventsExecuted();
    r.host_seconds = host;
    r.sim_ms = static_cast<double>(sys.metrics().exec_time) /
               static_cast<double>(kMillisecond);
    r.events_per_sec =
        host > 0.0 ? static_cast<double>(r.events) / host : 0.0;
    r.host_sec_per_sim_ms = r.sim_ms > 0.0 ? host / r.sim_ms : 0.0;
    return r;
}

} // namespace

int
main()
{
    const std::vector<MicroWorkload::Pattern> patterns = {
        MicroWorkload::Pattern::Random,
        MicroWorkload::Pattern::Streaming,
        MicroWorkload::Pattern::Sliding,
    };

    heading("Simulator speed: fig7 micro cells, single host thread");
    std::printf("%-24s %14s %10s %14s %16s\n", "cell", "events",
                "host_s", "events/s", "host_s/sim_ms");

    std::vector<SpeedResult> results;
    std::uint64_t total_events = 0;
    double total_host = 0.0;
    double total_sim_ms = 0.0;
    for (auto pattern : patterns) {
        for (auto kind : allSystems()) {
            SpeedResult r = measure(kind, pattern);
            std::printf("%-24s %14llu %10.2f %14.0f %16.4f\n",
                        r.label.c_str(),
                        static_cast<unsigned long long>(r.events),
                        r.host_seconds, r.events_per_sec,
                        r.host_sec_per_sim_ms);
            total_events += r.events;
            total_host += r.host_seconds;
            total_sim_ms += r.sim_ms;
            results.push_back(std::move(r));
        }
    }

    const double agg_eps =
        total_host > 0.0 ? static_cast<double>(total_events) / total_host
                         : 0.0;
    const double agg_spms =
        total_sim_ms > 0.0 ? total_host / total_sim_ms : 0.0;
    std::printf("%-24s %14llu %10.2f %14.0f %16.4f\n", "TOTAL",
                static_cast<unsigned long long>(total_events), total_host,
                agg_eps, agg_spms);

    FILE* f = std::fopen("BENCH_simspeed.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_simspeed.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"simspeed\",\n");
    std::fprintf(f, "  \"workload\": \"fig7_micro\",\n");
    std::fprintf(f, "  \"threads\": 1,\n");
    std::fprintf(f, "  \"total\": {\"events\": %llu, \"host_seconds\": "
                    "%.3f, \"events_per_sec\": %.0f, "
                    "\"host_sec_per_sim_ms\": %.5f},\n",
                 static_cast<unsigned long long>(total_events),
                 total_host, agg_eps, agg_spms);
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SpeedResult& r = results[i];
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"events\": %llu, "
                     "\"host_seconds\": %.3f, \"sim_ms\": %.3f, "
                     "\"events_per_sec\": %.0f, "
                     "\"host_sec_per_sim_ms\": %.5f}%s\n",
                     r.label.c_str(),
                     static_cast<unsigned long long>(r.events),
                     r.host_seconds, r.sim_ms, r.events_per_sec,
                     r.host_sec_per_sim_ms,
                     i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_simspeed.json\n");
    return 0;
}
