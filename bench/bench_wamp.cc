/**
 * @file
 * Write-amplification comparison across all seven memory controllers:
 * persistent-media bytes written per application byte written, on a
 * sequential write-only micro pattern (the analytic case: every block
 * reaches the controller exactly once) and on the transactional KV
 * workload (the paper's persistent-application case).
 *
 * Expected shape: the ideal controllers sit at 1.0 by construction;
 * journaling pays its double write (~2x); shadow paging amplifies by
 * the page/dirty-block ratio; in-cache-line logging pays a log (and
 * often an overflow) block per dirtied line; incremental range
 * checkpointing stages each dirty block once per epoch and lands well
 * under journaling; ThyNVM sits between the ideals and the coarse
 * baselines. Results are written to BENCH_wamp.json.
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

const std::vector<SystemKind> kSystems = {
    SystemKind::IdealDram,   SystemKind::IdealNvm, SystemKind::Journal,
    SystemKind::Shadow,      SystemKind::ThyNvm,   SystemKind::Icl,
    SystemKind::Incremental,
};

/** Sequential non-wrapping write-only micro run. */
RunMetrics
runSeqWrite(SystemKind kind)
{
    SystemConfig cfg = paperSystem(kind);
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Streaming;
    mp.base = 0;
    mp.array_bytes = 16u << 20;
    mp.access_size = 64;
    mp.read_fraction = 0.0;
    mp.total_accesses = 200000; // 12.2 MiB < array: never wraps
    mp.seed = 1;
    MicroWorkload wl(mp);
    System sys(cfg, wl);
    sys.start();
    sys.run(60 * kSecond);
    fatal_if(!sys.finished(), "seq-write benchmark did not complete");
    return sys.metrics();
}

RunMetrics
runKvCell(SystemKind kind)
{
    return runKv(paperSystem(kind), KvWorkload::Structure::HashTable, 64,
                 30000)
        .m;
}

void
printSummary(const std::vector<RunMetrics>& results)
{
    heading("Write amplification (media bytes / application bytes)");
    std::printf("%-12s %14s %14s\n", "system", "seq_write", "kv_hash");
    for (std::size_t s = 0; s < kSystems.size(); ++s) {
        const auto& seq = results[s];
        const auto& kv = results[kSystems.size() + s];
        std::printf("%-12s %14.3f %14.3f\n", systemKindName(kSystems[s]),
                    seq.write_amp, kv.write_amp);
    }
    std::printf("\n(ideals are 1.0 by construction; journaling pays the "
                "double write;\n incremental range checkpointing stages "
                "each dirty block once per epoch\n and must land below "
                "Journal on the KV column)\n");
}

} // namespace

int
main()
{
    std::vector<GridCell<RunMetrics>> cells;
    for (auto kind : kSystems) {
        cells.push_back(GridCell<RunMetrics>{
            std::string("seq-write/") + systemKindName(kind),
            [kind] { return runSeqWrite(kind); }});
    }
    for (auto kind : kSystems) {
        cells.push_back(GridCell<RunMetrics>{
            std::string("kv/") + systemKindName(kind),
            [kind] { return runKvCell(kind); }});
    }
    const auto results = runGrid("write amplification", cells);
    printSummary(results);

    FILE* f = std::fopen("BENCH_wamp.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_wamp.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"wamp\",\n  \"systems\": [\n");
    for (std::size_t s = 0; s < kSystems.size(); ++s) {
        const auto& seq = results[s];
        const auto& kv = results[kSystems.size() + s];
        std::fprintf(
            f,
            "    {\"system\": \"%s\", "
            "\"seq_write\": {\"write_amp\": %.4f, \"app_mb\": %.2f, "
            "\"media_mb\": %.2f}, "
            "\"kv\": {\"write_amp\": %.4f, \"app_mb\": %.2f, "
            "\"media_mb\": %.2f}}%s\n",
            systemKindName(kSystems[s]), seq.write_amp,
            mb(seq.app_wr_bytes), mb(seq.app_wr_bytes) * seq.write_amp,
            kv.write_amp, mb(kv.app_wr_bytes),
            mb(kv.app_wr_bytes) * kv.write_amp,
            s + 1 == kSystems.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_wamp.json\n");
    return 0;
}
