/**
 * @file
 * Memory-datapath throughput tracker: how many demand accesses per host
 * second does the full system (CPU + 3-level hierarchy + controller)
 * sustain?
 *
 * Two cells, both on the paper's ThyNVM configuration:
 *  - resident: Random 1 KB ops over a 16 KB array. After warmup every
 *    64-byte piece hits L1, so the cell isolates the per-piece cost of
 *    the demand datapath itself (the synchronous fast path's target).
 *  - thrash: the fig7 Random cell (64 B ops over 24 MB, far beyond L3),
 *    miss-dominated; guards against the fast path taxing the slow path.
 *
 * The pre-change numbers (event-per-piece datapath, measured on the
 * commit that introduced this benchmark) are embedded as the baseline so
 * the speedup is tracked release to release. Results are written to
 * BENCH_memspeed.json. Setting THYNVM_NO_FAST_PATH=1 forces the event
 * path and should reproduce roughly baseline throughput on this host
 * class. Single-threaded by design; THYNVM_BENCH_THREADS is ignored.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

/**
 * Pre-change baselines: accesses per host second measured at the commit
 * preceding the synchronous fast path, same cells, Release build.
 */
constexpr double kBaselineResidentAps = 765430.0;
constexpr double kBaselineThrashAps = 313913.0;

struct Cell
{
    const char* label;
    std::size_t array_bytes;
    std::uint32_t access_size;
    std::uint64_t accesses;
    double baseline_aps;
};

struct MemResult
{
    std::string label;
    std::uint64_t accesses = 0;
    std::uint64_t events = 0;
    double host_seconds = 0.0;
    double sim_ms = 0.0;
    double accesses_per_sec = 0.0;
    double baseline_aps = 0.0;
    double speedup = 0.0;
};

MemResult
measure(const Cell& cell)
{
    using Clock = std::chrono::steady_clock;

    const SystemConfig cfg = paperSystem(SystemKind::ThyNvm);
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Random;
    mp.base = 0;
    mp.array_bytes = cell.array_bytes;
    mp.access_size = cell.access_size;
    mp.read_fraction = 0.5;
    mp.total_accesses = cell.accesses;
    mp.seed = 1;
    MicroWorkload wl(mp);
    System sys(cfg, wl);

    const auto t0 = Clock::now();
    sys.start();
    sys.run(60 * kSecond);
    const double host =
        std::chrono::duration<double>(Clock::now() - t0).count();
    fatal_if(!sys.finished(), "memspeed run did not complete");

    MemResult r;
    r.label = cell.label;
    r.accesses = cell.accesses;
    r.events = sys.eventq().eventsExecuted();
    r.host_seconds = host;
    r.sim_ms = static_cast<double>(sys.metrics().exec_time) /
               static_cast<double>(kMillisecond);
    r.accesses_per_sec =
        host > 0.0 ? static_cast<double>(cell.accesses) / host : 0.0;
    r.baseline_aps = cell.baseline_aps;
    r.speedup = cell.baseline_aps > 0.0
                    ? r.accesses_per_sec / cell.baseline_aps
                    : 0.0;
    return r;
}

} // namespace

int
main()
{
    const std::vector<Cell> cells = {
        {"resident/ThyNVM", 16u << 10, 1024, 500000, kBaselineResidentAps},
        {"thrash/ThyNVM", 24u << 20, 64, 150000, kBaselineThrashAps},
    };

    heading("Memory datapath speed: demand accesses per host second");
    std::printf("%-20s %10s %10s %12s %14s %8s\n", "cell", "accesses",
                "host_s", "accesses/s", "baseline", "speedup");

    std::vector<MemResult> results;
    for (const Cell& cell : cells) {
        MemResult r = measure(cell);
        std::printf("%-20s %10llu %10.2f %12.0f %14.0f %7.2fx\n",
                    r.label.c_str(),
                    static_cast<unsigned long long>(r.accesses),
                    r.host_seconds, r.accesses_per_sec, r.baseline_aps,
                    r.speedup);
        results.push_back(std::move(r));
    }

    FILE* f = std::fopen("BENCH_memspeed.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_memspeed.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"memspeed\",\n");
    std::fprintf(f, "  \"workload\": \"micro_random\",\n");
    std::fprintf(f, "  \"threads\": 1,\n");
    std::fprintf(f, "  \"host_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const MemResult& r = results[i];
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"accesses\": %llu, "
                     "\"events\": %llu, \"host_seconds\": %.3f, "
                     "\"sim_ms\": %.3f, \"accesses_per_sec\": %.0f, "
                     "\"baseline_accesses_per_sec\": %.0f, "
                     "\"speedup\": %.2f}%s\n",
                     r.label.c_str(),
                     static_cast<unsigned long long>(r.accesses),
                     static_cast<unsigned long long>(r.events),
                     r.host_seconds, r.sim_ms, r.accesses_per_sec,
                     r.baseline_aps, r.speedup,
                     i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_memspeed.json\n");
    return 0;
}
