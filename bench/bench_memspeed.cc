/**
 * @file
 * Memory-datapath throughput tracker: how many demand accesses per host
 * second does the full system (CPU + 3-level hierarchy + controller)
 * sustain?
 *
 * Three cells, all on the paper's ThyNVM configuration:
 *  - resident: Random 1 KB ops over a 16 KB array. After warmup every
 *    64-byte piece hits L1, so the cell isolates the per-piece cost of
 *    the demand datapath itself (the synchronous fast path's target).
 *  - thrash: the fig7 Random cell (64 B ops over 24 MB, far beyond L3),
 *    miss-dominated; guards against the fast path taxing the slow path.
 *  - gb_kv: a 4 GiB / 1M-key transactional KV cell that is only
 *    feasible because the backing store is sparse (COW pages allocated
 *    on first write). Its acceptance metric is peak host RSS: the run
 *    must stay well below the dense extrapolation (host image + NVM
 *    home region = 2x phys), which a flat-array store cannot do.
 *
 * The pre-change numbers (event-per-piece datapath, measured on the
 * commit that introduced this benchmark) are embedded as the baseline so
 * the speedup is tracked release to release. Results are written to
 * BENCH_memspeed.json, now including per-cell peak host RSS (cells run
 * smallest-footprint first, so the monotone ru_maxrss reading after
 * each cell is that cell's effective peak). Setting
 * THYNVM_NO_FAST_PATH=1 forces the event path and should reproduce
 * roughly baseline throughput on this host class. `--gb-smoke` runs
 * only the GB cell at a bounded scale (fewer keys/transactions) for
 * sanitizer CI. Single-threaded by design; THYNVM_BENCH_THREADS is
 * ignored.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

/**
 * Pre-change baselines: accesses per host second measured at the commit
 * preceding the synchronous fast path, same cells, Release build.
 */
constexpr double kBaselineResidentAps = 765430.0;
constexpr double kBaselineThrashAps = 313913.0;

struct Cell
{
    const char* label;
    std::size_t array_bytes;
    std::uint32_t access_size;
    std::uint64_t accesses;
    double baseline_aps;
};

struct MemResult
{
    std::string label;
    std::uint64_t accesses = 0;
    std::uint64_t events = 0;
    double host_seconds = 0.0;
    double sim_ms = 0.0;
    double accesses_per_sec = 0.0;
    double baseline_aps = 0.0;
    double speedup = 0.0;
    std::uint64_t peak_rss_bytes = 0;
    // GB cell only: what a dense (flat-array) store would allocate.
    std::uint64_t dense_extrapolation_bytes = 0;
    std::uint64_t initial_keys = 0;
};

MemResult
measure(const Cell& cell)
{
    using Clock = std::chrono::steady_clock;

    const SystemConfig cfg = paperSystem(SystemKind::ThyNvm);
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Random;
    mp.base = 0;
    mp.array_bytes = cell.array_bytes;
    mp.access_size = cell.access_size;
    mp.read_fraction = 0.5;
    mp.total_accesses = cell.accesses;
    mp.seed = 1;
    MicroWorkload wl(mp);
    System sys(cfg, wl);

    const auto t0 = Clock::now();
    sys.start();
    sys.run(60 * kSecond);
    const double host =
        std::chrono::duration<double>(Clock::now() - t0).count();
    fatal_if(!sys.finished(), "memspeed run did not complete");

    MemResult r;
    r.label = cell.label;
    r.accesses = cell.accesses;
    r.events = sys.eventq().eventsExecuted();
    r.host_seconds = host;
    r.sim_ms = static_cast<double>(sys.metrics().exec_time) /
               static_cast<double>(kMillisecond);
    r.accesses_per_sec =
        host > 0.0 ? static_cast<double>(cell.accesses) / host : 0.0;
    r.baseline_aps = cell.baseline_aps;
    r.speedup = cell.baseline_aps > 0.0
                    ? r.accesses_per_sec / cell.baseline_aps
                    : 0.0;
    r.peak_rss_bytes = peakRssBytes();
    return r;
}

/**
 * The GB-scale cell: 4 GiB simulated phys, a million-key hash-table KV
 * store with Zipf-skewed transactions. A dense backing store would
 * allocate >= 2x phys on the host (the workload's initial image plus
 * the NVM home region) before the first transaction runs; the sparse
 * store pays only for touched pages, so peak RSS tracks live data.
 */
MemResult
measureGbKv(bool smoke)
{
    using Clock = std::chrono::steady_clock;

    SystemConfig cfg = paperSystem(SystemKind::ThyNvm);
    cfg.phys_size = 4ull << 30;

    KvWorkload::Params p;
    p.structure = KvWorkload::Structure::HashTable;
    p.phys_size = cfg.phys_size;
    p.value_size = 256;
    p.initial_keys = smoke ? 100000 : 1000000;
    p.key_space = 2 * p.initial_keys;
    p.hash_buckets = 32768; // largest SimHeap size class (256 KB array)
    p.zipf_theta = 0.99; // YCSB-style skewed serving mix
    p.compute_per_txn = 200;
    p.total_txns = smoke ? 50 : 400;
    p.seed = 7;
    KvWorkload wl(p);
    System sys(cfg, wl);

    const auto t0 = Clock::now();
    sys.start();
    sys.run(120 * kSecond);
    const double host =
        std::chrono::duration<double>(Clock::now() - t0).count();
    fatal_if(!sys.finished(), "gb_kv run did not complete");

    MemResult r;
    r.label = smoke ? "gb_kv_smoke/ThyNVM" : "gb_kv/ThyNVM";
    r.accesses = p.total_txns;
    r.events = sys.eventq().eventsExecuted();
    r.host_seconds = host;
    r.sim_ms = static_cast<double>(sys.metrics().exec_time) /
               static_cast<double>(kMillisecond);
    r.accesses_per_sec =
        host > 0.0 ? static_cast<double>(p.total_txns) / host : 0.0;
    r.peak_rss_bytes = peakRssBytes();
    r.dense_extrapolation_bytes = 2ull * cfg.phys_size;
    r.initial_keys = p.initial_keys;
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    const bool gb_smoke =
        argc > 1 && std::strcmp(argv[1], "--gb-smoke") == 0;

    std::vector<MemResult> results;
    heading("Memory datapath speed: demand accesses per host second");
    std::printf("%-20s %10s %10s %12s %14s %8s %10s\n", "cell",
                "accesses", "host_s", "accesses/s", "baseline",
                "speedup", "rss_mb");

    if (!gb_smoke) {
        const std::vector<Cell> cells = {
            {"resident/ThyNVM", 16u << 10, 1024, 500000,
             kBaselineResidentAps},
            {"thrash/ThyNVM", 24u << 20, 64, 150000, kBaselineThrashAps},
        };
        for (const Cell& cell : cells)
            results.push_back(measure(cell));
    }
    // Largest footprint last so the monotone ru_maxrss reading is
    // attributable (see file comment).
    results.push_back(measureGbKv(gb_smoke));

    for (const MemResult& r : results) {
        std::printf("%-20s %10llu %10.2f %12.0f %14.0f %7.2fx %9.1f\n",
                    r.label.c_str(),
                    static_cast<unsigned long long>(r.accesses),
                    r.host_seconds, r.accesses_per_sec, r.baseline_aps,
                    r.speedup, mb(r.peak_rss_bytes));
        if (r.dense_extrapolation_bytes != 0) {
            const double ratio =
                static_cast<double>(r.dense_extrapolation_bytes) /
                static_cast<double>(r.peak_rss_bytes);
            std::printf("%-20s peak RSS %.1f MB vs dense extrapolation "
                        "%.1f MB (%.1fx below)\n",
                        "", mb(r.peak_rss_bytes),
                        mb(r.dense_extrapolation_bytes), ratio);
        }
    }

    FILE* f = std::fopen("BENCH_memspeed.json", "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_memspeed.json\n");
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"memspeed\",\n");
    std::fprintf(f, "  \"workload\": \"micro_random+gb_kv\",\n");
    std::fprintf(f, "  \"threads\": 1,\n");
    std::fprintf(f, "  \"host_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const MemResult& r = results[i];
        std::fprintf(f,
                     "    {\"label\": \"%s\", \"accesses\": %llu, "
                     "\"events\": %llu, \"host_seconds\": %.3f, "
                     "\"sim_ms\": %.3f, \"accesses_per_sec\": %.0f, "
                     "\"baseline_accesses_per_sec\": %.0f, "
                     "\"speedup\": %.2f, \"peak_rss_bytes\": %llu",
                     r.label.c_str(),
                     static_cast<unsigned long long>(r.accesses),
                     static_cast<unsigned long long>(r.events),
                     r.host_seconds, r.sim_ms, r.accesses_per_sec,
                     r.baseline_aps, r.speedup,
                     static_cast<unsigned long long>(r.peak_rss_bytes));
        if (r.dense_extrapolation_bytes != 0) {
            std::fprintf(
                f,
                ", \"initial_keys\": %llu, "
                "\"dense_extrapolation_bytes\": %llu, "
                "\"rss_reduction_vs_dense\": %.1f",
                static_cast<unsigned long long>(r.initial_keys),
                static_cast<unsigned long long>(
                    r.dense_extrapolation_bytes),
                static_cast<double>(r.dense_extrapolation_bytes) /
                    static_cast<double>(r.peak_rss_bytes));
        }
        std::fprintf(f, "}%s\n", i + 1 == results.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_memspeed.json\n");
    return 0;
}
