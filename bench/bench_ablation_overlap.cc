/**
 * @file
 * Ablation: overlapped execution/checkpointing (Figure 3b) versus
 * stop-the-world checkpointing (Figure 3a) on the ThyNVM controller.
 *
 * Expected shape (paper §1/§5.3): stop-the-world checkpointing can
 * consume up to ~35% of execution time for memory-intensive workloads;
 * the overlapped epoch model collapses that to a few percent.
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

const std::vector<MicroWorkload::Pattern> kPatterns = {
    MicroWorkload::Pattern::Random,
    MicroWorkload::Pattern::Streaming,
    MicroWorkload::Pattern::Sliding,
};

const char*
patternName(MicroWorkload::Pattern p)
{
    switch (p) {
      case MicroWorkload::Pattern::Random: return "Random";
      case MicroWorkload::Pattern::Streaming: return "Streaming";
      case MicroWorkload::Pattern::Sliding: return "Sliding";
    }
    return "?";
}

void
printSummary(const std::vector<RunMetrics>& results)
{
    heading("Ablation: overlapped vs stop-the-world checkpointing");
    std::printf("%-11s %14s %12s %16s %12s\n", "pattern", "overlap_ms",
                "ovl_stall%", "stop-world_ms", "stw_stall%");
    for (std::size_t p = 0; p < kPatterns.size(); ++p) {
        const auto& ov = results[p * 2 + 0];
        const auto& st = results[p * 2 + 1];
        std::printf("%-11s %14.2f %12.3f %16.2f %12.2f\n",
                    patternName(kPatterns[p]),
                    static_cast<double>(ov.exec_time) / kMillisecond,
                    ov.ckpt_time_frac * 100.0,
                    static_cast<double>(st.exec_time) / kMillisecond,
                    st.ckpt_time_frac * 100.0);
    }
    std::printf("\n(paper: stop-the-world costs up to ~35%% of "
                "execution time; overlap\n reduces ThyNVM's share to "
                "~2.5%% on average)\n");
}

} // namespace

int
main()
{
    std::vector<GridCell<RunMetrics>> cells;
    for (auto pattern : kPatterns) {
        for (bool stw : {false, true}) {
            auto cfg = paperSystem(SystemKind::ThyNvm);
            cfg.thynvm.stop_the_world = stw;
            cells.push_back(GridCell<RunMetrics>{
                std::string(patternName(pattern)) +
                    (stw ? "/stop-the-world" : "/overlapped"),
                [cfg, pattern] { return runMicro(cfg, pattern); }});
        }
    }
    const auto results = runGrid("ablation overlap", cells);
    printSummary(results);
    return 0;
}
