/**
 * @file
 * Ablation: sensitivity of ThyNVM to the scheme-switching thresholds
 * (paper §4.2 empirically chose 22 for block-to-page promotion and 16
 * for page-to-block demotion) on the Sliding micro-benchmark, whose
 * mixed locality exercises switching in both directions.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;



struct ThresholdPair
{
    unsigned promote;
    unsigned demote;
};

const std::vector<ThresholdPair> kPairs = {
    {4, 2}, {8, 6}, {22, 16}, {40, 32}, {64, 48},
};

std::map<int, RunMetrics> g_results;

void
BM_Thresholds(benchmark::State& state)
{
    const auto& pair = kPairs[static_cast<std::size_t>(state.range(0))];
    auto cfg = paperSystem(SystemKind::ThyNvm);
    cfg.thynvm.promote_threshold = pair.promote;
    cfg.thynvm.demote_threshold = pair.demote;
    RunMetrics m;
    for (auto _ : state)
        m = runMicro(cfg, MicroWorkload::Pattern::Sliding);
    g_results[static_cast<int>(state.range(0))] = m;
    state.counters["sim_exec_ms"] =
        static_cast<double>(m.exec_time) / kMillisecond;
    state.counters["migration_mb"] = mb(m.nvm_wr_migration);
    state.SetLabel("promote=" + std::to_string(pair.promote) +
                   "/demote=" + std::to_string(pair.demote));
}

BENCHMARK(BM_Thresholds)
    ->DenseRange(0, 4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printSummary()
{
    heading("Ablation: scheme-switch thresholds (Sliding pattern)");
    std::printf("%-18s %14s %14s %14s\n", "promote/demote", "exec_ms",
                "nvm_wr_MB", "migration_MB");
    for (std::size_t i = 0; i < kPairs.size(); ++i) {
        const auto& m = g_results.at(static_cast<int>(i));
        std::printf("%3u / %-12u %14.2f %14.1f %14.1f\n",
                    kPairs[i].promote, kPairs[i].demote,
                    static_cast<double>(m.exec_time) / kMillisecond,
                    mb(m.nvm_wr_total), mb(m.nvm_wr_migration));
    }
    std::printf("\n(the paper's 22/16 sits at the knee: aggressive "
                "switching inflates\n migration traffic, conservative "
                "switching forfeits DRAM absorption)\n");
}

} // namespace

int
main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    printSummary();
    return 0;
}
