/**
 * @file
 * Ablation: sensitivity of ThyNVM to the scheme-switching thresholds
 * (paper §4.2 empirically chose 22 for block-to-page promotion and 16
 * for page-to-block demotion) on the Sliding micro-benchmark, whose
 * mixed locality exercises switching in both directions.
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

struct ThresholdPair
{
    unsigned promote;
    unsigned demote;
};

const std::vector<ThresholdPair> kPairs = {
    {4, 2}, {8, 6}, {22, 16}, {40, 32}, {64, 48},
};

void
printSummary(const std::vector<RunMetrics>& results)
{
    heading("Ablation: scheme-switch thresholds (Sliding pattern)");
    std::printf("%-18s %14s %14s %14s\n", "promote/demote", "exec_ms",
                "nvm_wr_MB", "migration_MB");
    for (std::size_t i = 0; i < kPairs.size(); ++i) {
        const auto& m = results[i];
        std::printf("%3u / %-12u %14.2f %14.1f %14.1f\n",
                    kPairs[i].promote, kPairs[i].demote,
                    static_cast<double>(m.exec_time) / kMillisecond,
                    mb(m.nvm_wr_total), mb(m.nvm_wr_migration));
    }
    std::printf("\n(the paper's 22/16 sits at the knee: aggressive "
                "switching inflates\n migration traffic, conservative "
                "switching forfeits DRAM absorption)\n");
}

} // namespace

int
main()
{
    std::vector<GridCell<RunMetrics>> cells;
    for (const auto& pair : kPairs) {
        auto cfg = paperSystem(SystemKind::ThyNvm);
        cfg.thynvm.promote_threshold = pair.promote;
        cfg.thynvm.demote_threshold = pair.demote;
        cells.push_back(GridCell<RunMetrics>{
            "promote=" + std::to_string(pair.promote) +
                "/demote=" + std::to_string(pair.demote),
            [cfg] {
                return runMicro(cfg, MicroWorkload::Pattern::Sliding);
            }});
    }
    const auto results = runGrid("ablation thresholds", cells);
    printSummary(results);
    return 0;
}
