/**
 * @file
 * Figure 7: execution time of the micro-benchmarks (Random, Streaming,
 * Sliding; 1:1 read/write) on the five evaluated systems, normalized
 * to the Ideal DRAM system.
 *
 * Expected shape (paper §5.2): ThyNVM outperforms both journaling and
 * shadow paging on every pattern; shadow paging is pathological under
 * Random; ThyNVM lands between Ideal DRAM and the software baselines.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;



std::map<std::pair<int, int>, RunMetrics> g_results;

const std::vector<MicroWorkload::Pattern> kPatterns = {
    MicroWorkload::Pattern::Random,
    MicroWorkload::Pattern::Streaming,
    MicroWorkload::Pattern::Sliding,
};

const char*
patternName(MicroWorkload::Pattern p)
{
    switch (p) {
      case MicroWorkload::Pattern::Random: return "Random";
      case MicroWorkload::Pattern::Streaming: return "Streaming";
      case MicroWorkload::Pattern::Sliding: return "Sliding";
    }
    return "?";
}

void
BM_Fig7(benchmark::State& state)
{
    const auto pattern = kPatterns[static_cast<std::size_t>(
        state.range(0))];
    const auto kind = allSystems()[static_cast<std::size_t>(
        state.range(1))];
    RunMetrics m;
    for (auto _ : state)
        m = runMicro(paperSystem(kind), pattern);
    g_results[{static_cast<int>(state.range(0)),
               static_cast<int>(state.range(1))}] = m;
    state.counters["sim_exec_ms"] =
        static_cast<double>(m.exec_time) / kMillisecond;
    state.counters["ckpt_pct"] = m.ckpt_time_frac * 100.0;
    state.SetLabel(std::string(patternName(pattern)) + "/" +
                   systemKindName(kind));
}

BENCHMARK(BM_Fig7)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printSummary()
{
    heading("Figure 7: micro-benchmark execution time "
            "(normalized to Ideal DRAM)");
    std::printf("%-11s", "pattern");
    for (auto kind : allSystems())
        std::printf("%14s", systemKindName(kind));
    std::printf("\n");
    for (std::size_t p = 0; p < kPatterns.size(); ++p) {
        const double base = static_cast<double>(
            g_results.at({static_cast<int>(p), 0}).exec_time);
        std::printf("%-11s", patternName(kPatterns[p]));
        for (std::size_t s = 0; s < allSystems().size(); ++s) {
            const auto& m = g_results.at(
                {static_cast<int>(p), static_cast<int>(s)});
            std::printf("%14.3f",
                        static_cast<double>(m.exec_time) / base);
        }
        std::printf("\n");
    }
    std::printf("\n(paper: ThyNVM beats Journal by ~10%% and Shadow by "
                "~15%% on average,\n within ~14%% of Ideal DRAM on "
                "micro-benchmarks)\n");
}

} // namespace

int
main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    printSummary();
    return 0;
}
