/**
 * @file
 * Figure 7: execution time of the micro-benchmarks (Random, Streaming,
 * Sliding; 1:1 read/write) on the five evaluated systems, normalized
 * to the Ideal DRAM system.
 *
 * Expected shape (paper §5.2): ThyNVM outperforms both journaling and
 * shadow paging on every pattern; shadow paging is pathological under
 * Random; ThyNVM lands between Ideal DRAM and the software baselines.
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

const std::vector<MicroWorkload::Pattern> kPatterns = {
    MicroWorkload::Pattern::Random,
    MicroWorkload::Pattern::Streaming,
    MicroWorkload::Pattern::Sliding,
};

const char*
patternName(MicroWorkload::Pattern p)
{
    switch (p) {
      case MicroWorkload::Pattern::Random: return "Random";
      case MicroWorkload::Pattern::Streaming: return "Streaming";
      case MicroWorkload::Pattern::Sliding: return "Sliding";
    }
    return "?";
}

void
printSummary(const std::vector<RunMetrics>& results)
{
    const std::size_t nsys = allSystems().size();
    heading("Figure 7: micro-benchmark execution time "
            "(normalized to Ideal DRAM)");
    std::printf("%-11s", "pattern");
    for (auto kind : allSystems())
        std::printf("%14s", systemKindName(kind));
    std::printf("\n");
    for (std::size_t p = 0; p < kPatterns.size(); ++p) {
        const double base =
            static_cast<double>(results[p * nsys].exec_time);
        std::printf("%-11s", patternName(kPatterns[p]));
        for (std::size_t s = 0; s < nsys; ++s) {
            const auto& m = results[p * nsys + s];
            std::printf("%14.3f",
                        static_cast<double>(m.exec_time) / base);
        }
        std::printf("\n");
    }
    std::printf("\n(paper: ThyNVM beats Journal by ~10%% and Shadow by "
                "~15%% on average,\n within ~14%% of Ideal DRAM on "
                "micro-benchmarks)\n");
}

} // namespace

int
main()
{
    std::vector<GridCell<RunMetrics>> cells;
    for (auto pattern : kPatterns) {
        for (auto kind : allSystems()) {
            cells.push_back(GridCell<RunMetrics>{
                std::string(patternName(pattern)) + "/" +
                    systemKindName(kind),
                [pattern, kind] {
                    return runMicro(paperSystem(kind), pattern);
                }});
        }
    }
    const auto results = runGrid("fig7 micro exec time", cells);
    printSummary(results);
    return 0;
}
