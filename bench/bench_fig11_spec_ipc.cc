/**
 * @file
 * Figure 11: IPC of the eight memory-intensive SPEC CPU2006 stand-ins
 * on ThyNVM, normalized to the Ideal DRAM system, with the Ideal NVM
 * system as the second reference.
 *
 * Expected shape (paper §5.4): ThyNVM within a few percent of Ideal
 * DRAM (paper: -3.4% average) and slightly above Ideal NVM (+2.7%
 * average), thanks to the DRAM working region.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

constexpr std::uint64_t kInstructions = 1500000;

const std::vector<SystemKind> kSystems = {
    SystemKind::IdealDram, SystemKind::IdealNvm, SystemKind::ThyNvm};

std::map<std::pair<int, int>, RunMetrics> g_results;

void
BM_Fig11(benchmark::State& state)
{
    const auto& prof = specProfiles()[static_cast<std::size_t>(
        state.range(0))];
    const auto kind = kSystems[static_cast<std::size_t>(state.range(1))];
    RunMetrics m;
    for (auto _ : state)
        m = runSpec(paperSystem(kind), prof, kInstructions);
    g_results[{static_cast<int>(state.range(0)),
               static_cast<int>(state.range(1))}] = m;
    state.counters["ipc"] = m.ipc;
    state.SetLabel(std::string(prof.name) + "/" + systemKindName(kind));
}

BENCHMARK(BM_Fig11)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printSummary()
{
    heading("Figure 11: SPEC CPU2006 IPC normalized to Ideal DRAM");
    std::printf("%-11s %12s %12s %12s\n", "benchmark", "Ideal DRAM",
                "Ideal NVM", "ThyNVM");
    double sum_nvm = 0.0, sum_thynvm = 0.0;
    for (std::size_t b = 0; b < specProfiles().size(); ++b) {
        const double base =
            g_results.at({static_cast<int>(b), 0}).ipc;
        const double nvm =
            g_results.at({static_cast<int>(b), 1}).ipc / base;
        const double thynvm =
            g_results.at({static_cast<int>(b), 2}).ipc / base;
        sum_nvm += nvm;
        sum_thynvm += thynvm;
        std::printf("%-11s %12.3f %12.3f %12.3f\n",
                    specProfiles()[b].name, 1.0, nvm, thynvm);
    }
    std::printf("%-11s %12.3f %12.3f %12.3f\n", "gmean-ish", 1.0,
                sum_nvm / 8.0, sum_thynvm / 8.0);
    std::printf("\n(paper: ThyNVM -3.4%% vs Ideal DRAM, +2.7%% vs "
                "Ideal NVM on average)\n");
}

} // namespace

int
main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    printSummary();
    return 0;
}
