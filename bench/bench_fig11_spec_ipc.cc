/**
 * @file
 * Figure 11: IPC of the eight memory-intensive SPEC CPU2006 stand-ins
 * on ThyNVM, normalized to the Ideal DRAM system, with the Ideal NVM
 * system as the second reference.
 *
 * Expected shape (paper §5.4): ThyNVM within a few percent of Ideal
 * DRAM (paper: -3.4% average) and slightly above Ideal NVM (+2.7%
 * average), thanks to the DRAM working region.
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

constexpr std::uint64_t kInstructions = 1500000;

const std::vector<SystemKind> kSystems = {
    SystemKind::IdealDram, SystemKind::IdealNvm, SystemKind::ThyNvm};

void
printSummary(const std::vector<RunMetrics>& results)
{
    heading("Figure 11: SPEC CPU2006 IPC normalized to Ideal DRAM");
    std::printf("%-11s %12s %12s %12s\n", "benchmark", "Ideal DRAM",
                "Ideal NVM", "ThyNVM");
    double sum_nvm = 0.0, sum_thynvm = 0.0;
    for (std::size_t b = 0; b < specProfiles().size(); ++b) {
        const double base = results[b * kSystems.size() + 0].ipc;
        const double nvm = results[b * kSystems.size() + 1].ipc / base;
        const double thynvm =
            results[b * kSystems.size() + 2].ipc / base;
        sum_nvm += nvm;
        sum_thynvm += thynvm;
        std::printf("%-11s %12.3f %12.3f %12.3f\n",
                    specProfiles()[b].name, 1.0, nvm, thynvm);
    }
    std::printf("%-11s %12.3f %12.3f %12.3f\n", "gmean-ish", 1.0,
                sum_nvm / 8.0, sum_thynvm / 8.0);
    std::printf("\n(paper: ThyNVM -3.4%% vs Ideal DRAM, +2.7%% vs "
                "Ideal NVM on average)\n");
}

} // namespace

int
main()
{
    std::vector<GridCell<RunMetrics>> cells;
    for (const auto& prof : specProfiles()) {
        for (auto kind : kSystems) {
            const SpecProfile* p = &prof;
            cells.push_back(GridCell<RunMetrics>{
                std::string(prof.name) + "/" + systemKindName(kind),
                [p, kind] {
                    return runSpec(paperSystem(kind), *p, kInstructions);
                }});
        }
    }
    const auto results = runGrid("fig11 spec ipc", cells);
    printSummary(results);
    return 0;
}
