/**
 * @file
 * Figure 12: sensitivity of the hash-table key-value store to the BTT
 * size (256 to 8192 entries): transaction throughput and total NVM
 * write traffic.
 *
 * Expected shape (paper §5.5): NVM write traffic falls and throughput
 * generally rises with a larger BTT (fewer overflow-forced epochs,
 * better coalescing, less bus contention).
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

const std::vector<std::size_t> kBttSizes = {256,  512,  1024,
                                            2048, 4096, 8192};

/**
 * Write-intensive variant of the storage workload: insert-heavy with
 * 1 KB values, so the per-epoch dirty block footprint actually
 * pressures the BTT (the regime Figure 12 sweeps).
 */
KvResult
runWriteHeavyKv(const SystemConfig& cfg)
{
    KvWorkload::Params p;
    p.structure = KvWorkload::Structure::HashTable;
    p.phys_size = cfg.phys_size;
    p.value_size = 1024;
    p.key_space = 12288;
    p.initial_keys = 6144;
    p.hash_buckets = 4096;
    p.search_frac = 0.3;
    p.insert_frac = 0.55;
    p.compute_per_txn = 1000;
    p.total_txns = 12000;
    KvWorkload wl(p);
    System sys(cfg, wl);
    sys.start();
    sys.run(120 * kSecond);
    fatal_if(!sys.finished(), "fig12 benchmark did not complete");
    KvResult r;
    r.m = sys.metrics();
    const double seconds = static_cast<double>(r.m.exec_time) / kSecond;
    r.ktps = static_cast<double>(p.total_txns) / seconds / 1000.0;
    r.write_bw_mbps = static_cast<double>(r.m.nvm_wr_total) /
                      (1024.0 * 1024.0) / seconds;
    return r;
}

void
printSummary(const std::vector<KvResult>& results)
{
    heading("Figure 12: effect of BTT size (hash-table KV store)");
    std::printf("%-12s %14s %16s\n", "btt_entries", "ktps",
                "nvm_write_MB");
    for (std::size_t i = 0; i < kBttSizes.size(); ++i) {
        const auto& r = results[i];
        std::printf("%-12zu %14.1f %16.1f\n", kBttSizes[i], r.ktps,
                    mb(r.m.nvm_wr_total));
    }
    std::printf("\n(paper: write traffic falls and throughput rises "
                "with BTT size)\n");
}

} // namespace

int
main()
{
    std::vector<GridCell<KvResult>> cells;
    for (auto btt : kBttSizes) {
        auto cfg = paperSystem(SystemKind::ThyNvm);
        cfg.thynvm.btt_entries = btt;
        // Paper-faithful overflow budget: the paper has no overflow
        // valve (overflow simply forces epochs), so the spill path must
        // stay a narrow escape hatch here or it masks the BTT
        // sensitivity this figure measures.
        cfg.thynvm.overflow_entries = 32768;
        cfg.thynvm.overflow_stall_watermark = 4096;
        cells.push_back(GridCell<KvResult>{
            "btt=" + std::to_string(btt),
            [cfg] { return runWriteHeavyKv(cfg); }});
    }
    const auto results = runGrid("fig12 btt sweep", cells);
    printSummary(results);
    return 0;
}
