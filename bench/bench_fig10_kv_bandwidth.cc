/**
 * @file
 * Figure 10: write bandwidth consumption of the two key-value stores
 * across request sizes (16 B - 4 KB) on the five evaluated systems.
 * "Write bandwidth" is DRAM writes for Ideal DRAM and NVM writes for
 * every other system, as in the paper.
 *
 * Expected shape (paper §5.3): ThyNVM consumes far less write
 * bandwidth than shadow paging (which copies whole pages for sparse
 * updates) and approaches journaling, which has the minimum by
 * construction but pays for it in stall time.
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

const std::vector<std::uint32_t> kSizes = {16, 64, 256, 1024, 4096};

std::uint64_t
txnsFor(std::uint32_t value_size)
{
    // Each run must span several 10 ms epochs so checkpointing
    // behaviour (not just cache behaviour) is measured.
    if (value_size <= 256)
        return 15000;
    if (value_size <= 1024)
        return 10000;
    return 6000;
}

void
printSummary(const std::vector<KvResult>& results)
{
    const std::size_t nsys = allSystems().size();
    heading("Figure 10: key-value store write bandwidth (MB/s; DRAM "
            "for Ideal DRAM, NVM otherwise)");
    for (int st = 0; st < 2; ++st) {
        std::printf("\n(%c) %s based key-value store\n", 'a' + st,
                    st == 0 ? "hash table" : "red-black tree");
        std::printf("%-10s", "req_size");
        for (auto kind : allSystems())
            std::printf("%14s", systemKindName(kind));
        std::printf("\n");
        for (std::size_t z = 0; z < kSizes.size(); ++z) {
            std::printf("%-10u", kSizes[z]);
            for (std::size_t s = 0; s < nsys; ++s) {
                const std::size_t i =
                    (static_cast<std::size_t>(st) * kSizes.size() + z) *
                        nsys +
                    s;
                std::printf("%14.1f", results[i].write_bw_mbps);
            }
            std::printf("\n");
        }
    }
    std::printf("\n(paper: ThyNVM uses ~43%%/64%% less NVM write "
                "bandwidth than Shadow and\n ~19%%/14%% more than "
                "Journal for hash/rbtree)\n");
}

} // namespace

int
main()
{
    const std::vector<KvWorkload::Structure> structures = {
        KvWorkload::Structure::HashTable, KvWorkload::Structure::RbTree};

    std::vector<GridCell<KvResult>> cells;
    for (std::size_t st = 0; st < structures.size(); ++st) {
        for (auto size : kSizes) {
            for (auto kind : allSystems()) {
                const auto structure = structures[st];
                cells.push_back(GridCell<KvResult>{
                    std::string(st == 0 ? "hash" : "rbtree") + "/" +
                        std::to_string(size) + "B/" +
                        systemKindName(kind),
                    [structure, size, kind] {
                        return runKv(paperSystem(kind), structure, size,
                                     txnsFor(size));
                    }});
            }
        }
    }
    const auto results = runGrid("fig10 kv bandwidth", cells);
    printSummary(results);
    return 0;
}
