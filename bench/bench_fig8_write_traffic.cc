/**
 * @file
 * Figure 8: total NVM write traffic of the micro-benchmarks, broken
 * down into CPU writebacks, checkpointing, and migration, plus the
 * percentage of execution time spent on checkpointing, for the three
 * crash-consistent systems (Journal, Shadow, ThyNVM).
 *
 * Expected shape (paper §5.2): shadow paging explodes under Random
 * (whole-page flushes for single dirty blocks); journaling pays the
 * double write everywhere; ThyNVM avoids the pathological cases and
 * collapses the checkpointing time share to a few percent.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;



const std::vector<SystemKind> kSystems = {
    SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm};

const std::vector<MicroWorkload::Pattern> kPatterns = {
    MicroWorkload::Pattern::Random,
    MicroWorkload::Pattern::Streaming,
    MicroWorkload::Pattern::Sliding,
};

const char*
patternName(MicroWorkload::Pattern p)
{
    switch (p) {
      case MicroWorkload::Pattern::Random: return "Random";
      case MicroWorkload::Pattern::Streaming: return "Streaming";
      case MicroWorkload::Pattern::Sliding: return "Sliding";
    }
    return "?";
}

std::map<std::pair<int, int>, RunMetrics> g_results;

void
BM_Fig8(benchmark::State& state)
{
    const auto pattern = kPatterns[static_cast<std::size_t>(
        state.range(0))];
    const auto kind = kSystems[static_cast<std::size_t>(state.range(1))];
    RunMetrics m;
    for (auto _ : state)
        m = runMicro(paperSystem(kind), pattern);
    g_results[{static_cast<int>(state.range(0)),
               static_cast<int>(state.range(1))}] = m;
    state.counters["cpu_mb"] = mb(m.nvm_wr_cpu);
    state.counters["ckpt_mb"] = mb(m.nvm_wr_ckpt);
    state.counters["migration_mb"] = mb(m.nvm_wr_migration);
    state.counters["ckpt_pct"] = m.ckpt_time_frac * 100.0;
    state.SetLabel(std::string(patternName(pattern)) + "/" +
                   systemKindName(kind));
}

BENCHMARK(BM_Fig8)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
printSummary()
{
    heading("Figure 8: NVM write traffic breakdown (MB) and % exec "
            "time on checkpointing");
    for (std::size_t p = 0; p < kPatterns.size(); ++p) {
        std::printf("\n(%c) %s\n", static_cast<char>('a' + p),
                    patternName(kPatterns[p]));
        std::printf("%-10s %10s %10s %12s %10s %10s\n", "system",
                    "cpu_MB", "ckpt_MB", "migration_MB", "total_MB",
                    "ckpt_%");
        for (std::size_t s = 0; s < kSystems.size(); ++s) {
            const auto& m = g_results.at(
                {static_cast<int>(p), static_cast<int>(s)});
            std::printf("%-10s %10.1f %10.1f %12.1f %10.1f %10.2f\n",
                        systemKindName(kSystems[s]), mb(m.nvm_wr_cpu),
                        mb(m.nvm_wr_ckpt), mb(m.nvm_wr_migration),
                        mb(m.nvm_wr_total), m.ckpt_time_frac * 100.0);
        }
    }
    std::printf("\n(paper: Journal/Shadow spend ~18.9%%/15.2%% of time "
                "checkpointing vs ~2.5%%\n for ThyNVM; Shadow's traffic "
                "explodes under Random)\n");
}

} // namespace

int
main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    printSummary();
    return 0;
}
