/**
 * @file
 * Figure 8: total NVM write traffic of the micro-benchmarks, broken
 * down into CPU writebacks, checkpointing, and migration, plus the
 * percentage of execution time spent on checkpointing, for the three
 * crash-consistent systems (Journal, Shadow, ThyNVM).
 *
 * Expected shape (paper §5.2): shadow paging explodes under Random
 * (whole-page flushes for single dirty blocks); journaling pays the
 * double write everywhere; ThyNVM avoids the pathological cases and
 * collapses the checkpointing time share to a few percent.
 */

#include "bench/bench_util.hh"

namespace {

using namespace thynvm;
using namespace thynvm::bench;

const std::vector<SystemKind> kSystems = {
    SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm};

const std::vector<MicroWorkload::Pattern> kPatterns = {
    MicroWorkload::Pattern::Random,
    MicroWorkload::Pattern::Streaming,
    MicroWorkload::Pattern::Sliding,
};

const char*
patternName(MicroWorkload::Pattern p)
{
    switch (p) {
      case MicroWorkload::Pattern::Random: return "Random";
      case MicroWorkload::Pattern::Streaming: return "Streaming";
      case MicroWorkload::Pattern::Sliding: return "Sliding";
    }
    return "?";
}

void
printSummary(const std::vector<RunMetrics>& results)
{
    heading("Figure 8: NVM write traffic breakdown (MB) and % exec "
            "time on checkpointing");
    for (std::size_t p = 0; p < kPatterns.size(); ++p) {
        std::printf("\n(%c) %s\n", static_cast<char>('a' + p),
                    patternName(kPatterns[p]));
        std::printf("%-10s %10s %10s %12s %10s %10s %8s\n", "system",
                    "cpu_MB", "ckpt_MB", "migration_MB", "total_MB",
                    "ckpt_%", "wamp");
        for (std::size_t s = 0; s < kSystems.size(); ++s) {
            const auto& m = results[p * kSystems.size() + s];
            std::printf("%-10s %10.1f %10.1f %12.1f %10.1f %10.2f %8.2f\n",
                        systemKindName(kSystems[s]), mb(m.nvm_wr_cpu),
                        mb(m.nvm_wr_ckpt), mb(m.nvm_wr_migration),
                        mb(m.nvm_wr_total), m.ckpt_time_frac * 100.0,
                        m.write_amp);
        }
    }
    std::printf("\n(paper: Journal/Shadow spend ~18.9%%/15.2%% of time "
                "checkpointing vs ~2.5%%\n for ThyNVM; Shadow's traffic "
                "explodes under Random)\n");
}

} // namespace

int
main()
{
    std::vector<GridCell<RunMetrics>> cells;
    for (auto pattern : kPatterns) {
        for (auto kind : kSystems) {
            cells.push_back(GridCell<RunMetrics>{
                std::string(patternName(pattern)) + "/" +
                    systemKindName(kind),
                [pattern, kind] {
                    return runMicro(paperSystem(kind), pattern);
                }});
        }
    }
    const auto results = runGrid("fig8 write traffic", cells);
    printSummary(results);
    return 0;
}
