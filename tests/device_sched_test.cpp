/**
 * @file
 * Scheduling-invariant tests for the per-bank device scheduler:
 * FR-FCFS ordering, write-drain watermark hysteresis, undo-log crash
 * rollback, and the bank-ready wakeup path.
 */

#include "tests/test_util.hh"

#include "mem/device.hh"

namespace thynvm {
namespace {

using test::patternBlock;

DeviceParams
smallNvm()
{
    return DeviceParams::nvm(1 << 20);
}

/** Addresses in bank 0: consecutive rows stride by row_size * banks. */
Addr
bank0Row(const DeviceParams& p, std::uint64_t row, std::uint64_t block = 0)
{
    return row * p.row_size * p.banks + block * kBlockSize;
}

TEST(DeviceSchedTest, RowHitBeatsOlderMissInSameBank)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());
    const auto& p = dev.params();

    // Open row 0 of bank 0.
    dev.enqueueRead(bank0Row(p, 0), TrafficSource::DemandRead);
    eq.run();

    // Older miss (row 1) vs younger hit (row 0), queued the same tick:
    // FR-FCFS must service the row hit first.
    std::vector<int> order;
    dev.enqueueRead(bank0Row(p, 1), TrafficSource::DemandRead,
                    [&] { order.push_back(1); });
    dev.enqueueRead(bank0Row(p, 0, 1), TrafficSource::DemandRead,
                    [&] { order.push_back(2); });
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(dev.stats().value("row_hits"), 1.0);
}

TEST(DeviceSchedTest, OldestRowHitWinsAmongHits)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());
    const auto& p = dev.params();

    dev.enqueueRead(bank0Row(p, 0), TrafficSource::DemandRead);
    eq.run();

    // Three hits to the open row: serviced strictly in age order even
    // though every one of them is an equally good row hit.
    std::vector<int> order;
    for (int i = 0; i < 3; ++i) {
        dev.enqueueRead(bank0Row(p, 0, 1 + i), TrafficSource::DemandRead,
                        [&order, i] { order.push_back(i); });
    }
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(DeviceSchedTest, WriteDrainHysteresis)
{
    EventQueue eq;
    auto p = smallNvm();
    p.banks = 1;
    p.read_queue_capacity = 8;
    p.write_queue_capacity = 8;
    p.write_drain_high = 6;
    p.write_drain_low = 2;
    MemDevice dev(eq, "dev", p);

    // One read, then enough writes to cross the high watermark, then a
    // second read. The first scheduling pass enters drain mode and picks
    // a write; once below the high mark, waiting reads take priority
    // again (hysteresis only holds with an empty read queue), and the
    // remaining writes drain opportunistically afterwards.
    std::vector<std::string> order;
    auto tag = [&order](std::string s) {
        return [&order, s = std::move(s)] { order.push_back(s); };
    };
    const char* wname[] = {"W1", "W2", "W3", "W4", "W5", "W6"};
    dev.enqueueRead(0, TrafficSource::DemandRead, tag("R1"));
    for (int i = 0; i < 6; ++i) {
        const auto data = patternBlock(i);
        dev.enqueueWrite((1 + i) * kBlockSize, data.data(),
                         TrafficSource::CpuWriteback, tag(wname[i]));
    }
    dev.enqueueRead(8 * kBlockSize, TrafficSource::DemandRead, tag("R2"));
    eq.run();

    const std::vector<std::string> expected = {"W1", "R1", "R2", "W2",
                                               "W3", "W4", "W5", "W6"};
    EXPECT_EQ(order, expected);
    EXPECT_EQ(dev.stats().value("write_drain_entries"), 1.0);

    // Crossing the high watermark again is a second drain entry.
    for (int i = 0; i < 6; ++i) {
        const auto data = patternBlock(10 + i);
        dev.enqueueWrite((1 + i) * kBlockSize, data.data(),
                         TrafficSource::CpuWriteback);
    }
    eq.run();
    EXPECT_EQ(dev.stats().value("write_drain_entries"), 2.0);
}

TEST(DeviceSchedTest, CrashKeepsServicedWritesRollsBackRest)
{
    EventQueue eq;
    auto p = smallNvm();
    p.banks = 1;
    MemDevice dev(eq, "dev", p);

    const auto a = patternBlock(1);
    const auto b = patternBlock(2);
    const auto c = patternBlock(3);
    unsigned completed = 0;
    dev.enqueueWrite(0 * kBlockSize, a.data(), TrafficSource::CpuWriteback,
                     [&] { ++completed; });
    dev.enqueueWrite(1 * kBlockSize, b.data(), TrafficSource::CpuWriteback,
                     [&] { ++completed; });
    dev.enqueueWrite(2 * kBlockSize, c.data(), TrafficSource::CpuWriteback,
                     [&] { ++completed; });

    // Service exactly the oldest write, then lose power. The serviced
    // write is durable; the two still queued must roll back even though
    // their undo entries sit behind a dead (completed) entry.
    eq.runUntil([&] { return completed == 1; });
    dev.crash();

    std::array<std::uint8_t, kBlockSize> out{};
    dev.store().read(0, out.data(), kBlockSize);
    EXPECT_EQ(out, a);
    for (Addr addr : {Addr{1} * kBlockSize, Addr{2} * kBlockSize}) {
        dev.store().read(addr, out.data(), kBlockSize);
        EXPECT_EQ(out, (std::array<std::uint8_t, kBlockSize>{}));
    }
}

TEST(DeviceSchedTest, SameAddressRollbackRestoresNewestFirst)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());

    const auto committed = patternBlock(7);
    dev.enqueueWrite(256, committed.data(), TrafficSource::CpuWriteback);
    eq.run();

    // Two queued overwrites of the same block: rollback must unwind the
    // newest first so the pre-enqueue bytes (the committed write)
    // reappear.
    const auto x = patternBlock(8);
    const auto y = patternBlock(9);
    dev.enqueueWrite(256, x.data(), TrafficSource::CpuWriteback);
    dev.enqueueWrite(256, y.data(), TrafficSource::CpuWriteback);
    dev.crash();

    std::array<std::uint8_t, kBlockSize> out{};
    dev.store().read(256, out.data(), kBlockSize);
    EXPECT_EQ(out, committed);
}

TEST(DeviceSchedTest, UndoLogTruncatedOnDrain)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());

    // Many rounds of writes, each fully drained: with the undo log
    // truncated at every drain, a crash afterwards must keep everything
    // (nothing unserviced remains to roll back).
    std::array<std::uint8_t, kBlockSize> newest{};
    for (int round = 0; round < 10; ++round) {
        const auto data = patternBlock(round);
        newest = data;
        dev.enqueueWrite(0, data.data(), TrafficSource::CpuWriteback);
        eq.run();
        ASSERT_TRUE(dev.writesDrained());
    }
    dev.crash();
    std::array<std::uint8_t, kBlockSize> out{};
    dev.store().read(0, out.data(), kBlockSize);
    EXPECT_EQ(out, newest);
}

TEST(DeviceSchedTest, BankReadyWakeupFiresWithoutPendingCompletion)
{
    EventQueue eq;
    MemDevice dev(eq, "dev", smallNvm());

    // Start timed service so bank 0's busy_until lies in the future.
    dev.enqueueRead(0, TrafficSource::DemandRead);
    eq.step(); // runs the scheduling pass; completion is now pending

    // Power-loss path: the harness abandons the event queue (dropping
    // the completion event) and the device quiesces, but the bank's
    // timing state survives.
    eq.clear();
    dev.quiesce();

    // A new request to the still-busy bank has no completion event left
    // to drive scheduling; the bank-ready wakeup must pick it up at
    // busy_until instead of stalling forever.
    bool done = false;
    dev.enqueueRead(kBlockSize, TrafficSource::DemandRead,
                    [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace thynvm
