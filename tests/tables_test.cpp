/**
 * @file
 * Unit tests for the address-space layout and translation tables.
 */

#include <gtest/gtest.h>

#include "core/tables.hh"

namespace thynvm {
namespace {

ThyNvmConfig
smallConfig()
{
    ThyNvmConfig cfg;
    cfg.phys_size = 1u << 20;
    cfg.btt_entries = 64;
    cfg.ptt_entries = 16;
    return cfg;
}

TEST(LayoutTest, RegionsAreDisjointAndOrdered)
{
    ThyNvmConfig cfg = smallConfig();
    AddressLayout lay(cfg);

    // Home region covers [0, phys).
    EXPECT_EQ(lay.homeAddr(0), 0u);
    EXPECT_EQ(lay.homeAddr(cfg.phys_size - kBlockSize),
              cfg.phys_size - kBlockSize);

    // Region A page slots follow the home region.
    EXPECT_EQ(lay.ckptAPageSlot(0), cfg.phys_size);
    EXPECT_EQ(lay.ckptAPageSlot(15), cfg.phys_size + 15 * kPageSize);

    // Region A block slots follow the page slots.
    EXPECT_EQ(lay.ckptABlockSlot(0),
              cfg.phys_size + cfg.ptt_entries * kPageSize);

    // Backup slots are last and sized identically.
    EXPECT_GT(lay.backupSlot(0), lay.ckptABlockSlot(63));
    EXPECT_EQ(lay.backupSlot(1) - lay.backupSlot(0),
              lay.backupSlotSize());
    EXPECT_EQ(lay.nvmSize(), lay.backupSlot(1) + lay.backupSlotSize());
}

TEST(LayoutTest, DramLayout)
{
    ThyNvmConfig cfg = smallConfig();
    AddressLayout lay(cfg);
    EXPECT_EQ(lay.dramPageSlot(0), 0u);
    EXPECT_EQ(lay.dramBlockSlot(0), cfg.ptt_entries * kPageSize);
    EXPECT_EQ(lay.dramOverflowSlot(0),
              cfg.ptt_entries * kPageSize + cfg.btt_entries * kBlockSize);
    EXPECT_EQ(lay.dramSize(),
              cfg.ptt_entries * kPageSize +
                  (cfg.btt_entries + cfg.overflow_entries) * kBlockSize);
    EXPECT_EQ(lay.dramSize(), cfg.dramSize());
}

TEST(LayoutTest, BlockSlotRegionBIsHome)
{
    ThyNvmConfig cfg = smallConfig();
    AddressLayout lay(cfg);
    EXPECT_EQ(lay.blockSlot(CkptRegion::B, 5, 4096 + 128), 4096u + 128u);
    EXPECT_EQ(lay.blockSlot(CkptRegion::A, 5, 4096 + 128),
              lay.ckptABlockSlot(5));
}

TEST(LayoutTest, PageSlotRegionBIsHome)
{
    ThyNvmConfig cfg = smallConfig();
    AddressLayout lay(cfg);
    EXPECT_EQ(lay.pageSlot(CkptRegion::B, 3, 8192), 8192u);
    EXPECT_EQ(lay.pageSlot(CkptRegion::A, 3, 8192), lay.ckptAPageSlot(3));
}

TEST(LayoutTest, OutOfRangePanics)
{
    ThyNvmConfig cfg = smallConfig();
    AddressLayout lay(cfg);
    EXPECT_THROW(lay.homeAddr(cfg.phys_size), PanicError);
    EXPECT_THROW(lay.ckptAPageSlot(16), PanicError);
    EXPECT_THROW(lay.ckptABlockSlot(64), PanicError);
    EXPECT_THROW(lay.backupSlot(2), PanicError);
}

TEST(LayoutTest, BackupSlotHoldsTablesAndCpuState)
{
    ThyNvmConfig cfg = smallConfig();
    AddressLayout lay(cfg);
    const std::size_t need =
        kBlockSize + (cfg.btt_entries + cfg.ptt_entries) *
                         AddressLayout::kEntryBytes +
        cfg.cpu_state_max;
    EXPECT_GE(lay.backupSlotSize(), need);
    EXPECT_EQ(lay.backupSlotSize() % kBlockSize, 0u);
}

TEST(OtherRegionTest, Flips)
{
    EXPECT_EQ(otherRegion(CkptRegion::A), CkptRegion::B);
    EXPECT_EQ(otherRegion(CkptRegion::B), CkptRegion::A);
}

TEST(TranslationTableTest, AllocateLookupRelease)
{
    Btt btt(4);
    EXPECT_EQ(btt.capacity(), 4u);
    EXPECT_EQ(btt.live(), 0u);
    EXPECT_EQ(btt.lookup(64), Btt::npos);

    const std::size_t i = btt.allocate(64);
    ASSERT_NE(i, Btt::npos);
    EXPECT_EQ(btt.lookup(64), i);
    EXPECT_EQ(btt.at(i).block_paddr, 64u);
    EXPECT_EQ(btt.live(), 1u);

    btt.release(i);
    EXPECT_EQ(btt.lookup(64), Btt::npos);
    EXPECT_EQ(btt.live(), 0u);
}

TEST(TranslationTableTest, FillsToCapacity)
{
    Btt btt(4);
    for (Addr a = 0; a < 4; ++a)
        ASSERT_NE(btt.allocate(a * 64), Btt::npos);
    EXPECT_TRUE(btt.full());
    EXPECT_EQ(btt.allocate(1024), Btt::npos);
    btt.release(btt.lookup(0));
    EXPECT_FALSE(btt.full());
    EXPECT_NE(btt.allocate(1024), Btt::npos);
}

TEST(TranslationTableTest, DuplicateAllocationPanics)
{
    Btt btt(4);
    btt.allocate(64);
    EXPECT_THROW(btt.allocate(64), PanicError);
}

TEST(TranslationTableTest, AllocateAtRestoresIndex)
{
    Btt btt(8);
    btt.allocate(0);
    btt.clear();
    EXPECT_EQ(btt.allocateAt(5, 320), 5u);
    EXPECT_EQ(btt.lookup(320), 5u);
    // The slot is no longer free.
    EXPECT_THROW(btt.allocateAt(5, 640), PanicError);
}

TEST(TranslationTableTest, ForEachLiveVisitsAll)
{
    Ptt ptt(8);
    ptt.allocate(0);
    ptt.allocate(4096);
    ptt.allocate(8192);
    std::size_t visits = 0;
    ptt.forEachLive([&](std::size_t, PttEntry& e) {
        EXPECT_NE(e.page_paddr, kInvalidAddr);
        ++visits;
    });
    EXPECT_EQ(visits, 3u);
}

TEST(TranslationTableTest, ClearResetsEverything)
{
    Btt btt(4);
    btt.allocate(0);
    btt.allocate(64);
    btt.clear();
    EXPECT_EQ(btt.live(), 0u);
    EXPECT_EQ(btt.lookup(0), Btt::npos);
    for (Addr a = 0; a < 4; ++a)
        ASSERT_NE(btt.allocate(a * 64), Btt::npos);
}

TEST(TranslationTableTest, EntryStateResetOnAllocate)
{
    Btt btt(2);
    const std::size_t i = btt.allocate(64);
    btt.at(i).pending = true;
    btt.at(i).store_count = 9;
    btt.release(i);
    const std::size_t j = btt.allocate(64);
    EXPECT_EQ(i, j); // LIFO free list reuses the slot
    EXPECT_FALSE(btt.at(j).pending);
    EXPECT_EQ(btt.at(j).store_count, 0u);
}

} // namespace
} // namespace thynvm
