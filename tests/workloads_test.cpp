/**
 * @file
 * Unit tests for the workload layer: the simulated heap, the hash
 * table and red-black tree (validated against std::map references),
 * and the workload generators.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "workloads/hashtable.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"
#include "workloads/rbtree.hh"
#include "workloads/spec.hh"

namespace thynvm {
namespace {

constexpr Addr kHeapBase = 4096;
constexpr std::size_t kSpace = 8u << 20;

struct HeapTest : public ::testing::Test
{
    HeapTest() : mem(kSpace), heap(kHeapBase, kSpace - kHeapBase)
    {
        heap.format(mem);
    }
    HostMemSpace mem;
    SimHeap heap;
};

TEST_F(HeapTest, AllocationsAreDisjointAndInBounds)
{
    std::vector<std::pair<Addr, std::size_t>> allocs;
    for (std::size_t size : {8, 24, 64, 100, 500, 4000}) {
        Addr a = heap.alloc(mem, size);
        EXPECT_GE(a, kHeapBase);
        EXPECT_LT(a + size, kSpace);
        for (const auto& [b, bs] : allocs)
            EXPECT_TRUE(a + SimHeap::classBytes(SimHeap::classOf(size)) <=
                            b ||
                        b + SimHeap::classBytes(SimHeap::classOf(bs)) <= a);
        allocs.emplace_back(a, size);
    }
}

TEST_F(HeapTest, FreeListReusesBlocks)
{
    Addr a = heap.alloc(mem, 64);
    heap.free(mem, a, 64);
    Addr b = heap.alloc(mem, 64);
    EXPECT_EQ(a, b);
}

TEST_F(HeapTest, SizeClassesSeparateFreeLists)
{
    Addr small = heap.alloc(mem, 16);
    Addr big = heap.alloc(mem, 4096);
    heap.free(mem, small, 16);
    heap.free(mem, big, 4096);
    EXPECT_EQ(heap.alloc(mem, 4096), big);
    EXPECT_EQ(heap.alloc(mem, 16), small);
}

TEST_F(HeapTest, ClassOfRoundsUp)
{
    EXPECT_EQ(SimHeap::classBytes(SimHeap::classOf(1)), 16u);
    EXPECT_EQ(SimHeap::classBytes(SimHeap::classOf(16)), 16u);
    EXPECT_EQ(SimHeap::classBytes(SimHeap::classOf(17)), 32u);
    EXPECT_EQ(SimHeap::classBytes(SimHeap::classOf(4096)), 4096u);
    EXPECT_EQ(SimHeap::classBytes(SimHeap::classOf(4097)), 8192u);
    EXPECT_EQ(SimHeap::classBytes(SimHeap::classOf(262144)), 262144u);
    EXPECT_THROW(SimHeap::classOf(262145), PanicError);
}

TEST_F(HeapTest, ExhaustionPanics)
{
    SimHeap tiny(kHeapBase, 16 * 1024);
    tiny.format(mem);
    EXPECT_THROW(
        {
            for (int i = 0; i < 100; ++i)
                tiny.alloc(mem, 4096);
        },
        PanicError);
}

TEST_F(HeapTest, AllocatorStateLivesInMemSpace)
{
    heap.alloc(mem, 64);
    const auto used = heap.bumpUsed(mem);
    EXPECT_GT(used, 0u);
    // A copy of the memory space carries the allocator state with it.
    HostMemSpace copy = mem;
    EXPECT_EQ(heap.bumpUsed(copy), used);
}

// ---------------------------------------------------------------------

struct HashTableTest : public ::testing::Test
{
    HashTableTest()
        : mem(kSpace), heap(kHeapBase, kSpace - kHeapBase),
          table(64, heap)
    {
        heap.format(mem);
        table.create(mem, 61); // non-power-of-two buckets
    }

    std::vector<std::uint8_t>
    value(std::uint64_t key, std::uint32_t len)
    {
        std::vector<std::uint8_t> v(len);
        for (std::uint32_t i = 0; i < len; ++i)
            v[i] = static_cast<std::uint8_t>(key * 13 + i);
        return v;
    }

    std::vector<std::uint8_t>
    get(std::uint64_t key)
    {
        Addr va = 0;
        std::uint32_t vl = 0;
        if (!table.find(mem, key, &va, &vl))
            return {};
        std::vector<std::uint8_t> out(vl);
        mem.read(va, out.data(), vl);
        return out;
    }

    HostMemSpace mem;
    SimHeap heap;
    SimHashTable table;
};

TEST_F(HashTableTest, InsertFindRoundTrip)
{
    table.insert(mem, 42, value(42, 100).data(), 100);
    EXPECT_EQ(get(42), value(42, 100));
    EXPECT_TRUE(get(43).empty());
    EXPECT_EQ(table.count(mem), 1u);
}

TEST_F(HashTableTest, UpdateInPlace)
{
    table.insert(mem, 5, value(5, 64).data(), 64);
    table.insert(mem, 5, value(99, 64).data(), 64);
    EXPECT_EQ(get(5), value(99, 64));
    EXPECT_EQ(table.count(mem), 1u);
}

TEST_F(HashTableTest, UpdateAcrossSizeClasses)
{
    table.insert(mem, 5, value(5, 16).data(), 16);
    table.insert(mem, 5, value(5, 2000).data(), 2000);
    EXPECT_EQ(get(5), value(5, 2000));
}

TEST_F(HashTableTest, EraseUnlinksAndFrees)
{
    table.insert(mem, 1, value(1, 32).data(), 32);
    table.insert(mem, 2, value(2, 32).data(), 32);
    EXPECT_TRUE(table.erase(mem, 1));
    EXPECT_FALSE(table.erase(mem, 1));
    EXPECT_TRUE(get(1).empty());
    EXPECT_EQ(get(2), value(2, 32));
    EXPECT_EQ(table.count(mem), 1u);
}

TEST_F(HashTableTest, RandomOpsMatchStdMap)
{
    std::map<std::uint64_t, std::vector<std::uint8_t>> ref;
    Rng rng(11);
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t key = rng.below(200);
        const double dice = rng.uniform();
        if (dice < 0.4) {
            auto v = value(key + i, 48);
            table.insert(mem, key, v.data(), 48);
            ref[key] = v;
        } else if (dice < 0.7) {
            EXPECT_EQ(table.erase(mem, key), ref.erase(key) == 1);
        } else {
            auto got = get(key);
            auto it = ref.find(key);
            if (it == ref.end())
                EXPECT_TRUE(got.empty());
            else
                EXPECT_EQ(got, it->second);
        }
    }
    EXPECT_EQ(table.count(mem), ref.size());
    table.validate(mem);
}

// ---------------------------------------------------------------------

struct RbTreeTest : public ::testing::Test
{
    RbTreeTest()
        : mem(kSpace), heap(kHeapBase, kSpace - kHeapBase),
          tree(64, heap)
    {
        heap.format(mem);
        tree.create(mem);
    }

    std::vector<std::uint8_t>
    value(std::uint64_t key, std::uint32_t len)
    {
        std::vector<std::uint8_t> v(len);
        for (std::uint32_t i = 0; i < len; ++i)
            v[i] = static_cast<std::uint8_t>(key * 31 + i);
        return v;
    }

    std::vector<std::uint8_t>
    get(std::uint64_t key)
    {
        Addr va = 0;
        std::uint32_t vl = 0;
        if (!tree.find(mem, key, &va, &vl))
            return {};
        std::vector<std::uint8_t> out(vl);
        mem.read(va, out.data(), vl);
        return out;
    }

    HostMemSpace mem;
    SimHeap heap;
    SimRbTree tree;
};

TEST_F(RbTreeTest, InsertFindRoundTrip)
{
    tree.insert(mem, 10, value(10, 64).data(), 64);
    tree.insert(mem, 5, value(5, 64).data(), 64);
    tree.insert(mem, 15, value(15, 64).data(), 64);
    EXPECT_EQ(get(5), value(5, 64));
    EXPECT_EQ(get(10), value(10, 64));
    EXPECT_EQ(get(15), value(15, 64));
    EXPECT_TRUE(get(7).empty());
    tree.validate(mem);
}

TEST_F(RbTreeTest, AscendingInsertStaysBalanced)
{
    for (std::uint64_t k = 0; k < 200; ++k) {
        tree.insert(mem, k, value(k, 16).data(), 16);
        tree.validate(mem);
    }
    EXPECT_EQ(tree.count(mem), 200u);
}

TEST_F(RbTreeTest, DescendingInsertStaysBalanced)
{
    for (std::uint64_t k = 200; k > 0; --k)
        tree.insert(mem, k, value(k, 16).data(), 16);
    tree.validate(mem);
    EXPECT_EQ(tree.count(mem), 200u);
}

TEST_F(RbTreeTest, EraseLeafInternalAndRoot)
{
    for (std::uint64_t k : {50, 30, 70, 20, 40, 60, 80})
        tree.insert(mem, k, value(k, 16).data(), 16);
    EXPECT_TRUE(tree.erase(mem, 20)); // leaf
    tree.validate(mem);
    EXPECT_TRUE(tree.erase(mem, 30)); // internal
    tree.validate(mem);
    EXPECT_TRUE(tree.erase(mem, 50)); // (old) root
    tree.validate(mem);
    EXPECT_FALSE(tree.erase(mem, 50));
    EXPECT_EQ(tree.count(mem), 4u);
    for (std::uint64_t k : {40, 60, 70, 80})
        EXPECT_EQ(get(k), value(k, 16));
}

TEST_F(RbTreeTest, UpdateReplacesValue)
{
    tree.insert(mem, 7, value(7, 32).data(), 32);
    tree.insert(mem, 7, value(8, 32).data(), 32);
    EXPECT_EQ(get(7), value(8, 32));
    EXPECT_EQ(tree.count(mem), 1u);
}

TEST_F(RbTreeTest, RandomOpsMatchStdMapWithValidation)
{
    std::map<std::uint64_t, std::vector<std::uint8_t>> ref;
    Rng rng(23);
    for (int i = 0; i < 4000; ++i) {
        const std::uint64_t key = rng.below(300);
        const double dice = rng.uniform();
        if (dice < 0.45) {
            auto v = value(key + i, 24);
            tree.insert(mem, key, v.data(), 24);
            ref[key] = v;
        } else if (dice < 0.75) {
            EXPECT_EQ(tree.erase(mem, key), ref.erase(key) == 1);
        } else {
            auto got = get(key);
            auto it = ref.find(key);
            if (it == ref.end())
                EXPECT_TRUE(got.empty());
            else
                EXPECT_EQ(got, it->second);
        }
        if (i % 256 == 0)
            tree.validate(mem);
    }
    tree.validate(mem);
    EXPECT_EQ(tree.count(mem), ref.size());
}

// ---------------------------------------------------------------------

TEST(MicroWorkloadTest, StreamingIsSequential)
{
    MicroWorkload::Params p;
    p.pattern = MicroWorkload::Pattern::Streaming;
    p.array_bytes = 1024;
    p.access_size = 64;
    p.read_fraction = 1.0;
    p.total_accesses = 32;
    MicroWorkload wl(p);
    WorkOp op;
    Addr expected = 0;
    while (wl.next(op)) {
        if (op.kind == WorkOp::Kind::Compute)
            continue;
        EXPECT_EQ(op.addr, expected % 1024);
        expected += 64;
    }
    EXPECT_EQ(wl.issued(), 32u);
}

TEST(MicroWorkloadTest, RandomStaysInBounds)
{
    MicroWorkload::Params p;
    p.pattern = MicroWorkload::Pattern::Random;
    p.base = 4096;
    p.array_bytes = 64 * 1024;
    p.total_accesses = 500;
    MicroWorkload wl(p);
    WorkOp op;
    while (wl.next(op)) {
        if (op.kind == WorkOp::Kind::Compute)
            continue;
        EXPECT_GE(op.addr, 4096u);
        EXPECT_LT(op.addr + op.size, 4096u + 64 * 1024 + 1);
    }
}

TEST(MicroWorkloadTest, SlidingWindowMoves)
{
    MicroWorkload::Params p;
    p.pattern = MicroWorkload::Pattern::Sliding;
    p.array_bytes = 1u << 20;
    p.window_bytes = 4096;
    p.accesses_per_window = 16;
    p.total_accesses = 64;
    MicroWorkload wl(p);
    WorkOp op;
    Addr max_seen = 0;
    while (wl.next(op)) {
        if (op.kind != WorkOp::Kind::Compute)
            max_seen = std::max(max_seen, op.addr);
    }
    // After 4 windows the accesses must have moved past window 0.
    EXPECT_GT(max_seen, 4096u);
}

TEST(MicroWorkloadTest, SnapshotRestoreResumesStream)
{
    MicroWorkload::Params p;
    p.pattern = MicroWorkload::Pattern::Random;
    p.total_accesses = 100;
    MicroWorkload a(p), b(p);
    WorkOp op;
    for (int i = 0; i < 50; ++i)
        a.next(op);
    auto blob = a.snapshot();
    b.restore(blob);
    WorkOp oa, ob;
    while (true) {
        const bool ra = a.next(oa);
        const bool rb = b.next(ob);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        EXPECT_EQ(oa.kind, ob.kind);
        EXPECT_EQ(oa.addr, ob.addr);
    }
}

TEST(SpecWorkloadTest, ProfilesExist)
{
    EXPECT_EQ(specProfiles().size(), 8u);
    EXPECT_EQ(std::string(specProfile("lbm").name), "lbm");
    EXPECT_THROW(specProfile("not-a-benchmark"), FatalError);
}

TEST(SpecWorkloadTest, MemoryRatioApproximatesProfile)
{
    const auto& prof = specProfile("milc");
    SpecWorkload wl(prof, 0, 200000, 3);
    WorkOp op;
    std::uint64_t mem_ops = 0, instrs = 0;
    while (wl.next(op)) {
        if (op.kind == WorkOp::Kind::Compute) {
            instrs += op.count;
        } else {
            instrs += 1;
            ++mem_ops;
        }
    }
    const double ratio =
        static_cast<double>(mem_ops) / static_cast<double>(instrs);
    EXPECT_NEAR(ratio, prof.mem_ratio, 0.08);
}

TEST(SpecWorkloadTest, WriteFractionApproximatesProfile)
{
    const auto& prof = specProfile("lbm");
    SpecWorkload wl(prof, 0, 100000, 5);
    WorkOp op;
    std::uint64_t writes = 0, mem_ops = 0;
    while (wl.next(op)) {
        if (op.kind == WorkOp::Kind::Load)
            ++mem_ops;
        if (op.kind == WorkOp::Kind::Store) {
            ++mem_ops;
            ++writes;
        }
    }
    EXPECT_NEAR(static_cast<double>(writes) /
                    static_cast<double>(mem_ops),
                prof.write_frac, 0.05);
}

TEST(KvWorkloadTest, ReferenceRunIsDeterministic)
{
    KvWorkload::Params p;
    p.phys_size = 4u << 20;
    p.value_size = 64;
    p.initial_keys = 100;
    p.key_space = 400;
    p.total_txns = 200;
    HostMemSpace a(p.phys_size), b(p.phys_size);
    KvWorkload::runReference(p, 200, a);
    KvWorkload::runReference(p, 200, b);
    EXPECT_EQ(a.bytes(), b.bytes());
    KvWorkload::validateStructure(p, a);
}

TEST(KvWorkloadTest, RbTreeReferenceValidates)
{
    KvWorkload::Params p;
    p.structure = KvWorkload::Structure::RbTree;
    p.phys_size = 4u << 20;
    p.value_size = 128;
    p.initial_keys = 150;
    p.key_space = 500;
    HostMemSpace img(p.phys_size);
    KvWorkload::runReference(p, 300, img);
    KvWorkload::validateStructure(p, img);
}

} // namespace
} // namespace thynvm
