/**
 * @file
 * Tests for the System harness: wiring, metrics extraction, functional
 * view coherence, and workload snapshot semantics under checkpointing.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

namespace thynvm {
namespace {

SystemConfig
tinySystem(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.phys_size = 2u << 20;
    cfg.epoch_length = 300 * kMicrosecond;
    cfg.thynvm.btt_entries = 256;
    cfg.thynvm.ptt_entries = 512;
    return cfg;
}

TEST(HarnessTest, MetricsAreConsistent)
{
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Sliding;
    mp.array_bytes = 1u << 20;
    mp.total_accesses = 5000;
    MicroWorkload wl(mp);
    System sys(tinySystem(SystemKind::ThyNvm), wl);
    sys.start();
    sys.run(2 * kSecond);
    ASSERT_TRUE(sys.finished());

    const auto m = sys.metrics();
    EXPECT_GT(m.exec_time, 0u);
    EXPECT_GT(m.instructions, 5000u);
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_LE(m.ipc, 1.0);
    EXPECT_EQ(m.nvm_wr_total,
              m.nvm_wr_cpu + m.nvm_wr_ckpt + m.nvm_wr_migration);
    EXPECT_GE(m.ckpt_time_frac, 0.0);
    EXPECT_LT(m.ckpt_time_frac, 1.0);
}

TEST(HarnessTest, FunctionalViewSeesThroughCaches)
{
    // A store that is still dirty in L1 must be visible through the
    // functional view but not yet at the controller.
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Streaming;
    mp.array_bytes = 64 * 1024;
    mp.read_fraction = 0.0; // all writes
    mp.total_accesses = 64;
    MicroWorkload wl(mp);
    System sys(tinySystem(SystemKind::ThyNvm), wl);
    sys.start();
    sys.run(2 * kSecond);
    ASSERT_TRUE(sys.finished());

    std::vector<std::uint8_t> via_caches(64 * kBlockSize);
    sys.functionalView()(0, via_caches.data(), via_caches.size());
    // The streaming writer writes nonzero patterns; the view must show
    // them even though nothing forced a writeback yet.
    bool nonzero = false;
    for (auto b : via_caches)
        nonzero |= (b != 0);
    EXPECT_TRUE(nonzero);
}

TEST(HarnessTest, EverySystemRunsTheSameWorkloadToCompletion)
{
    for (SystemKind kind :
         {SystemKind::IdealDram, SystemKind::IdealNvm,
          SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm}) {
        MicroWorkload::Params mp;
        mp.pattern = MicroWorkload::Pattern::Random;
        mp.array_bytes = 512 * 1024;
        mp.total_accesses = 2000;
        MicroWorkload wl(mp);
        System sys(tinySystem(kind), wl);
        sys.start();
        sys.run(4 * kSecond);
        EXPECT_TRUE(sys.finished()) << systemKindName(kind);
        EXPECT_GT(sys.metrics().instructions, 2000u)
            << systemKindName(kind);
    }
}

TEST(HarnessTest, SystemKindNamesAreUnique)
{
    std::set<std::string> names;
    for (SystemKind kind :
         {SystemKind::IdealDram, SystemKind::IdealNvm,
          SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm}) {
        names.insert(systemKindName(kind));
    }
    EXPECT_EQ(names.size(), 5u);
}

TEST(HarnessTest, KvSnapshotCapturesMidTransactionState)
{
    // Pause-style snapshot/restore in the middle of a transaction's op
    // stream must resume exactly, not re-plan.
    KvWorkload::Params p;
    p.phys_size = 2u << 20;
    p.value_size = 64;
    p.initial_keys = 100;
    p.key_space = 400;
    p.total_txns = 50;
    KvWorkload a(p);
    HostMemSpace img(p.phys_size);
    KvWorkload::runReference(p, 0, img); // initial image only
    a.setFunctionalView([&img](Addr addr, void* buf, std::size_t len) {
        img.read(addr, buf, len);
    });

    WorkOp op;
    for (int i = 0; i < 17; ++i)
        ASSERT_TRUE(a.next(op));
    auto blob = a.snapshot();

    KvWorkload b(p);
    b.setFunctionalView([&img](Addr addr, void* buf, std::size_t len) {
        img.read(addr, buf, len);
    });
    b.restore(blob);

    // Both must produce the identical remaining op stream (as long as
    // no new planning happens against the static image).
    WorkOp oa, ob;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(a.next(oa));
        ASSERT_TRUE(b.next(ob));
        EXPECT_EQ(oa.kind, ob.kind);
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(oa.size, ob.size);
    }
}

TEST(HarnessTest, SpecSnapshotRoundTrip)
{
    const auto& prof = specProfile("gcc");
    SpecWorkload a(prof, 0, 10000, 4);
    WorkOp op;
    for (int i = 0; i < 200; ++i)
        a.next(op);
    auto blob = a.snapshot();
    SpecWorkload b(prof, 0, 10000, 4);
    b.restore(blob);
    WorkOp oa, ob;
    while (true) {
        const bool ra = a.next(oa);
        const bool rb = b.next(ob);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        EXPECT_EQ(oa.kind, ob.kind);
        EXPECT_EQ(oa.addr, ob.addr);
    }
}

TEST(HarnessTest, ExplicitPersistenceInterface)
{
    // Paper §6: software can force an epoch boundary to get an explicit
    // persistence point. Verify a forced boundary commits promptly.
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Random;
    mp.array_bytes = 256 * 1024;
    mp.total_accesses = 0; // unbounded
    MicroWorkload wl(mp);
    auto cfg = tinySystem(SystemKind::ThyNvm);
    cfg.epoch_length = 100 * kMillisecond; // timer far away
    System sys(cfg, wl);
    sys.start();
    sys.run(50 * kMicrosecond);

    auto& ctrl = static_cast<ThyNvmController&>(sys.controller());
    EXPECT_EQ(ctrl.completedEpochs(), 0u);
    ctrl.requestEpochEnd();
    sys.run(5 * kMillisecond);
    EXPECT_GE(ctrl.completedEpochs(), 1u);
}

} // namespace
} // namespace thynvm
