/**
 * @file
 * Tests for the System harness: wiring, metrics extraction, functional
 * view coherence, and workload snapshot semantics under checkpointing.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "fuzz/fuzzer.hh"
#include "harness/system.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

namespace thynvm {
namespace {

SystemConfig
tinySystem(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.phys_size = 2u << 20;
    cfg.epoch_length = 300 * kMicrosecond;
    cfg.thynvm.btt_entries = 256;
    cfg.thynvm.ptt_entries = 512;
    return cfg;
}

TEST(HarnessTest, MetricsAreConsistent)
{
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Sliding;
    mp.array_bytes = 1u << 20;
    mp.total_accesses = 5000;
    MicroWorkload wl(mp);
    System sys(tinySystem(SystemKind::ThyNvm), wl);
    sys.start();
    sys.run(2 * kSecond);
    ASSERT_TRUE(sys.finished());

    const auto m = sys.metrics();
    EXPECT_GT(m.exec_time, 0u);
    EXPECT_GT(m.instructions, 5000u);
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_LE(m.ipc, 1.0);
    EXPECT_EQ(m.nvm_wr_total,
              m.nvm_wr_cpu + m.nvm_wr_ckpt + m.nvm_wr_migration);
    EXPECT_GE(m.ckpt_time_frac, 0.0);
    EXPECT_LT(m.ckpt_time_frac, 1.0);
}

TEST(HarnessTest, FunctionalViewSeesThroughCaches)
{
    // A store that is still dirty in L1 must be visible through the
    // functional view but not yet at the controller.
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Streaming;
    mp.array_bytes = 64 * 1024;
    mp.read_fraction = 0.0; // all writes
    mp.total_accesses = 64;
    MicroWorkload wl(mp);
    System sys(tinySystem(SystemKind::ThyNvm), wl);
    sys.start();
    sys.run(2 * kSecond);
    ASSERT_TRUE(sys.finished());

    std::vector<std::uint8_t> via_caches(64 * kBlockSize);
    sys.functionalView()(0, via_caches.data(), via_caches.size());
    // The streaming writer writes nonzero patterns; the view must show
    // them even though nothing forced a writeback yet.
    bool nonzero = false;
    for (auto b : via_caches)
        nonzero |= (b != 0);
    EXPECT_TRUE(nonzero);
}

TEST(HarnessTest, EverySystemRunsTheSameWorkloadToCompletion)
{
    for (SystemKind kind :
         {SystemKind::IdealDram, SystemKind::IdealNvm,
          SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm}) {
        MicroWorkload::Params mp;
        mp.pattern = MicroWorkload::Pattern::Random;
        mp.array_bytes = 512 * 1024;
        mp.total_accesses = 2000;
        MicroWorkload wl(mp);
        System sys(tinySystem(kind), wl);
        sys.start();
        sys.run(4 * kSecond);
        EXPECT_TRUE(sys.finished()) << systemKindName(kind);
        EXPECT_GT(sys.metrics().instructions, 2000u)
            << systemKindName(kind);
    }
}

TEST(HarnessTest, SystemKindNamesAreUnique)
{
    std::set<std::string> names;
    for (SystemKind kind :
         {SystemKind::IdealDram, SystemKind::IdealNvm,
          SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm}) {
        names.insert(systemKindName(kind));
    }
    EXPECT_EQ(names.size(), 5u);
}

TEST(HarnessTest, KvSnapshotCapturesMidTransactionState)
{
    // Pause-style snapshot/restore in the middle of a transaction's op
    // stream must resume exactly, not re-plan.
    KvWorkload::Params p;
    p.phys_size = 2u << 20;
    p.value_size = 64;
    p.initial_keys = 100;
    p.key_space = 400;
    p.total_txns = 50;
    KvWorkload a(p);
    HostMemSpace img(p.phys_size);
    KvWorkload::runReference(p, 0, img); // initial image only
    a.setFunctionalView([&img](Addr addr, void* buf, std::size_t len) {
        img.read(addr, buf, len);
    });

    WorkOp op;
    for (int i = 0; i < 17; ++i)
        ASSERT_TRUE(a.next(op));
    auto blob = a.snapshot();

    KvWorkload b(p);
    b.setFunctionalView([&img](Addr addr, void* buf, std::size_t len) {
        img.read(addr, buf, len);
    });
    b.restore(blob);

    // Both must produce the identical remaining op stream (as long as
    // no new planning happens against the static image).
    WorkOp oa, ob;
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(a.next(oa));
        ASSERT_TRUE(b.next(ob));
        EXPECT_EQ(oa.kind, ob.kind);
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_EQ(oa.size, ob.size);
    }
}

TEST(HarnessTest, SpecSnapshotRoundTrip)
{
    const auto& prof = specProfile("gcc");
    SpecWorkload a(prof, 0, 10000, 4);
    WorkOp op;
    for (int i = 0; i < 200; ++i)
        a.next(op);
    auto blob = a.snapshot();
    SpecWorkload b(prof, 0, 10000, 4);
    b.restore(blob);
    WorkOp oa, ob;
    while (true) {
        const bool ra = a.next(oa);
        const bool rb = b.next(ob);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        EXPECT_EQ(oa.kind, ob.kind);
        EXPECT_EQ(oa.addr, ob.addr);
    }
}

TEST(HarnessTest, ExplicitPersistenceInterface)
{
    // Paper §6: software can force an epoch boundary to get an explicit
    // persistence point. Verify a forced boundary commits promptly.
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Random;
    mp.array_bytes = 256 * 1024;
    mp.total_accesses = 0; // unbounded
    MicroWorkload wl(mp);
    auto cfg = tinySystem(SystemKind::ThyNvm);
    cfg.epoch_length = 100 * kMillisecond; // timer far away
    System sys(cfg, wl);
    sys.start();
    sys.run(50 * kMicrosecond);

    auto& ctrl = static_cast<ThyNvmController&>(sys.controller());
    EXPECT_EQ(ctrl.completedEpochs(), 0u);
    ctrl.requestEpochEnd();
    sys.run(5 * kMillisecond);
    EXPECT_GE(ctrl.completedEpochs(), 1u);
}

/** Read the full physical image through the functional view. */
std::vector<std::uint8_t>
fullImage(System& sys, std::size_t phys_size)
{
    std::vector<std::uint8_t> img(phys_size);
    sys.functionalView()(0, img.data(), img.size());
    return img;
}

/**
 * Step the system into an armed crash plan and drain to the planned
 * crash tick. @return false if the plan never fired.
 */
bool
runToCrashPlan(System& sys, CrashPointRegistry& reg,
               Tick extra = 200 * kMillisecond)
{
    EventQueue& eq = sys.eventq();
    const Tick limit = eq.now() + extra;
    while (!sys.finished() && !reg.fired() && !eq.empty() &&
           eq.now() < limit) {
        eq.step();
    }
    if (!reg.fired())
        return false;
    while (!eq.empty() && eq.nextTick() <= reg.crashTick())
        eq.step();
    return true;
}

/**
 * Double crash: power fails again during the checkpoint pipeline of the
 * *resumed* run — including the very first post-recovery checkpoint,
 * both before and after its commit point. The third boot must recover
 * a consistent lineage image: never older than the first recovery, and
 * exactly base + stores(<R1) + resumed stores(<R2).
 */
TEST(HarnessTest, DoubleCrashDuringResumedCheckpoint)
{
    const fuzz::FuzzerConfig fc;
    for (const char* second_site :
         {"ckpt.pre_commit_header", "ckpt.committed"}) {
        SCOPED_TRACE(second_site);

        // Life 1: crash right as the second checkpoint commits.
        CrashPointRegistry reg1;
        reg1.arm("ckpt.committed", 2, 0);
        MicroWorkload inner1(fuzz::microParams(fc, 1, "rand"));
        fuzz::RecordingWorkload wl1(inner1);
        SystemConfig cfg1 =
            fuzz::makeSystemConfig(fc, SystemKind::ThyNvm, true);
        cfg1.crash_points = &reg1;
        System sys1(cfg1, wl1);
        sys1.start();
        std::vector<std::uint8_t> golden = fullImage(sys1, fc.phys_size);
        ASSERT_TRUE(runToCrashPlan(sys1, reg1));
        std::shared_ptr<BackingStore> nvm1 = sys1.crash();

        // Life 2: recover, then crash again in the first checkpoint of
        // the resumed execution.
        CrashPointRegistry reg2;
        reg2.arm(second_site, 1, 0);
        MicroWorkload inner2(fuzz::microParams(fc, 1, "rand"));
        fuzz::RecordingWorkload wl2(inner2);
        SystemConfig cfg2 =
            fuzz::makeSystemConfig(fc, SystemKind::ThyNvm, true);
        cfg2.crash_points = &reg2;
        System sys2(cfg2, wl2, std::move(nvm1));
        sys2.recoverAndResume();
        ASSERT_TRUE(wl2.wasRestored());
        const std::uint64_t r1 = wl2.restoredCount();
        ASSERT_GT(r1, 0u);
        ASSERT_TRUE(runToCrashPlan(sys2, reg2));
        std::shared_ptr<BackingStore> nvm2 = sys2.crash();

        // Life 3: recover again and check the lineage.
        MicroWorkload inner3(fuzz::microParams(fc, 1, "rand"));
        fuzz::RecordingWorkload wl3(inner3);
        SystemConfig cfg3 =
            fuzz::makeSystemConfig(fc, SystemKind::ThyNvm, true);
        System sys3(cfg3, wl3, std::move(nvm2));
        sys3.recoverAndResume();
        ASSERT_TRUE(wl3.wasRestored());
        const std::uint64_t r2 = wl3.restoredCount();

        // Monotone: a later crash never recovers to an older boundary.
        EXPECT_GE(r2, r1);
        if (std::string(second_site) == "ckpt.pre_commit_header") {
            // The resumed checkpoint had not committed: the third boot
            // lands exactly where the second one did.
            EXPECT_EQ(r2, r1);
        } else {
            // It had committed: the restored count is one of the
            // resumed run's own snapshots.
            const auto& snaps = wl2.snapshotCounts();
            EXPECT_NE(std::find(snaps.begin(), snaps.end(), r2),
                      snaps.end());
        }

        fuzz::applyStores(golden, wl1.stores(), r1);
        fuzz::applyStores(golden, wl2.stores(), r2);
        EXPECT_TRUE(fullImage(sys3, fc.phys_size) == golden)
            << "third boot recovered a torn or stale lineage image";

        // And the lineage still runs to completion.
        sys3.run(fc.run_limit);
        ASSERT_TRUE(sys3.finished());
        fuzz::applyStores(golden, wl3.stores(), ~0ull);
        EXPECT_TRUE(fullImage(sys3, fc.phys_size) == golden);
    }
}

/**
 * recoverAndResume() must be idempotent on the same NVM image: two
 * independent recoveries of the same crashed store agree byte for
 * byte, and a recovery that itself loses power immediately leaves the
 * store recoverable to the identical state. The journal baseline is
 * the sharp case — its recovery *mutates* NVM (redo replay + applied
 * marker) — but the contract holds for every system.
 */
TEST(HarnessTest, RecoveryIsIdempotentOnSameStore)
{
    const fuzz::FuzzerConfig fc;
    struct Scenario
    {
        SystemKind kind;
        const char* site;
        std::uint64_t hit;
    };
    // Sites chosen mid-pipeline: ThyNVM mid-BTT-persist, journal after
    // commit but before apply (forces the NVM-mutating replay path),
    // shadow just before the slot flip.
    const Scenario scenarios[] = {
        {SystemKind::ThyNvm, "ckpt.persist_btt", 2},
        {SystemKind::Journal, "ckpt.apply_block", 1},
        {SystemKind::Shadow, "ckpt.pre_slot_flip", 2},
    };

    for (const Scenario& sc : scenarios) {
        SCOPED_TRACE(systemKindName(sc.kind));

        CrashPointRegistry reg;
        reg.arm(sc.site, sc.hit, 0);
        MicroWorkload inner1(fuzz::microParams(fc, 1, "rand"));
        fuzz::RecordingWorkload wl1(inner1);
        SystemConfig cfg = fuzz::makeSystemConfig(fc, sc.kind, true);
        cfg.crash_points = &reg;
        System sys1(cfg, wl1);
        sys1.start();
        ASSERT_TRUE(runToCrashPlan(sys1, reg));
        std::shared_ptr<BackingStore> nvm = sys1.crash();
        std::shared_ptr<BackingStore> nvm_copy = nvm->clone();

        const SystemConfig plain =
            fuzz::makeSystemConfig(fc, sc.kind, true);

        // Two independent recoveries of the same crashed image.
        MicroWorkload ia(fuzz::microParams(fc, 1, "rand"));
        fuzz::RecordingWorkload wa(ia);
        System sa(plain, wa, nvm);
        sa.recoverAndResume();
        const auto img_a = fullImage(sa, fc.phys_size);

        MicroWorkload ib(fuzz::microParams(fc, 1, "rand"));
        fuzz::RecordingWorkload wb(ib);
        System sb(plain, wb, std::move(nvm_copy));
        sb.recoverAndResume();
        EXPECT_EQ(wa.restoredCount(), wb.restoredCount());
        EXPECT_TRUE(fullImage(sb, fc.phys_size) == img_a)
            << "independent recoveries of the same store diverge";
        ASSERT_GT(wa.restoredCount(), 0u);

        // Power fails again right after recovery completed: a third
        // boot on what the first recovery wrote back must land in the
        // identical state.
        std::shared_ptr<BackingStore> nvm2 = sa.crash();
        MicroWorkload ic(fuzz::microParams(fc, 1, "rand"));
        fuzz::RecordingWorkload wc(ic);
        System sys3(plain, wc, std::move(nvm2));
        sys3.recoverAndResume();
        EXPECT_EQ(wc.restoredCount(), wa.restoredCount());
        EXPECT_TRUE(fullImage(sys3, fc.phys_size) == img_a)
            << "re-recovery after a post-recovery crash diverged";
    }
}

} // namespace
} // namespace thynvm
