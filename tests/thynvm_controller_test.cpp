/**
 * @file
 * Integration tests for the ThyNVM controller, driven directly at the
 * block interface (no CPU/caches): store/load paths, both
 * checkpointing schemes, scheme switching, overflow handling, and
 * crash recovery.
 */

#include "tests/test_util.hh"

#include "core/thynvm_controller.hh"

namespace thynvm {
namespace {

using test::loadBlock;
using test::patternBlock;
using test::storeBlock;

ThyNvmConfig
smallConfig()
{
    ThyNvmConfig cfg;
    cfg.phys_size = 256 * 1024;
    cfg.btt_entries = 64;
    cfg.ptt_entries = 8;
    cfg.epoch_length = 200 * kMicrosecond;
    return cfg;
}

struct ThyNvmTest : public ::testing::Test
{
    ThyNvmTest() { rebuild(smallConfig()); }

    void
    rebuild(const ThyNvmConfig& cfg,
            std::shared_ptr<BackingStore> nvm = nullptr)
    {
        ctrl = std::make_unique<ThyNvmController>(eq, "ctrl", cfg,
                                                  std::move(nvm));
    }

    /** Trigger an epoch boundary and run the checkpoint to commit. */
    void
    checkpoint()
    {
        const auto epochs = ctrl->completedEpochs();
        ctrl->requestEpochEnd();
        eq.runUntil([&] {
            return ctrl->completedEpochs() == epochs + 1 &&
                   !ctrl->checkpointInProgress();
        });
    }

    EventQueue eq;
    std::unique_ptr<ThyNvmController> ctrl;
};

TEST_F(ThyNvmTest, LoadFromHomeRegion)
{
    auto img = patternBlock(1);
    ctrl->loadImage(4096, img.data(), kBlockSize);
    ctrl->start();
    EXPECT_EQ(loadBlock(eq, *ctrl, 4096), img);
    EXPECT_EQ(ctrl->bttLive(), 0u); // reads allocate nothing
}

TEST_F(ThyNvmTest, StoreCreatesBttEntryAndRemapsInNvm)
{
    ctrl->start();
    auto data = patternBlock(2);
    storeBlock(eq, *ctrl, 8192, data);
    EXPECT_EQ(ctrl->bttLive(), 1u);
    EXPECT_EQ(loadBlock(eq, *ctrl, 8192), data);

    // The home copy must be untouched: the working copy was remapped
    // into Checkpoint Region A.
    std::uint8_t home[kBlockSize];
    ctrl->nvm().store().read(ctrl->layout().homeAddr(8192), home,
                             kBlockSize);
    EXPECT_EQ(std::memcmp(home, data.data(), kBlockSize) != 0, true);
}

TEST_F(ThyNvmTest, StoreCoalescesInPlace)
{
    ctrl->start();
    storeBlock(eq, *ctrl, 0, patternBlock(1));
    storeBlock(eq, *ctrl, 0, patternBlock(2));
    storeBlock(eq, *ctrl, 0, patternBlock(3));
    EXPECT_EQ(ctrl->bttLive(), 1u);
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), patternBlock(3));
}

TEST_F(ThyNvmTest, CheckpointCommitsAndDataSurvives)
{
    ctrl->start();
    auto data = patternBlock(5);
    storeBlock(eq, *ctrl, 4096, data);
    checkpoint();
    EXPECT_EQ(ctrl->completedEpochs(), 1u);
    EXPECT_EQ(loadBlock(eq, *ctrl, 4096), data);
}

TEST_F(ThyNvmTest, BlockCheckpointIsMetadataOnly)
{
    ctrl->start();
    storeBlock(eq, *ctrl, 4096, patternBlock(5));
    const auto ckpt_bytes_before =
        ctrl->nvm().writeBytes(TrafficSource::Checkpoint);
    checkpoint();
    const auto ckpt_bytes =
        ctrl->nvm().writeBytes(TrafficSource::Checkpoint) -
        ckpt_bytes_before;
    // Only table images, the overflow live-slot bitmap, and the header
    // are written — no data blocks. The BTT+PTT image is (64+8)*16 B.
    const auto cfg = smallConfig();
    const auto expected_metadata =
        roundUp(64 * 16, kBlockSize) + roundUp(8 * 16, kBlockSize) +
        roundUp((cfg.overflow_entries + 7) / 8, kBlockSize) +
        kBlockSize /* cpu len */ + kBlockSize /* header */;
    EXPECT_EQ(ckpt_bytes, expected_metadata);
}

TEST_F(ThyNvmTest, EpochTimerFiresAutomatically)
{
    ctrl->start();
    storeBlock(eq, *ctrl, 0, patternBlock(1));
    eq.run(eq.now() + 5 * smallConfig().epoch_length);
    EXPECT_GE(ctrl->completedEpochs(), 2u);
}

TEST_F(ThyNvmTest, VersionsAlternateAcrossEpochs)
{
    ctrl->start();
    for (std::uint64_t e = 1; e <= 6; ++e) {
        auto data = patternBlock(100 + e);
        storeBlock(eq, *ctrl, 64 * 64, data);
        checkpoint();
        EXPECT_EQ(loadBlock(eq, *ctrl, 64 * 64), data);
    }
}

TEST_F(ThyNvmTest, StoreDuringCheckpointIsBuffered)
{
    ctrl->start();
    auto v1 = patternBlock(1);
    storeBlock(eq, *ctrl, 0, v1);
    // Begin a checkpoint but do not let it finish.
    ctrl->requestEpochEnd();
    eq.runUntil([&] { return ctrl->checkpointInProgress(); });

    // A store to the same block while its version is being committed
    // must not corrupt either NVM slot.
    auto v2 = patternBlock(2);
    storeBlock(eq, *ctrl, 0, v2);
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), v2);

    eq.runUntil([&] { return !ctrl->checkpointInProgress(); });
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), v2);

    // And the buffered copy drains correctly at the next checkpoint.
    checkpoint();
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), v2);
}

TEST_F(ThyNvmTest, HotPageIsPromotedToPageWriteback)
{
    auto cfg = smallConfig();
    rebuild(cfg);
    ctrl->start();
    // More stores than the promote threshold to one page, spread over
    // distinct blocks.
    for (unsigned i = 0; i < 32; ++i)
        storeBlock(eq, *ctrl, 8 * kPageSize + (i % 64) * kBlockSize,
                   patternBlock(i));
    EXPECT_EQ(ctrl->pttLive(), 0u);
    checkpoint();
    EXPECT_EQ(ctrl->pttLive(), 1u);

    // Data is still visible through the DRAM page.
    for (unsigned i = 0; i < 32; ++i) {
        EXPECT_EQ(loadBlock(eq, *ctrl,
                            8 * kPageSize + (i % 64) * kBlockSize),
                  patternBlock(i));
    }
    // Blocks absorbed into the page free their BTT entries after the
    // page's first commit.
    checkpoint();
    EXPECT_EQ(ctrl->bttLive(), 0u);
}

TEST_F(ThyNvmTest, PromotedPageSurvivesCheckpointCycles)
{
    ctrl->start();
    for (unsigned i = 0; i < 30; ++i)
        storeBlock(eq, *ctrl, i * kBlockSize, patternBlock(i));
    checkpoint(); // promotion of page 0
    ASSERT_EQ(ctrl->pttLive(), 1u);

    // Keep the page hot for several epochs.
    for (unsigned e = 0; e < 4; ++e) {
        for (unsigned i = 0; i < 30; ++i)
            storeBlock(eq, *ctrl, i * kBlockSize,
                       patternBlock(1000 * e + i));
        checkpoint();
    }
    for (unsigned i = 0; i < 30; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kBlockSize),
                  patternBlock(3000 + i));
}

TEST_F(ThyNvmTest, SparselyWrittenPageIsDemoted)
{
    ctrl->start();
    for (unsigned i = 0; i < 30; ++i)
        storeBlock(eq, *ctrl, i * kBlockSize, patternBlock(i));
    checkpoint();
    ASSERT_EQ(ctrl->pttLive(), 1u);

    // Epochs with sparse (low-locality) writes: the page switches back
    // to block remapping (§3.4).
    auto sparse = patternBlock(99);
    for (unsigned e = 0; e < 4 && ctrl->pttLive() > 0; ++e) {
        storeBlock(eq, *ctrl, 0, sparse);
        checkpoint();
    }
    EXPECT_EQ(ctrl->pttLive(), 0u);
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), sparse);
    for (unsigned i = 1; i < 30; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kBlockSize), patternBlock(i));
}

TEST_F(ThyNvmTest, IdleCleanPageKeepsResidencyWithoutPressure)
{
    ctrl->start();
    for (unsigned i = 0; i < 30; ++i)
        storeBlock(eq, *ctrl, i * kBlockSize, patternBlock(i));
    checkpoint();
    ASSERT_EQ(ctrl->pttLive(), 1u);
    // Idle epochs with a near-empty PTT: the page stays resident,
    // preserving DRAM locality for future accesses.
    for (unsigned e = 0; e < 4; ++e)
        checkpoint();
    EXPECT_EQ(ctrl->pttLive(), 1u);
    for (unsigned i = 0; i < 30; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kBlockSize), patternBlock(i));
}

TEST_F(ThyNvmTest, BttOverflowForcesEpochAndStoreCompletes)
{
    auto cfg = smallConfig();
    cfg.btt_entries = 8;
    cfg.promote_threshold = 1000; // no promotions
    rebuild(cfg);
    ctrl->start();
    // Touch more distinct pages' blocks than the BTT can hold; the
    // capacity watermark must force an early epoch (§4.3), with the
    // excess spilling to the overflow buffer.
    for (unsigned i = 0; i < 24; ++i) {
        storeBlock(eq, *ctrl, i * kPageSize, patternBlock(i));
    }
    eq.runUntil([&] {
        return ctrl->completedEpochs() >= 1 &&
               !ctrl->checkpointInProgress();
    });
    EXPECT_GE(ctrl->completedEpochs(), 1u);
    for (unsigned i = 0; i < 24; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kPageSize), patternBlock(i));
}

TEST_F(ThyNvmTest, FunctionalReadMatchesLoads)
{
    ctrl->start();
    auto data = patternBlock(9);
    storeBlock(eq, *ctrl, 4160, data);
    std::uint8_t buf[kBlockSize];
    ctrl->functionalRead(4160, buf, kBlockSize);
    EXPECT_EQ(std::memcmp(buf, data.data(), kBlockSize), 0);

    // Sub-block functional reads work too.
    std::uint8_t word[8];
    ctrl->functionalRead(4160 + 16, word, 8);
    EXPECT_EQ(std::memcmp(word, data.data() + 16, 8), 0);
}

TEST_F(ThyNvmTest, CrashBeforeAnyCheckpointRecoversInitialImage)
{
    auto img = patternBlock(77);
    ctrl->loadImage(0, img.data(), kBlockSize);
    ctrl->start();
    storeBlock(eq, *ctrl, 0, patternBlock(88)); // uncommitted

    auto nvm = ctrl->nvmStoreHandle();
    ctrl->crash();
    eq.clear();

    rebuild(smallConfig(), nvm);
    bool done = false;
    ctrl->recover([&] { done = true; });
    eq.runUntil([&] { return done; });
    ctrl->start();
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), img);
}

TEST_F(ThyNvmTest, CrashAfterCommitRecoversCheckpointedData)
{
    ctrl->start();
    auto committed = patternBlock(10);
    storeBlock(eq, *ctrl, 128, committed);
    checkpoint();
    storeBlock(eq, *ctrl, 128, patternBlock(11)); // next epoch, volatile

    auto nvm = ctrl->nvmStoreHandle();
    ctrl->crash();
    eq.clear();

    rebuild(smallConfig(), nvm);
    bool done = false;
    ctrl->recover([&] { done = true; });
    eq.runUntil([&] { return done; });
    ctrl->start();
    EXPECT_EQ(loadBlock(eq, *ctrl, 128), committed);
}

TEST_F(ThyNvmTest, RecoveryRestoresPromotedPagesIntoDram)
{
    ctrl->start();
    for (unsigned i = 0; i < 30; ++i)
        storeBlock(eq, *ctrl, i * kBlockSize, patternBlock(i));
    checkpoint(); // promote
    for (unsigned i = 0; i < 30; ++i)
        storeBlock(eq, *ctrl, i * kBlockSize, patternBlock(200 + i));
    checkpoint(); // page writeback commits the new data

    auto nvm = ctrl->nvmStoreHandle();
    ctrl->crash();
    eq.clear();

    rebuild(smallConfig(), nvm);
    bool done = false;
    ctrl->recover([&] { done = true; });
    eq.runUntil([&] { return done; });
    ctrl->start();
    EXPECT_GE(ctrl->pttLive(), 1u);
    for (unsigned i = 0; i < 30; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kBlockSize),
                  patternBlock(200 + i));
}

TEST_F(ThyNvmTest, CpuStateRoundTripsThroughCheckpoint)
{
    ctrl->start();
    std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5};
    ctrl->persistCpuState(blob);
    storeBlock(eq, *ctrl, 0, patternBlock(1));
    checkpoint();

    auto nvm = ctrl->nvmStoreHandle();
    ctrl->crash();
    eq.clear();

    rebuild(smallConfig(), nvm);
    bool done = false;
    ctrl->recover([&] { done = true; });
    eq.runUntil([&] { return done; });
    EXPECT_EQ(ctrl->recoveredCpuState(), blob);
}

TEST_F(ThyNvmTest, StopTheWorldModeStillCommits)
{
    auto cfg = smallConfig();
    cfg.stop_the_world = true;
    rebuild(cfg);
    ctrl->start();
    storeBlock(eq, *ctrl, 0, patternBlock(1));
    checkpoint();
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), patternBlock(1));
    EXPECT_GT(ctrl->checkpointStallTime(), 0u);
}

TEST_F(ThyNvmTest, BlockOnlyModeNeverPromotes)
{
    auto cfg = smallConfig();
    cfg.mode = CheckpointMode::BlockOnly;
    rebuild(cfg);
    ctrl->start();
    for (unsigned i = 0; i < 40; ++i)
        storeBlock(eq, *ctrl, i * kBlockSize, patternBlock(i));
    checkpoint();
    EXPECT_EQ(ctrl->pttLive(), 0u);
    for (unsigned i = 0; i < 40; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kBlockSize), patternBlock(i));
}

TEST_F(ThyNvmTest, PageOnlyModePromotesOnFirstStore)
{
    auto cfg = smallConfig();
    cfg.mode = CheckpointMode::PageOnly;
    rebuild(cfg);
    ctrl->start();
    storeBlock(eq, *ctrl, 0, patternBlock(1));
    EXPECT_EQ(ctrl->pttLive(), 1u);
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), patternBlock(1));
    checkpoint();
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), patternBlock(1));
}

} // namespace
} // namespace thynvm
