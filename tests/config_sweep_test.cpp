/**
 * @file
 * Parameterized correctness sweep over ThyNVM configurations.
 *
 * A fixed mixed-locality workload (dense pages + sparse blocks +
 * rewrites) runs against a grid of table geometries and checkpointing
 * modes; for every configuration the final visible memory image must
 * equal a host-side mirror, and a crash after the final commit must
 * recover exactly the committed image. This pins the protocol's
 * correctness independent of capacity pressure, scheme mix, and mode.
 */

#include "tests/test_util.hh"

#include "common/rng.hh"
#include "core/thynvm_controller.hh"

namespace thynvm {
namespace {

using test::patternBlock;

struct SweepParam
{
    std::size_t btt;
    std::size_t ptt;
    std::size_t overflow;
    CheckpointMode mode;
    bool stop_the_world;
};

std::string
paramName(const ::testing::TestParamInfo<SweepParam>& info)
{
    const auto& p = info.param;
    std::string mode = p.mode == CheckpointMode::Dual
                           ? "Dual"
                           : p.mode == CheckpointMode::BlockOnly
                                 ? "BlockOnly"
                                 : "PageOnly";
    return "btt" + std::to_string(p.btt) + "_ptt" +
           std::to_string(p.ptt) + "_ovf" + std::to_string(p.overflow) +
           "_" + mode + (p.stop_the_world ? "_stw" : "_ovl");
}

class ConfigSweepTest : public ::testing::TestWithParam<SweepParam>
{};

TEST_P(ConfigSweepTest, MixedWorkloadStaysCorrectAndRecovers)
{
    const auto& param = GetParam();
    ThyNvmConfig cfg;
    cfg.phys_size = 512 * 1024;
    cfg.btt_entries = param.btt;
    cfg.ptt_entries = param.ptt;
    cfg.overflow_entries = param.overflow;
    cfg.overflow_stall_watermark = param.overflow / 2;
    cfg.mode = param.mode;
    cfg.stop_the_world = param.stop_the_world;
    cfg.epoch_length = 300 * kMicrosecond;
    cfg.promote_threshold = 8;
    cfg.demote_threshold = 4;

    EventQueue eq;
    auto ctrl = std::make_unique<ThyNvmController>(eq, "ctrl", cfg);
    std::vector<std::uint8_t> mirror(cfg.phys_size, 0);
    ctrl->start();

    Rng rng(param.btt * 131 + param.ptt * 17 + param.overflow);
    auto store = [&](Addr addr) {
        auto data = patternBlock(rng.next());
        std::memcpy(mirror.data() + addr, data.data(), kBlockSize);
        test::storeBlock(eq, *ctrl, addr, data);
    };

    for (unsigned round = 0; round < 4; ++round) {
        // Dense page burst.
        const Addr page = (rng.below(64)) * kPageSize;
        for (unsigned b = 0; b < 24; ++b)
            store(page + (b % kBlocksPerPage) * kBlockSize);
        // Sparse scatter.
        for (unsigned i = 0; i < 30; ++i)
            store(rng.below(cfg.phys_size / kBlockSize) * kBlockSize);
        // Rewrites of low addresses (alternation churn).
        for (unsigned i = 0; i < 8; ++i)
            store(i * kBlockSize);
        // Some epochs end via the timer, some are forced.
        if (round % 2 == 0)
            ctrl->requestEpochEnd();
        test::settle(eq, 2 * kMillisecond);
    }
    eq.runUntil([&] { return !ctrl->checkpointInProgress(); });

    // Visible image equals the mirror for every configuration.
    std::vector<std::uint8_t> img(cfg.phys_size);
    ctrl->functionalRead(0, img.data(), img.size());
    ASSERT_EQ(img, mirror) << paramName({GetParam(), 0});

    // Commit everything, crash, recover: the committed image must be
    // exactly the mirror.
    const auto epochs = ctrl->completedEpochs();
    ctrl->requestEpochEnd();
    eq.runUntil([&] {
        return ctrl->completedEpochs() > epochs &&
               !ctrl->checkpointInProgress();
    });
    auto nvm = ctrl->nvmStoreHandle();
    ctrl->crash();
    eq.clear();
    ctrl = std::make_unique<ThyNvmController>(eq, "ctrl", cfg, nvm);
    bool done = false;
    ctrl->recover([&] { done = true; });
    eq.runUntil([&] { return done; });
    ctrl->functionalRead(0, img.data(), img.size());
    EXPECT_EQ(img, mirror);
}

std::vector<SweepParam>
sweepParams()
{
    std::vector<SweepParam> out;
    for (std::size_t btt : {8u, 64u, 512u}) {
        for (std::size_t ptt : {2u, 16u, 128u}) {
            out.push_back({btt, ptt, 64, CheckpointMode::Dual, false});
        }
    }
    out.push_back({64, 16, 16, CheckpointMode::Dual, false});
    out.push_back({64, 16, 4096, CheckpointMode::Dual, false});
    out.push_back({64, 16, 64, CheckpointMode::Dual, true});
    out.push_back({512, 2, 4096, CheckpointMode::BlockOnly, false});
    out.push_back({64, 128, 4096, CheckpointMode::PageOnly, false});
    out.push_back({8, 4, 8192, CheckpointMode::PageOnly, true});
    return out;
}

INSTANTIATE_TEST_SUITE_P(Geometry, ConfigSweepTest,
                         ::testing::ValuesIn(sweepParams()), paramName);

} // namespace
} // namespace thynvm
