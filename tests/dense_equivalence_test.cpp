/**
 * @file
 * Paged-vs-dense store equivalence.
 *
 * The sparse COW store is purely functional: swapping in the
 * THYNVM_DENSE_STORE flat fallback must not change a single simulated
 * byte, stat, or tick. Pinned here across three axes:
 *
 *  1. Clean runs: micro / KV / SPEC on all seven system kinds —
 *     dumpStats, final tick, and the final functional memory image are
 *     byte-identical between the two store implementations.
 *  2. Topology: the same holds on multi-channel systems at every
 *     worker-thread count (the store is shared by per-channel shards).
 *  3. Crash recovery: a representative crash case per system recovers
 *     to the byte-identical image and resumes to the identical final
 *     image under both stores.
 */

#include "tests/test_util.hh"

#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "harness/system.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

namespace thynvm {
namespace {

enum class Family
{
    MicroRandom,
    KvHash,
    SpecGcc,
};

const char*
familyToken(Family f)
{
    switch (f) {
      case Family::MicroRandom: return "micro";
      case Family::KvHash: return "kv";
      case Family::SpecGcc: return "spec";
    }
    return "?";
}

std::vector<SystemKind>
allKinds()
{
    return {std::begin(kAllSystemKinds), std::end(kAllSystemKinds)};
}

SystemConfig
smallConfig(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.channels = 1;
    cfg.phys_size = 4u << 20;
    cfg.epoch_length = 1 * kMillisecond;
    cfg.thynvm.btt_entries = 256;
    cfg.thynvm.ptt_entries = 512;
    return cfg;
}

std::unique_ptr<Workload>
makeWorkload(Family f)
{
    switch (f) {
      case Family::MicroRandom: {
          MicroWorkload::Params mp;
          mp.pattern = MicroWorkload::Pattern::Random;
          mp.base = 0;
          mp.array_bytes = 2u << 20;
          mp.access_size = 64;
          mp.read_fraction = 0.5;
          mp.total_accesses = 4000;
          mp.seed = 1;
          return std::make_unique<MicroWorkload>(mp);
      }
      case Family::KvHash: {
          KvWorkload::Params kp;
          kp.structure = KvWorkload::Structure::HashTable;
          kp.phys_size = 4u << 20;
          kp.value_size = 64;
          kp.initial_keys = 128;
          kp.key_space = 512;
          kp.hash_buckets = 512;
          kp.total_txns = 300;
          kp.compute_per_txn = 50;
          kp.seed = 7;
          return std::make_unique<KvWorkload>(kp);
      }
      case Family::SpecGcc: {
          SpecProfile prof = specProfile("gcc");
          prof.wss = 2u << 20;
          return std::make_unique<SpecWorkload>(prof, 0, 60000, 3);
      }
    }
    fatal("unreachable workload family");
}

struct RunResult
{
    std::string stats;
    Tick final_tick = 0;
    bool finished = false;
    std::vector<std::uint8_t> image;
};

/** Dense capture of the software-visible image via the touched set. */
std::vector<std::uint8_t>
captureImage(System& sys, std::size_t phys_size)
{
    std::vector<std::uint8_t> img(phys_size, 0);
    FunctionalView view = sys.functionalView();
    for (Addr page : sys.touchedPhysPages()) {
        const std::size_t len =
            std::min<std::size_t>(kPageSize, phys_size - page);
        view(page, img.data() + page, len);
    }
    return img;
}

RunResult
runOne(Family f, const SystemConfig& cfg)
{
    auto wl = makeWorkload(f);
    System sys(cfg, *wl);
    sys.start();
    RunResult r;
    r.final_tick = sys.run(20 * kSecond);
    r.finished = sys.finished();
    std::ostringstream os;
    sys.dumpStats(os);
    r.stats = os.str();
    r.image = captureImage(sys, cfg.phys_size);
    return r;
}

/**
 * Axis 1: every family on every system kind, stats + tick + image.
 */
TEST(DenseEquivalence, AllKindsAllFamiliesByteIdentical)
{
    for (SystemKind kind : allKinds()) {
        for (Family f :
             {Family::MicroRandom, Family::KvHash, Family::SpecGcc}) {
            RunResult paged;
            {
                test::EnvGuard off("THYNVM_DENSE_STORE", nullptr);
                paged = runOne(f, smallConfig(kind));
            }
            ASSERT_TRUE(paged.finished) << familyToken(f);
            RunResult dense;
            {
                test::EnvGuard on("THYNVM_DENSE_STORE", "1");
                dense = runOne(f, smallConfig(kind));
            }
            ASSERT_TRUE(dense.finished) << familyToken(f);
            EXPECT_EQ(paged.final_tick, dense.final_tick)
                << familyToken(f) << "/" << systemKindName(kind);
            EXPECT_EQ(paged.stats, dense.stats)
                << familyToken(f) << "/" << systemKindName(kind);
            EXPECT_EQ(paged.image, dense.image)
                << familyToken(f) << "/" << systemKindName(kind)
                << ": final functional image diverged";
        }
    }
}

/**
 * Axis 2: multi-channel topologies at every worker count. The root
 * store is carved into per-channel views written by concurrent kernel
 * shards — exactly the store's disjoint-writer contract.
 */
TEST(DenseEquivalence, MultiChannelWorkerSweepByteIdentical)
{
    for (unsigned channels : {1u, 2u, 4u}) {
        for (unsigned threads : {1u, 2u, 4u}) {
            SystemConfig cfg = smallConfig(SystemKind::ThyNvm);
            cfg.channels = channels;
            cfg.epoch_length = 100 * kMicrosecond;
            cfg.sim_threads = threads;
            RunResult paged;
            {
                test::EnvGuard off("THYNVM_DENSE_STORE", nullptr);
                paged = runOne(Family::MicroRandom, cfg);
            }
            RunResult dense;
            {
                test::EnvGuard on("THYNVM_DENSE_STORE", "1");
                dense = runOne(Family::MicroRandom, cfg);
            }
            ASSERT_TRUE(paged.finished && dense.finished)
                << "channels=" << channels << " threads=" << threads;
            EXPECT_EQ(paged.final_tick, dense.final_tick)
                << "channels=" << channels << " threads=" << threads;
            EXPECT_EQ(paged.stats, dense.stats)
                << "channels=" << channels << " threads=" << threads;
            EXPECT_EQ(paged.image, dense.image)
                << "channels=" << channels << " threads=" << threads;
        }
    }
}

/**
 * Axis 3: crash + recovery. One representative crash case per
 * checkpointing system; recovered and resumed images must match
 * between stores (the recovery path exercises clone(), the touched
 * enumeration, and the mirror rebuild).
 */
TEST(DenseEquivalence, CrashRecoveryImagesByteIdentical)
{
    using namespace fuzz;
    const FuzzerConfig fc;
    for (SystemKind kind : kAllSystemKinds) {
        if (!isCheckpointingKind(kind))
            continue;
        // Find a site this system actually reaches, then crash at its
        // last hit — same recipe the campaign planner uses.
        std::map<std::string, std::uint64_t> sites;
        {
            test::EnvGuard off("THYNVM_DENSE_STORE", nullptr);
            sites = enumerateSites(fc, 1, "rand", kind, true);
        }
        ASSERT_FALSE(sites.empty()) << systemToken(kind);
        FuzzCase c;
        c.seed = 1;
        c.workload = "rand";
        c.system = kind;
        c.site = sites.begin()->first;
        c.hit = sites.begin()->second;

        CaseResult paged;
        {
            test::EnvGuard off("THYNVM_DENSE_STORE", nullptr);
            paged = runCrashCase(fc, c);
        }
        CaseResult dense;
        {
            test::EnvGuard on("THYNVM_DENSE_STORE", "1");
            dense = runCrashCase(fc, c);
        }
        EXPECT_EQ(paged.status, dense.status) << formatRepro(c);
        EXPECT_EQ(paged.crash_tick, dense.crash_tick) << formatRepro(c);
        EXPECT_EQ(paged.recovered_image, dense.recovered_image)
            << formatRepro(c) << ": recovered image diverged";
        EXPECT_EQ(paged.final_image, dense.final_image)
            << formatRepro(c) << ": resumed final image diverged";
    }
}

} // namespace
} // namespace thynvm
