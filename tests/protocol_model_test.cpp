/**
 * @file
 * Exhaustive model check of the ThyNVM consistency protocol.
 *
 * The paper ships a formal proof of its checkpointing state machine
 * (referenced as an online appendix). Here the same property is
 * established mechanically over the implementation: a fixed scenario
 * exercising both checkpointing schemes (remapped blocks, buffered
 * blocks, page promotion/writeback/demotion, overflow spills) is run
 * to completion once to count its events; then, for *every* event
 * index k, a fresh run is crashed after exactly k events, recovered,
 * and the recovered image is required to equal the memory state at
 * one of the scenario's store boundaries (epochs may also end early
 * on table overflow, so any store-prefix state is a legal checkpoint
 * instant). No crash instant may expose a torn state.
 */

#include "tests/test_util.hh"

#include "core/thynvm_controller.hh"

namespace thynvm {
namespace {

using test::patternBlock;

constexpr std::size_t kPhys = 64 * 1024;

ThyNvmConfig
modelConfig()
{
    ThyNvmConfig cfg;
    cfg.phys_size = kPhys;
    cfg.btt_entries = 12;
    cfg.ptt_entries = 3;
    cfg.overflow_entries = 16;
    cfg.overflow_stall_watermark = 8;
    cfg.epoch_length = 10 * kMillisecond; // manual boundaries only
    cfg.promote_threshold = 6;
    cfg.demote_threshold = 4;
    return cfg;
}

/**
 * Deterministic scenario driver. Issues stores batch by batch with an
 * epoch boundary after each batch, recording the memory image at every
 * boundary. Returns when all batches are committed.
 */
class Scenario
{
  public:
    explicit Scenario(EventQueue& eq) : eq_(eq)
    {
        ctrl_ = std::make_unique<ThyNvmController>(eq_, "ctrl",
                                                   modelConfig());
        mirror_.assign(kPhys, 0);
        boundary_images_.push_back(mirror_);
        ctrl_->start();
    }

    /** The scripted store batches: (address, tag) pairs. */
    static std::vector<std::vector<std::pair<Addr, std::uint64_t>>>
    batches()
    {
        std::vector<std::vector<std::pair<Addr, std::uint64_t>>> b;
        // Epoch 1: sparse blocks -> block remapping.
        b.push_back({{0, 1}, {4096, 2}, {8192, 3}, {12288, 4}});
        // Epoch 2: rewrite (coalescing + alternation) + dense page 5
        // (promotion candidate) + spills beyond the tiny BTT.
        {
            std::vector<std::pair<Addr, std::uint64_t>> v;
            v.push_back({0, 5});
            v.push_back({4096, 6});
            for (unsigned i = 0; i < 8; ++i)
                v.push_back({5 * kPageSize + i * kBlockSize, 10 + i});
            for (unsigned i = 0; i < 14; ++i)
                v.push_back({16384 + i * 2 * kBlockSize, 30 + i});
            b.push_back(std::move(v));
        }
        // Epoch 3: write the promoted page (page writeback) + sparse.
        {
            std::vector<std::pair<Addr, std::uint64_t>> v;
            for (unsigned i = 0; i < 8; ++i)
                v.push_back({5 * kPageSize + i * kBlockSize, 50 + i});
            v.push_back({8192, 60});
            b.push_back(std::move(v));
        }
        // Epoch 4: page turns sparse (demotion) + more churn.
        b.push_back({{5 * kPageSize, 70}, {0, 71}, {24576, 72}});
        // Epoch 5: idle-ish epoch to settle demotion.
        b.push_back({{32768, 80}});
        return b;
    }

    /** Run the whole scenario; returns total events stepped. */
    std::uint64_t
    runAll()
    {
        std::uint64_t steps = 0;
        for (const auto& batch : batches()) {
            for (const auto& [addr, tag] : batch)
                steps += storeCounted(addr, tag);
            boundary_images_.push_back(mirror_);
            steps += boundaryCounted();
        }
        return steps;
    }

    /** Run exactly @p budget events, then simulate a power failure. */
    void
    runSteps(std::uint64_t budget)
    {
        std::uint64_t used = 0;
        for (const auto& batch : batches()) {
            for (const auto& [addr, tag] : batch) {
                if (!storeSteps(addr, tag, budget, used))
                    return;
            }
            boundary_images_.push_back(mirror_);
            if (!boundarySteps(budget, used))
                return;
        }
    }

    /** Crash, rebuild, recover; returns the recovered image. */
    std::vector<std::uint8_t>
    crashAndRecover()
    {
        auto nvm = ctrl_->nvmStoreHandle();
        ctrl_->crash();
        eq_.clear();
        ctrl_ = std::make_unique<ThyNvmController>(eq_, "ctrl",
                                                   modelConfig(), nvm);
        bool done = false;
        ctrl_->recover([&done] { done = true; });
        eq_.runUntil([&done] { return done; });
        std::vector<std::uint8_t> img(kPhys);
        ctrl_->functionalRead(0, img.data(), img.size());
        return img;
    }

    const std::vector<std::vector<std::uint8_t>>&
    boundaryImages() const
    {
        return boundary_images_;
    }

    /** Memory image after every applied store (legal crash targets). */
    const std::vector<std::vector<std::uint8_t>>&
    history() const
    {
        return history_;
    }

    /** A named controller statistic (scheme-coverage assertions). */
    double
    stat(const std::string& name) const
    {
        return ctrl_->stats().value(name);
    }

  private:
    void
    applyMirror(Addr addr, std::uint64_t tag)
    {
        auto data = patternBlock(tag);
        std::memcpy(mirror_.data() + addr, data.data(), kBlockSize);
        history_.push_back(mirror_);
    }

    std::uint64_t
    storeCounted(Addr addr, std::uint64_t tag)
    {
        applyMirror(addr, tag);
        auto data = patternBlock(tag);
        bool done = false;
        ctrl_->accessBlock(addr, true, data.data(), nullptr,
                           TrafficSource::CpuWriteback,
                           [&done] { done = true; });
        std::uint64_t steps = 0;
        while (!done) {
            eq_.step();
            ++steps;
        }
        return steps;
    }

    bool
    storeSteps(Addr addr, std::uint64_t tag, std::uint64_t budget,
               std::uint64_t& used)
    {
        applyMirror(addr, tag);
        auto data = patternBlock(tag);
        bool done = false;
        ctrl_->accessBlock(addr, true, data.data(), nullptr,
                           TrafficSource::CpuWriteback,
                           [&done] { done = true; });
        while (!done) {
            if (used == budget)
                return false;
            eq_.step();
            ++used;
        }
        return true;
    }

    std::uint64_t
    boundaryCounted()
    {
        const auto target = ctrl_->completedEpochs() + 1;
        ctrl_->requestEpochEnd();
        std::uint64_t steps = 0;
        while (ctrl_->completedEpochs() < target ||
               ctrl_->checkpointInProgress()) {
            eq_.step();
            ++steps;
        }
        return steps;
    }

    bool
    boundarySteps(std::uint64_t budget, std::uint64_t& used)
    {
        const auto target = ctrl_->completedEpochs() + 1;
        ctrl_->requestEpochEnd();
        while (ctrl_->completedEpochs() < target ||
               ctrl_->checkpointInProgress()) {
            if (used == budget)
                return false;
            eq_.step();
            ++used;
        }
        return true;
    }

    EventQueue& eq_;
    std::unique_ptr<ThyNvmController> ctrl_;
    std::vector<std::uint8_t> mirror_;
    std::vector<std::vector<std::uint8_t>> boundary_images_;
    std::vector<std::vector<std::uint8_t>> history_;
};

TEST(ProtocolModelTest, ScenarioExercisesBothSchemes)
{
    // The sweep below is only a meaningful model check if the scenario
    // actually drives both checkpointing schemes, the DRAM buffering
    // path, and the overflow machinery.
    EventQueue eq;
    Scenario s(eq);
    s.runAll();
    EXPECT_GT(s.stat("remap_nvm_writes"), 0.0);
    EXPECT_GT(s.stat("promotions"), 0.0);
    EXPECT_GT(s.stat("demotions"), 0.0);
    EXPECT_GT(s.stat("pages_written_back"), 0.0);
    EXPECT_GT(s.stat("overflow_blocks"), 0.0);
}

TEST(ProtocolModelTest, EveryCrashPointRecoversToABoundaryImage)
{
    // Count the total events of an undisturbed run.
    std::uint64_t total = 0;
    {
        EventQueue eq;
        Scenario s(eq);
        total = s.runAll();
    }
    ASSERT_GT(total, 100u);

    std::uint64_t checked = 0;
    for (std::uint64_t k = 0; k <= total; ++k) {
        EventQueue eq;
        Scenario s(eq);
        s.runSteps(k);
        const auto img = s.crashAndRecover();
        bool matched = img == s.boundaryImages().front();
        for (const auto& h : s.history()) {
            if (matched)
                break;
            matched = img == h;
        }
        ASSERT_TRUE(matched)
            << "crash after event " << k << " of " << total
            << " recovered to a torn image";
        ++checked;
    }
    ASSERT_EQ(checked, total + 1);
}

} // namespace
} // namespace thynvm
