/**
 * @file
 * Determinism regression test: two identical runs of a fig7-style cell
 * must produce byte-identical stats dumps. Guards the device scheduler
 * against ordering drift — any change in FR-FCFS pick order, completion
 * order, or callback sequencing shows up here as a stats diff.
 */

#include <sstream>

#include "tests/test_util.hh"

#include "harness/system.hh"
#include "workloads/micro.hh"

namespace thynvm {
namespace {

std::string
runCellOnce()
{
    // The fig7 Random/ThyNVM cell at reduced access count: same system
    // configuration and workload pattern, short enough for a unit test.
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Random;
    mp.base = 0;
    mp.array_bytes = 24u << 20;
    mp.access_size = 64;
    mp.read_fraction = 0.5;
    mp.total_accesses = 20000;
    mp.seed = 1;
    MicroWorkload wl(mp);

    SystemConfig cfg;
    cfg.kind = SystemKind::ThyNvm;
    cfg.phys_size = 32u << 20;
    cfg.epoch_length = 10 * kMillisecond;
    cfg.thynvm.btt_entries = 2048;
    cfg.thynvm.ptt_entries = 4096;

    System sys(cfg, wl);
    sys.start();
    sys.run(60 * kSecond);
    EXPECT_TRUE(sys.finished());

    std::ostringstream os;
    os << "tick=" << sys.eventq().now()
       << " events=" << sys.eventq().eventsExecuted() << "\n";
    sys.controller().stats().dump(os);
    if (MemDevice* d = sys.controller().nvmDevice())
        d->stats().dump(os);
    if (MemDevice* d = sys.controller().dramDevice())
        d->stats().dump(os);
    return os.str();
}

TEST(DeterminismTest, Fig7CellStatsDumpIsReproducible)
{
    const std::string first = runCellOnce();
    const std::string second = runCellOnce();
    EXPECT_EQ(first, second);
    // Sanity: the dump actually contains device scheduler stats.
    EXPECT_NE(first.find("row_hits"), std::string::npos);
    EXPECT_NE(first.find("write_bytes"), std::string::npos);
    EXPECT_NE(first.find("read_latency_ns"), std::string::npos);
}

} // namespace
} // namespace thynvm
