/**
 * @file
 * Crash-point fuzzing campaign as a ctest suite.
 *
 * Runs the default differential-recovery campaign (every registered
 * crash site of every evaluated system, per workload pattern) and
 * asserts zero oracle violations. A second test arms the deliberate
 * BTT-persist fault and asserts the campaign catches it, printing the
 * repro strings a developer would paste into `thynvm_fuzz --replay`.
 *
 * THYNVM_FUZZ_ITERS=N widens the campaign to N seeds for the nightly
 * sweep; the default single seed keeps the suite in ctest-sized time.
 */

#include "tests/test_util.hh"

#include <cstdlib>
#include <sstream>

#include "fuzz/fuzzer.hh"

namespace thynvm {
namespace {

using namespace fuzz;

/** Seed count: 1 by default, THYNVM_FUZZ_ITERS for the nightly sweep. */
std::vector<std::uint64_t>
campaignSeeds()
{
    std::uint64_t n = 1;
    if (const char* env = std::getenv("THYNVM_FUZZ_ITERS"))
        n = std::max<std::uint64_t>(1, std::strtoull(env, nullptr, 10));
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < n; ++i)
        seeds.push_back(test::loggedSeed("crash_fuzz.base", 1) + i);
    return seeds;
}

TEST(CrashFuzz, DefaultCampaignHasNoOracleViolations)
{
    FuzzerConfig fc;
    CampaignOptions opts;
    opts.seeds = campaignSeeds();

    std::ostringstream log;
    const CampaignResult res = runCampaign(fc, opts, &log);

    EXPECT_GT(res.cases, 0u);
    EXPECT_EQ(res.not_reached, 0u)
        << "some armed crash plans never fired; campaign lost coverage";
    EXPECT_TRUE(res.violations.empty()) << log.str();
}

TEST(CrashFuzz, EverySystemExposesAtLeastFiveSiteKinds)
{
    FuzzerConfig fc;
    CampaignOptions opts;
    // Site coverage is a property of the instrumentation, not the seed:
    // one seed per pattern is enough, and keeps this test fast.
    opts.seeds = {1};

    const CampaignResult res = runCampaign(fc, opts, nullptr);

    ASSERT_EQ(res.sites_by_system.size(), 5u);
    for (const auto& [system, sites] : res.sites_by_system) {
        EXPECT_GE(sites.size(), 5u)
            << system << " reached only " << sites.size()
            << " distinct crash sites";
    }
    // The fine-grained backends carry their own backend-specific sites
    // (icl.* line logging, ckpt.stage_* range staging) on top of the
    // shared epoch-controller set.
    ASSERT_TRUE(res.sites_by_system.count("icl"));
    EXPECT_GE(res.sites_by_system.at("icl").size(), 8u);
    ASSERT_TRUE(res.sites_by_system.count("incremental"));
    EXPECT_GE(res.sites_by_system.at("incremental").size(), 8u);
}

TEST(CrashFuzz, BothFastPathModesPassOnThyNvm)
{
    FuzzerConfig fc;
    CampaignOptions opts;
    opts.seeds = {1};
    opts.workloads = {"slide"};
    opts.systems = {SystemKind::ThyNvm};
    opts.both_fast_path_modes = true;

    std::ostringstream log;
    const CampaignResult res = runCampaign(fc, opts, &log);

    EXPECT_GT(res.cases, 0u);
    EXPECT_TRUE(res.violations.empty()) << log.str();
}

/**
 * Regression sensitivity: drop one BTT entry from the persisted
 * metadata image and the oracle must notice. This is the fuzzer's
 * self-test — a campaign that passes a corrupted checkpoint would be
 * worthless as a gate.
 */
TEST(CrashFuzz, InjectedBttDropIsCaughtWithRepro)
{
    FuzzerConfig fc;
    fc.debug_drop_btt_entry = 0;
    CampaignOptions opts;
    opts.seeds = {1};
    opts.systems = {SystemKind::ThyNvm};

    std::ostringstream log;
    const CampaignResult res = runCampaign(fc, opts, &log);

    ASSERT_FALSE(res.violations.empty())
        << "campaign missed an injected checkpoint corruption";
    for (const CaseResult& v : res.violations) {
        // Every violation carries a well-formed, parseable repro string.
        FuzzCase parsed;
        EXPECT_TRUE(parseRepro(v.repro, parsed)) << v.repro;
        EXPECT_FALSE(v.detail.empty());
        std::printf("[  caught  ] %s\n    %s\n", v.repro.c_str(),
                    v.detail.c_str());
    }
}

/**
 * The sparse COW store is purely functional: the full default campaign
 * under THYNVM_DENSE_STORE=1 must plan the identical cases, reach the
 * identical sites, emit the identical repro strings, and find the
 * identical (zero) violations as the paged run.
 */
TEST(CrashFuzz, CampaignByteIdenticalUnderDenseStore)
{
    FuzzerConfig fc;
    CampaignOptions opts;
    opts.seeds = {1};

    CampaignResult paged, dense;
    std::ostringstream paged_log, dense_log;
    {
        test::EnvGuard off("THYNVM_DENSE_STORE", nullptr);
        paged = runCampaign(fc, opts, &paged_log);
    }
    {
        test::EnvGuard on("THYNVM_DENSE_STORE", "1");
        dense = runCampaign(fc, opts, &dense_log);
    }

    EXPECT_GT(paged.cases, 0u);
    EXPECT_EQ(paged.cases, dense.cases);
    EXPECT_EQ(paged.not_reached, dense.not_reached);
    EXPECT_EQ(paged.repros, dense.repros)
        << "campaign plan diverged between store implementations";
    EXPECT_EQ(paged.sites_by_system, dense.sites_by_system);
    EXPECT_TRUE(paged.violations.empty()) << paged_log.str();
    EXPECT_TRUE(dense.violations.empty()) << dense_log.str();
}

} // namespace
} // namespace thynvm
