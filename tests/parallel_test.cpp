/**
 * @file
 * Tests for the host-side thread pool and the parallel benchmark sweep
 * driver: the parallel path must produce results identical to the
 * serial path for every cell, at any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "bench/bench_util.hh"
#include "common/parallel.hh"

namespace thynvm {
namespace {

using bench::GridCell;
using bench::runGrid;

TEST(ThreadPoolTest, RunsAllSubmittedJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
    } // destructor drains and joins
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexOnceAnyThreadCount)
{
    for (unsigned threads : {1u, 2u, 7u}) {
        std::vector<std::atomic<int>> hits(23);
        parallelFor(
            hits.size(), [&hits](std::size_t i) { ++hits[i]; }, threads);
        for (auto& h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelForTest, PropagatesFirstException)
{
    EXPECT_THROW(
        parallelFor(
            8,
            [](std::size_t i) {
                if (i == 3)
                    throw std::runtime_error("boom");
            },
            4),
        std::runtime_error);
}

TEST(ParallelForTest, SharedPoolOverloadCoversEveryIndex)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(17);
    // Reuse one pool across rounds, as the shard kernel does.
    for (int round = 0; round < 4; ++round)
        parallelForOn(pool, hits.size(),
                      [&hits](std::size_t i) { ++hits[i]; });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 4);
}

TEST(CountdownLatchTest, WaitReturnsAfterAllArrivals)
{
    ThreadPool pool(4);
    CountdownLatch latch(10);
    std::atomic<int> done{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&] {
            ++done;
            latch.arrive();
        });
    }
    latch.wait();
    EXPECT_EQ(done.load(), 10);
}

TEST(BarrierTest, RendezvousAcrossGenerations)
{
    const unsigned parties = 4;
    const int rounds = 50;
    Barrier barrier(parties);
    // Per-thread counters: after every barrier, all counters must agree.
    std::vector<std::atomic<int>> counts(parties);
    std::atomic<bool> mismatch{false};
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < parties; ++p) {
        threads.emplace_back([&, p] {
            for (int r = 0; r < rounds; ++r) {
                ++counts[p];
                barrier.arriveAndWait();
                for (unsigned q = 0; q < parties; ++q) {
                    if (counts[q].load() < r + 1)
                        mismatch = true;
                }
                barrier.arriveAndWait();
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_FALSE(mismatch.load());
}

TEST(SpinBarrierTest, RendezvousAcrossGenerations)
{
    // Same contract as BarrierTest, enough rounds to exercise the
    // spin, yield, and (on an oversubscribed host) blocking paths.
    const unsigned parties = 4;
    const int rounds = 200;
    SpinBarrier barrier(parties);
    std::vector<std::atomic<int>> counts(parties);
    std::atomic<bool> mismatch{false};
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < parties; ++p) {
        threads.emplace_back([&, p] {
            for (int r = 0; r < rounds; ++r) {
                ++counts[p];
                barrier.arriveAndWait();
                for (unsigned q = 0; q < parties; ++q) {
                    if (counts[q].load() < r + 1)
                        mismatch = true;
                }
                barrier.arriveAndWait();
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_FALSE(mismatch.load());
}

TEST(SpinBarrierTest, PublishesWritesAcrossTheBarrier)
{
    // Non-atomic data written before arriving must be visible to every
    // party after the barrier opens (the shard kernel hands worker-
    // written shard state to the coordinator this way).
    const unsigned parties = 3;
    const int rounds = 100;
    SpinBarrier release(parties);
    SpinBarrier join(parties);
    std::vector<int> slots(parties, -1);
    std::atomic<bool> bad{false};
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < parties; ++p) {
        threads.emplace_back([&, p] {
            for (int r = 0; r < rounds; ++r) {
                slots[p] = r;
                release.arriveAndWait();
                for (unsigned q = 0; q < parties; ++q) {
                    if (slots[q] != r)
                        bad = true;
                }
                join.arriveAndWait();
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_FALSE(bad.load());
}

// ---------------------------------------------------------------------
// Serial/parallel equivalence of full simulation runs.
// ---------------------------------------------------------------------

/** Small-but-real configuration so a grid finishes in milliseconds. */
SystemConfig
smallSystem(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.phys_size = 4u << 20;
    cfg.epoch_length = 1 * kMillisecond;
    cfg.thynvm.btt_entries = 256;
    cfg.thynvm.ptt_entries = 512;
    return cfg;
}

RunMetrics
runSmallMicro(SystemKind kind, MicroWorkload::Pattern pattern)
{
    MicroWorkload::Params mp;
    mp.pattern = pattern;
    mp.base = 0;
    mp.array_bytes = 2u << 20;
    mp.access_size = 64;
    mp.read_fraction = 0.5;
    mp.total_accesses = 4000;
    mp.seed = 1;
    MicroWorkload wl(mp);
    System sys(smallSystem(kind), wl);
    sys.start();
    sys.run(10 * kSecond);
    EXPECT_TRUE(sys.finished());
    return sys.metrics();
}

void
expectSameMetrics(const RunMetrics& a, const RunMetrics& b)
{
    EXPECT_EQ(a.exec_time, b.exec_time);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.nvm_wr_cpu, b.nvm_wr_cpu);
    EXPECT_EQ(a.nvm_wr_ckpt, b.nvm_wr_ckpt);
    EXPECT_EQ(a.nvm_wr_migration, b.nvm_wr_migration);
    EXPECT_EQ(a.nvm_wr_total, b.nvm_wr_total);
    EXPECT_EQ(a.dram_wr_total, b.dram_wr_total);
    EXPECT_EQ(a.ckpt_time_frac, b.ckpt_time_frac);
    EXPECT_EQ(a.epochs, b.epochs);
}

std::vector<GridCell<RunMetrics>>
smallGrid()
{
    const std::vector<SystemKind> kinds = {
        SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm};
    const std::vector<MicroWorkload::Pattern> patterns = {
        MicroWorkload::Pattern::Random,
        MicroWorkload::Pattern::Streaming,
    };
    std::vector<GridCell<RunMetrics>> cells;
    for (auto kind : kinds) {
        for (auto pattern : patterns) {
            cells.push_back(GridCell<RunMetrics>{
                "cell",
                [kind, pattern] { return runSmallMicro(kind, pattern); }});
        }
    }
    return cells;
}

TEST(RunGridTest, ParallelResultsIdenticalToSerial)
{
    // Each cell owns a private System and EventQueue, so fanning cells
    // across threads must not change any RunMetrics field. threads=1
    // exercises the inline path; 2 and 8 exercise real pools (8 >
    // cell count forces idle workers too).
    const auto serial = runGrid("serial reference", smallGrid(), 1);
    for (unsigned threads : {2u, 8u}) {
        const auto parallel =
            runGrid("parallel run", smallGrid(), threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectSameMetrics(serial[i], parallel[i]);
    }
}

TEST(RunGridTest, TwoIdenticalRunsAreDeterministic)
{
    // The simulator must be bit-deterministic: two identical runs in
    // the same process produce identical metrics (no hidden global
    // state, no address-dependent ordering).
    const auto a = runSmallMicro(SystemKind::ThyNvm,
                                 MicroWorkload::Pattern::Random);
    const auto b = runSmallMicro(SystemKind::ThyNvm,
                                 MicroWorkload::Pattern::Random);
    expectSameMetrics(a, b);
}

TEST(RunGridTest, RethrowsCellFailureAfterAllCellsFinish)
{
    std::vector<GridCell<int>> cells;
    std::atomic<int> ran{0};
    for (int i = 0; i < 6; ++i) {
        cells.push_back(GridCell<int>{
            "cell", [i, &ran] {
                ++ran;
                if (i == 2)
                    throw std::runtime_error("cell failed");
                return i;
            }});
    }
    EXPECT_THROW(runGrid("failing grid", cells, 3), std::runtime_error);
    EXPECT_EQ(ran.load(), 6);
}

} // namespace
} // namespace thynvm
