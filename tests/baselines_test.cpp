/**
 * @file
 * Behavioural unit tests for the baseline controllers: journaling,
 * shadow paging, and the ideal systems.
 */

#include "tests/test_util.hh"

#include "baselines/ideal.hh"
#include "baselines/journal.hh"
#include "baselines/shadow.hh"

namespace thynvm {
namespace {

using test::loadBlock;
using test::patternBlock;
using test::storeBlock;

// ---------------------------------------------------------------------
// Journaling.
// ---------------------------------------------------------------------

JournalConfig
smallJournal()
{
    JournalConfig cfg;
    cfg.phys_size = 256 * 1024;
    cfg.table_entries = 16;
    cfg.table_headroom = 64;
    cfg.epoch_length = 200 * kMicrosecond;
    return cfg;
}

struct JournalTest : public ::testing::Test
{
    JournalTest()
        : ctrl(std::make_unique<JournalController>(eq, "ctrl",
                                                   smallJournal()))
    {
        ctrl->start();
    }

    void
    checkpoint()
    {
        const auto epochs = ctrl->completedEpochs();
        ctrl->requestEpochEnd();
        eq.runUntil([&] {
            return ctrl->completedEpochs() == epochs + 1 &&
                   !ctrl->checkpointInProgress();
        });
    }

    EventQueue eq;
    std::unique_ptr<JournalController> ctrl;
};

TEST_F(JournalTest, StoreLoadRoundTrip)
{
    auto data = patternBlock(1);
    storeBlock(eq, *ctrl, 4096, data);
    EXPECT_EQ(loadBlock(eq, *ctrl, 4096), data);
    EXPECT_EQ(ctrl->tableLive(), 1u);
}

TEST_F(JournalTest, StoresCoalesceInBuffer)
{
    for (int i = 0; i < 5; ++i)
        storeBlock(eq, *ctrl, 0, patternBlock(i));
    EXPECT_EQ(ctrl->tableLive(), 1u);
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), patternBlock(4));
}

TEST_F(JournalTest, CheckpointAppliesInPlaceAndClears)
{
    auto data = patternBlock(7);
    storeBlock(eq, *ctrl, 8192, data);
    checkpoint();
    EXPECT_EQ(ctrl->tableLive(), 0u);
    // The home region now holds the committed data.
    std::uint8_t home[kBlockSize];
    ctrl->nvm().store().read(8192, home, kBlockSize);
    EXPECT_EQ(std::memcmp(home, data.data(), kBlockSize), 0);
    EXPECT_EQ(loadBlock(eq, *ctrl, 8192), data);
}

TEST_F(JournalTest, TableOverflowForcesEpoch)
{
    for (unsigned i = 0; i < 20; ++i)
        storeBlock(eq, *ctrl, i * kBlockSize, patternBlock(i));
    eq.runUntil([&] {
        return ctrl->completedEpochs() >= 1 &&
               !ctrl->checkpointInProgress();
    });
    EXPECT_GE(ctrl->completedEpochs(), 1u);
    for (unsigned i = 0; i < 20; ++i)
        EXPECT_EQ(loadBlock(eq, *ctrl, i * kBlockSize), patternBlock(i));
}

TEST_F(JournalTest, JournalWritesDoubleTheCheckpointTraffic)
{
    for (unsigned i = 0; i < 8; ++i)
        storeBlock(eq, *ctrl, i * kBlockSize, patternBlock(i));
    checkpoint();
    // Each block is written twice: once to the journal, once in place.
    EXPECT_EQ(ctrl->stats().value("journaled_blocks"), 8.0);
    EXPECT_EQ(ctrl->stats().value("applied_blocks"), 8.0);
    EXPECT_GE(ctrl->nvm().writeBytes(TrafficSource::Checkpoint),
              2 * 8 * kBlockSize);
}

TEST_F(JournalTest, CommittedButUnappliedJournalReplaysOnRecovery)
{
    auto data = patternBlock(3);
    storeBlock(eq, *ctrl, 0, data);
    // Begin the checkpoint and stop somewhere inside it.
    ctrl->requestEpochEnd();
    for (int i = 0; i < 40 && !eq.empty(); ++i)
        eq.step();

    auto nvm = ctrl->nvmStoreHandle();
    ctrl->crash();
    eq.clear();

    ctrl = std::make_unique<JournalController>(eq, "ctrl", smallJournal(),
                                               nvm);
    bool done = false;
    ctrl->recover([&] { done = true; });
    eq.runUntil([&] { return done; });
    ctrl->start();
    const auto img = loadBlock(eq, *ctrl, 0);
    const bool committed = img == data;
    const bool rolled_back =
        img == std::array<std::uint8_t, kBlockSize>{};
    EXPECT_TRUE(committed || rolled_back);
}

// ---------------------------------------------------------------------
// Shadow paging.
// ---------------------------------------------------------------------

ShadowConfig
smallShadow()
{
    ShadowConfig cfg;
    cfg.phys_size = 256 * 1024;
    cfg.dram_size = 4 * kPageSize;
    cfg.epoch_length = 200 * kMicrosecond;
    return cfg;
}

struct ShadowTest : public ::testing::Test
{
    ShadowTest()
        : ctrl(std::make_unique<ShadowController>(eq, "ctrl",
                                                  smallShadow()))
    {
        ctrl->start();
    }

    void
    checkpoint()
    {
        const auto epochs = ctrl->completedEpochs();
        ctrl->requestEpochEnd();
        eq.runUntil([&] {
            return ctrl->completedEpochs() == epochs + 1 &&
                   !ctrl->checkpointInProgress();
        });
    }

    EventQueue eq;
    std::unique_ptr<ShadowController> ctrl;
};

TEST_F(ShadowTest, FirstWriteFaultsPageIntoDram)
{
    EXPECT_EQ(ctrl->residentPages(), 0u);
    storeBlock(eq, *ctrl, 4096, patternBlock(1));
    EXPECT_EQ(ctrl->residentPages(), 1u);
    EXPECT_EQ(ctrl->stats().value("cow_faults"), 1.0);
    EXPECT_EQ(loadBlock(eq, *ctrl, 4096), patternBlock(1));
}

TEST_F(ShadowTest, CowPreservesRestOfPage)
{
    // Preload a recognizable page image.
    std::vector<std::uint8_t> page(kPageSize, 0x5A);
    ctrl->loadImage(2 * kPageSize, page.data(), page.size());
    storeBlock(eq, *ctrl, 2 * kPageSize, patternBlock(9));
    // The written block changed; its neighbours survived the copy.
    EXPECT_EQ(loadBlock(eq, *ctrl, 2 * kPageSize), patternBlock(9));
    auto neighbour = loadBlock(eq, *ctrl, 2 * kPageSize + kBlockSize);
    for (auto b : neighbour)
        ASSERT_EQ(b, 0x5A);
}

TEST_F(ShadowTest, BufferFullEvictsWholePages)
{
    // Touch more pages than the 4-slot DRAM buffer holds.
    for (unsigned p = 0; p < 8; ++p)
        storeBlock(eq, *ctrl, p * kPageSize, patternBlock(p));
    EXPECT_LE(ctrl->residentPages(), 4u);
    EXPECT_GE(ctrl->stats().value("evictions"), 4.0);
    // Whole-page eviction flushes amplify a single dirty block into a
    // full-page NVM write: the Random pathology of Figure 8. Let the
    // staged flush traffic reach the device before counting it.
    test::settle(eq, 5 * kMillisecond);
    EXPECT_GE(ctrl->nvm().writeBytes(TrafficSource::Checkpoint),
              4 * kPageSize);
    for (unsigned p = 0; p < 8; ++p)
        EXPECT_EQ(loadBlock(eq, *ctrl, p * kPageSize), patternBlock(p));
}

TEST_F(ShadowTest, CheckpointFlipsCommittedSlots)
{
    auto v1 = patternBlock(1);
    storeBlock(eq, *ctrl, 0, v1);
    checkpoint();
    auto v2 = patternBlock(2);
    storeBlock(eq, *ctrl, 0, v2);
    checkpoint();
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), v2);
    // Two checkpoints alternate between home and shadow slots; both
    // NVM copies exist, only the committed one is visible.
}

TEST_F(ShadowTest, RecoveryIgnoresUncommittedShadowWrites)
{
    auto committed = patternBlock(1);
    storeBlock(eq, *ctrl, 0, committed);
    checkpoint();
    storeBlock(eq, *ctrl, 0, patternBlock(2)); // volatile only

    auto nvm = ctrl->nvmStoreHandle();
    ctrl->crash();
    eq.clear();
    ctrl = std::make_unique<ShadowController>(eq, "ctrl", smallShadow(),
                                              nvm);
    bool done = false;
    ctrl->recover([&] { done = true; });
    eq.runUntil([&] { return done; });
    ctrl->start();
    EXPECT_EQ(loadBlock(eq, *ctrl, 0), committed);
}

// ---------------------------------------------------------------------
// Ideal systems.
// ---------------------------------------------------------------------

TEST(IdealTest, DramAndNvmRoundTrip)
{
    for (bool is_dram : {true, false}) {
        EventQueue eq;
        IdealController ctrl(eq, "ctrl", 64 * 1024, is_dram);
        auto data = patternBlock(is_dram ? 1 : 2);
        storeBlock(eq, ctrl, 128, data);
        EXPECT_EQ(loadBlock(eq, ctrl, 128), data);
    }
}

TEST(IdealTest, NvmSlowerThanDram)
{
    auto time_one = [](bool is_dram) {
        EventQueue eq;
        IdealController ctrl(eq, "ctrl", 1 << 20, is_dram);
        // Row-miss reads: alternate distant rows in one bank.
        Tick total = 0;
        for (int i = 0; i < 16; ++i) {
            const Tick t0 = eq.now();
            test::loadBlock(eq, ctrl,
                            (i % 2) * 512 * 1024 + 64 * 1024);
            total += eq.now() - t0;
        }
        return total;
    };
    EXPECT_LT(time_one(true), time_one(false));
}

TEST(IdealTest, CrashIsFree)
{
    EventQueue eq;
    IdealController ctrl(eq, "ctrl", 64 * 1024, true);
    auto data = patternBlock(3);
    storeBlock(eq, ctrl, 0, data);
    ctrl.crash();
    eq.clear();
    bool done = false;
    ctrl.recover([&] { done = true; });
    eq.runUntil([&] { return done; });
    // Idealized consistency: nothing is lost.
    EXPECT_EQ(loadBlock(eq, ctrl, 0), data);
}

TEST(IdealTest, FunctionalReadMatchesTimedRead)
{
    EventQueue eq;
    IdealController ctrl(eq, "ctrl", 64 * 1024, false);
    auto data = patternBlock(4);
    storeBlock(eq, ctrl, 4096, data);
    std::uint8_t buf[kBlockSize];
    ctrl.functionalRead(4096, buf, kBlockSize);
    EXPECT_EQ(std::memcmp(buf, data.data(), kBlockSize), 0);
    std::uint8_t word[4];
    ctrl.functionalRead(4096 + 10, word, 4);
    EXPECT_EQ(std::memcmp(word, data.data() + 10, 4), 0);
}

} // namespace
} // namespace thynvm
