/**
 * @file
 * Full-system integration tests: CPU + caches + each evaluated memory
 * controller, running the paper's workloads end to end, including the
 * flagship crash-resume-equivalence property.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

namespace thynvm {
namespace {

SystemConfig
smallSystem(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.phys_size = 4u << 20;
    cfg.epoch_length = 300 * kMicrosecond;
    // Tables must cover the flushable dirty footprint (see §4.3 of the
    // paper: overflow forces epoch boundaries): one PTT entry per
    // physical page keeps small-scale tests deadlock-free.
    cfg.thynvm.btt_entries = 512;
    cfg.thynvm.ptt_entries = 1024;
    return cfg;
}

KvWorkload::Params
smallKv(KvWorkload::Structure structure, std::uint64_t txns)
{
    KvWorkload::Params p;
    p.structure = structure;
    p.phys_size = 4u << 20;
    p.value_size = 128;
    p.initial_keys = 200;
    p.key_space = 800;
    p.total_txns = txns;
    return p;
}

/** Runs a KV workload to completion on @p kind and checks the final
 *  memory image against the host-side reference, byte for byte. */
void
runKvAndCompare(SystemKind kind, KvWorkload::Structure structure)
{
    auto params = smallKv(structure, 300);
    KvWorkload wl(params);
    System sys(smallSystem(kind), wl);
    sys.start();
    sys.run(2 * kSecond);
    ASSERT_TRUE(sys.finished()) << systemKindName(kind);

    HostMemSpace ref(params.phys_size);
    KvWorkload::runReference(params, params.total_txns, ref);

    std::vector<std::uint8_t> img(params.phys_size);
    sys.functionalView()(0, img.data(), img.size());
    EXPECT_EQ(img, ref.bytes())
        << systemKindName(kind) << " final image diverged";

    ReadOnlyMemSpace view(sys.functionalView());
    KvWorkload::validateStructure(params, view);
}

class AllSystemsKvTest : public ::testing::TestWithParam<SystemKind>
{};

TEST_P(AllSystemsKvTest, HashTableImageMatchesReference)
{
    runKvAndCompare(GetParam(), KvWorkload::Structure::HashTable);
}

TEST_P(AllSystemsKvTest, RbTreeImageMatchesReference)
{
    runKvAndCompare(GetParam(), KvWorkload::Structure::RbTree);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, AllSystemsKvTest,
    ::testing::Values(SystemKind::IdealDram, SystemKind::IdealNvm,
                      SystemKind::Journal, SystemKind::Shadow,
                      SystemKind::ThyNvm));

TEST(SystemTest, MicroWorkloadRunsOnThyNvm)
{
    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Random;
    mp.array_bytes = 1u << 20;
    mp.total_accesses = 3000;
    MicroWorkload wl(mp);
    System sys(smallSystem(SystemKind::ThyNvm), wl);
    sys.start();
    sys.run(2 * kSecond);
    ASSERT_TRUE(sys.finished());
    auto m = sys.metrics();
    EXPECT_GT(m.instructions, 3000u);
    EXPECT_GT(m.ipc, 0.0);
    EXPECT_GE(m.epochs, 1u);
    EXPECT_GT(m.nvm_wr_total, 0u);
}

TEST(SystemTest, CheckpointingSystemsCompleteEpochs)
{
    for (SystemKind kind :
         {SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm}) {
        MicroWorkload::Params mp;
        mp.pattern = MicroWorkload::Pattern::Sliding;
        mp.array_bytes = 512 * 1024;
        mp.total_accesses = 4000;
        MicroWorkload wl(mp);
        System sys(smallSystem(kind), wl);
        sys.start();
        sys.run(2 * kSecond);
        ASSERT_TRUE(sys.finished()) << systemKindName(kind);
        EXPECT_GE(sys.metrics().epochs, 1u) << systemKindName(kind);
    }
}

TEST(SystemTest, IdealDramOutperformsIdealNvmOnWrites)
{
    auto run = [](SystemKind kind) {
        MicroWorkload::Params mp;
        mp.pattern = MicroWorkload::Pattern::Random;
        mp.array_bytes = 2u << 20;
        mp.read_fraction = 0.3;
        mp.total_accesses = 5000;
        MicroWorkload wl(mp);
        System sys(smallSystem(kind), wl);
        sys.start();
        sys.run(4 * kSecond);
        EXPECT_TRUE(sys.finished());
        return sys.metrics().exec_time;
    };
    EXPECT_LT(run(SystemKind::IdealDram), run(SystemKind::IdealNvm));
}

TEST(SystemTest, ThyNvmStallsLessThanStopTheWorldBaselines)
{
    auto run = [](SystemKind kind) {
        MicroWorkload::Params mp;
        mp.pattern = MicroWorkload::Pattern::Random;
        mp.array_bytes = 1u << 20;
        mp.total_accesses = 20000;
        MicroWorkload wl(mp);
        System sys(smallSystem(kind), wl);
        sys.start();
        sys.run(10 * kSecond);
        EXPECT_TRUE(sys.finished()) << systemKindName(kind);
        return sys.metrics().ckpt_time_frac;
    };
    const double thynvm = run(SystemKind::ThyNvm);
    const double journal = run(SystemKind::Journal);
    const double shadow = run(SystemKind::Shadow);
    EXPECT_LT(thynvm, journal);
    EXPECT_LT(thynvm, shadow);
}

TEST(SystemTest, SpecWorkloadProducesPlausibleIpc)
{
    auto prof = specProfile("omnetpp");
    prof.wss = 2u << 20; // shrink the footprint to the test system
    SpecWorkload wl(prof, 0, 100000, 1);
    auto cfg = smallSystem(SystemKind::ThyNvm);
    cfg.epoch_length = 5 * kMillisecond; // amortize checkpoints
    System sys(cfg, wl);
    sys.start();
    sys.run(4 * kSecond);
    ASSERT_TRUE(sys.finished());
    const auto m = sys.metrics();
    EXPECT_GT(m.ipc, 0.001);
    EXPECT_LE(m.ipc, 1.0); // in-order core cannot exceed 1 IPC
}

// ---------------------------------------------------------------------
// The flagship end-to-end property: a run interrupted by power
// failures at arbitrary instants, recovered and resumed each time,
// finishes with exactly the same memory image as an undisturbed run.
// ---------------------------------------------------------------------

struct CrashResumeParam
{
    SystemKind kind;
    KvWorkload::Structure structure;
    Tick crash_at;
};

class CrashResumeTest : public ::testing::TestWithParam<CrashResumeParam>
{};

TEST_P(CrashResumeTest, ResumedRunMatchesUndisturbedRun)
{
    const auto& p = GetParam();
    auto params = smallKv(p.structure, 250);

    KvWorkload wl(params);
    auto sys = std::make_unique<System>(smallSystem(p.kind), wl);
    sys->start();
    sys->run(p.crash_at);

    unsigned reboots = 0;
    std::vector<std::unique_ptr<KvWorkload>> keep_alive;
    while (!sys->finished()) {
        // Power failure now; reboot with the surviving NVM contents
        // and a fresh workload object whose generator state comes from
        // the recovered CPU blob.
        auto nvm = sys->crash();
        ++reboots;
        ASSERT_LE(reboots, 50u) << "run does not converge";
        auto wl2 = std::make_unique<KvWorkload>(params);
        auto sys2 = std::make_unique<System>(smallSystem(p.kind),
                                             *wl2, nvm);
        sys2->recoverAndResume();
        keep_alive.push_back(std::move(wl2));
        sys = std::move(sys2);
        // Growing window: later attempts run long enough to commit
        // progress, so the sequence of crashes converges.
        sys->run(p.crash_at + reboots * kMillisecond);
    }

    HostMemSpace ref(params.phys_size);
    KvWorkload::runReference(params, params.total_txns, ref);
    std::vector<std::uint8_t> img(params.phys_size);
    sys->functionalView()(0, img.data(), img.size());
    EXPECT_EQ(img, ref.bytes())
        << systemKindName(p.kind) << " diverged after " << reboots
        << " crash/recovery cycles";
}

std::vector<CrashResumeParam>
makeCrashResumeParams()
{
    std::vector<CrashResumeParam> out;
    for (SystemKind kind :
         {SystemKind::ThyNvm, SystemKind::Journal, SystemKind::Shadow}) {
        for (Tick t : {70 * kMicrosecond, 350 * kMicrosecond,
                       900 * kMicrosecond}) {
            out.push_back({kind, KvWorkload::Structure::HashTable, t});
            out.push_back({kind, KvWorkload::Structure::RbTree, t});
        }
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(CrashResume, CrashResumeTest,
                         ::testing::ValuesIn(makeCrashResumeParams()));

} // namespace
} // namespace thynvm
