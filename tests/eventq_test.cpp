/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include "sim/eventq.hh"

namespace thynvm {
namespace {

TEST(EventQueueTest, OrdersByTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, FifoTieBreak)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueueTest, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), PanicError);
}

TEST(EventQueueTest, RunWithLimitStops)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(1000, [&] { ++fired; });
    eq.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, ReusableEventFiresAndClears)
{
    EventQueue eq;
    int fired = 0;
    Event ev([&] { ++fired; });
    eq.schedule(ev, 10);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 10u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(ev.scheduled());
    // Re-arm after firing.
    eq.schedule(ev, 20);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, DescheduleCancels)
{
    EventQueue eq;
    int fired = 0;
    Event ev([&] { ++fired; });
    eq.schedule(ev, 10);
    eq.deschedule(ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, DescheduleThenRescheduleFiresOnce)
{
    EventQueue eq;
    int fired = 0;
    Event ev([&] { ++fired; });
    eq.schedule(ev, 10);
    eq.deschedule(ev);
    eq.schedule(ev, 30);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, DoubleScheduleReusableEventPanics)
{
    EventQueue eq;
    Event ev([] {});
    eq.schedule(ev, 10);
    EXPECT_THROW(eq.schedule(ev, 20), PanicError);
}

TEST(EventQueueTest, RunUntilCondition)
{
    EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        eq.schedule(i * 10, [&] { ++count; });
    eq.runUntil([&] { return count == 4; });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueueTest, ClearDropsEverything)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.clear();
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, TimeAdvancesAcrossClear)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    eq.clear();
    EXPECT_EQ(eq.now(), 100u);
    eq.schedule(150, [] {});
    eq.run();
    EXPECT_EQ(eq.now(), 150u);
}

// ---------------------------------------------------------------------
// Same-tick FIFO fast path vs heap ordering.
// ---------------------------------------------------------------------

TEST(EventQueueTest, SameTickContinuationsPreserveGlobalFifoOrder)
{
    // A and B are pre-scheduled (heap path) at the same tick. A's
    // callback schedules a zero-delay continuation (FIFO fast path).
    // The continuation was scheduled *after* B, so it must run after B.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] {
        order.push_back(1);
        eq.scheduleIn(0, [&] { order.push_back(3); });
    });
    eq.schedule(100, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueueTest, FastPathChainsDrainBeforeTimeAdvances)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] {
        order.push_back(1);
        eq.scheduleIn(0, [&] {
            order.push_back(2);
            eq.scheduleIn(0, [&] { order.push_back(3); });
        });
    });
    eq.schedule(51, [&] { order.push_back(4); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueTest, SameTickReusableEventInterleavesWithLambdas)
{
    EventQueue eq;
    std::vector<int> order;
    Event ev([&] { order.push_back(2); });
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.schedule(ev, eq.now());          // same-tick fast path
        eq.scheduleIn(0, [&] { order.push_back(3); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTickEventCanBeDescheduled)
{
    EventQueue eq;
    int fired = 0;
    Event ev([&] { ++fired; });
    eq.schedule(10, [&] {
        eq.schedule(ev, eq.now());
        eq.deschedule(ev);
    });
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_FALSE(ev.scheduled());
}

TEST(EventQueueTest, DescheduleRescheduleCycleOnFastPath)
{
    EventQueue eq;
    std::vector<Tick> fired_at;
    Event ev([&] { fired_at.push_back(eq.now()); });
    eq.schedule(10, [&] {
        eq.schedule(ev, eq.now());
        eq.deschedule(ev);
        eq.schedule(ev, eq.now() + 5);
    });
    eq.run();
    EXPECT_EQ(fired_at, (std::vector<Tick>{15}));
}

TEST(EventQueueTest, CountsExecutedEventsAndFastPathSchedules)
{
    EventQueue eq;
    eq.schedule(10, [&] { eq.scheduleIn(0, [] {}); });
    eq.schedule(20, [] {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 3u);
    EXPECT_EQ(eq.fastPathSchedules(), 1u);
}

// ---------------------------------------------------------------------
// clear() and reusable events (the epoch-timer-across-crash() bug).
// ---------------------------------------------------------------------

TEST(EventQueueTest, ClearLeavesReusableEventsReschedulable)
{
    // Regression: clear() used to drop the queue without resetting the
    // scheduled_ flag of queued reusable events, so re-arming a member
    // event (e.g. the epoch timer after crash()) panicked with "event
    // already scheduled".
    EventQueue eq;
    int fired = 0;
    Event ev([&] { ++fired; });
    eq.schedule(ev, 100);
    eq.clear();
    EXPECT_FALSE(ev.scheduled());
    eq.schedule(ev, 200); // must not panic
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 200u);
}

TEST(EventQueueTest, ClearMidEpochDropsBothPaths)
{
    // A mid-tick clear must drop heap items and same-tick continuations
    // alike, and reusable events queued on either path must be left
    // reschedulable.
    EventQueue eq;
    int fired = 0;
    Event heap_ev([&] { ++fired; });
    Event fifo_ev([&] { ++fired; });
    eq.schedule(10, [&] {
        eq.schedule(fifo_ev, eq.now());
        eq.scheduleIn(0, [&] { ++fired; });
        eq.schedule(heap_ev, 500);
        eq.clear();
    });
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(heap_ev.scheduled());
    EXPECT_FALSE(fifo_ev.scheduled());
    eq.schedule(heap_ev, 600);
    eq.schedule(fifo_ev, 600);
    eq.run();
    EXPECT_EQ(fired, 2);
}

} // namespace
} // namespace thynvm
