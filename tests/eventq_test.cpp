/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include "sim/eventq.hh"

namespace thynvm {
namespace {

TEST(EventQueueTest, OrdersByTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, FifoTieBreak)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 150u);
}

TEST(EventQueueTest, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), PanicError);
}

TEST(EventQueueTest, RunWithLimitStops)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(1000, [&] { ++fired; });
    eq.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, ReusableEventFiresAndClears)
{
    EventQueue eq;
    int fired = 0;
    Event ev([&] { ++fired; });
    eq.schedule(ev, 10);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 10u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(ev.scheduled());
    // Re-arm after firing.
    eq.schedule(ev, 20);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, DescheduleCancels)
{
    EventQueue eq;
    int fired = 0;
    Event ev([&] { ++fired; });
    eq.schedule(ev, 10);
    eq.deschedule(ev);
    EXPECT_FALSE(ev.scheduled());
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, DescheduleThenRescheduleFiresOnce)
{
    EventQueue eq;
    int fired = 0;
    Event ev([&] { ++fired; });
    eq.schedule(ev, 10);
    eq.deschedule(ev);
    eq.schedule(ev, 30);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, DoubleScheduleReusableEventPanics)
{
    EventQueue eq;
    Event ev([] {});
    eq.schedule(ev, 10);
    EXPECT_THROW(eq.schedule(ev, 20), PanicError);
}

TEST(EventQueueTest, RunUntilCondition)
{
    EventQueue eq;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        eq.schedule(i * 10, [&] { ++count; });
    eq.runUntil([&] { return count == 4; });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueueTest, ClearDropsEverything)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.clear();
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, TimeAdvancesAcrossClear)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    eq.clear();
    EXPECT_EQ(eq.now(), 100u);
    eq.schedule(150, [] {});
    eq.run();
    EXPECT_EQ(eq.now(), 150u);
}

} // namespace
} // namespace thynvm
