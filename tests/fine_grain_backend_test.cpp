/**
 * @file
 * Unit tests for the fine-grained checkpoint backends and the
 * write-amplification accounting contract.
 *
 * Direct-controller tests pin the in-cache-line logging mechanics
 * (slim records, record merging, fat overflow, epoch-tag
 * invalidation) and the incremental controller's dirty-range staging
 * — paths the crash-point fuzzer only partially reaches (its fill
 * pattern rewrites whole lines, so the slim path never fires there).
 *
 * System-level tests pin the write-amplification stat itself: on a
 * sequential non-wrapping write-only microworkload every backend
 * reports WA >= 1.0, the ideal controllers report exactly 1.0 (no
 * consistency machinery), and journaling sits at its analytic ~2x
 * (every block once into the journal, once applied home). A KV run
 * checks the headline claim that incremental checkpointing beats
 * journaling on write traffic.
 */

#include "tests/test_util.hh"

#include <algorithm>
#include <initializer_list>
#include <memory>
#include <vector>

#include "baselines/icl.hh"
#include "baselines/incremental.hh"
#include "harness/system.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"

namespace thynvm {
namespace {

using test::patternBlock;
using test::storeBlock;

constexpr std::size_t kPhys = 128 * 1024;

std::vector<std::uint8_t>
snapshotImage(MemController& ctrl)
{
    std::vector<std::uint8_t> img(kPhys);
    ctrl.functionalRead(0, img.data(), img.size());
    return img;
}

/** Committed pattern of block @p i used by the direct tests. */
std::array<std::uint8_t, kBlockSize>
baseBlock(std::size_t i)
{
    return patternBlock(0xB000 + i);
}

/** @p base with 8-byte words in @p words overwritten with new data. */
std::array<std::uint8_t, kBlockSize>
withWords(std::array<std::uint8_t, kBlockSize> base,
          std::initializer_list<unsigned> words, std::uint64_t tag)
{
    const auto fresh = patternBlock(0xF000 + tag);
    for (unsigned w : words)
        std::memcpy(base.data() + w * 8, fresh.data() + w * 8, 8);
    return base;
}

// ---------------------------------------------------------------------
// In-cache-line logging mechanics.
// ---------------------------------------------------------------------

struct IclRig
{
    IclRig()
    {
        cfg.phys_size = kPhys;
        // Far beyond any settle window: epochs end only via
        // requestEpochEnd(), so the tests control commit points.
        cfg.epoch_length = 10 * kSecond;
        cfg.cpu_state_max = 4096;
        ctrl = std::make_unique<IclController>(eq, "icl", cfg, nullptr);
        for (Addr a = 0; a < kPhys; a += kBlockSize) {
            const auto blk = baseBlock(a / kBlockSize);
            ctrl->loadImage(a, blk.data(), kBlockSize);
            std::memcpy(base.data() + a, blk.data(), kBlockSize);
        }
        ctrl->start();
    }

    /**
     * Power-cycle and recover on the surviving NVM image. Device
     * queues are drained first: the store ack is posted-write, and
     * these tests reason about updates that actually reached media.
     */
    void
    reboot()
    {
        test::settle(eq);
        auto nvm = ctrl->nvmStoreHandle();
        ctrl->crash();
        eq.clear();
        ctrl = std::make_unique<IclController>(eq, "icl", cfg, nvm);
        bool recovered = false;
        ctrl->recover([&] { recovered = true; });
        eq.runUntil([&] { return recovered; });
        ctrl->start();
    }

    void
    commitEpoch()
    {
        const auto done = ctrl->completedEpochs();
        ctrl->requestEpochEnd();
        eq.runUntil([&] {
            return ctrl->completedEpochs() == done + 1 &&
                   !ctrl->checkpointInProgress();
        });
    }

    EventQueue eq;
    IclConfig cfg;
    std::unique_ptr<IclController> ctrl;
    std::array<std::uint8_t, kPhys> base{};
};

TEST(IclBackendTest, NarrowUpdateLogsSlimRecordAndUndoes)
{
    IclRig rig;
    storeBlock(rig.eq, *rig.ctrl, 0, withWords(baseBlock(0), {1, 5}, 1));
    EXPECT_EQ(rig.ctrl->stats().value("slim_logs"), 1.0);
    EXPECT_EQ(rig.ctrl->stats().value("fat_logs"), 0.0);
    EXPECT_EQ(rig.ctrl->liveLogLines(), 1u);

    rig.reboot();
    EXPECT_EQ(rig.ctrl->stats().value("undone_lines"), 1.0);
    const auto img = snapshotImage(*rig.ctrl);
    EXPECT_TRUE(std::equal(img.begin(), img.end(), rig.base.begin()))
        << "uncommitted slim update not undone";
}

TEST(IclBackendTest, SecondUpdateMergesIntoExistingRecord)
{
    IclRig rig;
    storeBlock(rig.eq, *rig.ctrl, 0, withWords(baseBlock(0), {0, 1}, 1));
    // Second store to the same line: union of changed words still fits
    // a slim record, so the existing record is widened in place.
    storeBlock(rig.eq, *rig.ctrl, 0,
               withWords(baseBlock(0), {0, 1, 2, 3}, 2));
    EXPECT_EQ(rig.ctrl->stats().value("log_merges"), 1.0);
    EXPECT_EQ(rig.ctrl->stats().value("fat_logs"), 0.0);
    EXPECT_EQ(rig.ctrl->liveLogLines(), 1u);

    rig.reboot();
    const auto img = snapshotImage(*rig.ctrl);
    EXPECT_TRUE(std::equal(img.begin(), img.end(), rig.base.begin()))
        << "merged record did not restore the pre-epoch words";
}

TEST(IclBackendTest, WideUpdateGoesFat)
{
    IclRig rig;
    // All eight words change: the committed line is copied to the
    // overflow block and the record goes fat.
    storeBlock(rig.eq, *rig.ctrl, kBlockSize, patternBlock(0xFA7));
    EXPECT_EQ(rig.ctrl->stats().value("fat_logs"), 1.0);

    // A merge that overflows the slim capacity also goes fat.
    storeBlock(rig.eq, *rig.ctrl, 0,
               withWords(baseBlock(0), {0, 1, 2, 3}, 1));
    storeBlock(rig.eq, *rig.ctrl, 0,
               withWords(baseBlock(0), {0, 1, 2, 3, 4, 5, 6}, 2));
    EXPECT_EQ(rig.ctrl->stats().value("fat_logs"), 2.0);
    EXPECT_EQ(rig.ctrl->stats().value("log_merges"), 1.0);

    rig.reboot();
    const auto img = snapshotImage(*rig.ctrl);
    EXPECT_TRUE(std::equal(img.begin(), img.end(), rig.base.begin()))
        << "fat records did not restore the committed lines";
}

TEST(IclBackendTest, CommitInvalidatesRecordsByEpochTag)
{
    IclRig rig;
    const auto v1 = withWords(baseBlock(0), {2}, 1);
    storeBlock(rig.eq, *rig.ctrl, 0, v1);
    rig.commitEpoch();
    // The records are never cleared; the advanced durable epoch number
    // invalidates them, so the live view is empty and a crash keeps
    // the committed update.
    EXPECT_EQ(rig.ctrl->liveLogLines(), 0u);

    // Next epoch dirties another line, then crashes: only that line is
    // undone, the committed one stays.
    storeBlock(rig.eq, *rig.ctrl, kBlockSize,
               withWords(baseBlock(1), {0}, 2));
    rig.reboot();
    std::array<std::uint8_t, kPhys> want = rig.base;
    std::memcpy(want.data(), v1.data(), kBlockSize);
    const auto img = snapshotImage(*rig.ctrl);
    EXPECT_TRUE(std::equal(img.begin(), img.end(), want.begin()))
        << "commit boundary not honored by recovery";
}

// ---------------------------------------------------------------------
// Incremental dirty-range staging.
// ---------------------------------------------------------------------

struct IncRig
{
    IncRig()
    {
        cfg.phys_size = kPhys;
        cfg.table_entries = 64;
        cfg.table_headroom = 4096;
        cfg.epoch_length = 10 * kSecond; // manual boundaries only
        cfg.cpu_state_max = 4096;
        ctrl =
            std::make_unique<IncrementalController>(eq, "inc", cfg, nullptr);
        for (Addr a = 0; a < kPhys; a += kBlockSize) {
            const auto blk = baseBlock(a / kBlockSize);
            ctrl->loadImage(a, blk.data(), kBlockSize);
            std::memcpy(base.data() + a, blk.data(), kBlockSize);
        }
        ctrl->start();
    }

    void
    reboot()
    {
        test::settle(eq);
        auto nvm = ctrl->nvmStoreHandle();
        ctrl->crash();
        eq.clear();
        ctrl = std::make_unique<IncrementalController>(eq, "inc", cfg, nvm);
        bool recovered = false;
        ctrl->recover([&] { recovered = true; });
        eq.runUntil([&] { return recovered; });
        ctrl->start();
    }

    void
    commitEpoch()
    {
        const auto done = ctrl->completedEpochs();
        ctrl->requestEpochEnd();
        eq.runUntil([&] {
            return ctrl->completedEpochs() == done + 1 &&
                   !ctrl->checkpointInProgress();
        });
    }

    EventQueue eq;
    IncrementalConfig cfg;
    std::unique_ptr<IncrementalController> ctrl;
    std::array<std::uint8_t, kPhys> base{};
};

TEST(IncrementalBackendTest, CheckpointStagesOnlyDirtyBlocks)
{
    IncRig rig;
    for (unsigned i = 0; i < 8; ++i)
        storeBlock(rig.eq, *rig.ctrl, i * kBlockSize, patternBlock(50 + i));
    EXPECT_EQ(rig.ctrl->tableLive(), 8u);

    const std::uint64_t before = rig.ctrl->nvmTotalWriteBytes();
    rig.commitEpoch();
    const std::uint64_t wide = rig.ctrl->nvmTotalWriteBytes() - before;
    EXPECT_EQ(rig.ctrl->tableLive(), 0u);
    EXPECT_EQ(rig.ctrl->stats().value("staged_blocks"), 8.0);
    // 8 staged data blocks plus bitmap/CPU/header metadata — nowhere
    // near a full-image rewrite.
    EXPECT_GE(wide, 8 * kBlockSize);
    EXPECT_LT(wide, kPhys / 4);

    // A one-block epoch stages measurably less than the 8-block one.
    storeBlock(rig.eq, *rig.ctrl, 0, patternBlock(99));
    const std::uint64_t before2 = rig.ctrl->nvmTotalWriteBytes();
    rig.commitEpoch();
    const std::uint64_t narrow = rig.ctrl->nvmTotalWriteBytes() - before2;
    EXPECT_EQ(rig.ctrl->stats().value("staged_blocks"), 9.0);
    EXPECT_LT(narrow, wide);
}

TEST(IncrementalBackendTest, CrashMidEpochRecoversCommittedImage)
{
    IncRig rig;
    const auto v1 = patternBlock(1001);
    storeBlock(rig.eq, *rig.ctrl, 0, v1);
    rig.commitEpoch();

    // Dirty more blocks, crash without committing.
    for (unsigned i = 1; i < 5; ++i)
        storeBlock(rig.eq, *rig.ctrl, i * kBlockSize, patternBlock(2000 + i));
    rig.reboot();

    std::array<std::uint8_t, kPhys> want = rig.base;
    std::memcpy(want.data(), v1.data(), kBlockSize);
    const auto img = snapshotImage(*rig.ctrl);
    EXPECT_TRUE(std::equal(img.begin(), img.end(), want.begin()))
        << "recovery did not roll back to the committed epoch";

    // The recovered machine keeps checkpointing correctly (the first
    // post-recovery epoch conservatively rewrites the full bitmap).
    const auto v2 = patternBlock(3001);
    storeBlock(rig.eq, *rig.ctrl, kBlockSize, v2);
    rig.commitEpoch();
    rig.reboot();
    std::memcpy(want.data() + kBlockSize, v2.data(), kBlockSize);
    const auto img2 = snapshotImage(*rig.ctrl);
    EXPECT_TRUE(std::equal(img2.begin(), img2.end(), want.begin()));
}

// ---------------------------------------------------------------------
// Write-amplification accounting.
// ---------------------------------------------------------------------

/**
 * Commit the tail epoch (checkpointing kinds) and drain the device
 * queues before reading stats: buffered blocks must be staged and
 * queued writes serviced, or the two sides of the ratio are skewed by
 * in-flight traffic.
 */
void
commitTailAndDrain(System& sys, SystemKind kind)
{
    if (isCheckpointingKind(kind)) {
        MemController& ctrl = sys.controller();
        const auto done = ctrl.completedEpochs();
        ctrl.requestEpochEnd();
        sys.eventq().run(sys.eventq().now() + 100 * kMillisecond);
        EXPECT_GT(ctrl.completedEpochs(), done) << systemKindName(kind);
    } else {
        sys.eventq().run(sys.eventq().now() + 100 * kMillisecond);
    }
}

/**
 * Sequential, non-wrapping, write-only microworkload: every written
 * block reaches the controller exactly once, so analytic WA values
 * are exact. The tail epoch is committed explicitly so that buffered
 * blocks are staged before the stats are read.
 */
RunMetrics
runSequentialWrites(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.channels = 1;
    cfg.phys_size = 4u << 20;
    cfg.epoch_length = 1 * kMillisecond;
    cfg.thynvm.btt_entries = 256;
    cfg.thynvm.ptt_entries = 512;
    // Small caches: the 512 KiB stream must spill so that writebacks
    // actually reach the controller (a stream that fits in the LLC
    // would leave both sides of the ratio at zero).
    cfg.l1 = Cache::Params{16 * 1024, 4, 4 * 333};
    cfg.l2 = Cache::Params{64 * 1024, 8, 12 * 333};
    cfg.l3 = Cache::Params{256 * 1024, 8, 28 * 333};

    MicroWorkload::Params mp;
    mp.pattern = MicroWorkload::Pattern::Streaming;
    mp.base = 0;
    mp.array_bytes = 1u << 20; // 8000 * 64B < 1 MiB: never wraps
    mp.access_size = 64;
    mp.read_fraction = 0.0;
    mp.total_accesses = 8000;
    mp.seed = 1;
    MicroWorkload wl(mp);

    System sys(cfg, wl);
    sys.start();
    sys.run(20 * kSecond);
    EXPECT_TRUE(sys.finished()) << systemKindName(kind);
    commitTailAndDrain(sys, kind);
    return sys.metrics();
}

TEST(WriteAmpTest, EveryBackendReportsAtLeastUnity)
{
    for (SystemKind kind : kAllSystemKinds) {
        const RunMetrics m = runSequentialWrites(kind);
        EXPECT_GT(m.app_wr_bytes, 0u) << systemKindName(kind);
        EXPECT_GE(m.write_amp, 1.0)
            << systemKindName(kind)
            << ": persistent media cannot absorb fewer bytes than the "
               "application wrote";
    }
}

TEST(WriteAmpTest, IdealControllersAreExactlyUnity)
{
    for (SystemKind kind : {SystemKind::IdealDram, SystemKind::IdealNvm}) {
        const RunMetrics m = runSequentialWrites(kind);
        // No consistency machinery: media bytes == application bytes.
        EXPECT_DOUBLE_EQ(m.write_amp, 1.0) << systemKindName(kind);
    }
}

TEST(WriteAmpTest, JournalSitsAtItsAnalyticTwoX)
{
    // Redo journaling writes every block twice (journal entry, then
    // the in-place apply) plus per-epoch metadata.
    const RunMetrics m = runSequentialWrites(SystemKind::Journal);
    EXPECT_GE(m.write_amp, 1.9);
    EXPECT_LE(m.write_amp, 2.6);
}

TEST(WriteAmpTest, IncrementalBeatsJournalOnKv)
{
    auto runKv = [](SystemKind kind) {
        SystemConfig cfg;
        cfg.kind = kind;
        cfg.channels = 1;
        cfg.phys_size = 4u << 20;
        // Short epochs: the boundary flush is what pushes the KV
        // working set (which fits in the LLC) out to the controller.
        cfg.epoch_length = 100 * kMicrosecond;
        cfg.l1 = Cache::Params{16 * 1024, 4, 4 * 333};
        cfg.l2 = Cache::Params{64 * 1024, 8, 12 * 333};
        cfg.l3 = Cache::Params{256 * 1024, 8, 28 * 333};

        KvWorkload::Params kp;
        kp.structure = KvWorkload::Structure::HashTable;
        kp.phys_size = 4u << 20;
        kp.value_size = 64;
        kp.initial_keys = 128;
        kp.key_space = 512;
        kp.hash_buckets = 512;
        kp.total_txns = 1000;
        kp.compute_per_txn = 50;
        kp.seed = 7;
        KvWorkload wl(kp);

        System sys(cfg, wl);
        sys.start();
        sys.run(20 * kSecond);
        EXPECT_TRUE(sys.finished()) << systemKindName(kind);
        commitTailAndDrain(sys, kind);
        return sys.metrics();
    };
    const RunMetrics journal = runKv(SystemKind::Journal);
    const RunMetrics incremental = runKv(SystemKind::Incremental);
    EXPECT_GT(journal.write_amp, 1.0);
    EXPECT_LT(incremental.write_amp, journal.write_amp)
        << "incremental range checkpointing must beat full journaling "
           "on KV write traffic";
}

} // namespace
} // namespace thynvm
