/**
 * @file
 * Property-based crash-consistency tests.
 *
 * The central property of ThyNVM (and of the journaling and shadow
 * paging baselines): after a power failure at an *arbitrary* instant,
 * recovery yields exactly the memory image that existed at the most
 * recent committed epoch boundary — never a torn mixture.
 *
 * The test drives a controller directly with randomized store batches,
 * records a golden host-side image at every epoch boundary it
 * requests, then crashes at a random event inside the next batch or
 * checkpoint and verifies the recovered image equals the golden image
 * of whatever epoch the controller reports as committed.
 */

#include "tests/test_util.hh"

#include <algorithm>
#include <iterator>
#include <map>

#include "baselines/journal.hh"
#include "baselines/shadow.hh"
#include "common/rng.hh"
#include "core/thynvm_controller.hh"
#include "fuzz/fuzzer.hh"

namespace thynvm {
namespace {

using test::patternBlock;

constexpr std::size_t kPhys = 128 * 1024;

/** Read the whole software-visible image. */
std::vector<std::uint8_t>
snapshotImage(MemController& ctrl)
{
    std::vector<std::uint8_t> img(kPhys);
    ctrl.functionalRead(0, img.data(), img.size());
    return img;
}

struct CrashDriver
{
    explicit CrashDriver(std::uint64_t seed) : rng(seed)
    {
        mirror.assign(kPhys, 0);
    }

    /** Issue one random store; returns once acknowledged. */
    void
    randomStore(EventQueue& eq, MemController& ctrl)
    {
        const Addr addr =
            rng.below(kPhys / kBlockSize) * kBlockSize;
        auto data = patternBlock(rng.next());
        std::memcpy(mirror.data() + addr, data.data(), kBlockSize);
        test::storeBlock(eq, ctrl, addr, data);
    }

    Rng rng;
    std::vector<std::uint8_t> mirror;
    /** Golden image per committed epoch id. */
    std::map<std::uint64_t, std::vector<std::uint8_t>> golden;
};

/**
 * Run the scenario on a ThyNVM controller with a crash after
 * @p crash_steps extra events, then verify recovery.
 */
void
runThyNvmCrashScenario(std::uint64_t seed, unsigned epochs_before_crash,
                       unsigned crash_steps)
{
    ThyNvmConfig cfg;
    cfg.phys_size = kPhys;
    // One entry per block: overflow never forces an epoch mid-batch, so
    // epoch ids match the manual boundaries below exactly.
    cfg.btt_entries = kPhys / kBlockSize;
    cfg.ptt_entries = 6;
    cfg.epoch_length = kMillisecond; // effectively manual boundaries
    cfg.promote_threshold = 8;       // exercise both schemes
    cfg.demote_threshold = 4;

    EventQueue eq;
    auto ctrl =
        std::make_unique<ThyNvmController>(eq, "ctrl", cfg, nullptr);
    CrashDriver drv(seed);
    // Nonzero initial image.
    for (Addr a = 0; a < kPhys; a += kBlockSize) {
        auto blk = patternBlock(a / kBlockSize + seed);
        ctrl->loadImage(a, blk.data(), kBlockSize);
        std::memcpy(drv.mirror.data() + a, blk.data(), kBlockSize);
    }
    drv.golden[0] = drv.mirror;
    ctrl->start();

    for (unsigned e = 1; e <= epochs_before_crash; ++e) {
        const unsigned batch = 4 + drv.rng.below(24);
        for (unsigned i = 0; i < batch; ++i)
            drv.randomStore(eq, *ctrl);
        // Epoch boundary: the image at this instant is the golden
        // recovery target for epoch e.
        drv.golden[e] = drv.mirror;
        const auto done = ctrl->completedEpochs();
        ctrl->requestEpochEnd();
        eq.runUntil([&] {
            return ctrl->completedEpochs() == done + 1 &&
                   !ctrl->checkpointInProgress();
        });
        ASSERT_EQ(snapshotImage(*ctrl), drv.mirror);
    }

    // Next epoch: more stores, a boundary request, and a crash at an
    // arbitrary number of events into the checkpoint.
    const unsigned batch = 4 + drv.rng.below(24);
    for (unsigned i = 0; i < batch; ++i)
        drv.randomStore(eq, *ctrl);
    drv.golden[epochs_before_crash + 1] = drv.mirror;
    ctrl->requestEpochEnd();
    for (unsigned s = 0; s < crash_steps && !eq.empty(); ++s)
        eq.step();

    // Power failure.
    auto nvm = ctrl->nvmStoreHandle();
    ctrl->crash();
    eq.clear();

    // Reboot and recover.
    ctrl = std::make_unique<ThyNvmController>(eq, "ctrl", cfg, nvm);
    bool recovered = false;
    ctrl->recover([&] { recovered = true; });
    eq.runUntil([&] { return recovered; });
    ctrl->start();

    const std::uint64_t committed = ctrl->currentEpoch() - 1;
    EXPECT_GE(committed, epochs_before_crash > 0 ? epochs_before_crash
                                                 : 0u);
    // Epochs past the last store batch (idle timer boundaries during
    // the crash-step window) all have the final mirror image.
    const std::vector<std::uint8_t>& expect =
        drv.golden.count(committed) ? drv.golden[committed]
                                    : drv.mirror;
    EXPECT_EQ(snapshotImage(*ctrl), expect)
        << "seed=" << seed << " crash_steps=" << crash_steps
        << " committed=" << committed;

    // The recovered system must be fully operational.
    drv.mirror = drv.golden[committed];
    for (unsigned i = 0; i < 8; ++i)
        drv.randomStore(eq, *ctrl);
    EXPECT_EQ(snapshotImage(*ctrl), drv.mirror);
}

struct ThyNvmCrashParam
{
    std::uint64_t seed;
    unsigned epochs;
    unsigned crash_steps;
};

class ThyNvmCrashTest
    : public ::testing::TestWithParam<ThyNvmCrashParam>
{};

TEST_P(ThyNvmCrashTest, RecoversToCommittedEpochImage)
{
    const auto& p = GetParam();
    runThyNvmCrashScenario(p.seed, p.epochs, p.crash_steps);
}

std::vector<ThyNvmCrashParam>
makeCrashParams()
{
    std::vector<ThyNvmCrashParam> params;
    Rng rng(test::loggedSeed("crash_property.params", 0xC0FFEE));
    for (unsigned i = 0; i < 40; ++i) {
        params.push_back(ThyNvmCrashParam{
            1000 + i,
            static_cast<unsigned>(rng.below(4)),
            static_cast<unsigned>(rng.below(400)),
        });
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(RandomCrashes, ThyNvmCrashTest,
                         ::testing::ValuesIn(makeCrashParams()));

/**
 * Crash consistency under table pressure: with tiny tables, overflow
 * forces epoch boundaries at arbitrary store positions, so the precise
 * epoch-to-image mapping is unknown. The invariant still holds that
 * any recovered image equals the memory state at *some* store
 * boundary already reached (never a torn mixture), because epoch
 * flushes happen between acknowledged stores.
 */
class ThyNvmOverflowCrashTest : public ::testing::TestWithParam<int>
{};

TEST_P(ThyNvmOverflowCrashTest, RecoversToSomeStoreBoundary)
{
    const std::uint64_t seed = 7000 + GetParam();
    ThyNvmConfig cfg;
    cfg.phys_size = kPhys;
    cfg.btt_entries = 24; // overflows constantly
    cfg.ptt_entries = 4;
    cfg.epoch_length = kMillisecond;
    cfg.promote_threshold = 6;
    cfg.demote_threshold = 3;

    EventQueue eq;
    auto ctrl =
        std::make_unique<ThyNvmController>(eq, "ctrl", cfg, nullptr);
    CrashDriver drv(seed);
    ctrl->start();

    std::vector<std::vector<std::uint8_t>> history;
    history.push_back(drv.mirror);
    const unsigned stores = 40 + seed % 40;
    for (unsigned i = 0; i < stores; ++i) {
        drv.randomStore(eq, *ctrl);
        history.push_back(drv.mirror);
    }
    ctrl->requestEpochEnd();
    const unsigned steps = static_cast<unsigned>((seed * 97) % 500);
    for (unsigned s = 0; s < steps && !eq.empty(); ++s)
        eq.step();

    auto nvm = ctrl->nvmStoreHandle();
    ctrl->crash();
    eq.clear();

    ctrl = std::make_unique<ThyNvmController>(eq, "ctrl", cfg, nvm);
    bool recovered = false;
    ctrl->recover([&] { recovered = true; });
    eq.runUntil([&] { return recovered; });

    const auto img = snapshotImage(*ctrl);
    bool found = false;
    for (const auto& h : history) {
        if (img == h) {
            found = true;
            break;
        }
    }
    EXPECT_TRUE(found) << "seed " << seed
                       << ": recovered image matches no store boundary";
}

INSTANTIATE_TEST_SUITE_P(OverflowCrashes, ThyNvmOverflowCrashTest,
                         ::testing::Range(0, 20));

/**
 * Same property for the journaling baseline.
 */
TEST(JournalCrashTest, RecoversToCommittedEpochImage)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        JournalConfig cfg;
        cfg.phys_size = kPhys;
        cfg.table_entries = 64;
        cfg.table_headroom = 512;
        cfg.epoch_length = kMillisecond;

        EventQueue eq;
        auto ctrl =
            std::make_unique<JournalController>(eq, "ctrl", cfg, nullptr);
        CrashDriver drv(seed);
        ctrl->start();
        drv.golden[0] = drv.mirror;

        for (unsigned i = 0; i < 20; ++i)
            drv.randomStore(eq, *ctrl);
        drv.golden[1] = drv.mirror;
        ctrl->requestEpochEnd();
        eq.runUntil([&] { return ctrl->completedEpochs() == 1; });

        for (unsigned i = 0; i < 10; ++i)
            drv.randomStore(eq, *ctrl);
        ctrl->requestEpochEnd();
        const unsigned steps = static_cast<unsigned>(seed * 37 % 300);
        for (unsigned s = 0; s < steps && !eq.empty(); ++s)
            eq.step();

        auto nvm = ctrl->nvmStoreHandle();
        ctrl->crash();
        eq.clear();

        ctrl = std::make_unique<JournalController>(eq, "ctrl", cfg, nvm);
        bool recovered = false;
        ctrl->recover([&] { recovered = true; });
        eq.runUntil([&] { return recovered; });

        const auto img = snapshotImage(*ctrl);
        const bool matches_any =
            img == drv.golden[0] || img == drv.golden[1] ||
            img == drv.mirror;
        EXPECT_TRUE(matches_any) << "journal seed " << seed
                                 << ": torn recovery image";
    }
}

/**
 * Same property for the shadow paging baseline.
 */
TEST(ShadowCrashTest, RecoversToCommittedEpochImage)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        ShadowConfig cfg;
        cfg.phys_size = kPhys;
        cfg.dram_size = 64 * 1024;
        cfg.epoch_length = kMillisecond;

        EventQueue eq;
        auto ctrl =
            std::make_unique<ShadowController>(eq, "ctrl", cfg, nullptr);
        CrashDriver drv(seed);
        ctrl->start();
        drv.golden[0] = drv.mirror;

        for (unsigned i = 0; i < 20; ++i)
            drv.randomStore(eq, *ctrl);
        drv.golden[1] = drv.mirror;
        ctrl->requestEpochEnd();
        eq.runUntil([&] { return ctrl->completedEpochs() == 1; });

        for (unsigned i = 0; i < 10; ++i)
            drv.randomStore(eq, *ctrl);
        ctrl->requestEpochEnd();
        const unsigned steps = static_cast<unsigned>(seed * 53 % 300);
        for (unsigned s = 0; s < steps && !eq.empty(); ++s)
            eq.step();

        auto nvm = ctrl->nvmStoreHandle();
        ctrl->crash();
        eq.clear();

        ctrl = std::make_unique<ShadowController>(eq, "ctrl", cfg, nvm);
        bool recovered = false;
        ctrl->recover([&] { recovered = true; });
        eq.runUntil([&] { return recovered; });

        const auto img = snapshotImage(*ctrl);
        const bool matches_any =
            img == drv.golden[0] || img == drv.golden[1] ||
            img == drv.mirror;
        EXPECT_TRUE(matches_any) << "shadow seed " << seed
                                 << ": torn recovery image";
    }
}

// ---------------------------------------------------------------------
// Backend-parameterized recovery-idempotence / double-crash sweep.
// ---------------------------------------------------------------------

/** Full-image capture through the system's functional view. */
std::vector<std::uint8_t>
captureSystemImage(System& sys, std::size_t phys_size)
{
    std::vector<std::uint8_t> img(phys_size, 0);
    FunctionalView view = sys.functionalView();
    for (Addr page : sys.touchedPhysPages()) {
        const std::size_t len =
            std::min<std::size_t>(kPageSize, phys_size - page);
        view(page, img.data() + page, len);
    }
    return img;
}

/**
 * The properties every SystemKind must satisfy under repeated power
 * failures, swept over each crash site the backend announces:
 *
 *  - Idempotence: recover, then crash again before any new work, then
 *    recover again — the second recovery restores the byte-identical
 *    image and the identical architectural op count. A crashed machine
 *    whose recovery changes the recovery target would lose data on the
 *    second failure.
 *  - Boundary discipline (checkpointing kinds): the restored op count
 *    is a snapshot actually taken at an epoch boundary, and the
 *    recovered image equals the golden replay of exactly that prefix.
 *  - Liveness: the third life resumes and runs to completion, and its
 *    final image equals the recovered image plus everything it stored.
 */
class BackendCrashSweepTest
    : public ::testing::TestWithParam<SystemKind>
{};

TEST_P(BackendCrashSweepTest, DoubleCrashRecoveryIsIdempotent)
{
    using namespace fuzz;
    const SystemKind kind = GetParam();
    const FuzzerConfig fc;
    const std::uint64_t seed =
        test::loggedSeed("crash_property.sweep", 11);

    // Crash plans: every site the backend announces on this run, at
    // its last hit. The ideal kinds announce no sites (no checkpoint
    // machinery) and get one mid-run crash instead.
    std::vector<std::pair<std::string, std::uint64_t>> plans;
    for (const auto& [site, hits] :
         enumerateSites(fc, seed, "rand", kind, true, 1)) {
        plans.emplace_back(site, hits);
    }
    if (isCheckpointingKind(kind)) {
        ASSERT_GE(plans.size(), 5u)
            << systemToken(kind) << " announces too few crash sites";
    } else {
        ASSERT_TRUE(plans.empty());
        plans.emplace_back(std::string(), 0); // tick-based crash
    }

    for (const auto& [site, hit] : plans) {
        SCOPED_TRACE(std::string(systemToken(kind)) + " site=" +
                     (site.empty() ? "<mid-run>" : site));

        // Life 1: run into the crash.
        MicroWorkload inner1(microParams(fc, seed, "rand"));
        RecordingWorkload wl1(inner1);
        SystemConfig cfg = makeSystemConfig(fc, kind, true, 1);
        CrashPointRegistry reg;
        if (!site.empty()) {
            reg.arm(site, hit, 0);
            cfg.crash_points = &reg;
        }
        System sys(cfg, wl1);
        sys.start();
        const std::vector<std::uint8_t> base =
            captureSystemImage(sys, fc.phys_size);
        EventQueue& eq = sys.eventq();
        if (!site.empty()) {
            while (!sys.finished() && !reg.fired() && !eq.empty() &&
                   eq.now() < fc.run_limit) {
                eq.step();
            }
            ASSERT_TRUE(reg.fired())
                << "enumerated site did not fire on the armed replay";
            while (!eq.empty() && eq.nextTick() <= reg.crashTick())
                eq.step();
        } else {
            while (!sys.finished() && !eq.empty() &&
                   eq.now() < fc.run_limit &&
                   wl1.opCount() < fc.total_accesses / 2) {
                eq.step();
            }
        }
        const std::uint64_t commits =
            sys.controller().completedEpochs();
        std::shared_ptr<BackingStore> nvm = sys.crash();

        // Life 2: recover, capture, and pull the plug again before a
        // single new instruction retires.
        MicroWorkload inner2(microParams(fc, seed, "rand"));
        RecordingWorkload wl2(inner2);
        System sys2(makeSystemConfig(fc, kind, true, 1), wl2,
                    std::move(nvm));
        sys2.recoverAndResume();
        const std::uint64_t restored2 =
            wl2.wasRestored() ? wl2.restoredCount() : 0;
        const std::vector<std::uint8_t> img_a =
            captureSystemImage(sys2, fc.phys_size);
        std::shared_ptr<BackingStore> nvm2 = sys2.crash();

        // Life 3: recover from the re-crashed image.
        MicroWorkload inner3(microParams(fc, seed, "rand"));
        RecordingWorkload wl3(inner3);
        System sys3(makeSystemConfig(fc, kind, true, 1), wl3,
                    std::move(nvm2));
        sys3.recoverAndResume();
        const std::uint64_t restored3 =
            wl3.wasRestored() ? wl3.restoredCount() : 0;
        const std::vector<std::uint8_t> img_b =
            captureSystemImage(sys3, fc.phys_size);

        EXPECT_EQ(restored2, restored3)
            << "second recovery restored a different epoch boundary";
        EXPECT_EQ(img_a, img_b)
            << "recovery is not idempotent under an immediate re-crash";

        if (isCheckpointingKind(kind)) {
            // Boundary discipline against the recorded store trace.
            const auto& snaps = wl1.snapshotCounts();
            if (restored2 == 0) {
                EXPECT_EQ(commits, 0u);
            } else {
                EXPECT_TRUE(std::find(snaps.begin(), snaps.end(),
                                      restored2) != snaps.end())
                    << "restored op count " << restored2
                    << " is not a snapshotted epoch boundary";
            }
            std::vector<std::uint8_t> golden = base;
            applyStores(golden, wl1.stores(), restored2);
            EXPECT_EQ(img_a, golden)
                << "recovered image diverges from the golden prefix";
        }

        // Liveness: the third life must finish, and its final image is
        // the recovered image plus everything it stored.
        sys3.run(fc.run_limit);
        ASSERT_TRUE(sys3.finished())
            << "resumed execution stalled after the double crash";
        std::vector<std::uint8_t> want = img_b;
        applyStores(want, wl3.stores(), ~0ull);
        EXPECT_EQ(captureSystemImage(sys3, fc.phys_size), want);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendCrashSweepTest,
    ::testing::ValuesIn(std::vector<SystemKind>(
        std::begin(kAllSystemKinds), std::end(kAllSystemKinds))),
    [](const ::testing::TestParamInfo<SystemKind>& info) {
        // Token with gtest-legal characters only ("ideal-dram" has '-').
        std::string tok = fuzz::systemToken(info.param);
        tok.erase(std::remove(tok.begin(), tok.end(), '-'), tok.end());
        return tok;
    });

} // namespace
} // namespace thynvm
