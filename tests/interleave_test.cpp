/**
 * @file
 * Address-math tests for the multi-channel block interleaver.
 */

#include "mem/interleave.hh"

#include <gtest/gtest.h>

#include <vector>

namespace thynvm {
namespace {

TEST(InterleaveTest, SingleChannelIsIdentity)
{
    ChannelInterleaver il(1);
    for (Addr a : {Addr{0}, Addr{63}, Addr{64}, Addr{4096}, Addr{123457}}) {
        EXPECT_EQ(il.channelOf(a), 0u);
        EXPECT_EQ(il.localAddr(a), a);
        EXPECT_EQ(il.globalAddr(0, a), a);
    }
}

TEST(InterleaveTest, BlocksRoundRobinAcrossChannels)
{
    ChannelInterleaver il(4);
    for (std::size_t blk = 0; blk < 64; ++blk) {
        const Addr a = blk * kBlockSize;
        EXPECT_EQ(il.channelOf(a), blk % 4);
        // Consecutive blocks of one channel pack densely in its local
        // space.
        EXPECT_EQ(il.localAddr(a), (blk / 4) * kBlockSize);
    }
}

TEST(InterleaveTest, RoundTripIsExact)
{
    for (unsigned channels : {1u, 2u, 4u, 8u}) {
        ChannelInterleaver il(channels);
        for (Addr a = 0; a < 64 * kBlockSize; a += 13) {
            const unsigned ch = il.channelOf(a);
            const Addr local = il.localAddr(a);
            EXPECT_EQ(il.globalAddr(ch, local), a)
                << "channels=" << channels << " addr=" << a;
        }
        // And the other direction: every (channel, local) pair maps to
        // a unique global address owned by that channel.
        for (unsigned ch = 0; ch < channels; ++ch) {
            for (Addr local = 0; local < 16 * kBlockSize;
                 local += kBlockSize) {
                const Addr global = il.globalAddr(ch, local);
                EXPECT_EQ(il.channelOf(global), ch);
                EXPECT_EQ(il.localAddr(global), local);
            }
        }
    }
}

TEST(InterleaveTest, BytesWithinABlockStayTogether)
{
    // A block never straddles a channel boundary: every byte of a
    // 64-byte block maps to the same channel, at consecutive local
    // offsets. This is what lets the cache hierarchy issue block
    // accesses without splitting them.
    ChannelInterleaver il(8);
    for (std::size_t blk = 0; blk < 32; ++blk) {
        const Addr base = blk * kBlockSize;
        const unsigned ch = il.channelOf(base);
        const Addr local_base = il.localAddr(base);
        for (std::size_t off = 0; off < kBlockSize; ++off) {
            EXPECT_EQ(il.channelOf(base + off), ch);
            EXPECT_EQ(il.localAddr(base + off), local_base + off);
        }
        // The next block changes channel (8-way: never the same
        // neighbor).
        EXPECT_NE(il.channelOf(base + kBlockSize), ch);
    }
}

TEST(InterleaveTest, LocalSpacesPartitionTheGlobalSpace)
{
    // Every global block lands in exactly one channel's local space,
    // and the local spaces are dense: across N global blocks and C
    // channels, each channel sees exactly N/C distinct local blocks.
    ChannelInterleaver il(4);
    const std::size_t n_blocks = 256;
    std::vector<std::vector<bool>> seen(
        4, std::vector<bool>(n_blocks / 4, false));
    for (std::size_t blk = 0; blk < n_blocks; ++blk) {
        const Addr a = blk * kBlockSize;
        const unsigned ch = il.channelOf(a);
        const std::size_t local_blk = il.localAddr(a) / kBlockSize;
        ASSERT_LT(local_blk, n_blocks / 4);
        EXPECT_FALSE(seen[ch][local_blk]) << "collision at block " << blk;
        seen[ch][local_blk] = true;
    }
    for (unsigned ch = 0; ch < 4; ++ch) {
        for (bool s : seen[ch])
            EXPECT_TRUE(s);
    }
}

TEST(InterleaveTest, LocalCapacityDividesEvenly)
{
    ChannelInterleaver il(4);
    EXPECT_EQ(il.localCapacity(1u << 20), (1u << 20) / 4);
    // Not divisible into whole per-channel blocks: clear error.
    EXPECT_THROW(il.localCapacity(4 * kBlockSize + kBlockSize),
                 FatalError);
}

TEST(InterleaveTest, NonPowerOfTwoChannelCountsRejected)
{
    for (unsigned bad : {0u, 3u, 5u, 6u, 7u, 12u}) {
        EXPECT_THROW(ChannelInterleaver il(bad), FatalError)
            << "channels=" << bad;
    }
}

TEST(InterleaveTest, ChannelIndexOutOfRangeRejected)
{
    ChannelInterleaver il(2);
    EXPECT_THROW(il.globalAddr(2, 0), PanicError);
}

} // namespace
} // namespace thynvm
