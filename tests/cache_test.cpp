/**
 * @file
 * Unit tests for the writeback cache hierarchy.
 */

#include "tests/test_util.hh"

#include "cache/cache.hh"

namespace thynvm {
namespace {

using test::patternBlock;

/**
 * A flat timed memory used as the level below a cache under test.
 */
class FakeMemory : public BlockAccessor
{
  public:
    FakeMemory(EventQueue& eq, std::size_t size, Tick latency)
        : eq_(eq), bytes_(size, 0), latency_(latency)
    {}

    void
    accessBlock(Addr paddr, bool is_write, const std::uint8_t* wdata,
                std::uint8_t* rdata, TrafficSource source,
                std::function<void()> done) override
    {
        (void)source;
        if (is_write) {
            std::memcpy(bytes_.data() + paddr, wdata, kBlockSize);
            ++writes;
        } else {
            std::memcpy(rdata, bytes_.data() + paddr, kBlockSize);
            ++reads;
        }
        if (done)
            eq_.scheduleIn(latency_, std::move(done));
    }

    void
    functionalReadBlock(Addr paddr, std::uint8_t* buf) override
    {
        std::memcpy(buf, bytes_.data() + paddr, kBlockSize);
    }

    unsigned reads = 0;
    unsigned writes = 0;

  private:
    EventQueue& eq_;
    std::vector<std::uint8_t> bytes_;
    Tick latency_;
};

struct CacheTest : public ::testing::Test
{
    CacheTest()
        : mem(eq, 1 << 20, 100 * kNanosecond),
          cache(eq, "l1", Cache::Params{8 * 1024, 4, kNanosecond}, mem)
    {}

    std::array<std::uint8_t, kBlockSize>
    read(Addr addr)
    {
        std::array<std::uint8_t, kBlockSize> out{};
        bool done = false;
        cache.accessBlock(addr, false, nullptr, out.data(),
                          TrafficSource::DemandRead,
                          [&] { done = true; });
        eq.runUntil([&] { return done; });
        return out;
    }

    void
    write(Addr addr, const std::array<std::uint8_t, kBlockSize>& data)
    {
        bool done = false;
        cache.accessBlock(addr, true, data.data(), nullptr,
                          TrafficSource::CpuWriteback,
                          [&] { done = true; });
        eq.runUntil([&] { return done; });
    }

    EventQueue eq;
    FakeMemory mem;
    Cache cache;
};

TEST_F(CacheTest, MissThenHit)
{
    read(0);
    EXPECT_EQ(mem.reads, 1u);
    read(0);
    EXPECT_EQ(mem.reads, 1u); // second read hits
    EXPECT_EQ(cache.stats().value("hits"), 1.0);
    EXPECT_EQ(cache.stats().value("misses"), 1.0);
}

TEST_F(CacheTest, HitIsFasterThanMiss)
{
    const Tick t0 = eq.now();
    read(64);
    const Tick miss_time = eq.now() - t0;
    const Tick t1 = eq.now();
    read(64);
    const Tick hit_time = eq.now() - t1;
    EXPECT_LT(hit_time, miss_time);
}

TEST_F(CacheTest, WriteAllocateAndWriteback)
{
    auto data = patternBlock(1);
    write(1024, data);
    EXPECT_EQ(mem.reads, 1u); // write-allocate fill
    EXPECT_EQ(mem.writes, 0u);
    EXPECT_EQ(read(1024), data);
    EXPECT_EQ(cache.dirtyBlockCount(), 1u);

    // Evict by filling the set: set count = 8KB/(4*64) = 32 sets.
    // Same set repeats every 32 blocks.
    for (unsigned i = 1; i <= 4; ++i)
        read(1024 + i * 32 * kBlockSize);
    EXPECT_EQ(mem.writes, 1u); // dirty victim written back
}

TEST_F(CacheTest, WritebackDataReachesMemory)
{
    auto data = patternBlock(7);
    write(2048, data);
    // Evict it.
    for (unsigned i = 1; i <= 4; ++i)
        read(2048 + i * 32 * kBlockSize);
    std::array<std::uint8_t, kBlockSize> out{};
    mem.functionalReadBlock(2048, out.data());
    EXPECT_EQ(out, data);
}

TEST_F(CacheTest, LruVictimSelection)
{
    // Fill one set with 4 blocks, touch the first, add one more: the
    // second-oldest should be evicted, not the recently touched one.
    const Addr stride = 32 * kBlockSize;
    read(0);
    read(stride);
    read(2 * stride);
    read(3 * stride);
    read(0); // refresh LRU for block 0
    read(4 * stride);
    EXPECT_EQ(mem.reads, 5u);
    read(0); // must still be resident
    EXPECT_EQ(mem.reads, 5u);
    read(stride); // was evicted -> miss
    EXPECT_EQ(mem.reads, 6u);
}

TEST_F(CacheTest, FlushDirtyCleansWithoutInvalidate)
{
    auto a = patternBlock(3);
    auto b = patternBlock(4);
    write(0, a);
    write(4096, b);
    EXPECT_EQ(cache.dirtyBlockCount(), 2u);

    bool flushed = false;
    cache.flushDirty([&] { flushed = true; });
    eq.runUntil([&] { return flushed; });
    EXPECT_EQ(cache.dirtyBlockCount(), 0u);
    EXPECT_EQ(mem.writes, 2u);

    // Data still resident (clean): reads hit without memory traffic.
    const unsigned reads_before = mem.reads;
    EXPECT_EQ(read(0), a);
    EXPECT_EQ(read(4096), b);
    EXPECT_EQ(mem.reads, reads_before);
}

TEST_F(CacheTest, FlushOnCleanCacheCompletesImmediately)
{
    bool flushed = false;
    cache.flushDirty([&] { flushed = true; });
    eq.runUntil([&] { return flushed; });
    EXPECT_EQ(mem.writes, 0u);
}

TEST_F(CacheTest, InvalidateAllDropsContents)
{
    auto data = patternBlock(9);
    write(0, data);
    cache.invalidateAll();
    EXPECT_EQ(cache.dirtyBlockCount(), 0u);
    const unsigned reads_before = mem.reads;
    read(0);
    EXPECT_EQ(mem.reads, reads_before + 1); // miss again
}

TEST_F(CacheTest, FunctionalReadSeesDirtyLine)
{
    auto data = patternBlock(5);
    write(512, data);
    std::array<std::uint8_t, kBlockSize> out{};
    cache.functionalReadBlock(512, out.data());
    EXPECT_EQ(out, data);
    // A block not in the cache falls through to memory.
    cache.functionalReadBlock(8192, out.data());
    EXPECT_EQ(out, (std::array<std::uint8_t, kBlockSize>{}));
}

TEST(CacheHierarchyTest, ThreeLevelDataPath)
{
    EventQueue eq;
    FakeMemory mem(eq, 1 << 20, 100 * kNanosecond);
    Cache l3(eq, "l3", Cache::Params{64 * 1024, 16, 9 * kNanosecond},
             mem);
    Cache l2(eq, "l2", Cache::Params{16 * 1024, 8, 4 * kNanosecond}, l3);
    Cache l1(eq, "l1", Cache::Params{4 * 1024, 8, kNanosecond}, l2);

    auto data = patternBlock(42);
    bool done = false;
    l1.accessBlock(4096, true, data.data(), nullptr,
                   TrafficSource::CpuWriteback, [&] { done = true; });
    eq.runUntil([&] { return done; });

    // Functional view through the hierarchy sees the write at L1.
    std::array<std::uint8_t, kBlockSize> out{};
    l1.functionalReadBlock(4096, out.data());
    EXPECT_EQ(out, data);

    // Sequential flushes push it all the way to memory.
    bool f = false;
    l1.flushDirty([&] { f = true; });
    eq.runUntil([&] { return f; });
    f = false;
    l2.flushDirty([&] { f = true; });
    eq.runUntil([&] { return f; });
    f = false;
    l3.flushDirty([&] { f = true; });
    eq.runUntil([&] { return f; });

    mem.functionalReadBlock(4096, out.data());
    EXPECT_EQ(out, data);
}

} // namespace
} // namespace thynvm
