/**
 * @file
 * Repro-string contract of the crash fuzzer.
 *
 * A failing fuzz case is only useful if its one-line repro string
 * replays the identical crash on a developer machine. These tests pin
 * that contract: format/parse round-trip, bit-identical deterministic
 * replay, and end-to-end replay of a repro produced by an injected
 * regression (failing with the fault armed, passing without).
 */

#include "tests/test_util.hh"

#include <cstdlib>
#include <sstream>
#include <string>

#include "fuzz/fuzzer.hh"

namespace thynvm {
namespace {

using namespace fuzz;

TEST(CrashRepro, FormatParseRoundTrip)
{
    FuzzCase c;
    c.seed = 42;
    c.workload = "slide";
    c.system = SystemKind::Shadow;
    c.site = "ckpt.pre_commit_header";
    c.hit = 7;
    c.delta = 1234;
    c.fast_path = false;

    const std::string repro = formatRepro(c);
    FuzzCase back;
    ASSERT_TRUE(parseRepro(repro, back));
    EXPECT_EQ(back.seed, c.seed);
    EXPECT_EQ(back.workload, c.workload);
    EXPECT_EQ(back.system, c.system);
    EXPECT_EQ(back.site, c.site);
    EXPECT_EQ(back.hit, c.hit);
    EXPECT_EQ(back.delta, c.delta);
    EXPECT_EQ(back.fast_path, c.fast_path);
    EXPECT_EQ(formatRepro(back), repro);
}

TEST(CrashRepro, MalformedStringsAreRejected)
{
    FuzzCase out;
    EXPECT_FALSE(parseRepro("", out));
    EXPECT_FALSE(parseRepro("seed=1", out));
    EXPECT_FALSE(parseRepro("seed=1:wl=rand:sys=nosuch:site=x:hit=1:"
                            "delta=0:fp=on",
                            out));
    EXPECT_FALSE(parseRepro("seed=1:wl=rand:sys=thynvm:site=x:hit=bad:"
                            "delta=0:fp=on",
                            out));
    EXPECT_FALSE(parseRepro("garbage without any separators", out));
}

/** Replaying the same case twice is bit-identical, end to end. */
TEST(CrashRepro, ReplayIsDeterministic)
{
    FuzzerConfig fc;
    FuzzCase c;
    c.seed = test::loggedSeed("crash_repro.determinism", 1);
    c.workload = "rand";
    c.system = SystemKind::ThyNvm;
    c.site = "ckpt.committed";
    c.hit = 1;
    // Site names are unprefixed on the single-channel topology; pin it
    // so a THYNVM_CHANNELS value in the environment cannot redirect
    // this case (the multi-channel twin is below).
    c.channels = 1;

    const CaseResult a = runCrashCase(fc, c);
    const CaseResult b = runCrashCase(fc, c);

    ASSERT_EQ(a.status, CaseStatus::Ok) << a.detail;
    ASSERT_EQ(b.status, CaseStatus::Ok) << b.detail;
    EXPECT_EQ(a.crash_tick, b.crash_tick);
    EXPECT_EQ(a.commits_before, b.commits_before);
    EXPECT_EQ(a.restored_ops, b.restored_ops);
    EXPECT_EQ(a.recovered_image, b.recovered_image);
    EXPECT_EQ(a.final_image, b.final_image);
}

/**
 * Multi-channel replay determinism: crash at a per-channel site and at
 * a cross-channel barrier site of a 2-channel topology; the profiled
 * crash tick, the recovered image, and the final image must replay
 * bit-identically.
 */
TEST(CrashRepro, MultiChannelReplayIsDeterministic)
{
    FuzzerConfig fc;
    for (const char* site : {"ch0.ckpt.committed", "group.all_staged"}) {
        FuzzCase c;
        c.seed = test::loggedSeed("crash_repro.mc_determinism", 1);
        c.workload = "rand";
        c.system = SystemKind::ThyNvm;
        c.site = site;
        c.hit = 1;
        c.channels = 2;

        const CaseResult a = runCrashCase(fc, c);
        const CaseResult b = runCrashCase(fc, c);

        ASSERT_EQ(a.status, CaseStatus::Ok) << site << ": " << a.detail;
        ASSERT_EQ(b.status, CaseStatus::Ok) << site << ": " << b.detail;
        EXPECT_EQ(a.crash_tick, b.crash_tick) << site;
        EXPECT_EQ(a.commits_before, b.commits_before) << site;
        EXPECT_EQ(a.restored_ops, b.restored_ops) << site;
        EXPECT_EQ(a.recovered_image, b.recovered_image) << site;
        EXPECT_EQ(a.final_image, b.final_image) << site;
    }
}

/**
 * End-to-end workflow: the campaign (with an injected fault) prints a
 * repro; replaying that exact string reproduces the violation; the
 * same string on a healthy build passes. This is what a developer does
 * when a nightly fuzz job fails.
 */
TEST(CrashRepro, InjectedReproReplaysDeterministically)
{
    FuzzerConfig broken;
    broken.debug_drop_btt_entry = 0;
    CampaignOptions opts;
    opts.seeds = {1};
    opts.systems = {SystemKind::ThyNvm};
    opts.workloads = {"rand"};

    const CampaignResult campaign = runCampaign(broken, opts, nullptr);
    ASSERT_FALSE(campaign.violations.empty())
        << "injected fault produced no violation to replay";

    const std::string repro = campaign.violations.front().repro;
    FuzzCase c;
    ASSERT_TRUE(parseRepro(repro, c)) << repro;

    // Replay on the broken build: violation, same detail both times.
    const CaseResult r1 = runCrashCase(broken, c);
    const CaseResult r2 = runCrashCase(broken, c);
    EXPECT_EQ(r1.status, CaseStatus::Violation) << repro;
    EXPECT_EQ(r1.detail, r2.detail);
    EXPECT_EQ(r1.detail, campaign.violations.front().detail);

    // Replay on the healthy build: the same crash plan passes.
    FuzzerConfig healthy;
    const CaseResult ok = runCrashCase(healthy, c);
    EXPECT_EQ(ok.status, CaseStatus::Ok) << ok.detail;
}

void
expectSameCampaign(const CampaignResult& a, const CampaignResult& b,
                   const char* what)
{
    EXPECT_EQ(b.cases, a.cases) << what;
    EXPECT_EQ(b.not_reached, a.not_reached) << what;
    EXPECT_EQ(b.repros, a.repros) << what;
    EXPECT_EQ(b.sites_by_system, a.sites_by_system) << what;
    ASSERT_EQ(b.violations.size(), a.violations.size()) << what;
    for (std::size_t i = 0; i < a.violations.size(); ++i) {
        EXPECT_EQ(b.violations[i].repro, a.violations[i].repro) << what;
        EXPECT_EQ(b.violations[i].detail, a.violations[i].detail)
            << what;
    }
}

/**
 * The full default campaign (every seed/workload/system crash plan)
 * fanned across host workers must produce the byte-identical result —
 * counts, repro strings, site map, and log stream — as the serial
 * campaign.
 */
TEST(CrashRepro, CampaignIsThreadCountInvariant)
{
    FuzzerConfig fc;
    CampaignOptions opts; // defaults: the full tier-1 campaign

    std::ostringstream serial_log;
    const CampaignResult serial =
        runCampaign(fc, opts, &serial_log, 1);
    EXPECT_EQ(serial.repros.size(), serial.cases);
    EXPECT_TRUE(serial.violations.empty());

    for (unsigned threads : {2u, 4u}) {
        std::ostringstream log;
        const CampaignResult parallel =
            runCampaign(fc, opts, &log, threads);
        expectSameCampaign(serial, parallel,
                           threads == 2 ? "threads=2" : "threads=4");
        EXPECT_EQ(log.str(), serial_log.str());
    }
}

/** Scoped environment override; the previous value is restored on
 *  destruction (so CI legs that set the variable for the whole binary
 *  keep it afterwards). */
struct EnvGuard
{
    EnvGuard(const char* name, const char* value) : name_(name)
    {
        if (const char* old = std::getenv(name)) {
            had_old_ = true;
            old_ = old;
        }
        ::setenv(name, value, 1);
    }
    ~EnvGuard()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    const char* name_;
    std::string old_;
    bool had_old_ = false;
};

/**
 * Running the campaign while THYNVM_SIM_THREADS routes every simulated
 * System through the sharded kernel must not change a single repro
 * string or oracle verdict: crash sites fire at the same ticks whether
 * the event loop is stepped serially or in lookahead windows.
 */
TEST(CrashRepro, CampaignInvariantUnderSimThreadsEnv)
{
    FuzzerConfig fc;
    CampaignOptions opts; // defaults: the full tier-1 campaign

    const CampaignResult base = runCampaign(fc, opts, nullptr, 1);
    EXPECT_FALSE(base.repros.empty());

    // Every simulated System inside every case now runs through the
    // sharded kernel; case fan-out runs on 2 workers on top of that.
    EnvGuard env("THYNVM_SIM_THREADS", "4");
    const CampaignResult sharded = runCampaign(fc, opts, nullptr, 2);
    expectSameCampaign(base, sharded, "THYNVM_SIM_THREADS=4");
}

/**
 * The 2-channel campaign (per-channel chK.* sites plus cross-channel
 * group.* barrier sites) re-run with every simulated System sharded
 * across THYNVM_SIM_THREADS=4 workers: the earliest-output-time window
 * schedule must not move a single crash tick or change any recovery
 * image, with widening on and with the THYNVM_NO_EOT fallback.
 */
TEST(CrashRepro, MultiChannelCampaignInvariantUnderSimThreadsEnv)
{
    FuzzerConfig fc;
    CampaignOptions opts;
    opts.channels = 2;

    const CampaignResult base = runCampaign(fc, opts, nullptr, 1);
    EXPECT_FALSE(base.repros.empty());
    EXPECT_TRUE(base.violations.empty());

    {
        EnvGuard env("THYNVM_SIM_THREADS", "4");
        const CampaignResult sharded = runCampaign(fc, opts, nullptr, 2);
        expectSameCampaign(base, sharded,
                           "channels=2 THYNVM_SIM_THREADS=4");
    }
    {
        EnvGuard threads("THYNVM_SIM_THREADS", "4");
        EnvGuard no_eot("THYNVM_NO_EOT", "1");
        const CampaignResult narrow = runCampaign(fc, opts, nullptr, 2);
        expectSameCampaign(base, narrow,
                           "channels=2 THYNVM_SIM_THREADS=4 "
                           "THYNVM_NO_EOT=1");
    }
}

} // namespace
} // namespace thynvm
