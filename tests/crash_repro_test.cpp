/**
 * @file
 * Repro-string contract of the crash fuzzer.
 *
 * A failing fuzz case is only useful if its one-line repro string
 * replays the identical crash on a developer machine. These tests pin
 * that contract: format/parse round-trip, bit-identical deterministic
 * replay, and end-to-end replay of a repro produced by an injected
 * regression (failing with the fault armed, passing without).
 */

#include "tests/test_util.hh"

#include <sstream>

#include "fuzz/fuzzer.hh"

namespace thynvm {
namespace {

using namespace fuzz;

TEST(CrashRepro, FormatParseRoundTrip)
{
    FuzzCase c;
    c.seed = 42;
    c.workload = "slide";
    c.system = SystemKind::Shadow;
    c.site = "ckpt.pre_commit_header";
    c.hit = 7;
    c.delta = 1234;
    c.fast_path = false;

    const std::string repro = formatRepro(c);
    FuzzCase back;
    ASSERT_TRUE(parseRepro(repro, back));
    EXPECT_EQ(back.seed, c.seed);
    EXPECT_EQ(back.workload, c.workload);
    EXPECT_EQ(back.system, c.system);
    EXPECT_EQ(back.site, c.site);
    EXPECT_EQ(back.hit, c.hit);
    EXPECT_EQ(back.delta, c.delta);
    EXPECT_EQ(back.fast_path, c.fast_path);
    EXPECT_EQ(formatRepro(back), repro);
}

TEST(CrashRepro, MalformedStringsAreRejected)
{
    FuzzCase out;
    EXPECT_FALSE(parseRepro("", out));
    EXPECT_FALSE(parseRepro("seed=1", out));
    EXPECT_FALSE(parseRepro("seed=1:wl=rand:sys=nosuch:site=x:hit=1:"
                            "delta=0:fp=on",
                            out));
    EXPECT_FALSE(parseRepro("seed=1:wl=rand:sys=thynvm:site=x:hit=bad:"
                            "delta=0:fp=on",
                            out));
    EXPECT_FALSE(parseRepro("garbage without any separators", out));
}

/** Replaying the same case twice is bit-identical, end to end. */
TEST(CrashRepro, ReplayIsDeterministic)
{
    FuzzerConfig fc;
    FuzzCase c;
    c.seed = test::loggedSeed("crash_repro.determinism", 1);
    c.workload = "rand";
    c.system = SystemKind::ThyNvm;
    c.site = "ckpt.committed";
    c.hit = 1;

    const CaseResult a = runCrashCase(fc, c);
    const CaseResult b = runCrashCase(fc, c);

    ASSERT_EQ(a.status, CaseStatus::Ok) << a.detail;
    ASSERT_EQ(b.status, CaseStatus::Ok) << b.detail;
    EXPECT_EQ(a.crash_tick, b.crash_tick);
    EXPECT_EQ(a.commits_before, b.commits_before);
    EXPECT_EQ(a.restored_ops, b.restored_ops);
    EXPECT_EQ(a.recovered_image, b.recovered_image);
    EXPECT_EQ(a.final_image, b.final_image);
}

/**
 * End-to-end workflow: the campaign (with an injected fault) prints a
 * repro; replaying that exact string reproduces the violation; the
 * same string on a healthy build passes. This is what a developer does
 * when a nightly fuzz job fails.
 */
TEST(CrashRepro, InjectedReproReplaysDeterministically)
{
    FuzzerConfig broken;
    broken.debug_drop_btt_entry = 0;
    CampaignOptions opts;
    opts.seeds = {1};
    opts.systems = {SystemKind::ThyNvm};
    opts.workloads = {"rand"};

    const CampaignResult campaign = runCampaign(broken, opts, nullptr);
    ASSERT_FALSE(campaign.violations.empty())
        << "injected fault produced no violation to replay";

    const std::string repro = campaign.violations.front().repro;
    FuzzCase c;
    ASSERT_TRUE(parseRepro(repro, c)) << repro;

    // Replay on the broken build: violation, same detail both times.
    const CaseResult r1 = runCrashCase(broken, c);
    const CaseResult r2 = runCrashCase(broken, c);
    EXPECT_EQ(r1.status, CaseStatus::Violation) << repro;
    EXPECT_EQ(r1.detail, r2.detail);
    EXPECT_EQ(r1.detail, campaign.violations.front().detail);

    // Replay on the healthy build: the same crash plan passes.
    FuzzerConfig healthy;
    const CaseResult ok = runCrashCase(healthy, c);
    EXPECT_EQ(ok.status, CaseStatus::Ok) << ok.detail;
}

} // namespace
} // namespace thynvm
