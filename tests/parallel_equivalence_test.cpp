/**
 * @file
 * Serial vs sharded-kernel equivalence of whole simulations.
 *
 * The contract of the deterministic sharded kernel (DESIGN.md §8) is
 * that running a simulation with any worker thread count produces
 * byte-identical statistics and the identical final tick as the serial
 * event loop. These tests pin that contract end to end across the
 * figure-bench workload families (micro patterns, KV store, SPEC
 * profiles) and every crash-consistency system kind, through all three
 * entry points: SystemConfig::sim_threads, the THYNVM_SIM_THREADS
 * environment variable, and explicit SystemGroup co-scheduling.
 */

#include "tests/test_util.hh"

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/shard_group.hh"
#include "harness/system.hh"
#include "workloads/kvstore.hh"
#include "workloads/micro.hh"
#include "workloads/spec.hh"

namespace thynvm {
namespace {

/** Everything a run must reproduce exactly at any thread count. */
struct RunResult
{
    std::string stats;
    Tick final_tick = 0;
    bool finished = false;
};

/** Workload families covered by the figure benchmarks. */
enum class Family
{
    MicroRandom,
    MicroStreaming,
    MicroSliding,
    KvHash,
    SpecGcc,
};

const char*
familyName(Family f)
{
    switch (f) {
      case Family::MicroRandom: return "micro/random";
      case Family::MicroStreaming: return "micro/streaming";
      case Family::MicroSliding: return "micro/sliding";
      case Family::KvHash: return "kv/hash";
      case Family::SpecGcc: return "spec/gcc";
    }
    return "?";
}

/** Small-but-real configuration so one run finishes in milliseconds. */
SystemConfig
smallConfig(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.phys_size = 4u << 20;
    cfg.epoch_length = 1 * kMillisecond;
    cfg.thynvm.btt_entries = 256;
    cfg.thynvm.ptt_entries = 512;
    return cfg;
}

std::unique_ptr<Workload>
makeWorkload(Family f)
{
    switch (f) {
      case Family::MicroRandom:
      case Family::MicroStreaming:
      case Family::MicroSliding: {
          MicroWorkload::Params mp;
          mp.pattern = f == Family::MicroRandom
                           ? MicroWorkload::Pattern::Random
                           : f == Family::MicroStreaming
                                 ? MicroWorkload::Pattern::Streaming
                                 : MicroWorkload::Pattern::Sliding;
          mp.base = 0;
          mp.array_bytes = 2u << 20;
          mp.access_size = 64;
          mp.read_fraction = 0.5;
          mp.total_accesses = 4000;
          mp.seed = 1;
          return std::make_unique<MicroWorkload>(mp);
      }
      case Family::KvHash: {
          KvWorkload::Params kp;
          kp.structure = KvWorkload::Structure::HashTable;
          kp.phys_size = 4u << 20;
          kp.value_size = 64;
          kp.initial_keys = 128;
          kp.key_space = 512;
          kp.hash_buckets = 512;
          kp.total_txns = 300;
          kp.compute_per_txn = 50;
          kp.seed = 7;
          return std::make_unique<KvWorkload>(kp);
      }
      case Family::SpecGcc: {
          SpecProfile prof = specProfile("gcc");
          prof.wss = 2u << 20; // shrink the footprint to the test system
          return std::make_unique<SpecWorkload>(prof, 0, 60000, 3);
      }
    }
    fatal("unreachable workload family");
}

/**
 * One complete run: fresh workload, fresh System, run to completion.
 * @p sim_threads goes through SystemConfig::sim_threads (1 = serial
 * loop, >1 = sharded kernel on worker threads).
 */
RunResult
runOne(Family f, SystemKind kind, unsigned sim_threads)
{
    SystemConfig cfg = smallConfig(kind);
    cfg.sim_threads = sim_threads;
    auto wl = makeWorkload(f);
    System sys(cfg, *wl);
    sys.start();
    RunResult r;
    r.final_tick = sys.run(20 * kSecond);
    r.finished = sys.finished();
    std::ostringstream os;
    sys.dumpStats(os);
    r.stats = os.str();
    return r;
}

void
expectSameRun(const RunResult& serial, const RunResult& other,
              const std::string& what)
{
    EXPECT_TRUE(other.finished) << what;
    EXPECT_EQ(other.final_tick, serial.final_tick) << what;
    EXPECT_EQ(other.stats, serial.stats) << what;
}

TEST(ParallelEquivalence, MicroFamiliesByteIdenticalAtAnyThreadCount)
{
    const std::vector<SystemKind> kinds = {
        SystemKind::Journal, SystemKind::Shadow, SystemKind::ThyNvm};
    const std::vector<Family> families = {Family::MicroRandom,
                                          Family::MicroStreaming,
                                          Family::MicroSliding};
    for (SystemKind kind : kinds) {
        for (Family f : families) {
            const RunResult serial = runOne(f, kind, 1);
            ASSERT_TRUE(serial.finished) << familyName(f);
            for (unsigned threads : {2u, 4u, 8u}) {
                const std::string what =
                    std::string(systemKindName(kind)) + " " +
                    familyName(f) + " threads=" +
                    std::to_string(threads);
                expectSameRun(serial, runOne(f, kind, threads), what);
            }
        }
    }
}

TEST(ParallelEquivalence, StorageAndSpecByteIdenticalAtAnyThreadCount)
{
    for (Family f : {Family::KvHash, Family::SpecGcc}) {
        const RunResult serial = runOne(f, SystemKind::ThyNvm, 1);
        ASSERT_TRUE(serial.finished) << familyName(f);
        for (unsigned threads : {2u, 4u, 8u}) {
            const std::string what = std::string(familyName(f)) +
                                     " threads=" +
                                     std::to_string(threads);
            expectSameRun(serial, runOne(f, SystemKind::ThyNvm, threads),
                          what);
        }
    }
}

/** Scoped environment override (nullptr clears); the previous value
 *  is restored on destruction. */
struct EnvGuard
{
    EnvGuard(const char* name, const char* value) : name_(name)
    {
        if (const char* old = std::getenv(name)) {
            had_old_ = true;
            old_ = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvGuard()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    const char* name_;
    std::string old_;
    bool had_old_ = false;
};

TEST(ParallelEquivalence, EnvVarEscapeHatchMatchesSerial)
{
    // sim_threads = 0 defers to the environment; unset env = serial.
    const RunResult serial =
        runOne(Family::MicroRandom, SystemKind::ThyNvm, 0);
    ASSERT_TRUE(serial.finished);
    {
        EnvGuard env("THYNVM_SIM_THREADS", "4");
        expectSameRun(serial,
                      runOne(Family::MicroRandom, SystemKind::ThyNvm, 0),
                      "THYNVM_SIM_THREADS=4");
    }
    // Explicit sim_threads beats the environment.
    {
        EnvGuard env("THYNVM_SIM_THREADS", "8");
        expectSameRun(serial,
                      runOne(Family::MicroRandom, SystemKind::ThyNvm, 1),
                      "sim_threads=1 overrides env");
    }
}

/**
 * EOT window widening vs the fixed-lookahead fallback (THYNVM_NO_EOT)
 * must execute the identical schedule: the window pattern is host-side
 * scheduling only, never simulated behavior.
 */
TEST(ParallelEquivalence, EotModesByteIdenticalAtAnyThreadCount)
{
    RunResult widened;
    {
        EnvGuard on("THYNVM_NO_EOT", nullptr); // widening on
        widened = runOne(Family::MicroRandom, SystemKind::ThyNvm, 2);
    }
    ASSERT_TRUE(widened.finished);
    EnvGuard off("THYNVM_NO_EOT", "1");
    for (unsigned threads : {1u, 2u, 4u}) {
        expectSameRun(widened,
                      runOne(Family::MicroRandom, SystemKind::ThyNvm,
                             threads),
                      "THYNVM_NO_EOT=1 threads=" +
                          std::to_string(threads));
    }
}

/**
 * Co-scheduling several Systems as shards of one kernel run must leave
 * each System byte-identical to its solo serial run — the shards share
 * worker threads and epoch barriers but no simulated state.
 */
TEST(ParallelEquivalence, SystemGroupMatchesSoloRuns)
{
    struct Cell
    {
        Family family;
        SystemKind kind;
    };
    const std::vector<Cell> cells = {
        {Family::MicroRandom, SystemKind::ThyNvm},
        {Family::MicroStreaming, SystemKind::Journal},
        {Family::MicroSliding, SystemKind::Shadow},
        {Family::KvHash, SystemKind::ThyNvm},
    };

    // Solo serial reference runs.
    std::vector<RunResult> solo;
    for (const Cell& c : cells)
        solo.push_back(runOne(c.family, c.kind, 1));
    for (const RunResult& r : solo)
        ASSERT_TRUE(r.finished);

    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        std::vector<std::unique_ptr<Workload>> wls;
        std::vector<std::unique_ptr<System>> systems;
        SystemGroup group;
        for (const Cell& c : cells) {
            wls.push_back(makeWorkload(c.family));
            systems.push_back(
                std::make_unique<System>(smallConfig(c.kind),
                                         *wls.back()));
            systems.back()->start();
            group.add(*systems.back());
        }
        group.run(threads, 20 * kSecond);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::ostringstream os;
            systems[i]->dumpStats(os);
            const std::string what =
                std::string("group threads=") + std::to_string(threads) +
                " cell=" + familyName(cells[i].family);
            EXPECT_TRUE(systems[i]->finished()) << what;
            EXPECT_EQ(os.str(), solo[i].stats) << what;
        }
    }
}

} // namespace
} // namespace thynvm
