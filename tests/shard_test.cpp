/**
 * @file
 * Deterministic sharded event kernel (sim/shard.hh).
 *
 * The kernel's contract is that a sharded simulation executes, per
 * shard, exactly the event sequence of a serial run — for any worker
 * thread count. These tests pin that contract with synthetic
 * multi-shard topologies exercising cross-shard mailbox traffic,
 * conservative lookahead windows, and epoch barrier alignment.
 */

#include "tests/test_util.hh"

#include <atomic>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/shard.hh"

namespace thynvm {
namespace {

/** One observed event: (shard, tick, payload). */
struct Obs
{
    unsigned shard;
    Tick tick;
    std::uint64_t payload;

    bool
    operator==(const Obs& o) const
    {
        return shard == o.shard && tick == o.tick && payload == o.payload;
    }
};

/**
 * A ring of shards passing a token: shard i logs the hop and forwards
 * it to shard (i+1)%K with latency @p hop_latency, until @p hops hops
 * have happened. Exercises post()/mailbox drain/window advance.
 */
std::vector<std::vector<Obs>>
runTokenRing(unsigned shards, unsigned threads, Tick hop_latency,
             std::uint64_t hops)
{
    std::vector<EventQueue> queues(shards);
    std::vector<std::vector<Obs>> logs(shards);
    ShardedKernel kernel;
    for (unsigned i = 0; i < shards; ++i)
        kernel.addShard("ring" + std::to_string(i), queues[i]);
    for (unsigned i = 0; i < shards; ++i)
        kernel.link(i, (i + 1) % shards, hop_latency);

    // The hop handler: log, then forward through the mailbox.
    std::function<void(unsigned, std::uint64_t)> hop =
        [&](unsigned shard, std::uint64_t count) {
            EventQueue& eq = queues[shard];
            logs[shard].push_back(Obs{shard, eq.now(), count});
            if (count + 1 >= hops)
                return;
            const unsigned next = (shard + 1) % shards;
            kernel.post(shard, next, eq.now() + hop_latency,
                        [&hop, next, count] { hop(next, count + 1); });
        };

    queues[0].schedule(100, [&hop] { hop(0, 0); });
    kernel.run(threads);
    return logs;
}

TEST(ShardKernel, TokenRingMatchesAnalyticSchedule)
{
    const Tick lat = 40 * kNanosecond;
    const auto logs = runTokenRing(4, 1, lat, 16);
    for (unsigned s = 0; s < 4; ++s)
        ASSERT_EQ(logs[s].size(), 4u) << "shard " << s;
    // Hop j lands on shard j%4 at tick 100 + j*lat.
    for (std::uint64_t j = 0; j < 16; ++j) {
        const unsigned shard = static_cast<unsigned>(j % 4);
        const Obs& o = logs[shard][j / 4];
        EXPECT_EQ(o.tick, 100 + j * lat);
        EXPECT_EQ(o.payload, j);
    }
}

TEST(ShardKernel, TokenRingIsThreadCountInvariant)
{
    const Tick lat = 40 * kNanosecond;
    const auto serial = runTokenRing(4, 1, lat, 64);
    for (unsigned threads : {2u, 4u, 8u}) {
        const auto parallel = runTokenRing(4, threads, lat, 64);
        EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
}

/**
 * Shards running independent seeded event chains with pseudo-random
 * spacing, all-to-all linked. Each chain folds its (tick, step) pairs
 * into a checksum; any divergence of event order or timing across
 * thread counts changes it.
 */
std::vector<std::uint64_t>
runJitterChains(unsigned shards, unsigned threads, std::uint64_t steps)
{
    std::vector<EventQueue> queues(shards);
    std::vector<std::uint64_t> sums(shards, 0);
    std::vector<Rng> rngs;
    for (unsigned i = 0; i < shards; ++i)
        rngs.emplace_back(0x5eed + i);

    ShardedKernel kernel;
    for (unsigned i = 0; i < shards; ++i)
        kernel.addShard("chain" + std::to_string(i), queues[i]);
    for (unsigned i = 0; i < shards; ++i) {
        for (unsigned j = 0; j < shards; ++j) {
            if (i != j)
                kernel.link(i, j, 10 * kNanosecond);
        }
    }
    kernel.setBarrierPeriod(500 * kNanosecond);

    std::function<void(unsigned, std::uint64_t)> step =
        [&](unsigned shard, std::uint64_t n) {
            EventQueue& eq = queues[shard];
            sums[shard] =
                sums[shard] * 1099511628211ull + eq.now() * 31 + n;
            if (n + 1 < steps) {
                eq.scheduleIn(rngs[shard].below(300) + 1,
                              [&step, shard, n] { step(shard, n + 1); });
            }
        };
    for (unsigned i = 0; i < shards; ++i) {
        queues[i].schedule(i * 7, [&step, i] { step(i, 0); });
    }
    kernel.run(threads);
    return sums;
}

TEST(ShardKernel, JitterChainsAreThreadCountInvariant)
{
    const auto serial = runJitterChains(6, 1, 400);
    for (unsigned threads : {2u, 4u, 8u}) {
        EXPECT_EQ(runJitterChains(6, threads, 400), serial)
            << "threads=" << threads;
    }
}

TEST(ShardKernel, MailboxDeliversAtExactTick)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);

    Tick delivered_at = 0;
    a.schedule(10, [&] {
        kernel.post(0, 1, a.now() + 123, [&] { delivered_at = b.now(); });
    });
    kernel.run(1);
    EXPECT_EQ(delivered_at, 133u);
}

TEST(ShardKernel, MessagesReviveAnIdleShard)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);

    // Shard b starts with an empty queue (idle immediately); a message
    // posted later must still run on it.
    int ran = 0;
    a.schedule(1000, [&] {
        kernel.post(0, 1, a.now() + 50, [&ran] { ++ran; });
    });
    kernel.run(2);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(b.now(), 1050u);
}

TEST(ShardKernel, ZeroLookaheadLinkIsRejected)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    EXPECT_THROW(kernel.link(0, 1, 0), PanicError);
    EXPECT_THROW(kernel.link(0, 0, 10), PanicError);
    EXPECT_THROW(kernel.link(0, 7, 10), PanicError);
}

TEST(ShardKernel, PostOverUndeclaredLinkPanics)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);
    bool threw = false;
    b.schedule(10, [&] {
        try {
            kernel.post(1, 0, b.now() + 100, [] {});
        } catch (const PanicError&) {
            threw = true;
        }
    });
    kernel.run(1);
    EXPECT_TRUE(threw);
}

TEST(ShardKernel, ConservativeViolationPanics)
{
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, 50);
    // A message due *before* the end of the current window would race
    // the target shard; the kernel must refuse it.
    bool threw = false;
    a.schedule(10, [&] {
        try {
            kernel.post(0, 1, a.now() + 1, [] {});
        } catch (const PanicError&) {
            threw = true;
        }
    });
    kernel.run(1);
    EXPECT_TRUE(threw);
}

TEST(ShardKernel, CountsWindowsAndMessages)
{
    const Tick lat = 40 * kNanosecond;
    EventQueue a, b;
    ShardedKernel kernel;
    kernel.addShard("a", a);
    kernel.addShard("b", b);
    kernel.link(0, 1, lat);

    int delivered = 0;
    a.schedule(0, [&] {
        kernel.post(0, 1, lat, [&] { ++delivered; });
    });
    kernel.run(1);
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(kernel.messagesDelivered(), 1u);
    EXPECT_GE(kernel.windowsExecuted(), 2u);
}

TEST(SpscRing, PushPopWrapAround)
{
    SpscRing<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(ring.push(round * 10 + i));
        int extra = 99;
        EXPECT_FALSE(ring.push(std::move(extra))); // full
        for (int i = 0; i < 4; ++i) {
            int out = -1;
            EXPECT_TRUE(ring.pop(out));
            EXPECT_EQ(out, round * 10 + i);
        }
        int out = -1;
        EXPECT_FALSE(ring.pop(out)); // empty
    }
}

TEST(SpscRing, ConcurrentProducerConsumer)
{
    SpscRing<std::uint64_t> ring(64);
    const std::uint64_t n = 100000;
    std::atomic<bool> fail{false};
    std::thread consumer([&] {
        std::uint64_t expect = 0;
        while (expect < n) {
            std::uint64_t v;
            if (ring.pop(v)) {
                if (v != expect)
                    fail = true;
                ++expect;
            }
        }
    });
    for (std::uint64_t i = 0; i < n;) {
        std::uint64_t v = i;
        if (ring.push(std::move(v)))
            ++i;
    }
    consumer.join();
    EXPECT_FALSE(fail);
}

} // namespace
} // namespace thynvm
